//! End-to-end coverage of the §IV-C query variants on top of the public
//! API: unweighted graphs, undirected graphs, no-source, no-destination and
//! per-category preferences — each cross-checked against a brute-force
//! computation built only from label distance queries.

use kosr::core::{
    no_destination_kosr, no_source_kosr, star_kosr, FilteredNn, IndexedGraph, Method, Query,
};
use kosr::graph::{CategoryId, VertexId};
use kosr::index::{LabelNn, LabelTarget};
use kosr::workloads::{assign_uniform, road_grid_undirected, social_graph};

fn v(i: u32) -> VertexId {
    VertexId(i)
}

/// Unweighted graphs (§IV-C: "simply set the weights of all edges to 1"):
/// witness costs equal hop counts.
#[test]
fn unweighted_graph_counts_hops() {
    let mut g = social_graph(300, 6, 5);
    assign_uniform(&mut g, 2, 40, 9);
    let ig = IndexedGraph::build_default(g);
    let q = Query::new(v(3), v(250), vec![CategoryId(0), CategoryId(1)], 4);
    let out = ig.run(&q, Method::Sk);
    assert!(!out.witnesses.is_empty());
    for w in &out.witnesses {
        // Each leg is a hop distance; the total is at most the sum of
        // per-leg diameters (tiny in a PA graph).
        assert!(w.cost <= 20, "hop cost {} is implausible", w.cost);
    }
    // KPNE agrees (ties galore — the stress case for deterministic order).
    let kp = ig.run(&q, Method::Kpne);
    assert_eq!(out.costs(), kp.costs());
}

/// Undirected graphs: Lin and Lout are mirror images, and reversing a
/// query's endpoints with a reversed category sequence gives the same cost.
#[test]
fn undirected_graph_is_symmetric() {
    let mut g = road_grid_undirected(18, 18, 77);
    assign_uniform(&mut g, 2, 30, 4);
    let ig = IndexedGraph::build_default(g);
    // dis(a, b) == dis(b, a) for a sample of pairs.
    for (a, b) in [(0u32, 300u32), (5, 17), (100, 200), (7, 290)] {
        assert_eq!(
            ig.labels.distance(v(a), v(b)),
            ig.labels.distance(v(b), v(a)),
            "{a} vs {b}"
        );
    }
    let fwd = ig.run(
        &Query::new(v(0), v(323), vec![CategoryId(0), CategoryId(1)], 1),
        Method::Sk,
    );
    let bwd = ig.run(
        &Query::new(v(323), v(0), vec![CategoryId(1), CategoryId(0)], 1),
        Method::Sk,
    );
    assert_eq!(fwd.costs(), bwd.costs(), "symmetric world, mirrored query");
}

/// No-source: matches a brute-force minimum over all first-category starts.
#[test]
fn no_source_matches_brute_force() {
    let mut g = road_grid_undirected(12, 12, 3);
    assign_uniform(&mut g, 3, 12, 21);
    let ig = IndexedGraph::build_default(g);
    let (c0, c1, c2) = (CategoryId(0), CategoryId(1), CategoryId(2));
    let t = v(100);

    let out = no_source_kosr(
        ig.graph.categories().vertices_of(c0),
        &[c1, c2],
        t,
        5,
        LabelNn::new(&ig.labels, &ig.inverted),
        LabelTarget::new(&ig.labels, t),
    );

    // Brute force from label distances.
    let mut all: Vec<u64> = Vec::new();
    for &a in ig.graph.categories().vertices_of(c0) {
        for &b in ig.graph.categories().vertices_of(c1) {
            for &c in ig.graph.categories().vertices_of(c2) {
                let cost =
                    ig.labels.distance(a, b) + ig.labels.distance(b, c) + ig.labels.distance(c, t);
                if kosr::graph::is_finite(cost) {
                    all.push(cost);
                }
            }
        }
    }
    all.sort_unstable();
    all.truncate(5);
    assert_eq!(out.costs(), all);
    for w in &out.witnesses {
        assert_eq!(w.vertices.len(), 4, "⟨v1, v2, v3, t⟩");
        assert!(ig.graph.categories().has_category(w.vertices[0], c0));
    }
}

/// No-destination: matches a brute-force minimum ending at the last
/// category.
#[test]
fn no_destination_matches_brute_force() {
    let mut g = road_grid_undirected(12, 12, 13);
    assign_uniform(&mut g, 2, 10, 31);
    let ig = IndexedGraph::build_default(g);
    let (c0, c1) = (CategoryId(0), CategoryId(1));
    let s = v(0);

    let out = no_destination_kosr(s, &[c0, c1], 4, LabelNn::new(&ig.labels, &ig.inverted));

    let mut all: Vec<u64> = Vec::new();
    for &a in ig.graph.categories().vertices_of(c0) {
        for &b in ig.graph.categories().vertices_of(c1) {
            let cost = ig.labels.distance(s, a) + ig.labels.distance(a, b);
            if kosr::graph::is_finite(cost) {
                all.push(cost);
            }
        }
    }
    all.sort_unstable();
    all.truncate(4);
    assert_eq!(out.costs(), all);
    for w in &out.witnesses {
        assert_eq!(w.vertices.len(), 3, "⟨s, v1, v2⟩");
        assert_eq!(w.vertices[0], s);
    }
}

/// Preference filters narrow the answer set monotonically and compose with
/// both PK and SK.
#[test]
fn preference_filter_is_monotone() {
    let mut g = road_grid_undirected(15, 15, 8);
    assign_uniform(&mut g, 2, 20, 2);
    let ig = IndexedGraph::build_default(g);
    let q = Query::new(v(3), v(200), vec![CategoryId(0), CategoryId(1)], 3);

    let unconstrained = ig.run(&q, Method::Sk);
    // Allow only even-id vertices in category 0.
    let nn = FilteredNn::new(LabelNn::new(&ig.labels, &ig.inverted), |c, vx| {
        c != CategoryId(0) || vx.0 % 2 == 0
    });
    let constrained = star_kosr(&q, nn, LabelTarget::new(&ig.labels, q.target));
    assert!(constrained.witnesses[0].cost >= unconstrained.witnesses[0].cost);
    for w in &constrained.witnesses {
        assert_eq!(w.vertices[1].0 % 2, 0, "filtered stop must be even");
    }
    // The filtered answer equals running the query on a world where the
    // filtered-out vertices simply lost the category.
    let mut g2 = ig.graph.clone();
    let odd: Vec<VertexId> = g2
        .categories()
        .vertices_of(CategoryId(0))
        .iter()
        .copied()
        .filter(|vx| vx.0 % 2 == 1)
        .collect();
    for vx in odd {
        g2.categories_mut().remove(vx, CategoryId(0));
    }
    let ig2 = IndexedGraph::build_default(g2);
    let reduced = ig2.run(&q, Method::Pk);
    assert_eq!(constrained.costs(), reduced.costs());
}

/// A vertex carrying two consecutive categories can serve both witness
/// slots (Definition 4 allows r_i ≤ r_{i+1}); the zero-cost leg must
/// materialize cleanly.
#[test]
fn repeated_witness_vertex_materializes() {
    let mut b = kosr::graph::GraphBuilder::new(3);
    b.add_edge(v(0), v(1), 2);
    b.add_edge(v(1), v(2), 3);
    let ca = b.categories_mut().add_category("A");
    let cb = b.categories_mut().add_category("B");
    b.categories_mut().insert(v(1), ca);
    b.categories_mut().insert(v(1), cb);
    let g = b.build();
    let ig = IndexedGraph::build_default(g);
    let q = Query::new(v(0), v(2), vec![ca, cb], 1);
    for m in Method::ALL {
        let out = ig.run(&q, m);
        assert_eq!(out.costs(), vec![5], "method {}", m.name());
        assert_eq!(out.witnesses[0].vertices, vec![v(0), v(1), v(1), v(2)]);
    }
    let out = ig.run(&q, Method::Sk);
    let route = out.witnesses[0].materialize(&ig.graph, &ig.labels).unwrap();
    assert_eq!(route.vertices, vec![v(0), v(1), v(2)]);
    assert_eq!(route.cost, 5);
}

/// Top-k arbitrary order: #1 matches the subset-DP OSR optimum, costs are
/// nondecreasing, and no fixed-order answer beats any returned route.
#[test]
fn arbitrary_order_topk_is_consistent() {
    use kosr::core::{arbitrary_order_osr, arbitrary_order_topk};
    let mut g = road_grid_undirected(10, 10, 17);
    assign_uniform(&mut g, 3, 8, 5);
    let ig = IndexedGraph::build_default(g);
    let cats = [CategoryId(0), CategoryId(1), CategoryId(2)];
    let (s, t) = (v(0), v(99));

    let topk = arbitrary_order_topk(s, t, &cats, 5, || {
        (
            LabelNn::new(&ig.labels, &ig.inverted),
            LabelTarget::new(&ig.labels, t),
        )
    });
    assert_eq!(topk.len(), 5);
    for pair in topk.windows(2) {
        assert!(pair[0].cost <= pair[1].cost);
    }
    let (osr, _) = arbitrary_order_osr(&ig.graph, s, t, &cats);
    assert_eq!(
        topk[0].cost,
        osr.unwrap().cost,
        "top-1 equals the DP optimum"
    );
    // Any fixed-order top-1 is ≥ the free-order top-1.
    let fixed = ig.run(&Query::new(s, t, cats.to_vec(), 1), Method::Sk);
    assert!(fixed.witnesses[0].cost >= topk[0].cost);
}
