//! Index-layer invariants across crates: the label oracle against Dijkstra
//! ground truth on real scenario graphs, NN streams against sorted
//! distances, dynamic category updates against rebuilds, and disk/codec
//! round-trips through the public API.

use kosr::graph::{CategoryId, VertexId};
use kosr::hoplabel::{codec, HubOrder};
use kosr::index::{CategoryIndexSet, InvertedLabelIndex, LabelNn, NearestNeighbors};
use kosr::pathfinding::{Dijkstra, Dir};
use kosr::workloads::{Scenario, ScenarioName};
use proptest::prelude::*;

fn v(i: u32) -> VertexId {
    VertexId(i)
}

/// PLL distances equal Dijkstra on every scenario family (sampled pairs).
#[test]
fn labels_match_dijkstra_on_all_scenarios() {
    for name in ScenarioName::ALL {
        let g = Scenario::new(name).with_scale(0.05).build();
        let ch = kosr::ch::build(&g);
        let labels = kosr::hoplabel::build(&g, &HubOrder::from_ch(&ch));
        let mut d = Dijkstra::new(g.num_vertices());
        let n = g.num_vertices() as u32;
        for si in 0..6 {
            let s = v(si * (n / 7).max(1));
            d.one_to_all(&g, Dir::Forward, s);
            for ti in 0..40 {
                let t = v((ti * 37 + 11) % n);
                assert_eq!(
                    labels.distance(s, t),
                    d.distance(t),
                    "{}: {s:?}->{t:?}",
                    name.as_str()
                );
            }
        }
    }
}

/// The FindNN stream equals the brute-force sorted distance list on a real
/// scenario graph.
#[test]
fn nn_stream_matches_sorted_distances() {
    let g = Scenario::new(ScenarioName::Col).with_scale(0.05).build();
    let ch = kosr::ch::build(&g);
    let labels = kosr::hoplabel::build(&g, &HubOrder::from_ch(&ch));
    let inverted = CategoryIndexSet::build(&labels, g.categories());
    let mut nn = LabelNn::new(&labels, &inverted);
    let cat = CategoryId(3);
    for s in [0u32, 17, 101, 333] {
        let s = v(s % g.num_vertices() as u32);
        let mut want: Vec<u64> = g
            .categories()
            .vertices_of(cat)
            .iter()
            .map(|&m| labels.distance(s, m))
            .filter(|&d| kosr::graph::is_finite(d))
            .collect();
        want.sort_unstable();
        for (i, &wd) in want.iter().enumerate() {
            let (_, d) = nn.find_nn(s, cat, i + 1).expect("stream long enough");
            assert_eq!(d, wd, "s={s:?} x={}", i + 1);
        }
        assert_eq!(nn.find_nn(s, cat, want.len() + 1), None);
    }
}

/// Dynamic category updates (insert + remove) leave the inverted index
/// identical to a from-scratch rebuild, and KOSR answers reflect the edit.
#[test]
fn dynamic_updates_equal_rebuild() {
    use kosr::core::{IndexedGraph, Method, Query};
    let g = Scenario::new(ScenarioName::Cal).with_scale(0.05).build();
    let mut ig = IndexedGraph::build_default(g);
    let cat = CategoryId(5);
    let newbie = v(7);
    assert!(!ig.graph.categories().has_category(newbie, cat));

    // Apply the paper's O(|Lin(v)| log |Ci|) incremental insert.
    let mut cats = ig.graph.categories().clone();
    ig.inverted
        .insert_membership(&ig.labels, &mut cats, newbie, cat);
    ig.graph.set_categories(cats);

    let rebuilt = InvertedLabelIndex::build(&ig.labels, ig.graph.categories(), cat);
    let updated = ig.inverted.category(cat);
    assert_eq!(updated.num_entries(), rebuilt.num_entries());
    assert_eq!(updated.num_members(), rebuilt.num_members());
    for (hub, list) in rebuilt.iter_lists() {
        assert_eq!(updated.list(hub).unwrap(), list);
    }

    // A query whose answer must now include the new member: make newbie the
    // only member cheaply reachable by routing from itself.
    let q = Query::new(
        newbie,
        v(100 % ig.graph.num_vertices() as u32),
        vec![cat],
        1,
    );
    let out = ig.run(&q, Method::Sk);
    assert!(!out.witnesses.is_empty());
    // v7 serves the category at distance 0, so the best witness uses it.
    assert_eq!(out.witnesses[0].vertices[1], newbie);

    // Remove and verify the index returns to its previous state.
    let mut cats = ig.graph.categories().clone();
    ig.inverted
        .remove_membership(&ig.labels, &mut cats, newbie, cat);
    ig.graph.set_categories(cats);
    let rebuilt = InvertedLabelIndex::build(&ig.labels, ig.graph.categories(), cat);
    assert_eq!(
        ig.inverted.category(cat).num_entries(),
        rebuilt.num_entries()
    );
}

/// Codec and disk layouts round-trip through the public API on a scenario
/// index.
#[test]
fn persistence_roundtrips() {
    use kosr::index::disk::DiskIndex;
    let g = Scenario::new(ScenarioName::Gplus).with_scale(0.05).build();
    let ch = kosr::ch::build(&g);
    let labels = kosr::hoplabel::build(&g, &HubOrder::from_ch(&ch));

    // In-memory codec.
    let decoded = codec::decode(&codec::encode(&labels)).unwrap();
    assert_eq!(labels, decoded);

    // Disk index.
    let dir = std::env::temp_dir().join(format!("kosr_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("gplus.idx");
    kosr::index::disk::create(&path, &labels, g.categories()).unwrap();
    let disk = DiskIndex::open(&path).unwrap();
    assert_eq!(disk.num_vertices(), g.num_vertices());
    for i in (0..g.num_vertices() as u32).step_by(53) {
        assert_eq!(&disk.load_lout(v(i)).unwrap(), labels.lout(v(i)));
        assert_eq!(&disk.load_lin(v(i)).unwrap(), labels.lin(v(i)));
    }
    let seg = disk.load_category(CategoryId(2)).unwrap();
    let fresh = InvertedLabelIndex::build(&labels, g.categories(), CategoryId(2));
    assert_eq!(seg.inverted.num_entries(), fresh.num_entries());
    std::fs::remove_file(&path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Codec rejects arbitrary corruption instead of mis-decoding: flipping
    /// any single byte either fails to decode or still decodes to *some*
    /// index (never panics).
    #[test]
    fn codec_never_panics_on_corruption(flip in 0usize..400, val in 0u8..=255) {
        let g = Scenario::new(ScenarioName::Cal).with_scale(0.03).build();
        let labels = kosr::hoplabel::build(&g, &HubOrder::Degree);
        let mut buf = codec::encode(&labels);
        let idx = flip % buf.len();
        buf[idx] = val;
        let _ = codec::decode(&buf); // must not panic
    }

    /// Inverted-index incremental updates match rebuilds for arbitrary
    /// insert/remove sequences.
    #[test]
    fn update_sequences_match_rebuild(ops in proptest::collection::vec((0u32..60, any::<bool>()), 1..30)) {
        let g = Scenario::new(ScenarioName::Cal).with_scale(0.03).build();
        let ch = kosr::ch::build(&g);
        let labels = kosr::hoplabel::build(&g, &HubOrder::from_ch(&ch));
        let cat = CategoryId(1);
        let mut cats = g.categories().clone();
        let mut il = InvertedLabelIndex::build(&labels, &cats, cat);
        let n = g.num_vertices() as u32;
        for (vi, insert) in ops {
            let vx = v(vi % n);
            if insert {
                if cats.insert(vx, cat) {
                    il.insert_member(&labels, vx);
                }
            } else if cats.remove(vx, cat) {
                il.remove_member(&labels, vx);
            }
        }
        let rebuilt = InvertedLabelIndex::build(&labels, &cats, cat);
        prop_assert_eq!(il.num_entries(), rebuilt.num_entries());
        prop_assert_eq!(il.num_members(), rebuilt.num_members());
        for (hub, list) in rebuilt.iter_lists() {
            prop_assert_eq!(il.list(hub).unwrap(), list);
        }
    }
}
