//! Distance-oracle equivalence properties: every shortest-path engine in
//! the workspace (bidirectional Dijkstra, A*, contraction hierarchies,
//! PHAST, 2-hop labels, resumable k-NN streams) must agree with plain
//! Dijkstra on arbitrary graphs — including disconnected ones, zero-weight
//! edges and parallel-edge collapses.

use kosr::ch::{ChQuery, Phast};
use kosr::graph::{Graph, GraphBuilder, VertexId};
use kosr::hoplabel::HubOrder;
use kosr::pathfinding::{AStar, BiDijkstra, Dijkstra, Dir, ResumableDijkstra};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        2usize..24,
        proptest::collection::vec((0u32..24, 0u32..24, 0u64..40), 1..100),
    )
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new(n);
            for (u, v, w) in edges {
                let (u, v) = (u as usize % n, v as usize % n);
                if u != v {
                    b.add_edge(VertexId(u as u32), VertexId(v as u32), w);
                }
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_point_to_point_engines_agree(g in arb_graph(), s in 0u32..24, t in 0u32..24) {
        let n = g.num_vertices() as u32;
        let (s, t) = (VertexId(s % n), VertexId(t % n));
        let mut dij = Dijkstra::new(g.num_vertices());
        let want = dij.one_to_one(&g, Dir::Forward, s, t);

        let mut bi = BiDijkstra::new(g.num_vertices());
        prop_assert_eq!(bi.distance(&g, s, t), want, "bidirectional");

        let mut astar = AStar::new(g.num_vertices());
        prop_assert_eq!(astar.distance(&g, s, t, |_| 0), want, "a* (zero h)");

        let ch = kosr::ch::build(&g);
        let mut chq = ChQuery::new(g.num_vertices());
        prop_assert_eq!(chq.distance(&ch, s, t), want, "contraction hierarchy");

        let labels = kosr::hoplabel::build(&g, &HubOrder::from_ch(&ch));
        prop_assert_eq!(labels.distance(s, t), want, "2-hop labels");
    }

    #[test]
    fn phast_agrees_with_one_to_all(g in arb_graph(), s in 0u32..24) {
        let n = g.num_vertices() as u32;
        let s = VertexId(s % n);
        let mut dij = Dijkstra::new(g.num_vertices());
        dij.one_to_all(&g, Dir::Forward, s);
        let ch = kosr::ch::build(&g);
        let mut ph = Phast::new(g.num_vertices());
        ph.one_to_all(&ch, s);
        for t in g.vertices() {
            prop_assert_eq!(ph.distance(t), dij.distance(t), "t={:?}", t);
        }
    }

    #[test]
    fn resumable_stream_is_sorted_and_complete(g in arb_graph(), s in 0u32..24) {
        let n = g.num_vertices() as u32;
        let s = VertexId(s % n);
        let mut dij = Dijkstra::new(g.num_vertices());
        dij.one_to_all(&g, Dir::Forward, s);
        let reachable = g.vertices().filter(|&v| kosr::graph::is_finite(dij.distance(v))).count();

        let mut stream = ResumableDijkstra::new(s, Dir::Forward);
        let mut seen = std::collections::HashSet::new();
        let mut last = 0;
        while let Some((v, d)) = stream.next_settled(&g) {
            prop_assert!(d >= last, "distances nondecreasing");
            prop_assert_eq!(d, dij.distance(v), "distance matches dijkstra");
            prop_assert!(seen.insert(v), "no vertex settled twice");
            last = d;
        }
        prop_assert_eq!(seen.len(), reachable, "stream covers the reachable set");
    }

    /// CH path unpacking yields edge-exact paths of the optimal cost.
    #[test]
    fn ch_paths_are_valid(g in arb_graph(), s in 0u32..24, t in 0u32..24) {
        let n = g.num_vertices() as u32;
        let (s, t) = (VertexId(s % n), VertexId(t % n));
        let ch = kosr::ch::build(&g);
        let mut chq = ChQuery::new(g.num_vertices());
        let (cost, path) = chq.shortest_path(&ch, s, t);
        if kosr::graph::is_finite(cost) {
            prop_assert_eq!(*path.first().unwrap(), s);
            prop_assert_eq!(*path.last().unwrap(), t);
            let mut sum = 0u64;
            for w in path.windows(2) {
                let ew = g.edge_weight(w[0], w[1]);
                prop_assert!(ew.is_some(), "edge {:?}->{:?} missing", w[0], w[1]);
                sum += ew.unwrap();
            }
            prop_assert_eq!(sum, cost);
        } else {
            prop_assert!(path.is_empty());
        }
    }

    /// Label-based path reconstruction is edge-exact too.
    #[test]
    fn label_paths_are_valid(g in arb_graph(), s in 0u32..24, t in 0u32..24) {
        let n = g.num_vertices() as u32;
        let (s, t) = (VertexId(s % n), VertexId(t % n));
        let labels = kosr::hoplabel::build(&g, &HubOrder::Degree);
        match kosr::hoplabel::shortest_path(&g, &labels, s, t) {
            Some(p) => {
                prop_assert_eq!(p.cost, labels.distance(s, t));
                prop_assert!(p.validate(&g).is_ok(), "{:?}", p.validate(&g));
            }
            None => prop_assert!(!kosr::graph::is_finite(labels.distance(s, t))),
        }
    }
}
