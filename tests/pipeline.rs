//! Full-pipeline integration: scenario generation → CH → PLL → inverted
//! indexes → queries → all methods, asserting the cross-method agreements
//! and instrumentation invariants the evaluation section relies on.

use kosr::core::{gsp, run_sk_db, GspEngine, IndexedGraph, Method, Query};
use kosr::hoplabel::HubOrder;
use kosr::index::disk::DiskIndex;
use kosr::workloads::{gen_queries, Scenario, ScenarioName};

fn pipeline(name: ScenarioName) -> (IndexedGraph, kosr::ch::ContractionHierarchy) {
    let g = Scenario::new(name).with_scale(0.06).build();
    let ch = kosr::ch::build(&g);
    let ig = IndexedGraph::build(g, &HubOrder::from_ch(&ch));
    (ig, ch)
}

/// Every method agrees on every generated query, on a road scenario and on
/// the social scenario.
#[test]
fn all_methods_agree_on_generated_workloads() {
    for name in [ScenarioName::Col, ScenarioName::Gplus] {
        let (ig, _) = pipeline(name);
        for spec in gen_queries(&ig.graph, 8, 3, 5, 42) {
            let q = Query::new(spec.source, spec.target, spec.categories.clone(), spec.k);
            let reference = ig.run(&q, Method::Sk);
            for m in Method::ALL {
                let out = ig.run(&q, m);
                assert_eq!(
                    out.costs(),
                    reference.costs(),
                    "{} on {} disagrees for {:?}",
                    m.name(),
                    name.as_str(),
                    q
                );
            }
        }
    }
}

/// GSP (both engines) equals the k = 1 answer of the KOSR methods.
#[test]
fn gsp_agrees_with_k1() {
    let (ig, ch) = pipeline(ScenarioName::Fla);
    for spec in gen_queries(&ig.graph, 10, 4, 1, 7) {
        let q = Query::new(spec.source, spec.target, spec.categories.clone(), 1);
        let sk = ig.run(&q, Method::Sk);
        let (w_dij, _) = gsp(
            &ig.graph,
            q.source,
            q.target,
            &q.categories,
            &GspEngine::Dijkstra,
        );
        let (w_ch, stats) = gsp(
            &ig.graph,
            q.source,
            q.target,
            &q.categories,
            &GspEngine::Ch(&ch),
        );
        assert_eq!(stats.searches, q.categories.len() + 1);
        match (sk.witnesses.first(), w_dij, w_ch) {
            (Some(a), Some(b), Some(c)) => {
                assert_eq!(a.cost, b.cost);
                assert_eq!(a.cost, c.cost);
            }
            (None, None, None) => {}
            other => panic!("feasibility disagreement: {other:?}"),
        }
    }
}

/// SK-DB answers equal in-memory SK and pay exactly |C| + 4 seeks/query.
#[test]
fn sk_db_equals_sk_with_bounded_io() {
    let (ig, _) = pipeline(ScenarioName::Col);
    let dir = std::env::temp_dir().join(format!("kosr_pipe_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("col.idx");
    ig.write_disk_index(&path).unwrap();
    let disk = DiskIndex::open(&path).unwrap();

    for spec in gen_queries(&ig.graph, 6, 4, 8, 21) {
        let q = Query::new(spec.source, spec.target, spec.categories.clone(), spec.k);
        disk.reset_io_counters();
        let from_disk = run_sk_db(&disk, &q).unwrap();
        let in_memory = ig.run(&q, Method::Sk);
        assert_eq!(from_disk.costs(), in_memory.costs());
        assert_eq!(disk.seek_count(), (q.categories.len() + 4) as u64);
    }
    std::fs::remove_file(&path).ok();
}

/// Instrumentation invariants: per-level counts sum to the total, the
/// heap peak is positive, and the search-space ordering of Figure 3(b)
/// holds on a real workload (KPNE ≥ PK ≥ SK on examined routes, averaged).
#[test]
fn instrumentation_invariants_and_figure3b_ordering() {
    let (ig, _) = pipeline(ScenarioName::Fla);
    let queries = gen_queries(&ig.graph, 10, 4, 10, 99);
    let (mut tot_kp, mut tot_pk, mut tot_sk) = (0u64, 0u64, 0u64);
    for spec in &queries {
        let q = Query::new(spec.source, spec.target, spec.categories.clone(), spec.k);
        for m in [Method::Kpne, Method::Pk, Method::Sk] {
            let out = ig.run(&q, m);
            let level_sum: u64 = out.stats.examined_per_level.iter().sum();
            assert_eq!(level_sum, out.stats.examined_routes, "{}", m.name());
            assert!(out.stats.heap_peak > 0);
            assert!(!out.stats.truncated);
            match m {
                Method::Kpne => tot_kp += out.stats.examined_routes,
                Method::Pk => tot_pk += out.stats.examined_routes,
                Method::Sk => tot_sk += out.stats.examined_routes,
                _ => unreachable!(),
            }
        }
    }
    assert!(tot_kp >= tot_pk, "KPNE {tot_kp} vs PK {tot_pk}");
    assert!(tot_pk >= tot_sk, "PK {tot_pk} vs SK {tot_sk}");
}

/// Figure 5's shape: SK's per-level examined counts rise then fall back to
/// (roughly) k at the destination level.
#[test]
fn figure5_shape_on_fla() {
    let (ig, _) = pipeline(ScenarioName::Fla);
    let queries = gen_queries(&ig.graph, 10, 6, 30, 5);
    let mut per_level = vec![0u64; 8];
    for spec in &queries {
        let q = Query::new(spec.source, spec.target, spec.categories.clone(), spec.k);
        let out = ig.run(&q, Method::Sk);
        for (i, &c) in out.stats.examined_per_level.iter().enumerate() {
            per_level[i] += c;
        }
    }
    // Level 0 is exactly one pop per query.
    assert_eq!(per_level[0], queries.len() as u64);
    // The destination level pops ≈ k routes per query (exactly k when no
    // ties truncate early).
    let dest = *per_level.last().unwrap();
    assert!(dest <= 30 * queries.len() as u64);
    assert!(dest >= 25 * queries.len() as u64 / 10, "got {dest}");
    // Some middle level exceeds the destination level (the bulge of
    // Figure 5).
    let mid_max = per_level[1..7].iter().max().copied().unwrap();
    assert!(
        mid_max >= dest,
        "expected a mid-sequence bulge: {per_level:?}"
    );
}

/// The paper's key scaling claim (Lemma 3): PK's examined routes stay
/// polynomial — bounded by Σ|Ci||Ci+1| + (k-1)Σ|Ci| — on generated
/// workloads.
#[test]
fn lemma3_bound_holds() {
    let (ig, _) = pipeline(ScenarioName::Col);
    for spec in gen_queries(&ig.graph, 6, 3, 10, 31) {
        let q = Query::new(spec.source, spec.target, spec.categories.clone(), spec.k);
        let out = ig.run(&q, Method::Pk);
        // Bound: |C0|=1 (source), sizes of the category layers, |C_{j+1}|=1.
        let mut sizes = vec![1usize];
        sizes.extend(
            q.categories
                .iter()
                .map(|&c| ig.graph.categories().category_size(c)),
        );
        sizes.push(1);
        let pairwise: u64 = sizes.windows(2).map(|w| (w[0] * w[1]) as u64).sum();
        let reconsider: u64 = (q.k as u64 - 1) * sizes[1..].iter().map(|&s| s as u64).sum::<u64>();
        let bound = pairwise + reconsider;
        assert!(
            out.stats.examined_routes <= bound,
            "examined {} exceeds Lemma 3 bound {}",
            out.stats.examined_routes,
            bound
        );
    }
}
