//! Cross-crate correctness: every query algorithm must agree with the
//! exhaustive brute-force oracle — and with each other — on randomized
//! graphs, categories and queries. This is the repository's strongest
//! correctness net: it exercises PLL labels, inverted indexes, FindNN,
//! FindNEN, the dominance bookkeeping and the A* ordering all at once.

use kosr::core::{brute_force_topk, kpne, pruning_kosr, star_kosr, IndexedGraph, Method, Query};
use kosr::graph::{CategoryId, Graph, GraphBuilder, VertexId};
use kosr::index::{DijkstraNn, DijkstraTarget};
use proptest::prelude::*;

/// Random digraph + categories, sized for exhaustive verification.
fn arb_world() -> impl Strategy<Value = (Graph, usize)> {
    (
        8usize..28,                                                         // vertices
        proptest::collection::vec((0u32..28, 0u32..28, 1u64..30), 20..110), // edges
        2usize..4,                                                          // categories
        proptest::collection::vec(proptest::bits::u8::ANY, 28),             // membership bits
    )
        .prop_map(|(n, edges, ncats, bits)| {
            let mut b = GraphBuilder::new(n);
            for c in 0..ncats {
                b.categories_mut().add_category(format!("C{c}"));
            }
            for (u, v, w) in edges {
                let (u, v) = (u as usize % n, v as usize % n);
                if u != v {
                    b.add_edge(VertexId(u as u32), VertexId(v as u32), w);
                }
            }
            for (i, &bit) in bits.iter().take(n).enumerate() {
                for c in 0..ncats {
                    if (bit >> c) & 1 == 1 {
                        b.categories_mut()
                            .insert(VertexId(i as u32), CategoryId(c as u32));
                    }
                }
            }
            (b.build(), ncats)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All three algorithms (label providers) return exactly the brute-force
    /// top-k cost vector, and every returned witness leg is consistent.
    #[test]
    fn methods_match_brute_force((g, ncats) in arb_world(),
                                 s in 0u32..28, t in 0u32..28,
                                 perm in 0usize..6, k in 1usize..6) {
        let n = g.num_vertices() as u32;
        let (s, t) = (VertexId(s % n), VertexId(t % n));
        // A category sequence of length 2 drawn from the available ones.
        let c1 = CategoryId((perm % ncats) as u32);
        let c2 = CategoryId(((perm / 2) % ncats) as u32);
        let query = Query::new(s, t, vec![c1, c2], k);

        let expected = brute_force_topk(&g, &query, 200_000).expect("small world");
        let want: Vec<u64> = expected.iter().map(|w| w.cost).collect();

        let ig = IndexedGraph::build_default(g.clone());
        for m in Method::ALL {
            let out = ig.run(&query, m);
            prop_assert_eq!(&out.costs(), &want, "method {}", m.name());
            // Witness structure: right length, right endpoints, right cost.
            for w in &out.witnesses {
                prop_assert_eq!(w.vertices.len(), query.witness_len());
                prop_assert_eq!(w.vertices[0], s);
                prop_assert_eq!(*w.vertices.last().unwrap(), t);
                let leg_sum: u64 = w.vertices.windows(2)
                    .map(|p| ig.labels.distance(p[0], p[1]))
                    .sum();
                prop_assert_eq!(leg_sum, w.cost, "legs must sum to the witness cost");
                // Each interior stop carries its category.
                for (i, &c) in query.categories.iter().enumerate() {
                    prop_assert!(g.categories().has_category(w.vertices[i + 1], c));
                }
            }
        }
    }

    /// The Dijkstra-backed providers agree with the label-backed ones.
    #[test]
    fn dij_and_label_providers_agree((g, ncats) in arb_world(),
                                     s in 0u32..28, t in 0u32..28, k in 1usize..5) {
        let n = g.num_vertices() as u32;
        let (s, t) = (VertexId(s % n), VertexId(t % n));
        let query = Query::new(s, t, vec![CategoryId(0), CategoryId((ncats - 1) as u32)], k);
        let ig = IndexedGraph::build_default(g.clone());

        let a = ig.run(&query, Method::Sk);
        let b = star_kosr(&query, DijkstraNn::new(&g), DijkstraTarget::new(&g, t));
        prop_assert_eq!(a.costs(), b.costs());

        let a = ig.run(&query, Method::Pk);
        let b = pruning_kosr(&query, DijkstraNn::new(&g), DijkstraTarget::new(&g, t));
        prop_assert_eq!(a.costs(), b.costs());

        let a = ig.run(&query, Method::Kpne);
        let b = kpne(&query, DijkstraNn::new(&g), DijkstraTarget::new(&g, t));
        prop_assert_eq!(a.costs(), b.costs());
    }

    /// Witness costs are nondecreasing and the k-th bound of Definition 5
    /// holds: no feasible witness outside the answer is cheaper than the
    /// worst returned one.
    #[test]
    fn definition5_optimality((g, _) in arb_world(), s in 0u32..28, t in 0u32..28) {
        let n = g.num_vertices() as u32;
        let (s, t) = (VertexId(s % n), VertexId(t % n));
        let query = Query::new(s, t, vec![CategoryId(0)], 3);
        let ig = IndexedGraph::build_default(g.clone());
        let out = ig.run(&query, Method::Sk);
        for pair in out.witnesses.windows(2) {
            prop_assert!(pair[0].cost <= pair[1].cost);
        }
        if let Some(worst) = out.witnesses.last() {
            let all = brute_force_topk(&g, &Query { k: usize::MAX >> 1, ..query.clone() }, 200_000)
                .expect("small world");
            let returned: std::collections::HashSet<Vec<VertexId>> =
                out.witnesses.iter().map(|w| w.vertices.clone()).collect();
            for w in &all {
                if !returned.contains(&w.vertices) {
                    prop_assert!(w.cost >= worst.cost,
                        "missed witness {:?} cheaper than worst returned", w);
                }
            }
        }
    }
}

/// Deterministic regression: a hand-sized world where k exceeds the
/// feasible set and one category is empty.
#[test]
fn degenerate_queries() {
    let mut b = GraphBuilder::new(4);
    b.add_edge(VertexId(0), VertexId(1), 1);
    b.add_edge(VertexId(1), VertexId(2), 1);
    b.add_edge(VertexId(2), VertexId(3), 1);
    let c0 = b.categories_mut().add_category("A");
    let empty = b.categories_mut().add_category("EMPTY");
    b.categories_mut().insert(VertexId(1), c0);
    let g = b.build();
    let ig = IndexedGraph::build_default(g);

    // k larger than feasible: exactly one witness exists.
    let q = Query::new(VertexId(0), VertexId(3), vec![c0], 10);
    for m in Method::ALL {
        let out = ig.run(&q, m);
        assert_eq!(out.costs(), vec![3], "method {}", m.name());
    }
    // Empty category: no feasible route at all.
    let q = Query::new(VertexId(0), VertexId(3), vec![c0, empty], 2);
    for m in Method::ALL {
        let out = ig.run(&q, m);
        assert!(out.witnesses.is_empty(), "method {}", m.name());
    }
    // Unreachable destination.
    let q = Query::new(VertexId(3), VertexId(0), vec![c0], 1);
    for m in Method::ALL {
        assert!(ig.run(&q, m).witnesses.is_empty(), "method {}", m.name());
    }
    // Source == destination with a loop through the category.
    let q = Query::new(VertexId(1), VertexId(1), vec![c0], 1);
    let out = ig.run(&q, Method::Sk);
    assert_eq!(out.costs(), vec![0], "1 serves its own category at cost 0");
}
