//! Wire-format fuzz suite: the decoders are **total** — arbitrary byte
//! input produces a typed [`ProtocolError`], never a panic — frames
//! carrying an unknown protocol version are reported as the typed
//! [`ProtocolError::VersionMismatch`], and frame ids survive mutation
//! rounds intact or not at all (a mutated frame never decodes to a
//! *different* id with a valid body silently — ids live in the fixed
//! header, so header mutations surface as version/kind/id changes the
//! demux layer already tolerates).

use kosr_core::Query;
use kosr_graph::{CategoryId, VertexId};
use kosr_service::Update;
use kosr_transport::protocol::{
    decode_request, decode_response, encode_request, encode_response, read_frame, ProtocolError,
    Request, Response, SnapshotBlob, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Raw fuzz: any byte vector decodes to Ok or a typed error; no panic.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(proptest::bits::u8::ANY, 0..160)) {
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
        let mut cursor = &bytes[..];
        let _ = read_frame(&mut cursor);
    }

    /// Structured fuzz: valid frames with every prefix truncated and every
    /// single byte flipped still decode without panicking.
    #[test]
    fn mutated_valid_frames_never_panic(
        (source, target, k) in (0u32..50, 0u32..50, 1u64..6),
        cats in proptest::collection::vec(0u32..12, 0..5),
        frame_id in 0u64..u64::MAX,
        cut in proptest::bits::u8::ANY,
        flip_pos in 0usize..64,
        flip_bits in proptest::bits::u8::ANY,
    ) {
        let q = Query::new(
            VertexId(source),
            VertexId(target),
            cats.iter().copied().map(CategoryId).collect(),
            k as usize,
        );
        for frame in [
            encode_request(frame_id, &Request::Query(q)),
            encode_request(frame_id, &Request::Update(Update::InsertEdge {
                from: VertexId(source),
                to: VertexId(target),
                weight: k,
            })),
            encode_request(frame_id, &Request::Ping),
            encode_request(frame_id, &Request::Snapshot),
            encode_request(frame_id, &Request::Compact { through: k }),
            encode_request(frame_id, &Request::InstallSnapshot(SnapshotBlob {
                epoch: k,
                bytes: vec![source as u8, target as u8],
            })),
        ] {
            let cut = (cut as usize) % (frame.len() + 1);
            let _ = decode_request(&frame[..cut]);
            let mut mutated = frame.clone();
            let pos = flip_pos % mutated.len();
            mutated[pos] ^= flip_bits;
            let _ = decode_request(&mutated);
            let _ = decode_response(&mutated);
        }
    }

    /// Any version byte other than ours is a typed version-mismatch error,
    /// regardless of what follows.
    #[test]
    fn version_mismatch_is_always_typed(
        version in proptest::bits::u8::ANY,
        body in proptest::collection::vec(proptest::bits::u8::ANY, 0..40),
    ) {
        if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
            return; // covered by the round-trip suites
        }
        let mut frame = vec![version];
        frame.extend_from_slice(&body);
        assert_eq!(
            decode_request(&frame),
            Err(ProtocolError::VersionMismatch { found: version })
        );
        assert!(matches!(
            decode_response(&frame),
            Err(ProtocolError::VersionMismatch { found }) if found == version
        ));
    }

    /// Frame ids round-trip verbatim for every request kind at any id.
    #[test]
    fn frame_ids_roundtrip(frame_id in 0u64..u64::MAX, through in 0u64..u64::MAX) {
        for req in [
            Request::Ping,
            Request::MemberCounts,
            Request::Snapshot,
            Request::Compact { through },
        ] {
            let frame = encode_request(frame_id, &req);
            let (id, back) = decode_request(&frame).expect("valid frame");
            assert_eq!(id, frame_id);
            assert_eq!(back, req);
        }
    }
}

/// Deterministic spot checks that complement the fuzz sweeps.
#[test]
fn empty_and_header_only_frames_are_typed_errors() {
    assert_eq!(decode_request(&[]), Err(ProtocolError::Truncated));
    assert_eq!(
        decode_request(&[PROTOCOL_VERSION]),
        Err(ProtocolError::Truncated)
    );
    // A kind byte without the full frame id behind it is truncation…
    assert_eq!(
        decode_request(&[PROTOCOL_VERSION, 250]),
        Err(ProtocolError::Truncated)
    );
    // …and with the id present, an unknown kind is typed.
    let mut unknown = encode_request(9, &Request::Ping);
    unknown[1] = 250;
    assert_eq!(
        decode_request(&unknown),
        Err(ProtocolError::UnknownKind(250))
    );
    // A response kind sent where a request is expected (and vice versa) is
    // an unknown kind, not a crash.
    let resp = encode_response(1, &Response::Fault(ProtocolError::Truncated));
    assert!(matches!(
        decode_request(&resp),
        Err(ProtocolError::UnknownKind(_))
    ));
    let req = encode_request(1, &Request::Ping);
    assert!(matches!(
        decode_response(&req),
        Err(ProtocolError::UnknownKind(_))
    ));
}

/// Adversarial length prefixes inside bodies must not drive allocations
/// past the buffer: a declared huge count with a tiny body is `Truncated`.
#[test]
fn huge_declared_counts_are_refused() {
    // Query frame claiming u32::MAX categories.
    let mut frame = vec![PROTOCOL_VERSION, 0];
    frame.extend_from_slice(&7u64.to_le_bytes()); // frame id
    frame.extend_from_slice(&0u32.to_le_bytes()); // source
    frame.extend_from_slice(&0u32.to_le_bytes()); // target
    frame.extend_from_slice(&1u64.to_le_bytes()); // k
    frame.extend_from_slice(&u32::MAX.to_le_bytes()); // category count
    assert_eq!(decode_request(&frame), Err(ProtocolError::Truncated));

    // Install frame declaring a huge snapshot blob with a tiny body.
    let mut frame = vec![PROTOCOL_VERSION, 6];
    frame.extend_from_slice(&7u64.to_le_bytes()); // frame id
    frame.extend_from_slice(&0u64.to_le_bytes()); // epoch
    frame.extend_from_slice(&u64::MAX.to_le_bytes()); // blob length
    frame.push(0);
    assert_eq!(decode_request(&frame), Err(ProtocolError::Truncated));
}
