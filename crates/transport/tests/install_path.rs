//! Snapshot-install failure paths, end to end through the transport: a
//! blob with a wrong magic, an unsupported codec version or a truncated
//! body is refused with the *typed* rejection (never a fault, never a
//! panic) — and the replica keeps serving its previous index untouched.
//! Previously only the raw decoders were fuzzed; these tests drive the
//! same corruptions through the `InstallSnapshot` wire surface both
//! in-process and over a real socket.

use std::sync::Arc;

use kosr_core::figure1::figure1;
use kosr_core::{IndexedGraph, Query};
use kosr_service::{KosrService, ServiceConfig};
use kosr_transport::protocol::SnapshotBlob;
use kosr_transport::{InProcTransport, ShardTransport, TcpServer, TcpTransport, TransportError};

fn service() -> (Arc<KosrService>, kosr_core::figure1::Figure1) {
    let fx = figure1();
    let ig = Arc::new(IndexedGraph::build_default(fx.graph.clone()));
    (
        Arc::new(KosrService::new(
            ig,
            ServiceConfig {
                workers: 1,
                ..Default::default()
            },
        )),
        fx,
    )
}

/// Every corruption → typed rejection, old index untouched; then a valid
/// install still works on the same transport.
fn exercise(transport: &dyn ShardTransport, fx: &kosr_core::figure1::Figure1) {
    let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
    assert_eq!(
        transport.submit(q.clone()).wait().unwrap().outcome.costs(),
        vec![20, 21, 22]
    );
    let valid = transport.snapshot().unwrap();
    // Both ends speak v5, so the pull negotiates the v2 arena format.
    assert_eq!(valid.bytes[8], 2, "same-version pull must yield a v2 blob");
    // The snapshot layout: 8 magic bytes, then the codec version byte.
    let mut bad_magic = valid.bytes.clone();
    bad_magic[0] ^= 0xFF;
    let mut bad_version = valid.bytes.clone();
    bad_version[8] = 99;
    let truncated = valid.bytes[..valid.bytes.len() / 2].to_vec();

    let epoch_before = transport.ping().unwrap().epoch;
    for (label, bytes) in [
        ("bad magic", bad_magic),
        ("bad version", bad_version),
        ("truncated", truncated),
        ("empty", Vec::new()),
    ] {
        let err = transport
            .install_snapshot(&SnapshotBlob { epoch: 0, bytes })
            .unwrap_err();
        assert!(
            matches!(err, TransportError::Snapshot(_)),
            "{label}: {err:?}"
        );
        assert!(!err.is_fault(), "{label}: refusals must not drive failover");
        // The replica still serves its old index, same epoch.
        assert_eq!(transport.ping().unwrap().epoch, epoch_before, "{label}");
        assert_eq!(
            transport.submit(q.clone()).wait().unwrap().outcome.costs(),
            vec![20, 21, 22],
            "{label}: old index must keep serving"
        );
    }

    // A valid blob installs: epoch bumps, answers stay canonical.
    let hb = transport.install_snapshot(&valid).unwrap();
    assert_eq!(hb.epoch, epoch_before + 1);
    assert_eq!(
        transport.submit(q).wait().unwrap().outcome.costs(),
        vec![20, 21, 22]
    );
}

#[test]
fn corrupt_blobs_are_refused_typed_in_process() {
    let (svc, fx) = service();
    let transport = InProcTransport::new(svc);
    exercise(&transport, &fx);
}

#[test]
fn corrupt_blobs_are_refused_typed_over_tcp() {
    let (svc, fx) = service();
    let server = TcpServer::spawn(svc).unwrap();
    let client = TcpTransport::connect(server.addr());
    exercise(&client, &fx);
}

/// Version negotiation picks the snapshot format: a v5 peer hands out the
/// v2 arena blob, while a peer that only speaks protocol ≤ 4 (an old
/// binary) is pulled with the legacy request and answers in v1.
#[test]
fn pull_negotiates_v2_down_to_v1_for_old_peers() {
    let (svc, _fx) = service();
    let new_peer = InProcTransport::new(svc.clone());
    assert_eq!(new_peer.snapshot().unwrap().bytes[8], 2);
    let old_peer = InProcTransport::with_max_version(svc, 4);
    assert_eq!(
        old_peer.snapshot().unwrap().bytes[8],
        1,
        "a protocol-4 peer must be pulled via the legacy v1 request"
    );
}

/// Pushing a v2 blob at an old peer transcodes it to v1 on the way out:
/// the install succeeds, the epoch bumps, and the answers the peer serves
/// afterwards are identical to what the v2 blob encodes.
#[test]
fn push_to_old_peer_transcodes_v2_to_v1() {
    let (svc, fx) = service();
    let v2 = InProcTransport::new(svc.clone()).snapshot().unwrap();
    assert_eq!(v2.bytes[8], 2);

    let old_peer = InProcTransport::with_max_version(svc, 4);
    let epoch_before = old_peer.ping().unwrap().epoch;
    let hb = old_peer.install_snapshot(&v2).unwrap();
    assert_eq!(hb.epoch, epoch_before + 1);
    let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
    assert_eq!(
        old_peer.submit(q).wait().unwrap().outcome.costs(),
        vec![20, 21, 22],
        "transcoded install must preserve the answers"
    );
}
