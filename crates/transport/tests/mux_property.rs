//! The multiplexing acceptance suite: interleaved, reordered, duplicated
//! and delayed response frames never misdeliver — each completion slot
//! observes exactly the response carrying its own frame id — and one
//! wedged request does not stall unrelated in-flight queries sharing the
//! connection (it faults alone, at its own deadline).
//!
//! The property half drives the demux core directly with seed-shuffled
//! delivery schedules; the integration half runs a real `TcpTransport`
//! against a scripted raw socket that answers out of order, withholds one
//! response forever, and injects a stale frame for an abandoned id.

use std::net::TcpListener;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use kosr_core::{KosrOutcome, Query, QueryStats};
use kosr_graph::{CategoryId, VertexId};
use kosr_transport::mux::DemuxTable;
use kosr_transport::protocol::{
    decode_request, encode_response, read_frame, write_frame, Heartbeat, RemoteResponse, Request,
    Response,
};
use kosr_transport::{ShardTransport, TcpTransport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn pong(epoch: u64) -> Response {
    Response::Pong(Heartbeat { epoch })
}

fn epoch_of(resp: Response) -> u64 {
    match resp {
        Response::Pong(hb) => hb.epoch,
        other => panic!("not a pong: {other:?}"),
    }
}

/// Property: for random delivery permutations with duplicates, strays and
/// cross-thread timing, every slot gets exactly its own response.
#[test]
fn shuffled_duplicated_delivery_never_misroutes() {
    for seed in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x3A7);
        let n = rng.gen_range(1..40usize);
        let table = Arc::new(DemuxTable::new());
        // Non-contiguous ids: the table must key strictly on the id, not
        // on arrival order or density.
        let ids: Vec<u64> = (0..n).map(|i| (i as u64) * 3 + 1).collect();
        let completions: Vec<_> = ids.iter().map(|&id| table.register(id)).collect();

        // A shuffled schedule: every id once, plus duplicates and strays.
        let mut schedule: Vec<u64> = ids.clone();
        for i in (1..schedule.len()).rev() {
            let j = rng.gen_range(0..=i);
            schedule.swap(i, j);
        }
        let mut events: Vec<u64> = Vec::new();
        for &id in &schedule {
            if rng.gen_range(0..100u32) < 25 {
                events.push(ids[rng.gen_range(0..n)]); // duplicate (maybe early)
            }
            if rng.gen_range(0..100u32) < 25 {
                events.push(u64::MAX - rng.gen_range(0..50u64)); // stray
            }
            events.push(id);
        }

        // Deliver from another thread while waiters block, so completion
        // and waiting genuinely interleave.
        let delivery_table = Arc::clone(&table);
        let deliverer = thread::spawn(move || {
            for id in events {
                // The payload encodes the id it was meant for: any
                // misrouting is caught by the waiter's assertion below.
                let _ = delivery_table.complete(id, Ok(pong(id)));
            }
        });
        for (completion, &id) in completions.into_iter().zip(&ids) {
            let resp = completion
                .wait(Duration::from_secs(10))
                .unwrap_or_else(|e| panic!("seed {seed}: id {id} failed: {e}"));
            assert_eq!(epoch_of(resp), id, "seed {seed}: misdelivered response");
        }
        deliverer.join().unwrap();
        assert_eq!(table.pending(), 0, "seed {seed}");
    }
}

/// Integration: a scripted raw socket answers the *second* query
/// immediately and withholds the first forever. The second completes at
/// once; the first faults alone at its deadline; the connection keeps
/// serving afterwards, and a stale late response for the abandoned id is
/// discarded instead of answering the wrong request.
#[test]
fn wedged_request_faults_alone_and_late_frames_are_discarded() {
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();

    let server = thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let empty = KosrOutcome {
            witnesses: Vec::new(),
            stats: QueryStats::default(),
        };
        let answer = Response::Query(Ok(RemoteResponse {
            outcome: empty,
            cached: false,
            spans: Vec::new(),
        }));
        // Read the two query frames; answer only the second.
        let first = read_frame(&mut stream).unwrap().unwrap();
        let (wedged_id, req) = decode_request(&first).unwrap();
        assert!(matches!(req, Request::Query(_)));
        let second = read_frame(&mut stream).unwrap().unwrap();
        let (ok_id, _) = decode_request(&second).unwrap();
        write_frame(&mut stream, &encode_response(ok_id, &answer)).unwrap();
        // Wait for the ping that follows the client-side timeout; answer
        // the *wedged* id first (stale — must be discarded), then the ping.
        let third = read_frame(&mut stream).unwrap().unwrap();
        let (ping_id, req) = decode_request(&third).unwrap();
        assert!(matches!(req, Request::Ping));
        write_frame(&mut stream, &encode_response(wedged_id, &answer)).unwrap();
        write_frame(&mut stream, &encode_response(ping_id, &pong(777))).unwrap();
        // Keep the connection open until the client is done.
        let _ = read_frame(&mut stream);
    });

    let deadline = Duration::from_millis(300);
    let client = TcpTransport::with_deadline(addr, deadline);
    let q = Query::new(VertexId(0), VertexId(1), vec![CategoryId(0)], 1);
    let wedged = client.submit(q.clone());
    let fine = client.submit(q);

    // The unwedged request completes promptly — no convoy behind the
    // wedged one…
    let started = Instant::now();
    let resp = fine.wait().expect("second in-flight query answered");
    assert!(resp.outcome.witnesses.is_empty());
    assert!(
        started.elapsed() < deadline,
        "second request waited for the wedged one"
    );
    // …while the wedged request faults alone, at its own deadline.
    let err = wedged.wait().unwrap_err();
    assert!(err.is_fault(), "{err:?}");
    assert!(started.elapsed() >= deadline - Duration::from_millis(50));

    // The connection survived: the next request works, and the stale
    // response for the abandoned id was discarded, not delivered to it.
    let hb = client.ping().expect("connection still serving");
    assert_eq!(hb.epoch, 777);
    drop(client);
    server.join().unwrap();
}
