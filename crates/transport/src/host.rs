//! Server-side dispatch: one function mapping a decoded [`Request`] onto a
//! [`KosrService`], shared by the TCP server and the in-process loopback so
//! both speak byte-for-byte the same protocol.

use std::sync::Arc;

use kosr_core::IndexedGraph;
use kosr_service::KosrService;

use crate::protocol::{
    Heartbeat, MemberCounts, RemoteResponse, Request, Response, SnapshotBlob, PROTOCOL_VERSION,
};

/// Answers one request against `service`. Query requests block until the
/// service responds (the caller decides how to overlap requests — the TCP
/// server runs one handler thread per in-flight request, the in-process
/// transport keeps the service's own ticket asynchrony).
pub fn handle_request(service: &Arc<KosrService>, req: Request) -> Response {
    match req {
        Request::Query(q) => Response::Query(service.submit(q).and_then(|t| t.wait()).map(
            |resp| RemoteResponse {
                outcome: resp.outcome,
                cached: resp.cached,
                spans: Vec::new(),
            },
        )),
        Request::QueryTraced(q, ctx) => Response::Query(
            service
                .submit_traced(q, Some(ctx))
                .and_then(|t| t.wait())
                .map(|resp| RemoteResponse {
                    outcome: resp.outcome,
                    cached: resp.cached,
                    spans: resp.spans,
                }),
        ),
        Request::Hello { max_version: _ } => Response::Hello {
            max_version: PROTOCOL_VERSION,
        },
        Request::Update(u) => Response::Update(service.apply_update(&u)),
        Request::Ping => Response::Pong(Heartbeat {
            epoch: service.index_epoch(),
        }),
        Request::MemberCounts => Response::MemberCounts(member_counts(service)),
        Request::Snapshot => {
            // The legacy pull promises a v1 blob; a world too large for
            // v1's u32 counts is a typed refusal, never a truncated blob.
            let (epoch, ig) = service.epoch_and_index();
            match ig.encode_snapshot_v1() {
                Ok(bytes) => Response::Snapshot(SnapshotBlob { epoch, bytes }),
                Err(_) => Response::Fault(crate::protocol::ProtocolError::Corrupt(
                    "snapshot exceeds the v1 format; pull with SnapshotV2",
                )),
            }
        }
        Request::SnapshotV2 => {
            let (epoch, ig) = service.epoch_and_index();
            Response::Snapshot(SnapshotBlob {
                epoch,
                bytes: ig.encode_snapshot(),
            })
        }
        Request::PingEvents { since_seq } => {
            let journal = service.events();
            Response::PongEvents {
                heartbeat: Heartbeat {
                    epoch: service.index_epoch(),
                },
                next_seq: journal.next_seq(),
                events: journal.events_since(since_seq, None, None),
            }
        }
        Request::Compact { through } => match service.advance_log_head(through) {
            Ok(head) => Response::Compacted { head },
            Err(head) => Response::CursorTooOld {
                cursor: through,
                head,
            },
        },
        Request::InstallSnapshot(blob) => match IndexedGraph::decode_snapshot(&blob.bytes) {
            Ok(ig) => {
                service.install_index(Arc::new(ig));
                Response::Install(Ok(Heartbeat {
                    epoch: service.index_epoch(),
                }))
            }
            // A refused blob leaves the replica serving its old index; the
            // typed rejection travels back so the supervisor can tell a
            // codec mismatch from channel trouble.
            Err(e) => Response::Install(Err(e)),
        },
    }
}

/// The member-count report fan-out planning consumes: epoch-stamped member
/// counts for every category the replica's inverted indexes know.
pub fn member_counts(service: &Arc<KosrService>) -> MemberCounts {
    let (epoch, ig) = service.epoch_and_index();
    let counts = (0..ig.inverted.num_categories())
        .map(|c| ig.inverted.members_of(kosr_graph::CategoryId(c as u32)) as u32)
        .collect();
    MemberCounts {
        epoch,
        num_vertices: ig.graph.num_vertices() as u32,
        counts,
    }
}
