//! The length-prefixed binary wire protocol replicas speak.
//!
//! Every message is one **frame**: a little-endian `u32` byte length
//! followed by the payload. A payload starts with a version byte, a kind
//! byte and a **frame id**, then the kind's body:
//!
//! ```text
//! frame   := u32 len | payload            (len ≤ MAX_FRAME_LEN)
//! payload := u8 version | u8 kind | u64 frame_id | body
//! ```
//!
//! The frame id is what makes one connection **multiplexable**: a client
//! stamps every request with a monotonically increasing id, the replica
//! echoes the id on the response, and a demultiplexing reader routes each
//! response to its request's completion slot — so responses may come back
//! in any order, interleaved, duplicated or delayed without ever being
//! delivered to the wrong caller (the mux property suite hammers this).
//!
//! Request kinds carry queries, §IV-C update-publish frames, heartbeats,
//! member-count probes, snapshot pulls/pushes and update-log compaction
//! notices; response kinds mirror them, including the remote's *typed*
//! service/update rejections so a client can distinguish a deterministic
//! "no" (don't fail over) from channel trouble (do fail over).
//!
//! Decoding is **total**: arbitrary bytes produce a typed
//! [`ProtocolError`], never a panic, and a frame with an unknown version
//! byte is reported as [`ProtocolError::VersionMismatch`] — the wire fuzz
//! suite hammers both properties.
//!
//! ## Version negotiation (v2 ↔ v3 ↔ v4)
//!
//! Version 3 adds an optional **trace header** on Query frames
//! ([`Request::QueryTraced`]) and a span list on their responses. Every
//! frame's version byte names the *lowest* revision able to decode it:
//! the pre-existing kinds still travel stamped `2`, so a v2 peer keeps
//! decoding everything it ever could, and only the new traced kinds are
//! stamped `3`. Clients discover a peer's revision with
//! [`Request::Hello`] (itself a v2-decodable frame): a v3 peer answers
//! [`Response::Hello`], a v2 peer answers a typed
//! `Fault(UnknownKind)` — either way the connection survives and the
//! client knows whether traced frames may be sent. A client that skips
//! negotiation simply sends untraced Query frames and loses nothing but
//! replica-side spans.
//!
//! Version 4 adds the **event-forwarding heartbeat**
//! ([`Request::PingEvents`] / [`Response::PongEvents`]): a liveness probe
//! that also drains the replica's local lifecycle journal (epoch swaps,
//! calibration adjustments) from a client-held cursor, so fleet event
//! collection piggybacks on the heartbeats the supervisor already sends —
//! no extra round trips. Only the new kind pair is stamped `4`; the
//! traced kinds stay stamped `3` and everything older stays `2`, so
//! mixed v2/v3/v4 fleets keep interoperating and a client talking to an
//! older peer falls back to the plain [`Request::Ping`].
//!
//! Version 5 adds the **flat-arena snapshot pull** ([`Request::SnapshotV2`]):
//! a snapshot request whose response blob is the v2 zero-copy format of
//! `kosr_index::arena` (the response reuses the existing Snapshot kind —
//! the blob's own version byte names its format). Clients only send the
//! new kind to peers that negotiated ≥ 5; to older peers they fall back
//! to [`Request::Snapshot`] (a v1 blob), and when *pushing* a v2 blob at
//! an older peer they transcode it down first. Either way every fleet
//! member keeps installing byte-identical indexes.

use std::io::{Read, Write};
use std::time::Duration;

use bytes::{Buf, BufMut};
use kosr_core::{GraphUpdateError, KosrOutcome, Query, QueryError, QueryStats, Witness};
use kosr_graph::{CategoryId, VertexId};
use kosr_index::snapshot::SnapshotError;
use kosr_service::{
    Event, EventKind, ServiceError, Severity, Source, Span, SpanId, TagValue, TraceContext,
    TraceId, Update, UpdateError, UpdateReceipt,
};

/// The wire version this build writes and understands. Version 2 added
/// the frame id (multiplexing) and the `Compact`/`InstallSnapshot`
/// surface; version 3 added the negotiated trace header on Query frames;
/// version 4 added the event-forwarding heartbeat; version 5 adds the
/// flat-arena (v2-format) snapshot pull.
pub const PROTOCOL_VERSION: u8 = 5;

/// The oldest wire version this build still accepts. Frames carry the
/// lowest version able to decode them, so a v2-era peer interoperates
/// with a v4 fleet for everything but the traced and event-forwarding
/// kinds.
pub const MIN_PROTOCOL_VERSION: u8 = 2;

/// The revision that introduced the traced Query kinds — their frames
/// stay stamped `3` even as [`PROTOCOL_VERSION`] advances, so genuine v3
/// peers keep decoding them.
const TRACED_VERSION: u8 = 3;

/// The revision that introduced the event-forwarding heartbeat kinds.
const EVENTS_VERSION: u8 = 4;

/// The revision that introduced the flat-arena snapshot pull kind.
pub(crate) const SNAPSHOT_V2_VERSION: u8 = 5;

/// Upper bound on one frame's payload; larger length prefixes are refused
/// before any allocation (snapshots of big shards dominate frame size).
pub const MAX_FRAME_LEN: usize = 256 << 20;

/// Why a frame could not be decoded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// The version byte names a protocol this build does not speak.
    VersionMismatch {
        /// The version byte found on the wire.
        found: u8,
    },
    /// The kind byte is not a known message kind.
    UnknownKind(u8),
    /// The payload ended before its declared contents.
    Truncated,
    /// Bytes remained after the declared contents.
    TrailingBytes(u32),
    /// A length prefix exceeded [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// The declared payload length.
        len: u64,
    },
    /// The contents are internally inconsistent.
    Corrupt(&'static str),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::VersionMismatch { found } => {
                write!(
                    f,
                    "protocol version mismatch: found {found}, speak \
                     {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION}"
                )
            }
            ProtocolError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            ProtocolError::Truncated => write!(f, "frame truncated"),
            ProtocolError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
            ProtocolError::FrameTooLarge { len } => write!(f, "frame of {len} bytes too large"),
            ProtocolError::Corrupt(what) => write!(f, "corrupt frame: {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// A replica's liveness report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Heartbeat {
    /// The replica's index epoch (applied-update count).
    pub epoch: u64,
}

/// A replica's category population report — what fan-out planning reads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemberCounts {
    /// The index epoch the counts belong to.
    pub epoch: u64,
    /// Vertex count of the replica's graph (for client-side validation).
    pub num_vertices: u32,
    /// Member count per category id (base categories then shadows).
    pub counts: Vec<u32>,
}

/// A serialized index snapshot pulled from a replica.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotBlob {
    /// The index epoch the snapshot was taken at.
    pub epoch: u64,
    /// The `kosr-index` snapshot codec blob.
    pub bytes: Vec<u8>,
}

/// A remote replica's answer to one query.
#[derive(Clone, Debug)]
pub struct RemoteResponse {
    /// The canonical top-k outcome.
    pub outcome: KosrOutcome,
    /// `true` when the remote served it from its result cache.
    pub cached: bool,
    /// Replica-side spans for sampled traced queries; empty otherwise
    /// (and always empty from v2 peers). An empty list keeps the
    /// response on the v2 wire encoding, bit for bit.
    pub spans: Vec<Span>,
}

/// Client → replica messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Answer this query.
    Query(Query),
    /// Apply this §IV-C update (the update-publish frame).
    Update(Update),
    /// Report liveness + epoch.
    Ping,
    /// Report per-category member counts.
    MemberCounts,
    /// Ship an index snapshot.
    Snapshot,
    /// The upstream update log was compacted: entries below `through` are
    /// gone. The replica records the watermark (its own floor for replay
    /// expectations) and acknowledges with [`Response::Compacted`]; a
    /// `through` *behind* the replica's recorded head is answered with
    /// [`Response::CursorTooOld`] — the guard against a stale controller
    /// replaying an old compaction.
    Compact {
        /// The new log head: the oldest sequence still replayable.
        through: u64,
    },
    /// Push an index snapshot *into* the replica (supervisor-driven
    /// refresh of a replica too far behind the update log to replay).
    InstallSnapshot(SnapshotBlob),
    /// Answer this query and return replica-side spans for the carried
    /// trace context — the protocol-v3 traced Query frame. Send only to
    /// peers that answered [`Request::Hello`] with version ≥ 3.
    QueryTraced(Query, TraceContext),
    /// Version negotiation probe: carries the sender's highest spoken
    /// version. Stamped v2 on the wire so *any* peer can decode the
    /// header — a v2 peer answers `Fault(UnknownKind)`, typed, and the
    /// connection survives.
    Hello {
        /// The sender's [`PROTOCOL_VERSION`].
        max_version: u8,
    },
    /// The protocol-v4 event-forwarding heartbeat: report liveness +
    /// epoch *and* ship the replica's local lifecycle events with
    /// sequence ≥ `since_seq` — fleet event collection piggybacked on
    /// the heartbeat the supervisor already sends. Send only to peers
    /// that answered [`Request::Hello`] with version ≥ 4.
    PingEvents {
        /// The client's journal cursor: events below it were already
        /// forwarded.
        since_seq: u64,
    },
    /// Ship an index snapshot in the **v2 flat-arena format**
    /// (`kosr_index::arena`) — the protocol-v5 pull whose blob installs
    /// as a bounds-checked reinterpretation instead of a rebuild. The
    /// answer is the same [`Response::Snapshot`] kind (the blob's own
    /// version byte names its format). Send only to peers that answered
    /// [`Request::Hello`] with version ≥ 5.
    SnapshotV2,
}

/// Replica → client messages.
#[derive(Clone, Debug)]
pub enum Response {
    /// The query's outcome, or the service's typed rejection.
    Query(Result<RemoteResponse, ServiceError>),
    /// The update's receipt, or the service's typed rejection.
    Update(Result<UpdateReceipt, UpdateError>),
    /// Liveness.
    Pong(Heartbeat),
    /// Member counts.
    MemberCounts(MemberCounts),
    /// Index snapshot.
    Snapshot(SnapshotBlob),
    /// The compaction notice was recorded; `head` is the replica's
    /// (monotone) recorded log head.
    Compacted {
        /// The replica's recorded log head after the notice.
        head: u64,
    },
    /// A [`Request::Compact`] named a head *behind* what the replica
    /// already recorded — the sender's view of the log is stale.
    CursorTooOld {
        /// The stale head the sender proposed.
        cursor: u64,
        /// The head the replica has recorded.
        head: u64,
    },
    /// The pushed snapshot was installed (epoch after install), or the
    /// typed reason the blob was refused.
    Install(Result<Heartbeat, SnapshotError>),
    /// The replica could not decode the request frame.
    Fault(ProtocolError),
    /// Version negotiation answer: the replica's highest spoken version.
    Hello {
        /// The replica's [`PROTOCOL_VERSION`].
        max_version: u8,
    },
    /// Answer to [`Request::PingEvents`]: liveness plus the replica's
    /// journal drain from the requested cursor.
    PongEvents {
        /// The liveness report a plain `Pong` would carry.
        heartbeat: Heartbeat,
        /// The replica journal's next sequence — the cursor to send on
        /// the following probe (events may have been ring-evicted, so it
        /// can exceed the last forwarded seq + 1).
        next_seq: u64,
        /// Retained events with sequence ≥ the requested cursor.
        events: Vec<Event>,
    },
}

// ---- framing ---------------------------------------------------------

/// Writes one length-prefixed frame. Payloads over [`MAX_FRAME_LEN`] are
/// refused *before* any bytes hit the wire: writing one would desync the
/// stream (the `u32` prefix truncates past 4 GiB) and the peer would
/// reject it as a connection-level fault anyway — better a local typed
/// error than a remote one that downs the replica.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            ProtocolError::FrameTooLarge {
                len: payload.len() as u64,
            },
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. `Ok(None)` on clean EOF at a frame
/// boundary; oversized length prefixes are refused before allocation.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            ProtocolError::FrameTooLarge { len: len as u64 },
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---- bounds-checked reading ------------------------------------------

/// Little-endian reader over the shim's checked `try_get_*` reads: every
/// accessor reports [`ProtocolError::Truncated`] instead of panicking on
/// short input.
struct Rd<'a>(&'a [u8]);

impl<'a> Rd<'a> {
    fn u8(&mut self) -> Result<u8, ProtocolError> {
        self.0.try_get_u8().ok_or(ProtocolError::Truncated)
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        self.0.try_get_u32_le().ok_or(ProtocolError::Truncated)
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        self.0.try_get_u64_le().ok_or(ProtocolError::Truncated)
    }

    fn bytes(&mut self, len: usize) -> Result<&'a [u8], ProtocolError> {
        if self.0.remaining() < len {
            return Err(ProtocolError::Truncated);
        }
        let (head, tail) = self.0.split_at(len);
        self.0 = tail;
        Ok(head)
    }

    /// Declared element count, refused when the remaining bytes cannot
    /// possibly hold it (caps adversarial pre-allocations).
    fn count(&mut self, elem_bytes: usize) -> Result<usize, ProtocolError> {
        let n = self.u32()? as usize;
        if self.0.remaining() < n.saturating_mul(elem_bytes) {
            return Err(ProtocolError::Truncated);
        }
        Ok(n)
    }

    fn finish(self) -> Result<(), ProtocolError> {
        if self.0.has_remaining() {
            return Err(ProtocolError::TrailingBytes(self.0.remaining() as u32));
        }
        Ok(())
    }
}

// ---- body codecs -----------------------------------------------------

fn put_query(q: &Query, out: &mut Vec<u8>) {
    out.put_u32_le(q.source.0);
    out.put_u32_le(q.target.0);
    out.put_u64_le(q.k as u64);
    out.put_u32_le(q.categories.len() as u32);
    for c in &q.categories {
        out.put_u32_le(c.0);
    }
}

fn get_query(r: &mut Rd) -> Result<Query, ProtocolError> {
    let source = VertexId(r.u32()?);
    let target = VertexId(r.u32()?);
    let k = usize::try_from(r.u64()?).map_err(|_| ProtocolError::Corrupt("k overflows"))?;
    let n = r.count(4)?;
    let mut categories = Vec::with_capacity(n);
    for _ in 0..n {
        categories.push(CategoryId(r.u32()?));
    }
    Ok(Query {
        source,
        target,
        categories,
        k,
    })
}

fn put_update(u: &Update, out: &mut Vec<u8>) {
    match *u {
        Update::InsertMembership { vertex, category } => {
            out.put_u8(0);
            out.put_u32_le(vertex.0);
            out.put_u32_le(category.0);
        }
        Update::RemoveMembership { vertex, category } => {
            out.put_u8(1);
            out.put_u32_le(vertex.0);
            out.put_u32_le(category.0);
        }
        Update::InsertEdge { from, to, weight } => {
            out.put_u8(2);
            out.put_u32_le(from.0);
            out.put_u32_le(to.0);
            out.put_u64_le(weight);
        }
    }
}

fn get_update(r: &mut Rd) -> Result<Update, ProtocolError> {
    Ok(match r.u8()? {
        0 => Update::InsertMembership {
            vertex: VertexId(r.u32()?),
            category: CategoryId(r.u32()?),
        },
        1 => Update::RemoveMembership {
            vertex: VertexId(r.u32()?),
            category: CategoryId(r.u32()?),
        },
        2 => Update::InsertEdge {
            from: VertexId(r.u32()?),
            to: VertexId(r.u32()?),
            weight: r.u64()?,
        },
        _ => return Err(ProtocolError::Corrupt("unknown update tag")),
    })
}

fn put_duration(d: Duration, out: &mut Vec<u8>) {
    out.put_u64_le(d.as_nanos().min(u64::MAX as u128) as u64);
}

fn get_duration(r: &mut Rd) -> Result<Duration, ProtocolError> {
    Ok(Duration::from_nanos(r.u64()?))
}

fn put_outcome(o: &KosrOutcome, out: &mut Vec<u8>) {
    out.put_u32_le(o.witnesses.len() as u32);
    for w in &o.witnesses {
        out.put_u64_le(w.cost);
        out.put_u32_le(w.vertices.len() as u32);
        for v in &w.vertices {
            out.put_u32_le(v.0);
        }
    }
    let s = &o.stats;
    out.put_u64_le(s.examined_routes);
    out.put_u64_le(s.nn_queries);
    out.put_u64_le(s.dominated_routes);
    out.put_u64_le(s.reconsidered_routes);
    out.put_u64_le(s.heap_peak as u64);
    out.put_u8(s.truncated as u8);
    out.put_u32_le(s.examined_per_level.len() as u32);
    for &x in &s.examined_per_level {
        out.put_u64_le(x);
    }
    put_duration(s.time.total, out);
    put_duration(s.time.nn, out);
    put_duration(s.time.queue, out);
    put_duration(s.time.estimation, out);
}

fn get_outcome(r: &mut Rd) -> Result<KosrOutcome, ProtocolError> {
    let nwit = r.count(12)?;
    let mut witnesses = Vec::with_capacity(nwit);
    for _ in 0..nwit {
        let cost = r.u64()?;
        let len = r.count(4)?;
        let mut vertices = Vec::with_capacity(len);
        for _ in 0..len {
            vertices.push(VertexId(r.u32()?));
        }
        witnesses.push(Witness { vertices, cost });
    }
    let mut stats = QueryStats {
        examined_routes: r.u64()?,
        nn_queries: r.u64()?,
        dominated_routes: r.u64()?,
        reconsidered_routes: r.u64()?,
        heap_peak: r.u64()? as usize,
        truncated: r.u8()? != 0,
        ..Default::default()
    };
    let levels = r.count(8)?;
    stats.examined_per_level = (0..levels).map(|_| r.u64()).collect::<Result<_, _>>()?;
    stats.time.total = get_duration(r)?;
    stats.time.nn = get_duration(r)?;
    stats.time.queue = get_duration(r)?;
    stats.time.estimation = get_duration(r)?;
    stats.time.finalize();
    Ok(KosrOutcome { witnesses, stats })
}

fn put_query_error(e: &QueryError, out: &mut Vec<u8>) {
    match *e {
        QueryError::SourceOutOfRange(v) => {
            out.put_u8(0);
            out.put_u32_le(v.0);
        }
        QueryError::TargetOutOfRange(v) => {
            out.put_u8(1);
            out.put_u32_le(v.0);
        }
        QueryError::ZeroK => out.put_u8(2),
        QueryError::UnknownCategory(c) => {
            out.put_u8(3);
            out.put_u32_le(c.0);
        }
        QueryError::EmptyCategory(c) => {
            out.put_u8(4);
            out.put_u32_le(c.0);
        }
    }
}

fn get_query_error(r: &mut Rd) -> Result<QueryError, ProtocolError> {
    Ok(match r.u8()? {
        0 => QueryError::SourceOutOfRange(VertexId(r.u32()?)),
        1 => QueryError::TargetOutOfRange(VertexId(r.u32()?)),
        2 => QueryError::ZeroK,
        3 => QueryError::UnknownCategory(CategoryId(r.u32()?)),
        4 => QueryError::EmptyCategory(CategoryId(r.u32()?)),
        _ => return Err(ProtocolError::Corrupt("unknown query-error tag")),
    })
}

fn put_service_error(e: &ServiceError, out: &mut Vec<u8>) {
    match e {
        ServiceError::QueueFull { capacity } => {
            out.put_u8(0);
            out.put_u64_le(*capacity as u64);
        }
        ServiceError::DeadlineExceeded { deadline } => {
            out.put_u8(1);
            put_duration(*deadline, out);
        }
        ServiceError::BudgetExhausted { examined_budget } => {
            out.put_u8(2);
            out.put_u64_le(*examined_budget);
        }
        ServiceError::InvalidQuery(q) => {
            out.put_u8(3);
            put_query_error(q, out);
        }
        ServiceError::ShuttingDown => out.put_u8(4),
        ServiceError::WorkerLost => out.put_u8(5),
    }
}

fn get_service_error(r: &mut Rd) -> Result<ServiceError, ProtocolError> {
    Ok(match r.u8()? {
        0 => ServiceError::QueueFull {
            capacity: r.u64()? as usize,
        },
        1 => ServiceError::DeadlineExceeded {
            deadline: get_duration(r)?,
        },
        2 => ServiceError::BudgetExhausted {
            examined_budget: r.u64()?,
        },
        3 => ServiceError::InvalidQuery(get_query_error(r)?),
        4 => ServiceError::ShuttingDown,
        5 => ServiceError::WorkerLost,
        _ => return Err(ProtocolError::Corrupt("unknown service-error tag")),
    })
}

fn put_update_error(e: &UpdateError, out: &mut Vec<u8>) {
    match *e {
        UpdateError::VertexOutOfRange(v) => {
            out.put_u8(0);
            out.put_u32_le(v.0);
        }
        UpdateError::UnknownCategory(c) => {
            out.put_u8(1);
            out.put_u32_le(c.0);
        }
        UpdateError::Graph(g) => {
            out.put_u8(2);
            match g {
                GraphUpdateError::VertexOutOfRange(v) => {
                    out.put_u8(0);
                    out.put_u32_le(v.0);
                }
                GraphUpdateError::SelfLoop => out.put_u8(1),
                GraphUpdateError::WeightNotDecreased { current } => {
                    out.put_u8(2);
                    out.put_u64_le(current);
                }
            }
        }
    }
}

fn get_update_error(r: &mut Rd) -> Result<UpdateError, ProtocolError> {
    Ok(match r.u8()? {
        0 => UpdateError::VertexOutOfRange(VertexId(r.u32()?)),
        1 => UpdateError::UnknownCategory(CategoryId(r.u32()?)),
        2 => UpdateError::Graph(match r.u8()? {
            0 => GraphUpdateError::VertexOutOfRange(VertexId(r.u32()?)),
            1 => GraphUpdateError::SelfLoop,
            2 => GraphUpdateError::WeightNotDecreased { current: r.u64()? },
            _ => return Err(ProtocolError::Corrupt("unknown graph-error tag")),
        }),
        _ => return Err(ProtocolError::Corrupt("unknown update-error tag")),
    })
}

fn put_protocol_error(e: &ProtocolError, out: &mut Vec<u8>) {
    match *e {
        ProtocolError::VersionMismatch { found } => {
            out.put_u8(0);
            out.put_u8(found);
        }
        ProtocolError::UnknownKind(k) => {
            out.put_u8(1);
            out.put_u8(k);
        }
        ProtocolError::Truncated => out.put_u8(2),
        ProtocolError::TrailingBytes(n) => {
            out.put_u8(3);
            out.put_u32_le(n);
        }
        ProtocolError::FrameTooLarge { len } => {
            out.put_u8(4);
            out.put_u64_le(len);
        }
        ProtocolError::Corrupt(_) => out.put_u8(5),
    }
}

fn get_protocol_error(r: &mut Rd) -> Result<ProtocolError, ProtocolError> {
    Ok(match r.u8()? {
        0 => ProtocolError::VersionMismatch { found: r.u8()? },
        1 => ProtocolError::UnknownKind(r.u8()?),
        2 => ProtocolError::Truncated,
        3 => ProtocolError::TrailingBytes(r.u32()?),
        4 => ProtocolError::FrameTooLarge { len: r.u64()? },
        5 => ProtocolError::Corrupt("reported by peer"),
        _ => return Err(ProtocolError::Corrupt("unknown protocol-error tag")),
    })
}

/// Snapshot rejections travel the wire shape-preserving; the `Corrupt` and
/// `Labels` payloads are peer-local (`&'static str` / codec internals), so
/// like [`ProtocolError::Corrupt`] they decode to a "reported by peer"
/// stand-in of the same variant family.
fn put_snapshot_error(e: &SnapshotError, out: &mut Vec<u8>) {
    match *e {
        SnapshotError::BadMagic => out.put_u8(0),
        SnapshotError::UnsupportedVersion { found } => {
            out.put_u8(1);
            out.put_u8(found);
        }
        SnapshotError::Truncated => out.put_u8(2),
        SnapshotError::Corrupt(_) => out.put_u8(3),
        SnapshotError::Labels(_) => out.put_u8(4),
        SnapshotError::TooLarge => out.put_u8(5),
    }
}

fn get_snapshot_error(r: &mut Rd) -> Result<SnapshotError, ProtocolError> {
    Ok(match r.u8()? {
        0 => SnapshotError::BadMagic,
        1 => SnapshotError::UnsupportedVersion { found: r.u8()? },
        2 => SnapshotError::Truncated,
        3 => SnapshotError::Corrupt("reported by peer"),
        4 => SnapshotError::Corrupt("label blob rejected by peer"),
        5 => SnapshotError::TooLarge,
        _ => return Err(ProtocolError::Corrupt("unknown snapshot-error tag")),
    })
}

/// Prepares a snapshot blob for a peer that negotiated `peer_version`:
/// a v2 (flat-arena) blob headed at a pre-v5 peer is transcoded down to
/// the v1 format client-side, so the old binary installs it natively —
/// the push mirror of the pull-side [`Request::Snapshot`] fallback.
/// Anything else passes through untouched. A v2 world too large for v1
/// surfaces the encoder's typed [`SnapshotError::TooLarge`].
pub(crate) fn adapt_blob_for_peer(
    blob: &SnapshotBlob,
    peer_version: u8,
) -> Result<SnapshotBlob, SnapshotError> {
    if peer_version < SNAPSHOT_V2_VERSION
        && kosr_index::arena::blob_version(&blob.bytes)
            == Some(kosr_index::arena::FLAT_SNAPSHOT_VERSION)
    {
        return Ok(SnapshotBlob {
            epoch: blob.epoch,
            bytes: kosr_index::arena::downgrade(&blob.bytes)?,
        });
    }
    Ok(blob.clone())
}

// ---- trace codecs (v3) -----------------------------------------------

fn put_trace_ctx(ctx: &TraceContext, out: &mut Vec<u8>) {
    out.put_u64_le(ctx.trace_id.hi());
    out.put_u64_le(ctx.trace_id.lo());
    out.put_u64_le(ctx.parent_span.0);
    out.put_u8(ctx.sampled as u8);
}

fn get_trace_ctx(r: &mut Rd) -> Result<TraceContext, ProtocolError> {
    let hi = r.u64()?;
    let lo = r.u64()?;
    let parent_span = SpanId(r.u64()?);
    let sampled = r.u8()? != 0;
    Ok(TraceContext {
        trace_id: TraceId::from_parts(hi, lo),
        parent_span,
        sampled,
    })
}

fn put_str(s: &str, out: &mut Vec<u8>) {
    out.put_u32_le(s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn get_str(r: &mut Rd) -> Result<String, ProtocolError> {
    let len = r.u32()? as usize;
    let bytes = r.bytes(len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::Corrupt("non-utf8 string"))
}

fn put_tag_value(v: &TagValue, out: &mut Vec<u8>) {
    match v {
        TagValue::U64(x) => {
            out.put_u8(0);
            out.put_u64_le(*x);
        }
        TagValue::Str(s) => {
            out.put_u8(1);
            put_str(s, out);
        }
        TagValue::Bool(b) => {
            out.put_u8(2);
            out.put_u8(*b as u8);
        }
    }
}

fn get_tag_value(r: &mut Rd) -> Result<TagValue, ProtocolError> {
    Ok(match r.u8()? {
        0 => TagValue::U64(r.u64()?),
        1 => TagValue::Str(get_str(r)?),
        2 => TagValue::Bool(r.u8()? != 0),
        _ => return Err(ProtocolError::Corrupt("unknown tag-value kind")),
    })
}

fn put_span(s: &Span, out: &mut Vec<u8>) {
    out.put_u64_le(s.id.0);
    match s.parent {
        Some(p) => {
            out.put_u8(1);
            out.put_u64_le(p.0);
        }
        None => out.put_u8(0),
    }
    put_str(&s.name, out);
    out.put_u64_le(s.start_us);
    out.put_u64_le(s.duration_us);
    out.put_u32_le(s.tags.len() as u32);
    for (k, v) in &s.tags {
        put_str(k, out);
        put_tag_value(v, out);
    }
}

fn get_span(r: &mut Rd) -> Result<Span, ProtocolError> {
    let id = SpanId(r.u64()?);
    let parent = match r.u8()? {
        0 => None,
        1 => Some(SpanId(r.u64()?)),
        _ => return Err(ProtocolError::Corrupt("bad parent flag")),
    };
    let name = get_str(r)?;
    let start_us = r.u64()?;
    let duration_us = r.u64()?;
    let ntags = r.count(5)?;
    let mut tags = Vec::with_capacity(ntags);
    for _ in 0..ntags {
        let k = get_str(r)?;
        let v = get_tag_value(r)?;
        tags.push((k, v));
    }
    Ok(Span {
        id,
        parent,
        name,
        start_us,
        duration_us,
        tags,
    })
}

fn put_spans(spans: &[Span], out: &mut Vec<u8>) {
    out.put_u32_le(spans.len() as u32);
    for s in spans {
        put_span(s, out);
    }
}

fn get_spans(r: &mut Rd) -> Result<Vec<Span>, ProtocolError> {
    let n = r.count(33)?; // minimum encoded span: id+flag+name len+times+ntags
    (0..n).map(|_| get_span(r)).collect()
}

// ---- event codecs (v4) -----------------------------------------------

fn put_severity(s: Severity, out: &mut Vec<u8>) {
    out.put_u8(match s {
        Severity::Info => 0,
        Severity::Warn => 1,
        Severity::Critical => 2,
    });
}

fn get_severity(r: &mut Rd) -> Result<Severity, ProtocolError> {
    Ok(match r.u8()? {
        0 => Severity::Info,
        1 => Severity::Warn,
        2 => Severity::Critical,
        _ => return Err(ProtocolError::Corrupt("unknown severity tag")),
    })
}

fn put_event_kind(k: EventKind, out: &mut Vec<u8>) {
    out.put_u8(match k {
        EventKind::ReplicaDown => 0,
        EventKind::Failover => 1,
        EventKind::ReplicaQuarantined => 2,
        EventKind::ReplayRecovered => 3,
        EventKind::SnapshotRefreshed => 4,
        EventKind::CursorTooOld => 5,
        EventKind::RecoveryFailed => 6,
        EventKind::LogCompacted => 7,
        EventKind::UpdatePublished => 8,
        EventKind::EpochSwap => 9,
        EventKind::CalibrationAdjusted => 10,
        EventKind::AdmissionRejected => 11,
        EventKind::AlertFiring => 12,
        EventKind::AlertResolved => 13,
        EventKind::SubscriptionCreated => 14,
        EventKind::SubscriptionResync => 15,
        EventKind::SubscriptionDropped => 16,
    });
}

fn get_event_kind(r: &mut Rd) -> Result<EventKind, ProtocolError> {
    Ok(match r.u8()? {
        0 => EventKind::ReplicaDown,
        1 => EventKind::Failover,
        2 => EventKind::ReplicaQuarantined,
        3 => EventKind::ReplayRecovered,
        4 => EventKind::SnapshotRefreshed,
        5 => EventKind::CursorTooOld,
        6 => EventKind::RecoveryFailed,
        7 => EventKind::LogCompacted,
        8 => EventKind::UpdatePublished,
        9 => EventKind::EpochSwap,
        10 => EventKind::CalibrationAdjusted,
        11 => EventKind::AdmissionRejected,
        12 => EventKind::AlertFiring,
        13 => EventKind::AlertResolved,
        14 => EventKind::SubscriptionCreated,
        15 => EventKind::SubscriptionResync,
        16 => EventKind::SubscriptionDropped,
        _ => return Err(ProtocolError::Corrupt("unknown event-kind tag")),
    })
}

fn put_event_source(s: Source, out: &mut Vec<u8>) {
    match s {
        Source::Service => out.put_u8(0),
        Source::Shard(shard) => {
            out.put_u8(1);
            out.put_u32_le(shard);
        }
        Source::Replica { shard, replica } => {
            out.put_u8(2);
            out.put_u32_le(shard);
            out.put_u32_le(replica);
        }
        Source::Supervisor => out.put_u8(3),
        Source::Gateway => out.put_u8(4),
    }
}

fn get_event_source(r: &mut Rd) -> Result<Source, ProtocolError> {
    Ok(match r.u8()? {
        0 => Source::Service,
        1 => Source::Shard(r.u32()?),
        2 => Source::Replica {
            shard: r.u32()?,
            replica: r.u32()?,
        },
        3 => Source::Supervisor,
        4 => Source::Gateway,
        _ => return Err(ProtocolError::Corrupt("unknown event-source tag")),
    })
}

fn put_event(e: &Event, out: &mut Vec<u8>) {
    out.put_u64_le(e.seq);
    out.put_u64_le(e.wall_ms);
    put_severity(e.severity, out);
    put_event_kind(e.kind, out);
    put_event_source(e.source, out);
    match e.trace_id {
        Some(t) => {
            out.put_u8(1);
            out.put_u64_le(t.hi());
            out.put_u64_le(t.lo());
        }
        None => out.put_u8(0),
    }
    out.put_u32_le(e.tags.len() as u32);
    for (k, v) in &e.tags {
        put_str(k, out);
        put_tag_value(v, out);
    }
}

fn get_event(r: &mut Rd) -> Result<Event, ProtocolError> {
    let seq = r.u64()?;
    let wall_ms = r.u64()?;
    let severity = get_severity(r)?;
    let kind = get_event_kind(r)?;
    let source = get_event_source(r)?;
    let trace_id = match r.u8()? {
        0 => None,
        1 => Some(TraceId::from_parts(r.u64()?, r.u64()?)),
        _ => return Err(ProtocolError::Corrupt("bad trace flag")),
    };
    let ntags = r.count(5)?;
    let mut tags = Vec::with_capacity(ntags);
    for _ in 0..ntags {
        let k = get_str(r)?;
        let v = get_tag_value(r)?;
        tags.push((k, v));
    }
    Ok(Event {
        seq,
        wall_ms,
        severity,
        source,
        kind,
        trace_id,
        tags,
    })
}

fn put_events(events: &[Event], out: &mut Vec<u8>) {
    out.put_u32_le(events.len() as u32);
    for e in events {
        put_event(e, out);
    }
}

fn get_events(r: &mut Rd) -> Result<Vec<Event>, ProtocolError> {
    let n = r.count(24)?; // minimum encoded event: seq+wall+sev+kind+source+flag+ntags
    (0..n).map(|_| get_event(r)).collect()
}

// ---- payload codecs --------------------------------------------------

const KIND_REQ_QUERY: u8 = 0;
const KIND_REQ_UPDATE: u8 = 1;
const KIND_REQ_PING: u8 = 2;
const KIND_REQ_MEMBER_COUNTS: u8 = 3;
const KIND_REQ_SNAPSHOT: u8 = 4;
const KIND_REQ_COMPACT: u8 = 5;
const KIND_REQ_INSTALL: u8 = 6;
const KIND_RESP_QUERY_OK: u8 = 16;
const KIND_RESP_QUERY_ERR: u8 = 17;
const KIND_RESP_UPDATE_OK: u8 = 18;
const KIND_RESP_UPDATE_ERR: u8 = 19;
const KIND_RESP_PONG: u8 = 20;
const KIND_RESP_MEMBER_COUNTS: u8 = 21;
const KIND_RESP_SNAPSHOT: u8 = 22;
const KIND_RESP_FAULT: u8 = 23;
const KIND_RESP_COMPACTED: u8 = 24;
const KIND_RESP_CURSOR_TOO_OLD: u8 = 25;
const KIND_RESP_INSTALL_OK: u8 = 26;
const KIND_RESP_INSTALL_ERR: u8 = 27;
// v3 kinds. The requests continue the request range, the responses the
// response range; `Hello` frames are stamped v2 (any peer can decode the
// header and fault typed), the traced pair is stamped v3.
const KIND_REQ_QUERY_TRACED: u8 = 7;
const KIND_REQ_HELLO: u8 = 8;
const KIND_RESP_QUERY_OK_TRACED: u8 = 28;
const KIND_RESP_HELLO: u8 = 29;
// v4 kinds: the event-forwarding heartbeat pair, stamped v4.
const KIND_REQ_PING_EVENTS: u8 = 9;
const KIND_RESP_PONG_EVENTS: u8 = 30;
// v5 kind: the flat-arena snapshot pull, stamped v5. The response reuses
// KIND_RESP_SNAPSHOT — a blob is a blob; its own header names the format.
const KIND_REQ_SNAPSHOT_V2: u8 = 10;

fn header(version: u8, kind: u8, frame_id: u64) -> Vec<u8> {
    let mut out = vec![version, kind];
    out.put_u64_le(frame_id);
    out
}

fn open(payload: &[u8]) -> Result<(u8, u64, Rd<'_>), ProtocolError> {
    open_at(payload, PROTOCOL_VERSION)
}

/// Opens a payload as a peer capped at `max_version` would: frames
/// stamped above the cap are a typed [`ProtocolError::VersionMismatch`]
/// even when this build could decode them.
fn open_at(payload: &[u8], max_version: u8) -> Result<(u8, u64, Rd<'_>), ProtocolError> {
    let mut r = Rd(payload);
    let version = r.u8()?;
    if !(MIN_PROTOCOL_VERSION..=max_version).contains(&version) {
        return Err(ProtocolError::VersionMismatch { found: version });
    }
    let kind = r.u8()?;
    let frame_id = r.u64()?;
    Ok((kind, frame_id, r))
}

/// Best-effort frame-id extraction from a payload that may not decode
/// fully — what a server uses to address the typed [`Response::Fault`]
/// for an undecodable request. `None` when even the header is unreadable
/// (wrong version or truncated before the id).
pub fn peek_frame_id(payload: &[u8]) -> Option<u64> {
    match open(payload) {
        Ok((_, id, _)) => Some(id),
        Err(_) => None,
    }
}

/// Serializes a request into a frame payload stamped with `frame_id`.
pub fn encode_request(frame_id: u64, req: &Request) -> Vec<u8> {
    match req {
        Request::Query(q) => {
            let mut out = header(MIN_PROTOCOL_VERSION, KIND_REQ_QUERY, frame_id);
            put_query(q, &mut out);
            out
        }
        Request::Update(u) => {
            let mut out = header(MIN_PROTOCOL_VERSION, KIND_REQ_UPDATE, frame_id);
            put_update(u, &mut out);
            out
        }
        Request::Ping => header(MIN_PROTOCOL_VERSION, KIND_REQ_PING, frame_id),
        Request::MemberCounts => header(MIN_PROTOCOL_VERSION, KIND_REQ_MEMBER_COUNTS, frame_id),
        Request::Snapshot => header(MIN_PROTOCOL_VERSION, KIND_REQ_SNAPSHOT, frame_id),
        Request::Compact { through } => {
            let mut out = header(MIN_PROTOCOL_VERSION, KIND_REQ_COMPACT, frame_id);
            out.put_u64_le(*through);
            out
        }
        Request::InstallSnapshot(blob) => {
            let mut out = header(MIN_PROTOCOL_VERSION, KIND_REQ_INSTALL, frame_id);
            out.put_u64_le(blob.epoch);
            out.put_u64_le(blob.bytes.len() as u64);
            out.extend_from_slice(&blob.bytes);
            out
        }
        Request::QueryTraced(q, ctx) => {
            let mut out = header(TRACED_VERSION, KIND_REQ_QUERY_TRACED, frame_id);
            put_query(q, &mut out);
            put_trace_ctx(ctx, &mut out);
            out
        }
        Request::Hello { max_version } => {
            // Stamped v2 so a v2 peer decodes the header and answers a
            // typed Fault(UnknownKind) instead of dropping the link.
            let mut out = header(MIN_PROTOCOL_VERSION, KIND_REQ_HELLO, frame_id);
            out.put_u8(*max_version);
            out
        }
        Request::PingEvents { since_seq } => {
            let mut out = header(EVENTS_VERSION, KIND_REQ_PING_EVENTS, frame_id);
            out.put_u64_le(*since_seq);
            out
        }
        Request::SnapshotV2 => header(SNAPSHOT_V2_VERSION, KIND_REQ_SNAPSHOT_V2, frame_id),
    }
}

/// Decodes a frame payload into `(frame_id, request)`. Total: never
/// panics.
pub fn decode_request(payload: &[u8]) -> Result<(u64, Request), ProtocolError> {
    decode_request_limited(payload, PROTOCOL_VERSION)
}

/// [`decode_request`] as a peer capped at `max_version` would perform it:
/// frames stamped above the cap are [`ProtocolError::VersionMismatch`],
/// and kinds introduced after the cap are [`ProtocolError::UnknownKind`]
/// even though this build knows them — exactly a v2 binary's answers.
/// The testkit's mixed-fleet simulation is built on this.
pub fn decode_request_limited(
    payload: &[u8],
    max_version: u8,
) -> Result<(u64, Request), ProtocolError> {
    let (kind, frame_id, mut r) = open_at(payload, max_version)?;
    let req = match kind {
        KIND_REQ_QUERY => Request::Query(get_query(&mut r)?),
        KIND_REQ_UPDATE => Request::Update(get_update(&mut r)?),
        KIND_REQ_PING => Request::Ping,
        KIND_REQ_MEMBER_COUNTS => Request::MemberCounts,
        KIND_REQ_SNAPSHOT => Request::Snapshot,
        KIND_REQ_COMPACT => Request::Compact { through: r.u64()? },
        KIND_REQ_INSTALL => {
            let epoch = r.u64()?;
            let len = r.u64()?;
            let len =
                usize::try_from(len).map_err(|_| ProtocolError::Corrupt("snapshot length"))?;
            let bytes = r.bytes(len)?.to_vec();
            Request::InstallSnapshot(SnapshotBlob { epoch, bytes })
        }
        KIND_REQ_QUERY_TRACED if max_version >= TRACED_VERSION => {
            let q = get_query(&mut r)?;
            let ctx = get_trace_ctx(&mut r)?;
            Request::QueryTraced(q, ctx)
        }
        KIND_REQ_HELLO if max_version >= TRACED_VERSION => Request::Hello {
            max_version: r.u8()?,
        },
        KIND_REQ_PING_EVENTS if max_version >= EVENTS_VERSION => Request::PingEvents {
            since_seq: r.u64()?,
        },
        KIND_REQ_SNAPSHOT_V2 if max_version >= SNAPSHOT_V2_VERSION => Request::SnapshotV2,
        other => return Err(ProtocolError::UnknownKind(other)),
    };
    r.finish()?;
    Ok((frame_id, req))
}

/// Serializes a response into a frame payload stamped with `frame_id`
/// (the id of the request it answers).
pub fn encode_response(frame_id: u64, resp: &Response) -> Vec<u8> {
    match resp {
        Response::Query(Ok(rr)) if rr.spans.is_empty() => {
            // No spans → the v2 encoding, bit for bit.
            let mut out = header(MIN_PROTOCOL_VERSION, KIND_RESP_QUERY_OK, frame_id);
            out.put_u8(rr.cached as u8);
            put_outcome(&rr.outcome, &mut out);
            out
        }
        Response::Query(Ok(rr)) => {
            let mut out = header(TRACED_VERSION, KIND_RESP_QUERY_OK_TRACED, frame_id);
            out.put_u8(rr.cached as u8);
            put_outcome(&rr.outcome, &mut out);
            put_spans(&rr.spans, &mut out);
            out
        }
        Response::Query(Err(e)) => {
            let mut out = header(MIN_PROTOCOL_VERSION, KIND_RESP_QUERY_ERR, frame_id);
            put_service_error(e, &mut out);
            out
        }
        Response::Update(Ok(receipt)) => {
            let mut out = header(MIN_PROTOCOL_VERSION, KIND_RESP_UPDATE_OK, frame_id);
            out.put_u8(receipt.applied as u8);
            out.put_u64_le(receipt.label_entries_added as u64);
            out.put_u64_le(receipt.invalidated as u64);
            out
        }
        Response::Update(Err(e)) => {
            let mut out = header(MIN_PROTOCOL_VERSION, KIND_RESP_UPDATE_ERR, frame_id);
            put_update_error(e, &mut out);
            out
        }
        Response::Pong(hb) => {
            let mut out = header(MIN_PROTOCOL_VERSION, KIND_RESP_PONG, frame_id);
            out.put_u64_le(hb.epoch);
            out
        }
        Response::MemberCounts(mc) => {
            let mut out = header(MIN_PROTOCOL_VERSION, KIND_RESP_MEMBER_COUNTS, frame_id);
            out.put_u64_le(mc.epoch);
            out.put_u32_le(mc.num_vertices);
            out.put_u32_le(mc.counts.len() as u32);
            for &c in &mc.counts {
                out.put_u32_le(c);
            }
            out
        }
        Response::Snapshot(blob) => {
            let mut out = header(MIN_PROTOCOL_VERSION, KIND_RESP_SNAPSHOT, frame_id);
            out.put_u64_le(blob.epoch);
            out.put_u64_le(blob.bytes.len() as u64);
            out.extend_from_slice(&blob.bytes);
            out
        }
        Response::Compacted { head } => {
            let mut out = header(MIN_PROTOCOL_VERSION, KIND_RESP_COMPACTED, frame_id);
            out.put_u64_le(*head);
            out
        }
        Response::CursorTooOld { cursor, head } => {
            let mut out = header(MIN_PROTOCOL_VERSION, KIND_RESP_CURSOR_TOO_OLD, frame_id);
            out.put_u64_le(*cursor);
            out.put_u64_le(*head);
            out
        }
        Response::Install(Ok(hb)) => {
            let mut out = header(MIN_PROTOCOL_VERSION, KIND_RESP_INSTALL_OK, frame_id);
            out.put_u64_le(hb.epoch);
            out
        }
        Response::Install(Err(e)) => {
            let mut out = header(MIN_PROTOCOL_VERSION, KIND_RESP_INSTALL_ERR, frame_id);
            put_snapshot_error(e, &mut out);
            out
        }
        Response::Fault(e) => {
            let mut out = header(MIN_PROTOCOL_VERSION, KIND_RESP_FAULT, frame_id);
            put_protocol_error(e, &mut out);
            out
        }
        Response::Hello { max_version } => {
            let mut out = header(MIN_PROTOCOL_VERSION, KIND_RESP_HELLO, frame_id);
            out.put_u8(*max_version);
            out
        }
        Response::PongEvents {
            heartbeat,
            next_seq,
            events,
        } => {
            let mut out = header(EVENTS_VERSION, KIND_RESP_PONG_EVENTS, frame_id);
            out.put_u64_le(heartbeat.epoch);
            out.put_u64_le(*next_seq);
            put_events(events, &mut out);
            out
        }
    }
}

/// Decodes a frame payload into `(frame_id, response)`. Total: never
/// panics.
pub fn decode_response(payload: &[u8]) -> Result<(u64, Response), ProtocolError> {
    decode_response_limited(payload, PROTOCOL_VERSION)
}

/// [`decode_response`] as a peer capped at `max_version` would perform
/// it — the client-side mirror of [`decode_request_limited`].
pub fn decode_response_limited(
    payload: &[u8],
    max_version: u8,
) -> Result<(u64, Response), ProtocolError> {
    let (kind, frame_id, mut r) = open_at(payload, max_version)?;
    let resp = match kind {
        KIND_RESP_QUERY_OK => {
            let cached = r.u8()? != 0;
            let outcome = get_outcome(&mut r)?;
            Response::Query(Ok(RemoteResponse {
                outcome,
                cached,
                spans: Vec::new(),
            }))
        }
        KIND_RESP_QUERY_OK_TRACED if max_version >= TRACED_VERSION => {
            let cached = r.u8()? != 0;
            let outcome = get_outcome(&mut r)?;
            let spans = get_spans(&mut r)?;
            Response::Query(Ok(RemoteResponse {
                outcome,
                cached,
                spans,
            }))
        }
        KIND_RESP_HELLO if max_version >= TRACED_VERSION => Response::Hello {
            max_version: r.u8()?,
        },
        KIND_RESP_PONG_EVENTS if max_version >= EVENTS_VERSION => Response::PongEvents {
            heartbeat: Heartbeat { epoch: r.u64()? },
            next_seq: r.u64()?,
            events: get_events(&mut r)?,
        },
        KIND_RESP_QUERY_ERR => Response::Query(Err(get_service_error(&mut r)?)),
        KIND_RESP_UPDATE_OK => Response::Update(Ok(UpdateReceipt {
            applied: r.u8()? != 0,
            label_entries_added: r.u64()? as usize,
            invalidated: r.u64()? as usize,
        })),
        KIND_RESP_UPDATE_ERR => Response::Update(Err(get_update_error(&mut r)?)),
        KIND_RESP_PONG => Response::Pong(Heartbeat { epoch: r.u64()? }),
        KIND_RESP_MEMBER_COUNTS => {
            let epoch = r.u64()?;
            let num_vertices = r.u32()?;
            let n = r.count(4)?;
            let counts = (0..n).map(|_| r.u32()).collect::<Result<_, _>>()?;
            Response::MemberCounts(MemberCounts {
                epoch,
                num_vertices,
                counts,
            })
        }
        KIND_RESP_SNAPSHOT => {
            let epoch = r.u64()?;
            let len = r.u64()?;
            let len =
                usize::try_from(len).map_err(|_| ProtocolError::Corrupt("snapshot length"))?;
            let bytes = r.bytes(len)?.to_vec();
            Response::Snapshot(SnapshotBlob { epoch, bytes })
        }
        KIND_RESP_COMPACTED => Response::Compacted { head: r.u64()? },
        KIND_RESP_CURSOR_TOO_OLD => Response::CursorTooOld {
            cursor: r.u64()?,
            head: r.u64()?,
        },
        KIND_RESP_INSTALL_OK => Response::Install(Ok(Heartbeat { epoch: r.u64()? })),
        KIND_RESP_INSTALL_ERR => Response::Install(Err(get_snapshot_error(&mut r)?)),
        KIND_RESP_FAULT => Response::Fault(get_protocol_error(&mut r)?),
        other => return Err(ProtocolError::UnknownKind(other)),
    };
    r.finish()?;
    Ok((frame_id, resp))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn sample_outcome() -> KosrOutcome {
        KosrOutcome {
            witnesses: vec![
                Witness {
                    vertices: vec![v(0), v(3), v(7)],
                    cost: 20,
                },
                Witness {
                    vertices: vec![v(0), v(4), v(7)],
                    cost: 21,
                },
            ],
            stats: QueryStats {
                examined_routes: 17,
                nn_queries: 9,
                examined_per_level: vec![3, 8, 6],
                heap_peak: 12,
                dominated_routes: 2,
                reconsidered_routes: 1,
                bound_pruned: 0,
                truncated: false,
                time: Default::default(),
            },
        }
    }

    #[test]
    fn request_roundtrips() {
        let reqs = vec![
            Request::Query(Query::new(
                v(1),
                v(2),
                vec![CategoryId(0), CategoryId(2)],
                3,
            )),
            Request::Update(Update::InsertMembership {
                vertex: v(4),
                category: CategoryId(1),
            }),
            Request::Update(Update::RemoveMembership {
                vertex: v(5),
                category: CategoryId(0),
            }),
            Request::Update(Update::InsertEdge {
                from: v(1),
                to: v(2),
                weight: 77,
            }),
            Request::Ping,
            Request::MemberCounts,
            Request::Snapshot,
            Request::Compact { through: 42 },
            Request::InstallSnapshot(SnapshotBlob {
                epoch: 9,
                bytes: vec![1, 2, 3],
            }),
        ];
        for (i, req) in reqs.into_iter().enumerate() {
            let id = 1000 + i as u64;
            let payload = encode_request(id, &req);
            assert_eq!(decode_request(&payload).unwrap(), (id, req));
        }
    }

    #[test]
    fn frame_ids_roundtrip_and_peek() {
        for id in [0u64, 1, 77, u64::MAX] {
            let payload = encode_request(id, &Request::Ping);
            assert_eq!(decode_request(&payload).unwrap().0, id);
            assert_eq!(peek_frame_id(&payload), Some(id));
            let payload = encode_response(id, &Response::Pong(Heartbeat { epoch: 3 }));
            assert_eq!(decode_response(&payload).unwrap().0, id);
        }
        // An unknown kind still yields its frame id to peek (the server
        // can address its Fault response), while decode rejects it typed.
        let mut payload = encode_request(7, &Request::Ping);
        payload[1] = 99;
        assert_eq!(peek_frame_id(&payload), Some(7));
        assert_eq!(
            decode_request(&payload),
            Err(ProtocolError::UnknownKind(99))
        );
        // Wrong version or a header truncated before the id peeks None.
        let mut bad = encode_request(7, &Request::Ping);
        bad[0] = 9;
        assert_eq!(peek_frame_id(&bad), None);
        assert_eq!(peek_frame_id(&[PROTOCOL_VERSION, 0, 1]), None);
    }

    #[test]
    fn query_response_roundtrips_bit_identically() {
        let resp = Response::Query(Ok(RemoteResponse {
            outcome: sample_outcome(),
            cached: true,
            spans: Vec::new(),
        }));
        let payload = encode_response(5, &resp);
        // Spanless responses stay on the v2 encoding.
        assert_eq!(payload[0], MIN_PROTOCOL_VERSION);
        match decode_response(&payload).unwrap().1 {
            Response::Query(Ok(rr)) => {
                assert!(rr.cached);
                assert!(rr.spans.is_empty());
                assert_eq!(rr.outcome.witnesses, sample_outcome().witnesses);
                assert_eq!(rr.outcome.stats.examined_routes, 17);
                assert_eq!(rr.outcome.stats.examined_per_level, vec![3, 8, 6]);
                assert_eq!(rr.outcome.stats.heap_peak, 12);
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    fn sample_ctx() -> TraceContext {
        TraceContext {
            trace_id: TraceId::from_parts(0xDEAD_BEEF, 0xCAFE_F00D),
            parent_span: SpanId(42),
            sampled: true,
        }
    }

    fn sample_spans() -> Vec<Span> {
        vec![
            Span {
                id: SpanId(7),
                parent: None,
                name: "replica".into(),
                start_us: 0,
                duration_us: 120,
                tags: vec![("method".into(), TagValue::Str("Kpne".into()))],
            },
            Span {
                id: SpanId(8),
                parent: Some(SpanId(7)),
                name: "execute".into(),
                start_us: 10,
                duration_us: 100,
                tags: vec![
                    ("pne_expansions".into(), TagValue::U64(17)),
                    ("hit".into(), TagValue::Bool(false)),
                ],
            },
        ]
    }

    #[test]
    fn traced_request_and_response_roundtrip() {
        let req = Request::QueryTraced(
            Query::new(v(1), v(2), vec![CategoryId(0), CategoryId(2)], 3),
            sample_ctx(),
        );
        let payload = encode_request(11, &req);
        assert_eq!(payload[0], TRACED_VERSION, "traced frames are stamped 3");
        assert_eq!(decode_request(&payload).unwrap(), (11, req));

        let resp = Response::Query(Ok(RemoteResponse {
            outcome: sample_outcome(),
            cached: false,
            spans: sample_spans(),
        }));
        let payload = encode_response(11, &resp);
        assert_eq!(payload[0], TRACED_VERSION);
        match decode_response(&payload).unwrap().1 {
            Response::Query(Ok(rr)) => {
                assert!(!rr.cached);
                assert_eq!(rr.spans, sample_spans());
                assert_eq!(rr.outcome.witnesses, sample_outcome().witnesses);
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                seq: 3,
                wall_ms: 1_700_000_000_123,
                severity: Severity::Info,
                source: Source::Service,
                kind: EventKind::EpochSwap,
                trace_id: None,
                tags: vec![
                    ("epoch".into(), TagValue::U64(4)),
                    ("reason".into(), TagValue::Str("update".into())),
                ],
            },
            Event {
                seq: 4,
                wall_ms: 1_700_000_000_456,
                severity: Severity::Critical,
                source: Source::Replica {
                    shard: 1,
                    replica: 2,
                },
                kind: EventKind::Failover,
                trace_id: Some(TraceId::from_parts(0xAB, 0xCD)),
                tags: vec![("flap".into(), TagValue::Bool(true))],
            },
        ]
    }

    #[test]
    fn ping_events_roundtrips_and_older_peers_reject_typed() {
        let req = Request::PingEvents { since_seq: 17 };
        let payload = encode_request(21, &req);
        assert_eq!(payload[0], EVENTS_VERSION, "the v4 pair is stamped 4");
        assert_eq!(decode_request(&payload).unwrap(), (21, req));
        // Genuine v3 and v2 binaries reject on the version byte, typed —
        // the connection survives and the client falls back to Ping.
        for cap in [2, 3] {
            assert_eq!(
                decode_request_limited(&payload, cap),
                Err(ProtocolError::VersionMismatch { found: 4 }),
                "cap={cap}"
            );
        }

        let resp = Response::PongEvents {
            heartbeat: Heartbeat { epoch: 9 },
            next_seq: 5,
            events: sample_events(),
        };
        let payload = encode_response(21, &resp);
        assert_eq!(payload[0], EVENTS_VERSION);
        match decode_response(&payload).unwrap() {
            (
                21,
                Response::PongEvents {
                    heartbeat,
                    next_seq,
                    events,
                },
            ) => {
                assert_eq!(heartbeat.epoch, 9);
                assert_eq!(next_seq, 5);
                assert_eq!(events, sample_events());
            }
            other => panic!("wrong decode: {other:?}"),
        }
        assert!(matches!(
            decode_response_limited(&payload, 3),
            Err(ProtocolError::VersionMismatch { found: 4 })
        ));

        // Totality: every truncation of the event batch is typed.
        for cut in 2..payload.len() {
            assert!(
                matches!(
                    decode_response(&payload[..cut]),
                    Err(ProtocolError::Truncated)
                ),
                "cut={cut}"
            );
        }
        // An empty drain also roundtrips.
        let payload = encode_response(
            22,
            &Response::PongEvents {
                heartbeat: Heartbeat { epoch: 0 },
                next_seq: 0,
                events: Vec::new(),
            },
        );
        assert!(matches!(
            decode_response(&payload),
            Ok((22, Response::PongEvents { next_seq: 0, events, .. })) if events.is_empty()
        ));
    }

    #[test]
    fn hello_negotiation_roundtrips_and_reaches_v2_peers() {
        let payload = encode_request(9, &Request::Hello { max_version: 3 });
        // The probe itself must be decodable by a v2 peer's header check…
        assert_eq!(payload[0], MIN_PROTOCOL_VERSION);
        assert_eq!(
            decode_request(&payload).unwrap(),
            (9, Request::Hello { max_version: 3 })
        );
        // …and a v2 peer answers it typed: UnknownKind, id preserved.
        assert_eq!(
            decode_request_limited(&payload, 2),
            Err(ProtocolError::UnknownKind(KIND_REQ_HELLO))
        );
        assert_eq!(peek_frame_id(&payload), Some(9));

        let payload = encode_response(9, &Response::Hello { max_version: 3 });
        assert!(matches!(
            decode_response(&payload),
            Ok((9, Response::Hello { max_version: 3 }))
        ));
    }

    #[test]
    fn v2_peer_rejects_traced_frames_typed() {
        let req = Request::QueryTraced(Query::new(v(0), v(1), vec![], 1), sample_ctx());
        let payload = encode_request(4, &req);
        // A genuine v2 binary rejects on the version byte — it has never
        // seen a 3 — and the connection survives as a typed Fault.
        assert_eq!(
            decode_request_limited(&payload, 2),
            Err(ProtocolError::VersionMismatch { found: 3 })
        );
        // Legacy kinds still travel stamped 2 and decode under the cap.
        let legacy = encode_request(5, &Request::Query(Query::new(v(0), v(1), vec![], 1)));
        assert_eq!(legacy[0], MIN_PROTOCOL_VERSION);
        assert!(decode_request_limited(&legacy, 2).is_ok());
    }

    #[test]
    fn traced_frames_reject_truncation_and_trailing() {
        let req =
            Request::QueryTraced(Query::new(v(1), v(2), vec![CategoryId(0)], 2), sample_ctx());
        let payload = encode_request(1, &req);
        for cut in 2..payload.len() {
            assert_eq!(
                decode_request(&payload[..cut]),
                Err(ProtocolError::Truncated),
                "cut={cut}"
            );
        }
        let resp = Response::Query(Ok(RemoteResponse {
            outcome: sample_outcome(),
            cached: false,
            spans: sample_spans(),
        }));
        let mut payload = encode_response(1, &resp);
        payload.push(0);
        assert!(matches!(
            decode_response(&payload),
            Err(ProtocolError::TrailingBytes(1))
        ));
    }

    #[test]
    fn error_responses_roundtrip() {
        let cases: Vec<Response> = vec![
            Response::Query(Err(ServiceError::QueueFull { capacity: 64 })),
            Response::Query(Err(ServiceError::DeadlineExceeded {
                deadline: Duration::from_millis(250),
            })),
            Response::Query(Err(ServiceError::BudgetExhausted {
                examined_budget: 10_000,
            })),
            Response::Query(Err(ServiceError::InvalidQuery(QueryError::EmptyCategory(
                CategoryId(3),
            )))),
            Response::Query(Err(ServiceError::ShuttingDown)),
            Response::Query(Err(ServiceError::WorkerLost)),
            Response::Update(Err(UpdateError::VertexOutOfRange(v(99)))),
            Response::Update(Err(UpdateError::UnknownCategory(CategoryId(7)))),
            Response::Update(Err(UpdateError::Graph(
                GraphUpdateError::WeightNotDecreased { current: 5 },
            ))),
            Response::Update(Err(UpdateError::Graph(GraphUpdateError::SelfLoop))),
            Response::Fault(ProtocolError::VersionMismatch { found: 9 }),
            Response::Fault(ProtocolError::UnknownKind(200)),
            Response::Install(Err(SnapshotError::BadMagic)),
            Response::Install(Err(SnapshotError::UnsupportedVersion { found: 7 })),
            Response::Install(Err(SnapshotError::Truncated)),
        ];
        for case in cases {
            let payload = encode_response(3, &case);
            let (id, back) = decode_response(&payload).unwrap();
            assert_eq!(id, 3);
            match (&case, &back) {
                (Response::Query(Err(a)), Response::Query(Err(b))) => assert_eq!(a, b),
                (Response::Update(Err(a)), Response::Update(Err(b))) => assert_eq!(a, b),
                (Response::Fault(a), Response::Fault(b)) => assert_eq!(a, b),
                (Response::Install(Err(a)), Response::Install(Err(b))) => assert_eq!(a, b),
                _ => panic!("decode changed shape: {case:?} → {back:?}"),
            }
        }
    }

    #[test]
    fn control_responses_roundtrip() {
        let payload = encode_response(1, &Response::Pong(Heartbeat { epoch: 42 }));
        assert!(matches!(decode_response(&payload), Ok((1, Response::Pong(hb))) if hb.epoch == 42));
        let mc = MemberCounts {
            epoch: 7,
            num_vertices: 100,
            counts: vec![3, 0, 9, 1],
        };
        let payload = encode_response(2, &Response::MemberCounts(mc.clone()));
        assert!(
            matches!(decode_response(&payload), Ok((2, Response::MemberCounts(got))) if got == mc)
        );
        let blob = SnapshotBlob {
            epoch: 3,
            bytes: vec![1, 2, 3, 4, 5],
        };
        let payload = encode_response(3, &Response::Snapshot(blob.clone()));
        assert!(
            matches!(decode_response(&payload), Ok((3, Response::Snapshot(got))) if got == blob)
        );
        let payload = encode_response(
            4,
            &Response::Update(Ok(UpdateReceipt {
                applied: true,
                label_entries_added: 4,
                invalidated: 2,
            })),
        );
        assert!(matches!(
            decode_response(&payload),
            Ok((4, Response::Update(Ok(r)))) if r.applied && r.label_entries_added == 4 && r.invalidated == 2
        ));
        let payload = encode_response(5, &Response::Compacted { head: 17 });
        assert!(matches!(
            decode_response(&payload),
            Ok((5, Response::Compacted { head: 17 }))
        ));
        let payload = encode_response(6, &Response::CursorTooOld { cursor: 3, head: 9 });
        assert!(matches!(
            decode_response(&payload),
            Ok((6, Response::CursorTooOld { cursor: 3, head: 9 }))
        ));
        let payload = encode_response(7, &Response::Install(Ok(Heartbeat { epoch: 11 })));
        assert!(matches!(
            decode_response(&payload),
            Ok((7, Response::Install(Ok(hb)))) if hb.epoch == 11
        ));
    }

    #[test]
    fn version_mismatch_is_typed() {
        let mut payload = encode_request(1, &Request::Ping);
        payload[0] = 9;
        assert_eq!(
            decode_request(&payload),
            Err(ProtocolError::VersionMismatch { found: 9 })
        );
        assert!(matches!(
            decode_response(&payload),
            Err(ProtocolError::VersionMismatch { found: 9 })
        ));
    }

    #[test]
    fn unknown_kind_truncation_and_trailing_are_typed() {
        let mut payload = encode_request(1, &Request::Ping);
        payload[1] = 99;
        assert_eq!(
            decode_request(&payload),
            Err(ProtocolError::UnknownKind(99))
        );
        assert_eq!(decode_request(&[]), Err(ProtocolError::Truncated));
        assert_eq!(
            decode_request(&[PROTOCOL_VERSION]),
            Err(ProtocolError::Truncated)
        );
        // A header cut before the full frame id is truncation, not a kind.
        assert_eq!(
            decode_request(&[PROTOCOL_VERSION, 99, 0, 0]),
            Err(ProtocolError::Truncated)
        );
        let mut payload = encode_request(1, &Request::Ping);
        payload.push(0);
        assert_eq!(
            decode_request(&payload),
            Err(ProtocolError::TrailingBytes(1))
        );
        let query = encode_request(1, &Request::Query(Query::new(v(0), v(1), vec![], 1)));
        for cut in 2..query.len() {
            assert_eq!(
                decode_request(&query[..cut]),
                Err(ProtocolError::Truncated),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn framing_roundtrips_and_rejects_oversize() {
        let payload = encode_request(1, &Request::Ping);
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        write_frame(&mut wire, &payload).unwrap();
        let mut cursor = &wire[..];
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), payload);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), payload);
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");

        let huge = (MAX_FRAME_LEN as u32 + 1).to_le_bytes();
        let mut cursor = &huge[..];
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn errors_render() {
        for e in [
            ProtocolError::VersionMismatch { found: 3 },
            ProtocolError::UnknownKind(9),
            ProtocolError::Truncated,
            ProtocolError::TrailingBytes(4),
            ProtocolError::FrameTooLarge { len: 1 << 40 },
            ProtocolError::Corrupt("x"),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
