//! The length-prefixed binary wire protocol replicas speak.
//!
//! Every message is one **frame**: a little-endian `u32` byte length
//! followed by the payload. A payload starts with a version byte, a kind
//! byte and a **frame id**, then the kind's body:
//!
//! ```text
//! frame   := u32 len | payload            (len ≤ MAX_FRAME_LEN)
//! payload := u8 version | u8 kind | u64 frame_id | body
//! ```
//!
//! The frame id is what makes one connection **multiplexable**: a client
//! stamps every request with a monotonically increasing id, the replica
//! echoes the id on the response, and a demultiplexing reader routes each
//! response to its request's completion slot — so responses may come back
//! in any order, interleaved, duplicated or delayed without ever being
//! delivered to the wrong caller (the mux property suite hammers this).
//!
//! Request kinds carry queries, §IV-C update-publish frames, heartbeats,
//! member-count probes, snapshot pulls/pushes and update-log compaction
//! notices; response kinds mirror them, including the remote's *typed*
//! service/update rejections so a client can distinguish a deterministic
//! "no" (don't fail over) from channel trouble (do fail over).
//!
//! Decoding is **total**: arbitrary bytes produce a typed
//! [`ProtocolError`], never a panic, and a frame with an unknown version
//! byte is reported as [`ProtocolError::VersionMismatch`] — the wire fuzz
//! suite hammers both properties.

use std::io::{Read, Write};
use std::time::Duration;

use bytes::{Buf, BufMut};
use kosr_core::{GraphUpdateError, KosrOutcome, Query, QueryError, QueryStats, Witness};
use kosr_graph::{CategoryId, VertexId};
use kosr_index::snapshot::SnapshotError;
use kosr_service::{ServiceError, Update, UpdateError, UpdateReceipt};

/// The wire version this build writes and understands. Version 2 added
/// the frame id (multiplexing) and the `Compact`/`InstallSnapshot`
/// surface.
pub const PROTOCOL_VERSION: u8 = 2;

/// Upper bound on one frame's payload; larger length prefixes are refused
/// before any allocation (snapshots of big shards dominate frame size).
pub const MAX_FRAME_LEN: usize = 256 << 20;

/// Why a frame could not be decoded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// The version byte names a protocol this build does not speak.
    VersionMismatch {
        /// The version byte found on the wire.
        found: u8,
    },
    /// The kind byte is not a known message kind.
    UnknownKind(u8),
    /// The payload ended before its declared contents.
    Truncated,
    /// Bytes remained after the declared contents.
    TrailingBytes(u32),
    /// A length prefix exceeded [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// The declared payload length.
        len: u64,
    },
    /// The contents are internally inconsistent.
    Corrupt(&'static str),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::VersionMismatch { found } => {
                write!(
                    f,
                    "protocol version mismatch: found {found}, speak {PROTOCOL_VERSION}"
                )
            }
            ProtocolError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            ProtocolError::Truncated => write!(f, "frame truncated"),
            ProtocolError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
            ProtocolError::FrameTooLarge { len } => write!(f, "frame of {len} bytes too large"),
            ProtocolError::Corrupt(what) => write!(f, "corrupt frame: {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// A replica's liveness report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Heartbeat {
    /// The replica's index epoch (applied-update count).
    pub epoch: u64,
}

/// A replica's category population report — what fan-out planning reads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemberCounts {
    /// The index epoch the counts belong to.
    pub epoch: u64,
    /// Vertex count of the replica's graph (for client-side validation).
    pub num_vertices: u32,
    /// Member count per category id (base categories then shadows).
    pub counts: Vec<u32>,
}

/// A serialized index snapshot pulled from a replica.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotBlob {
    /// The index epoch the snapshot was taken at.
    pub epoch: u64,
    /// The `kosr-index` snapshot codec blob.
    pub bytes: Vec<u8>,
}

/// A remote replica's answer to one query.
#[derive(Clone, Debug)]
pub struct RemoteResponse {
    /// The canonical top-k outcome.
    pub outcome: KosrOutcome,
    /// `true` when the remote served it from its result cache.
    pub cached: bool,
}

/// Client → replica messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Answer this query.
    Query(Query),
    /// Apply this §IV-C update (the update-publish frame).
    Update(Update),
    /// Report liveness + epoch.
    Ping,
    /// Report per-category member counts.
    MemberCounts,
    /// Ship an index snapshot.
    Snapshot,
    /// The upstream update log was compacted: entries below `through` are
    /// gone. The replica records the watermark (its own floor for replay
    /// expectations) and acknowledges with [`Response::Compacted`]; a
    /// `through` *behind* the replica's recorded head is answered with
    /// [`Response::CursorTooOld`] — the guard against a stale controller
    /// replaying an old compaction.
    Compact {
        /// The new log head: the oldest sequence still replayable.
        through: u64,
    },
    /// Push an index snapshot *into* the replica (supervisor-driven
    /// refresh of a replica too far behind the update log to replay).
    InstallSnapshot(SnapshotBlob),
}

/// Replica → client messages.
#[derive(Clone, Debug)]
pub enum Response {
    /// The query's outcome, or the service's typed rejection.
    Query(Result<RemoteResponse, ServiceError>),
    /// The update's receipt, or the service's typed rejection.
    Update(Result<UpdateReceipt, UpdateError>),
    /// Liveness.
    Pong(Heartbeat),
    /// Member counts.
    MemberCounts(MemberCounts),
    /// Index snapshot.
    Snapshot(SnapshotBlob),
    /// The compaction notice was recorded; `head` is the replica's
    /// (monotone) recorded log head.
    Compacted {
        /// The replica's recorded log head after the notice.
        head: u64,
    },
    /// A [`Request::Compact`] named a head *behind* what the replica
    /// already recorded — the sender's view of the log is stale.
    CursorTooOld {
        /// The stale head the sender proposed.
        cursor: u64,
        /// The head the replica has recorded.
        head: u64,
    },
    /// The pushed snapshot was installed (epoch after install), or the
    /// typed reason the blob was refused.
    Install(Result<Heartbeat, SnapshotError>),
    /// The replica could not decode the request frame.
    Fault(ProtocolError),
}

// ---- framing ---------------------------------------------------------

/// Writes one length-prefixed frame. Payloads over [`MAX_FRAME_LEN`] are
/// refused *before* any bytes hit the wire: writing one would desync the
/// stream (the `u32` prefix truncates past 4 GiB) and the peer would
/// reject it as a connection-level fault anyway — better a local typed
/// error than a remote one that downs the replica.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            ProtocolError::FrameTooLarge {
                len: payload.len() as u64,
            },
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. `Ok(None)` on clean EOF at a frame
/// boundary; oversized length prefixes are refused before allocation.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            ProtocolError::FrameTooLarge { len: len as u64 },
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---- bounds-checked reading ------------------------------------------

/// Little-endian reader over the shim's checked `try_get_*` reads: every
/// accessor reports [`ProtocolError::Truncated`] instead of panicking on
/// short input.
struct Rd<'a>(&'a [u8]);

impl<'a> Rd<'a> {
    fn u8(&mut self) -> Result<u8, ProtocolError> {
        self.0.try_get_u8().ok_or(ProtocolError::Truncated)
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        self.0.try_get_u32_le().ok_or(ProtocolError::Truncated)
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        self.0.try_get_u64_le().ok_or(ProtocolError::Truncated)
    }

    fn bytes(&mut self, len: usize) -> Result<&'a [u8], ProtocolError> {
        if self.0.remaining() < len {
            return Err(ProtocolError::Truncated);
        }
        let (head, tail) = self.0.split_at(len);
        self.0 = tail;
        Ok(head)
    }

    /// Declared element count, refused when the remaining bytes cannot
    /// possibly hold it (caps adversarial pre-allocations).
    fn count(&mut self, elem_bytes: usize) -> Result<usize, ProtocolError> {
        let n = self.u32()? as usize;
        if self.0.remaining() < n.saturating_mul(elem_bytes) {
            return Err(ProtocolError::Truncated);
        }
        Ok(n)
    }

    fn finish(self) -> Result<(), ProtocolError> {
        if self.0.has_remaining() {
            return Err(ProtocolError::TrailingBytes(self.0.remaining() as u32));
        }
        Ok(())
    }
}

// ---- body codecs -----------------------------------------------------

fn put_query(q: &Query, out: &mut Vec<u8>) {
    out.put_u32_le(q.source.0);
    out.put_u32_le(q.target.0);
    out.put_u64_le(q.k as u64);
    out.put_u32_le(q.categories.len() as u32);
    for c in &q.categories {
        out.put_u32_le(c.0);
    }
}

fn get_query(r: &mut Rd) -> Result<Query, ProtocolError> {
    let source = VertexId(r.u32()?);
    let target = VertexId(r.u32()?);
    let k = usize::try_from(r.u64()?).map_err(|_| ProtocolError::Corrupt("k overflows"))?;
    let n = r.count(4)?;
    let mut categories = Vec::with_capacity(n);
    for _ in 0..n {
        categories.push(CategoryId(r.u32()?));
    }
    Ok(Query {
        source,
        target,
        categories,
        k,
    })
}

fn put_update(u: &Update, out: &mut Vec<u8>) {
    match *u {
        Update::InsertMembership { vertex, category } => {
            out.put_u8(0);
            out.put_u32_le(vertex.0);
            out.put_u32_le(category.0);
        }
        Update::RemoveMembership { vertex, category } => {
            out.put_u8(1);
            out.put_u32_le(vertex.0);
            out.put_u32_le(category.0);
        }
        Update::InsertEdge { from, to, weight } => {
            out.put_u8(2);
            out.put_u32_le(from.0);
            out.put_u32_le(to.0);
            out.put_u64_le(weight);
        }
    }
}

fn get_update(r: &mut Rd) -> Result<Update, ProtocolError> {
    Ok(match r.u8()? {
        0 => Update::InsertMembership {
            vertex: VertexId(r.u32()?),
            category: CategoryId(r.u32()?),
        },
        1 => Update::RemoveMembership {
            vertex: VertexId(r.u32()?),
            category: CategoryId(r.u32()?),
        },
        2 => Update::InsertEdge {
            from: VertexId(r.u32()?),
            to: VertexId(r.u32()?),
            weight: r.u64()?,
        },
        _ => return Err(ProtocolError::Corrupt("unknown update tag")),
    })
}

fn put_duration(d: Duration, out: &mut Vec<u8>) {
    out.put_u64_le(d.as_nanos().min(u64::MAX as u128) as u64);
}

fn get_duration(r: &mut Rd) -> Result<Duration, ProtocolError> {
    Ok(Duration::from_nanos(r.u64()?))
}

fn put_outcome(o: &KosrOutcome, out: &mut Vec<u8>) {
    out.put_u32_le(o.witnesses.len() as u32);
    for w in &o.witnesses {
        out.put_u64_le(w.cost);
        out.put_u32_le(w.vertices.len() as u32);
        for v in &w.vertices {
            out.put_u32_le(v.0);
        }
    }
    let s = &o.stats;
    out.put_u64_le(s.examined_routes);
    out.put_u64_le(s.nn_queries);
    out.put_u64_le(s.dominated_routes);
    out.put_u64_le(s.reconsidered_routes);
    out.put_u64_le(s.heap_peak as u64);
    out.put_u8(s.truncated as u8);
    out.put_u32_le(s.examined_per_level.len() as u32);
    for &x in &s.examined_per_level {
        out.put_u64_le(x);
    }
    put_duration(s.time.total, out);
    put_duration(s.time.nn, out);
    put_duration(s.time.queue, out);
    put_duration(s.time.estimation, out);
}

fn get_outcome(r: &mut Rd) -> Result<KosrOutcome, ProtocolError> {
    let nwit = r.count(12)?;
    let mut witnesses = Vec::with_capacity(nwit);
    for _ in 0..nwit {
        let cost = r.u64()?;
        let len = r.count(4)?;
        let mut vertices = Vec::with_capacity(len);
        for _ in 0..len {
            vertices.push(VertexId(r.u32()?));
        }
        witnesses.push(Witness { vertices, cost });
    }
    let mut stats = QueryStats {
        examined_routes: r.u64()?,
        nn_queries: r.u64()?,
        dominated_routes: r.u64()?,
        reconsidered_routes: r.u64()?,
        heap_peak: r.u64()? as usize,
        truncated: r.u8()? != 0,
        ..Default::default()
    };
    let levels = r.count(8)?;
    stats.examined_per_level = (0..levels).map(|_| r.u64()).collect::<Result<_, _>>()?;
    stats.time.total = get_duration(r)?;
    stats.time.nn = get_duration(r)?;
    stats.time.queue = get_duration(r)?;
    stats.time.estimation = get_duration(r)?;
    stats.time.finalize();
    Ok(KosrOutcome { witnesses, stats })
}

fn put_query_error(e: &QueryError, out: &mut Vec<u8>) {
    match *e {
        QueryError::SourceOutOfRange(v) => {
            out.put_u8(0);
            out.put_u32_le(v.0);
        }
        QueryError::TargetOutOfRange(v) => {
            out.put_u8(1);
            out.put_u32_le(v.0);
        }
        QueryError::ZeroK => out.put_u8(2),
        QueryError::UnknownCategory(c) => {
            out.put_u8(3);
            out.put_u32_le(c.0);
        }
        QueryError::EmptyCategory(c) => {
            out.put_u8(4);
            out.put_u32_le(c.0);
        }
    }
}

fn get_query_error(r: &mut Rd) -> Result<QueryError, ProtocolError> {
    Ok(match r.u8()? {
        0 => QueryError::SourceOutOfRange(VertexId(r.u32()?)),
        1 => QueryError::TargetOutOfRange(VertexId(r.u32()?)),
        2 => QueryError::ZeroK,
        3 => QueryError::UnknownCategory(CategoryId(r.u32()?)),
        4 => QueryError::EmptyCategory(CategoryId(r.u32()?)),
        _ => return Err(ProtocolError::Corrupt("unknown query-error tag")),
    })
}

fn put_service_error(e: &ServiceError, out: &mut Vec<u8>) {
    match e {
        ServiceError::QueueFull { capacity } => {
            out.put_u8(0);
            out.put_u64_le(*capacity as u64);
        }
        ServiceError::DeadlineExceeded { deadline } => {
            out.put_u8(1);
            put_duration(*deadline, out);
        }
        ServiceError::BudgetExhausted { examined_budget } => {
            out.put_u8(2);
            out.put_u64_le(*examined_budget);
        }
        ServiceError::InvalidQuery(q) => {
            out.put_u8(3);
            put_query_error(q, out);
        }
        ServiceError::ShuttingDown => out.put_u8(4),
        ServiceError::WorkerLost => out.put_u8(5),
    }
}

fn get_service_error(r: &mut Rd) -> Result<ServiceError, ProtocolError> {
    Ok(match r.u8()? {
        0 => ServiceError::QueueFull {
            capacity: r.u64()? as usize,
        },
        1 => ServiceError::DeadlineExceeded {
            deadline: get_duration(r)?,
        },
        2 => ServiceError::BudgetExhausted {
            examined_budget: r.u64()?,
        },
        3 => ServiceError::InvalidQuery(get_query_error(r)?),
        4 => ServiceError::ShuttingDown,
        5 => ServiceError::WorkerLost,
        _ => return Err(ProtocolError::Corrupt("unknown service-error tag")),
    })
}

fn put_update_error(e: &UpdateError, out: &mut Vec<u8>) {
    match *e {
        UpdateError::VertexOutOfRange(v) => {
            out.put_u8(0);
            out.put_u32_le(v.0);
        }
        UpdateError::UnknownCategory(c) => {
            out.put_u8(1);
            out.put_u32_le(c.0);
        }
        UpdateError::Graph(g) => {
            out.put_u8(2);
            match g {
                GraphUpdateError::VertexOutOfRange(v) => {
                    out.put_u8(0);
                    out.put_u32_le(v.0);
                }
                GraphUpdateError::SelfLoop => out.put_u8(1),
                GraphUpdateError::WeightNotDecreased { current } => {
                    out.put_u8(2);
                    out.put_u64_le(current);
                }
            }
        }
    }
}

fn get_update_error(r: &mut Rd) -> Result<UpdateError, ProtocolError> {
    Ok(match r.u8()? {
        0 => UpdateError::VertexOutOfRange(VertexId(r.u32()?)),
        1 => UpdateError::UnknownCategory(CategoryId(r.u32()?)),
        2 => UpdateError::Graph(match r.u8()? {
            0 => GraphUpdateError::VertexOutOfRange(VertexId(r.u32()?)),
            1 => GraphUpdateError::SelfLoop,
            2 => GraphUpdateError::WeightNotDecreased { current: r.u64()? },
            _ => return Err(ProtocolError::Corrupt("unknown graph-error tag")),
        }),
        _ => return Err(ProtocolError::Corrupt("unknown update-error tag")),
    })
}

fn put_protocol_error(e: &ProtocolError, out: &mut Vec<u8>) {
    match *e {
        ProtocolError::VersionMismatch { found } => {
            out.put_u8(0);
            out.put_u8(found);
        }
        ProtocolError::UnknownKind(k) => {
            out.put_u8(1);
            out.put_u8(k);
        }
        ProtocolError::Truncated => out.put_u8(2),
        ProtocolError::TrailingBytes(n) => {
            out.put_u8(3);
            out.put_u32_le(n);
        }
        ProtocolError::FrameTooLarge { len } => {
            out.put_u8(4);
            out.put_u64_le(len);
        }
        ProtocolError::Corrupt(_) => out.put_u8(5),
    }
}

fn get_protocol_error(r: &mut Rd) -> Result<ProtocolError, ProtocolError> {
    Ok(match r.u8()? {
        0 => ProtocolError::VersionMismatch { found: r.u8()? },
        1 => ProtocolError::UnknownKind(r.u8()?),
        2 => ProtocolError::Truncated,
        3 => ProtocolError::TrailingBytes(r.u32()?),
        4 => ProtocolError::FrameTooLarge { len: r.u64()? },
        5 => ProtocolError::Corrupt("reported by peer"),
        _ => return Err(ProtocolError::Corrupt("unknown protocol-error tag")),
    })
}

/// Snapshot rejections travel the wire shape-preserving; the `Corrupt` and
/// `Labels` payloads are peer-local (`&'static str` / codec internals), so
/// like [`ProtocolError::Corrupt`] they decode to a "reported by peer"
/// stand-in of the same variant family.
fn put_snapshot_error(e: &SnapshotError, out: &mut Vec<u8>) {
    match *e {
        SnapshotError::BadMagic => out.put_u8(0),
        SnapshotError::UnsupportedVersion { found } => {
            out.put_u8(1);
            out.put_u8(found);
        }
        SnapshotError::Truncated => out.put_u8(2),
        SnapshotError::Corrupt(_) => out.put_u8(3),
        SnapshotError::Labels(_) => out.put_u8(4),
    }
}

fn get_snapshot_error(r: &mut Rd) -> Result<SnapshotError, ProtocolError> {
    Ok(match r.u8()? {
        0 => SnapshotError::BadMagic,
        1 => SnapshotError::UnsupportedVersion { found: r.u8()? },
        2 => SnapshotError::Truncated,
        3 => SnapshotError::Corrupt("reported by peer"),
        4 => SnapshotError::Corrupt("label blob rejected by peer"),
        _ => return Err(ProtocolError::Corrupt("unknown snapshot-error tag")),
    })
}

// ---- payload codecs --------------------------------------------------

const KIND_REQ_QUERY: u8 = 0;
const KIND_REQ_UPDATE: u8 = 1;
const KIND_REQ_PING: u8 = 2;
const KIND_REQ_MEMBER_COUNTS: u8 = 3;
const KIND_REQ_SNAPSHOT: u8 = 4;
const KIND_REQ_COMPACT: u8 = 5;
const KIND_REQ_INSTALL: u8 = 6;
const KIND_RESP_QUERY_OK: u8 = 16;
const KIND_RESP_QUERY_ERR: u8 = 17;
const KIND_RESP_UPDATE_OK: u8 = 18;
const KIND_RESP_UPDATE_ERR: u8 = 19;
const KIND_RESP_PONG: u8 = 20;
const KIND_RESP_MEMBER_COUNTS: u8 = 21;
const KIND_RESP_SNAPSHOT: u8 = 22;
const KIND_RESP_FAULT: u8 = 23;
const KIND_RESP_COMPACTED: u8 = 24;
const KIND_RESP_CURSOR_TOO_OLD: u8 = 25;
const KIND_RESP_INSTALL_OK: u8 = 26;
const KIND_RESP_INSTALL_ERR: u8 = 27;

fn header(kind: u8, frame_id: u64) -> Vec<u8> {
    let mut out = vec![PROTOCOL_VERSION, kind];
    out.put_u64_le(frame_id);
    out
}

fn open(payload: &[u8]) -> Result<(u8, u64, Rd<'_>), ProtocolError> {
    let mut r = Rd(payload);
    let version = r.u8()?;
    if version != PROTOCOL_VERSION {
        return Err(ProtocolError::VersionMismatch { found: version });
    }
    let kind = r.u8()?;
    let frame_id = r.u64()?;
    Ok((kind, frame_id, r))
}

/// Best-effort frame-id extraction from a payload that may not decode
/// fully — what a server uses to address the typed [`Response::Fault`]
/// for an undecodable request. `None` when even the header is unreadable
/// (wrong version or truncated before the id).
pub fn peek_frame_id(payload: &[u8]) -> Option<u64> {
    match open(payload) {
        Ok((_, id, _)) => Some(id),
        Err(_) => None,
    }
}

/// Serializes a request into a frame payload stamped with `frame_id`.
pub fn encode_request(frame_id: u64, req: &Request) -> Vec<u8> {
    match req {
        Request::Query(q) => {
            let mut out = header(KIND_REQ_QUERY, frame_id);
            put_query(q, &mut out);
            out
        }
        Request::Update(u) => {
            let mut out = header(KIND_REQ_UPDATE, frame_id);
            put_update(u, &mut out);
            out
        }
        Request::Ping => header(KIND_REQ_PING, frame_id),
        Request::MemberCounts => header(KIND_REQ_MEMBER_COUNTS, frame_id),
        Request::Snapshot => header(KIND_REQ_SNAPSHOT, frame_id),
        Request::Compact { through } => {
            let mut out = header(KIND_REQ_COMPACT, frame_id);
            out.put_u64_le(*through);
            out
        }
        Request::InstallSnapshot(blob) => {
            let mut out = header(KIND_REQ_INSTALL, frame_id);
            out.put_u64_le(blob.epoch);
            out.put_u64_le(blob.bytes.len() as u64);
            out.extend_from_slice(&blob.bytes);
            out
        }
    }
}

/// Decodes a frame payload into `(frame_id, request)`. Total: never
/// panics.
pub fn decode_request(payload: &[u8]) -> Result<(u64, Request), ProtocolError> {
    let (kind, frame_id, mut r) = open(payload)?;
    let req = match kind {
        KIND_REQ_QUERY => Request::Query(get_query(&mut r)?),
        KIND_REQ_UPDATE => Request::Update(get_update(&mut r)?),
        KIND_REQ_PING => Request::Ping,
        KIND_REQ_MEMBER_COUNTS => Request::MemberCounts,
        KIND_REQ_SNAPSHOT => Request::Snapshot,
        KIND_REQ_COMPACT => Request::Compact { through: r.u64()? },
        KIND_REQ_INSTALL => {
            let epoch = r.u64()?;
            let len = r.u64()?;
            let len =
                usize::try_from(len).map_err(|_| ProtocolError::Corrupt("snapshot length"))?;
            let bytes = r.bytes(len)?.to_vec();
            Request::InstallSnapshot(SnapshotBlob { epoch, bytes })
        }
        other => return Err(ProtocolError::UnknownKind(other)),
    };
    r.finish()?;
    Ok((frame_id, req))
}

/// Serializes a response into a frame payload stamped with `frame_id`
/// (the id of the request it answers).
pub fn encode_response(frame_id: u64, resp: &Response) -> Vec<u8> {
    match resp {
        Response::Query(Ok(rr)) => {
            let mut out = header(KIND_RESP_QUERY_OK, frame_id);
            out.put_u8(rr.cached as u8);
            put_outcome(&rr.outcome, &mut out);
            out
        }
        Response::Query(Err(e)) => {
            let mut out = header(KIND_RESP_QUERY_ERR, frame_id);
            put_service_error(e, &mut out);
            out
        }
        Response::Update(Ok(receipt)) => {
            let mut out = header(KIND_RESP_UPDATE_OK, frame_id);
            out.put_u8(receipt.applied as u8);
            out.put_u64_le(receipt.label_entries_added as u64);
            out.put_u64_le(receipt.invalidated as u64);
            out
        }
        Response::Update(Err(e)) => {
            let mut out = header(KIND_RESP_UPDATE_ERR, frame_id);
            put_update_error(e, &mut out);
            out
        }
        Response::Pong(hb) => {
            let mut out = header(KIND_RESP_PONG, frame_id);
            out.put_u64_le(hb.epoch);
            out
        }
        Response::MemberCounts(mc) => {
            let mut out = header(KIND_RESP_MEMBER_COUNTS, frame_id);
            out.put_u64_le(mc.epoch);
            out.put_u32_le(mc.num_vertices);
            out.put_u32_le(mc.counts.len() as u32);
            for &c in &mc.counts {
                out.put_u32_le(c);
            }
            out
        }
        Response::Snapshot(blob) => {
            let mut out = header(KIND_RESP_SNAPSHOT, frame_id);
            out.put_u64_le(blob.epoch);
            out.put_u64_le(blob.bytes.len() as u64);
            out.extend_from_slice(&blob.bytes);
            out
        }
        Response::Compacted { head } => {
            let mut out = header(KIND_RESP_COMPACTED, frame_id);
            out.put_u64_le(*head);
            out
        }
        Response::CursorTooOld { cursor, head } => {
            let mut out = header(KIND_RESP_CURSOR_TOO_OLD, frame_id);
            out.put_u64_le(*cursor);
            out.put_u64_le(*head);
            out
        }
        Response::Install(Ok(hb)) => {
            let mut out = header(KIND_RESP_INSTALL_OK, frame_id);
            out.put_u64_le(hb.epoch);
            out
        }
        Response::Install(Err(e)) => {
            let mut out = header(KIND_RESP_INSTALL_ERR, frame_id);
            put_snapshot_error(e, &mut out);
            out
        }
        Response::Fault(e) => {
            let mut out = header(KIND_RESP_FAULT, frame_id);
            put_protocol_error(e, &mut out);
            out
        }
    }
}

/// Decodes a frame payload into `(frame_id, response)`. Total: never
/// panics.
pub fn decode_response(payload: &[u8]) -> Result<(u64, Response), ProtocolError> {
    let (kind, frame_id, mut r) = open(payload)?;
    let resp = match kind {
        KIND_RESP_QUERY_OK => {
            let cached = r.u8()? != 0;
            let outcome = get_outcome(&mut r)?;
            Response::Query(Ok(RemoteResponse { outcome, cached }))
        }
        KIND_RESP_QUERY_ERR => Response::Query(Err(get_service_error(&mut r)?)),
        KIND_RESP_UPDATE_OK => Response::Update(Ok(UpdateReceipt {
            applied: r.u8()? != 0,
            label_entries_added: r.u64()? as usize,
            invalidated: r.u64()? as usize,
        })),
        KIND_RESP_UPDATE_ERR => Response::Update(Err(get_update_error(&mut r)?)),
        KIND_RESP_PONG => Response::Pong(Heartbeat { epoch: r.u64()? }),
        KIND_RESP_MEMBER_COUNTS => {
            let epoch = r.u64()?;
            let num_vertices = r.u32()?;
            let n = r.count(4)?;
            let counts = (0..n).map(|_| r.u32()).collect::<Result<_, _>>()?;
            Response::MemberCounts(MemberCounts {
                epoch,
                num_vertices,
                counts,
            })
        }
        KIND_RESP_SNAPSHOT => {
            let epoch = r.u64()?;
            let len = r.u64()?;
            let len =
                usize::try_from(len).map_err(|_| ProtocolError::Corrupt("snapshot length"))?;
            let bytes = r.bytes(len)?.to_vec();
            Response::Snapshot(SnapshotBlob { epoch, bytes })
        }
        KIND_RESP_COMPACTED => Response::Compacted { head: r.u64()? },
        KIND_RESP_CURSOR_TOO_OLD => Response::CursorTooOld {
            cursor: r.u64()?,
            head: r.u64()?,
        },
        KIND_RESP_INSTALL_OK => Response::Install(Ok(Heartbeat { epoch: r.u64()? })),
        KIND_RESP_INSTALL_ERR => Response::Install(Err(get_snapshot_error(&mut r)?)),
        KIND_RESP_FAULT => Response::Fault(get_protocol_error(&mut r)?),
        other => return Err(ProtocolError::UnknownKind(other)),
    };
    r.finish()?;
    Ok((frame_id, resp))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn sample_outcome() -> KosrOutcome {
        KosrOutcome {
            witnesses: vec![
                Witness {
                    vertices: vec![v(0), v(3), v(7)],
                    cost: 20,
                },
                Witness {
                    vertices: vec![v(0), v(4), v(7)],
                    cost: 21,
                },
            ],
            stats: QueryStats {
                examined_routes: 17,
                nn_queries: 9,
                examined_per_level: vec![3, 8, 6],
                heap_peak: 12,
                dominated_routes: 2,
                reconsidered_routes: 1,
                truncated: false,
                time: Default::default(),
            },
        }
    }

    #[test]
    fn request_roundtrips() {
        let reqs = vec![
            Request::Query(Query::new(
                v(1),
                v(2),
                vec![CategoryId(0), CategoryId(2)],
                3,
            )),
            Request::Update(Update::InsertMembership {
                vertex: v(4),
                category: CategoryId(1),
            }),
            Request::Update(Update::RemoveMembership {
                vertex: v(5),
                category: CategoryId(0),
            }),
            Request::Update(Update::InsertEdge {
                from: v(1),
                to: v(2),
                weight: 77,
            }),
            Request::Ping,
            Request::MemberCounts,
            Request::Snapshot,
            Request::Compact { through: 42 },
            Request::InstallSnapshot(SnapshotBlob {
                epoch: 9,
                bytes: vec![1, 2, 3],
            }),
        ];
        for (i, req) in reqs.into_iter().enumerate() {
            let id = 1000 + i as u64;
            let payload = encode_request(id, &req);
            assert_eq!(decode_request(&payload).unwrap(), (id, req));
        }
    }

    #[test]
    fn frame_ids_roundtrip_and_peek() {
        for id in [0u64, 1, 77, u64::MAX] {
            let payload = encode_request(id, &Request::Ping);
            assert_eq!(decode_request(&payload).unwrap().0, id);
            assert_eq!(peek_frame_id(&payload), Some(id));
            let payload = encode_response(id, &Response::Pong(Heartbeat { epoch: 3 }));
            assert_eq!(decode_response(&payload).unwrap().0, id);
        }
        // An unknown kind still yields its frame id to peek (the server
        // can address its Fault response), while decode rejects it typed.
        let mut payload = encode_request(7, &Request::Ping);
        payload[1] = 99;
        assert_eq!(peek_frame_id(&payload), Some(7));
        assert_eq!(
            decode_request(&payload),
            Err(ProtocolError::UnknownKind(99))
        );
        // Wrong version or a header truncated before the id peeks None.
        let mut bad = encode_request(7, &Request::Ping);
        bad[0] = 9;
        assert_eq!(peek_frame_id(&bad), None);
        assert_eq!(peek_frame_id(&[PROTOCOL_VERSION, 0, 1]), None);
    }

    #[test]
    fn query_response_roundtrips_bit_identically() {
        let resp = Response::Query(Ok(RemoteResponse {
            outcome: sample_outcome(),
            cached: true,
        }));
        let payload = encode_response(5, &resp);
        match decode_response(&payload).unwrap().1 {
            Response::Query(Ok(rr)) => {
                assert!(rr.cached);
                assert_eq!(rr.outcome.witnesses, sample_outcome().witnesses);
                assert_eq!(rr.outcome.stats.examined_routes, 17);
                assert_eq!(rr.outcome.stats.examined_per_level, vec![3, 8, 6]);
                assert_eq!(rr.outcome.stats.heap_peak, 12);
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn error_responses_roundtrip() {
        let cases: Vec<Response> = vec![
            Response::Query(Err(ServiceError::QueueFull { capacity: 64 })),
            Response::Query(Err(ServiceError::DeadlineExceeded {
                deadline: Duration::from_millis(250),
            })),
            Response::Query(Err(ServiceError::BudgetExhausted {
                examined_budget: 10_000,
            })),
            Response::Query(Err(ServiceError::InvalidQuery(QueryError::EmptyCategory(
                CategoryId(3),
            )))),
            Response::Query(Err(ServiceError::ShuttingDown)),
            Response::Query(Err(ServiceError::WorkerLost)),
            Response::Update(Err(UpdateError::VertexOutOfRange(v(99)))),
            Response::Update(Err(UpdateError::UnknownCategory(CategoryId(7)))),
            Response::Update(Err(UpdateError::Graph(
                GraphUpdateError::WeightNotDecreased { current: 5 },
            ))),
            Response::Update(Err(UpdateError::Graph(GraphUpdateError::SelfLoop))),
            Response::Fault(ProtocolError::VersionMismatch { found: 9 }),
            Response::Fault(ProtocolError::UnknownKind(200)),
            Response::Install(Err(SnapshotError::BadMagic)),
            Response::Install(Err(SnapshotError::UnsupportedVersion { found: 7 })),
            Response::Install(Err(SnapshotError::Truncated)),
        ];
        for case in cases {
            let payload = encode_response(3, &case);
            let (id, back) = decode_response(&payload).unwrap();
            assert_eq!(id, 3);
            match (&case, &back) {
                (Response::Query(Err(a)), Response::Query(Err(b))) => assert_eq!(a, b),
                (Response::Update(Err(a)), Response::Update(Err(b))) => assert_eq!(a, b),
                (Response::Fault(a), Response::Fault(b)) => assert_eq!(a, b),
                (Response::Install(Err(a)), Response::Install(Err(b))) => assert_eq!(a, b),
                _ => panic!("decode changed shape: {case:?} → {back:?}"),
            }
        }
    }

    #[test]
    fn control_responses_roundtrip() {
        let payload = encode_response(1, &Response::Pong(Heartbeat { epoch: 42 }));
        assert!(matches!(decode_response(&payload), Ok((1, Response::Pong(hb))) if hb.epoch == 42));
        let mc = MemberCounts {
            epoch: 7,
            num_vertices: 100,
            counts: vec![3, 0, 9, 1],
        };
        let payload = encode_response(2, &Response::MemberCounts(mc.clone()));
        assert!(
            matches!(decode_response(&payload), Ok((2, Response::MemberCounts(got))) if got == mc)
        );
        let blob = SnapshotBlob {
            epoch: 3,
            bytes: vec![1, 2, 3, 4, 5],
        };
        let payload = encode_response(3, &Response::Snapshot(blob.clone()));
        assert!(
            matches!(decode_response(&payload), Ok((3, Response::Snapshot(got))) if got == blob)
        );
        let payload = encode_response(
            4,
            &Response::Update(Ok(UpdateReceipt {
                applied: true,
                label_entries_added: 4,
                invalidated: 2,
            })),
        );
        assert!(matches!(
            decode_response(&payload),
            Ok((4, Response::Update(Ok(r)))) if r.applied && r.label_entries_added == 4 && r.invalidated == 2
        ));
        let payload = encode_response(5, &Response::Compacted { head: 17 });
        assert!(matches!(
            decode_response(&payload),
            Ok((5, Response::Compacted { head: 17 }))
        ));
        let payload = encode_response(6, &Response::CursorTooOld { cursor: 3, head: 9 });
        assert!(matches!(
            decode_response(&payload),
            Ok((6, Response::CursorTooOld { cursor: 3, head: 9 }))
        ));
        let payload = encode_response(7, &Response::Install(Ok(Heartbeat { epoch: 11 })));
        assert!(matches!(
            decode_response(&payload),
            Ok((7, Response::Install(Ok(hb)))) if hb.epoch == 11
        ));
    }

    #[test]
    fn version_mismatch_is_typed() {
        let mut payload = encode_request(1, &Request::Ping);
        payload[0] = 9;
        assert_eq!(
            decode_request(&payload),
            Err(ProtocolError::VersionMismatch { found: 9 })
        );
        assert!(matches!(
            decode_response(&payload),
            Err(ProtocolError::VersionMismatch { found: 9 })
        ));
    }

    #[test]
    fn unknown_kind_truncation_and_trailing_are_typed() {
        let mut payload = encode_request(1, &Request::Ping);
        payload[1] = 99;
        assert_eq!(
            decode_request(&payload),
            Err(ProtocolError::UnknownKind(99))
        );
        assert_eq!(decode_request(&[]), Err(ProtocolError::Truncated));
        assert_eq!(
            decode_request(&[PROTOCOL_VERSION]),
            Err(ProtocolError::Truncated)
        );
        // A header cut before the full frame id is truncation, not a kind.
        assert_eq!(
            decode_request(&[PROTOCOL_VERSION, 99, 0, 0]),
            Err(ProtocolError::Truncated)
        );
        let mut payload = encode_request(1, &Request::Ping);
        payload.push(0);
        assert_eq!(
            decode_request(&payload),
            Err(ProtocolError::TrailingBytes(1))
        );
        let query = encode_request(1, &Request::Query(Query::new(v(0), v(1), vec![], 1)));
        for cut in 2..query.len() {
            assert_eq!(
                decode_request(&query[..cut]),
                Err(ProtocolError::Truncated),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn framing_roundtrips_and_rejects_oversize() {
        let payload = encode_request(1, &Request::Ping);
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        write_frame(&mut wire, &payload).unwrap();
        let mut cursor = &wire[..];
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), payload);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), payload);
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");

        let huge = (MAX_FRAME_LEN as u32 + 1).to_le_bytes();
        let mut cursor = &huge[..];
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn errors_render() {
        for e in [
            ProtocolError::VersionMismatch { found: 3 },
            ProtocolError::UnknownKind(9),
            ProtocolError::Truncated,
            ProtocolError::TrailingBytes(4),
            ProtocolError::FrameTooLarge { len: 1 << 40 },
            ProtocolError::Corrupt("x"),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
