//! Replica fleets: N transports serving the same shard, with health state,
//! heartbeats, and retry-on-next-replica failover.
//!
//! ## The health/consistency contract
//!
//! * Queries go only to [`ReplicaHealth::Healthy`] replicas; a fault marks
//!   the replica `Down` and the query retries on the next healthy one.
//!   Because every consistent replica of a shard answers with the same
//!   canonical top-k stream, failover preserves merge semantics exactly.
//! * Deterministic service rejections ([`TransportError::is_fault`] =
//!   `false`) are **not** retried — every consistent replica would repeat
//!   them, and retrying would double-count admission.
//! * A `Down` replica never serves again until something that knows the
//!   update history (the shard layer's update bus) replays what it missed
//!   and calls [`ReplicaSet::mark_healthy`] — a replica that silently
//!   missed an update must not contaminate merged answers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use kosr_core::Query;
use kosr_service::TraceContext;

use crate::protocol::Heartbeat;
use crate::{ShardTransport, TransportError, TransportTicket};

/// A replica's serving eligibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicaHealth {
    /// Reachable and caught up on updates: eligible to serve queries.
    Healthy,
    /// Faulted (or installed cold): excluded from serving until recovered.
    Down,
}

/// A point-in-time health snapshot of one replica fleet — the shape
/// health endpoints and metrics exporters consume without re-deriving it
/// from the raw health vector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplicaSetSnapshot {
    /// Per-replica health, in failover order.
    pub health: Vec<ReplicaHealth>,
    /// Replicas currently eligible to serve.
    pub healthy: usize,
    /// Query-time failovers absorbed so far.
    pub failovers: u64,
}

impl ReplicaSetSnapshot {
    /// Replicas in the fleet (healthy or not).
    pub fn total(&self) -> usize {
        self.health.len()
    }

    /// `true` when every replica is serving.
    pub fn all_healthy(&self) -> bool {
        self.healthy == self.health.len()
    }
}

/// The replicas of one shard.
pub struct ReplicaSet {
    transports: RwLock<Vec<Arc<dyn ShardTransport>>>,
    health: Mutex<Vec<ReplicaHealth>>,
    failovers: AtomicU64,
}

impl ReplicaSet {
    /// A fleet over `transports`, all initially healthy.
    ///
    /// # Panics
    /// Panics if `transports` is empty.
    pub fn new(transports: Vec<Arc<dyn ShardTransport>>) -> ReplicaSet {
        assert!(!transports.is_empty(), "a shard needs at least one replica");
        let health = vec![ReplicaHealth::Healthy; transports.len()];
        ReplicaSet {
            transports: RwLock::new(transports),
            health: Mutex::new(health),
            failovers: AtomicU64::new(0),
        }
    }

    /// Number of replicas (healthy or not).
    pub fn num_replicas(&self) -> usize {
        self.transports.read().unwrap().len()
    }

    /// Current per-replica health.
    pub fn health(&self) -> Vec<ReplicaHealth> {
        self.health.lock().unwrap().clone()
    }

    /// Indices of replicas currently eligible to serve, ascending — the
    /// deterministic failover order.
    pub fn healthy_indices(&self) -> Vec<usize> {
        self.health
            .lock()
            .unwrap()
            .iter()
            .enumerate()
            .filter(|(_, h)| **h == ReplicaHealth::Healthy)
            .map(|(i, _)| i)
            .collect()
    }

    /// The transport of replica `i`.
    pub fn transport(&self, i: usize) -> Arc<dyn ShardTransport> {
        Arc::clone(&self.transports.read().unwrap()[i])
    }

    /// Marks replica `i` down (fault observed / update missed).
    pub fn mark_down(&self, i: usize) {
        self.health.lock().unwrap()[i] = ReplicaHealth::Down;
    }

    /// Marks replica `i` healthy again — only call once it is provably
    /// caught up (the update bus's recovery path does this).
    pub fn mark_healthy(&self, i: usize) {
        self.health.lock().unwrap()[i] = ReplicaHealth::Healthy;
    }

    /// Replaces replica `i`'s transport (a freshly started process joining
    /// from a snapshot). The slot stays `Down` until recovery replay
    /// completes and marks it healthy.
    pub fn install(&self, i: usize, transport: Arc<dyn ShardTransport>) {
        self.transports.write().unwrap()[i] = transport;
        self.mark_down(i);
    }

    /// How many query-time failovers this fleet has absorbed.
    pub fn failovers(&self) -> u64 {
        self.failovers.load(Ordering::Relaxed)
    }

    /// One consistent health snapshot (health vector read under a single
    /// lock acquisition) — what `/healthz` endpoints and metrics
    /// exporters serve.
    pub fn health_snapshot(&self) -> ReplicaSetSnapshot {
        let health = self.health.lock().unwrap().clone();
        let healthy = health
            .iter()
            .filter(|h| **h == ReplicaHealth::Healthy)
            .count();
        ReplicaSetSnapshot {
            health,
            healthy,
            failovers: self.failovers(),
        }
    }

    /// Pings every replica. A faulting *healthy* replica is marked down;
    /// a responsive `Down` replica stays down (it may have missed updates
    /// while unreachable — only recovery replay may revive it).
    pub fn heartbeat(&self) -> Vec<Result<Heartbeat, TransportError>> {
        (0..self.num_replicas())
            .map(|i| {
                let result = self.transport(i).ping();
                if result.as_ref().err().is_some_and(TransportError::is_fault) {
                    self.mark_down(i);
                }
                result
            })
            .collect()
    }

    /// Runs `op` against healthy replicas in failover order: the first
    /// non-fault result wins; faults mark the replica down and move on.
    pub fn call_with_failover<T>(
        &self,
        mut op: impl FnMut(&dyn ShardTransport) -> Result<T, TransportError>,
    ) -> Result<T, TransportError> {
        for i in self.healthy_indices() {
            match op(self.transport(i).as_ref()) {
                Err(e) if e.is_fault() => {
                    self.mark_down(i);
                    self.failovers.fetch_add(1, Ordering::Relaxed);
                }
                other => return other,
            }
        }
        Err(TransportError::AllReplicasDown {
            replicas: self.num_replicas(),
        })
    }

    /// Submits `query` to the primary (lowest healthy) replica; the ticket
    /// transparently fails over to the next healthy replica when the wait
    /// faults, so a replica dying mid-query costs latency, not the answer.
    pub fn query(self: &Arc<Self>, query: Query) -> TransportTicket {
        self.query_traced(query, None)
    }

    /// [`ReplicaSet::query`] with a trace context: each attempt (including
    /// failover retries) re-sends the same context, so the spans of the
    /// replica that *answered* are the ones that come back — a failed
    /// attempt contributes nothing but a failover count.
    pub fn query_traced(
        self: &Arc<Self>,
        query: Query,
        ctx: Option<TraceContext>,
    ) -> TransportTicket {
        let Some(&first) = self.healthy_indices().first() else {
            return TransportTicket::ready(Err(TransportError::AllReplicasDown {
                replicas: self.num_replicas(),
            }));
        };
        let ticket = self.transport(first).submit_traced(query.clone(), ctx);
        let set = Arc::clone(self);
        TransportTicket::new(move || {
            let mut current = first;
            let mut ticket = ticket;
            let mut tried = vec![first];
            loop {
                match ticket.wait() {
                    Err(e) if e.is_fault() => {
                        set.mark_down(current);
                        set.failovers.fetch_add(1, Ordering::Relaxed);
                        let next = set
                            .healthy_indices()
                            .into_iter()
                            .find(|i| !tried.contains(i));
                        match next {
                            Some(i) => {
                                tried.push(i);
                                current = i;
                                ticket = set.transport(i).submit_traced(query.clone(), ctx);
                            }
                            None => {
                                return Err(TransportError::AllReplicasDown {
                                    replicas: set.num_replicas(),
                                })
                            }
                        }
                    }
                    other => return other,
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InProcTransport;
    use kosr_core::figure1::figure1;
    use kosr_core::IndexedGraph;
    use kosr_service::{KosrService, ServiceConfig, ServiceError};

    fn fleet(
        n: usize,
    ) -> (
        Arc<ReplicaSet>,
        Vec<crate::KillSwitch>,
        kosr_core::figure1::Figure1,
    ) {
        let fx = figure1();
        let ig = IndexedGraph::build_default(fx.graph.clone());
        let mut transports: Vec<Arc<dyn ShardTransport>> = Vec::new();
        let mut switches = Vec::new();
        for _ in 0..n {
            let svc = Arc::new(KosrService::new(
                Arc::new(ig.clone()),
                ServiceConfig {
                    workers: 1,
                    ..Default::default()
                },
            ));
            let t = InProcTransport::new(svc);
            switches.push(t.kill_switch());
            transports.push(Arc::new(t));
        }
        (Arc::new(ReplicaSet::new(transports)), switches, fx)
    }

    #[test]
    fn queries_fail_over_and_mark_down() {
        let (set, switches, fx) = fleet(3);
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        assert_eq!(
            set.query(q.clone()).wait().unwrap().outcome.costs(),
            vec![20, 21, 22]
        );

        switches[0].kill();
        let resp = set.query(q.clone()).wait().unwrap();
        assert_eq!(resp.outcome.costs(), vec![20, 21, 22]);
        assert_eq!(set.health()[0], ReplicaHealth::Down);
        assert_eq!(set.failovers(), 1);

        switches[1].kill();
        assert_eq!(
            set.query(q.clone()).wait().unwrap().outcome.costs(),
            vec![20, 21, 22]
        );
        switches[2].kill();
        assert_eq!(
            set.query(q).wait().unwrap_err(),
            TransportError::AllReplicasDown { replicas: 3 }
        );
    }

    #[test]
    fn rejections_do_not_fail_over() {
        let (set, _switches, fx) = fleet(2);
        let err = set
            .query(Query::new(fx.s, fx.t, vec![fx.ma], 0))
            .wait()
            .unwrap_err();
        assert_eq!(
            err,
            TransportError::Service(ServiceError::InvalidQuery(kosr_core::QueryError::ZeroK))
        );
        assert_eq!(set.failovers(), 0);
        assert_eq!(set.healthy_indices(), vec![0, 1]);
    }

    #[test]
    fn heartbeat_marks_faulting_replicas_but_never_revives() {
        let (set, switches, _fx) = fleet(2);
        assert!(set.heartbeat().iter().all(Result::is_ok));
        switches[1].kill();
        let beats = set.heartbeat();
        assert!(beats[0].is_ok() && beats[1].is_err());
        assert_eq!(
            set.health(),
            vec![ReplicaHealth::Healthy, ReplicaHealth::Down]
        );
        switches[1].revive();
        let beats = set.heartbeat();
        assert!(beats[1].is_ok(), "reachable again");
        assert_eq!(
            set.health()[1],
            ReplicaHealth::Down,
            "revival requires recovery replay, not just reachability"
        );
        set.mark_healthy(1);
        assert_eq!(set.healthy_indices(), vec![0, 1]);
    }

    #[test]
    fn health_snapshot_reflects_failover_state() {
        let (set, switches, fx) = fleet(3);
        let snap = set.health_snapshot();
        assert_eq!(snap.total(), 3);
        assert!(snap.all_healthy());
        assert_eq!(snap.failovers, 0);

        switches[0].kill();
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 1);
        set.query(q).wait().unwrap();
        let snap = set.health_snapshot();
        assert_eq!(snap.healthy, 2);
        assert!(!snap.all_healthy());
        assert_eq!(snap.health[0], ReplicaHealth::Down);
        assert_eq!(snap.failovers, 1);
    }

    #[test]
    fn call_with_failover_walks_the_fleet() {
        let (set, switches, _fx) = fleet(3);
        switches[0].kill();
        let mc = set.call_with_failover(|t| t.member_counts()).unwrap();
        assert_eq!(mc.counts.len(), 3);
        assert_eq!(set.health()[0], ReplicaHealth::Down);
        switches[1].kill();
        switches[2].kill();
        assert_eq!(
            set.call_with_failover(|t| t.member_counts()).unwrap_err(),
            TransportError::AllReplicasDown { replicas: 3 }
        );
    }
}
