//! Replica fleets: N transports serving the same shard, with health state,
//! heartbeats, and retry-on-next-replica failover.
//!
//! ## The health/consistency contract
//!
//! * Queries go only to [`ReplicaHealth::Healthy`] replicas; a fault marks
//!   the replica `Down` and the query retries on the next healthy one.
//!   Because every consistent replica of a shard answers with the same
//!   canonical top-k stream, failover preserves merge semantics exactly.
//! * Deterministic service rejections ([`TransportError::is_fault`] =
//!   `false`) are **not** retried — every consistent replica would repeat
//!   them, and retrying would double-count admission.
//! * A `Down` replica never serves again until something that knows the
//!   update history (the shard layer's update bus) replays what it missed
//!   and calls [`ReplicaSet::mark_healthy`] — a replica that silently
//!   missed an update must not contaminate merged answers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use kosr_core::Query;
use kosr_service::{EventJournal, EventKind, Source, TraceContext, TraceId};

use crate::protocol::Heartbeat;
use crate::{ShardTransport, TransportError, TransportTicket};

/// A replica's serving eligibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicaHealth {
    /// Reachable and caught up on updates: eligible to serve queries.
    Healthy,
    /// Faulted (or installed cold): excluded from serving until recovered.
    Down,
}

/// A point-in-time health snapshot of one replica fleet — the shape
/// health endpoints and metrics exporters consume without re-deriving it
/// from the raw health vector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplicaSetSnapshot {
    /// Per-replica health, in failover order.
    pub health: Vec<ReplicaHealth>,
    /// Replicas currently eligible to serve.
    pub healthy: usize,
    /// Query-time failovers absorbed so far.
    pub failovers: u64,
}

impl ReplicaSetSnapshot {
    /// Replicas in the fleet (healthy or not).
    pub fn total(&self) -> usize {
        self.health.len()
    }

    /// `true` when every replica is serving.
    pub fn all_healthy(&self) -> bool {
        self.healthy == self.health.len()
    }
}

/// The fleet journal attachment of one replica set: where health
/// transitions are recorded as events, plus the per-replica drain cursors
/// the event-forwarding heartbeat advances.
struct EventsHook {
    journal: Arc<EventJournal>,
    shard: u32,
    /// Per-replica journal cursor: the `since_seq` of the next
    /// [`ShardTransport::ping_events`] probe.
    cursors: Vec<u64>,
    /// The fleet-journal seq of each replica's most recent down/failover
    /// event — the "triggering event" recovery decisions annotate.
    last_down: Vec<Option<u64>>,
}

/// The replicas of one shard.
pub struct ReplicaSet {
    transports: RwLock<Vec<Arc<dyn ShardTransport>>>,
    health: Mutex<Vec<ReplicaHealth>>,
    failovers: AtomicU64,
    events: Mutex<Option<EventsHook>>,
}

impl ReplicaSet {
    /// A fleet over `transports`, all initially healthy.
    ///
    /// # Panics
    /// Panics if `transports` is empty.
    pub fn new(transports: Vec<Arc<dyn ShardTransport>>) -> ReplicaSet {
        assert!(!transports.is_empty(), "a shard needs at least one replica");
        let health = vec![ReplicaHealth::Healthy; transports.len()];
        ReplicaSet {
            transports: RwLock::new(transports),
            health: Mutex::new(health),
            failovers: AtomicU64::new(0),
            events: Mutex::new(None),
        }
    }

    /// Attaches the fleet event journal: from here on, health transitions
    /// and failovers are journaled as [`Source::Replica`] events for
    /// `shard`, and [`ReplicaSet::heartbeat`] upgrades to the
    /// event-forwarding probe that drains each replica's local journal.
    pub fn attach_events(&self, journal: Arc<EventJournal>, shard: u32) {
        let n = self.num_replicas();
        *self.events.lock().unwrap() = Some(EventsHook {
            journal,
            shard,
            cursors: vec![0; n],
            last_down: vec![None; n],
        });
    }

    /// Journals `kind` for replica `i` when a journal is attached,
    /// remembering the seq as the replica's last down event for
    /// down-flavoured kinds. Returns the seq of the emitted event.
    fn journal_replica_event(
        &self,
        i: usize,
        kind: EventKind,
        trace: Option<TraceId>,
    ) -> Option<u64> {
        let mut guard = self.events.lock().unwrap();
        let hook = guard.as_mut()?;
        let seq = hook.journal.emit(
            Source::Replica {
                shard: hook.shard,
                replica: i as u32,
            },
            kind,
            trace,
            Vec::new(),
        );
        if matches!(
            kind,
            EventKind::ReplicaDown | EventKind::Failover | EventKind::ReplicaQuarantined
        ) {
            hook.last_down[i] = Some(seq);
        }
        Some(seq)
    }

    /// Marks replica `i` down **and** journals `kind` (with the trace in
    /// scope, if any) when the call is an actual `Healthy → Down`
    /// transition and a journal is attached. Returns the journaled seq —
    /// the trigger recovery decisions reference. Re-downing an already
    /// down replica journals nothing: one outage, one event.
    pub fn note_down(&self, i: usize, kind: EventKind, trace: Option<TraceId>) -> Option<u64> {
        if !self.mark_down(i) {
            return None;
        }
        self.journal_replica_event(i, kind, trace)
    }

    /// The fleet-journal seq of replica `i`'s most recent down/failover
    /// event, if any was journaled — what supervisor recovery events cite
    /// as their trigger.
    pub fn last_down_seq(&self, i: usize) -> Option<u64> {
        self.events
            .lock()
            .unwrap()
            .as_ref()
            .and_then(|hook| hook.last_down[i])
    }

    /// Number of replicas (healthy or not).
    pub fn num_replicas(&self) -> usize {
        self.transports.read().unwrap().len()
    }

    /// Current per-replica health.
    pub fn health(&self) -> Vec<ReplicaHealth> {
        self.health.lock().unwrap().clone()
    }

    /// Indices of replicas currently eligible to serve, ascending — the
    /// deterministic failover order.
    pub fn healthy_indices(&self) -> Vec<usize> {
        self.health
            .lock()
            .unwrap()
            .iter()
            .enumerate()
            .filter(|(_, h)| **h == ReplicaHealth::Healthy)
            .map(|(i, _)| i)
            .collect()
    }

    /// The transport of replica `i`.
    pub fn transport(&self, i: usize) -> Arc<dyn ShardTransport> {
        Arc::clone(&self.transports.read().unwrap()[i])
    }

    /// Marks replica `i` down (fault observed / update missed). Returns
    /// `true` when this was an actual `Healthy → Down` transition —
    /// event emission keys off the transition so one outage journals one
    /// event no matter how many callers observe it.
    pub fn mark_down(&self, i: usize) -> bool {
        let mut health = self.health.lock().unwrap();
        let transitioned = health[i] == ReplicaHealth::Healthy;
        health[i] = ReplicaHealth::Down;
        transitioned
    }

    /// Marks replica `i` healthy again — only call once it is provably
    /// caught up (the update bus's recovery path does this). Returns
    /// `true` when this was an actual `Down → Healthy` transition.
    pub fn mark_healthy(&self, i: usize) -> bool {
        let mut health = self.health.lock().unwrap();
        let transitioned = health[i] == ReplicaHealth::Down;
        health[i] = ReplicaHealth::Healthy;
        transitioned
    }

    /// Replaces replica `i`'s transport (a freshly started process joining
    /// from a snapshot). The slot stays `Down` until recovery replay
    /// completes and marks it healthy; the event drain cursor restarts at
    /// zero because the fresh process carries a fresh journal.
    pub fn install(&self, i: usize, transport: Arc<dyn ShardTransport>) {
        self.transports.write().unwrap()[i] = transport;
        if let Some(hook) = self.events.lock().unwrap().as_mut() {
            hook.cursors[i] = 0;
        }
        self.mark_down(i);
    }

    /// How many query-time failovers this fleet has absorbed.
    pub fn failovers(&self) -> u64 {
        self.failovers.load(Ordering::Relaxed)
    }

    /// One consistent health snapshot (health vector read under a single
    /// lock acquisition) — what `/healthz` endpoints and metrics
    /// exporters serve.
    pub fn health_snapshot(&self) -> ReplicaSetSnapshot {
        let health = self.health.lock().unwrap().clone();
        let healthy = health
            .iter()
            .filter(|h| **h == ReplicaHealth::Healthy)
            .count();
        ReplicaSetSnapshot {
            health,
            healthy,
            failovers: self.failovers(),
        }
    }

    /// Pings every replica. A faulting *healthy* replica is marked down
    /// (and the outage journaled, when a journal is attached); a
    /// responsive `Down` replica stays down (it may have missed updates
    /// while unreachable — only recovery replay may revive it).
    ///
    /// With a journal attached the probe is [`ShardTransport::ping_events`]:
    /// each replica's local lifecycle events ride back on the heartbeat
    /// response and are resequenced into the fleet journal, so one probe
    /// per tick carries both liveness *and* observability.
    pub fn heartbeat(&self) -> Vec<Result<Heartbeat, TransportError>> {
        (0..self.num_replicas())
            .map(|i| {
                let cursor = self
                    .events
                    .lock()
                    .unwrap()
                    .as_ref()
                    .map(|hook| hook.cursors[i]);
                let result = match cursor {
                    Some(cursor) => {
                        self.transport(i)
                            .ping_events(cursor)
                            .map(|(hb, next, events)| {
                                let mut guard = self.events.lock().unwrap();
                                if let Some(hook) = guard.as_mut() {
                                    for ev in &events {
                                        hook.journal.append_forwarded(ev, hook.shard, i as u32);
                                    }
                                    // A degraded (pre-v4) probe reports 0;
                                    // never regress a real cursor.
                                    if next > hook.cursors[i] {
                                        hook.cursors[i] = next;
                                    }
                                }
                                hb
                            })
                    }
                    None => self.transport(i).ping(),
                };
                if result.as_ref().err().is_some_and(TransportError::is_fault) {
                    self.note_down(i, EventKind::ReplicaDown, None);
                }
                result
            })
            .collect()
    }

    /// Runs `op` against healthy replicas in failover order: the first
    /// non-fault result wins; faults mark the replica down and move on.
    pub fn call_with_failover<T>(
        &self,
        mut op: impl FnMut(&dyn ShardTransport) -> Result<T, TransportError>,
    ) -> Result<T, TransportError> {
        for i in self.healthy_indices() {
            match op(self.transport(i).as_ref()) {
                Err(e) if e.is_fault() => {
                    self.note_down(i, EventKind::Failover, None);
                    self.failovers.fetch_add(1, Ordering::Relaxed);
                }
                other => return other,
            }
        }
        Err(TransportError::AllReplicasDown {
            replicas: self.num_replicas(),
        })
    }

    /// Submits `query` to the primary (lowest healthy) replica; the ticket
    /// transparently fails over to the next healthy replica when the wait
    /// faults, so a replica dying mid-query costs latency, not the answer.
    pub fn query(self: &Arc<Self>, query: Query) -> TransportTicket {
        self.query_traced(query, None)
    }

    /// [`ReplicaSet::query`] with a trace context: each attempt (including
    /// failover retries) re-sends the same context, so the spans of the
    /// replica that *answered* are the ones that come back — a failed
    /// attempt contributes nothing but a failover count.
    pub fn query_traced(
        self: &Arc<Self>,
        query: Query,
        ctx: Option<TraceContext>,
    ) -> TransportTicket {
        let Some(&first) = self.healthy_indices().first() else {
            return TransportTicket::ready(Err(TransportError::AllReplicasDown {
                replicas: self.num_replicas(),
            }));
        };
        let ticket = self.transport(first).submit_traced(query.clone(), ctx);
        let set = Arc::clone(self);
        TransportTicket::new(move || {
            let mut current = first;
            let mut ticket = ticket;
            let mut tried = vec![first];
            loop {
                match ticket.wait() {
                    Err(e) if e.is_fault() => {
                        set.note_down(current, EventKind::Failover, ctx.map(|c| c.trace_id));
                        set.failovers.fetch_add(1, Ordering::Relaxed);
                        let next = set
                            .healthy_indices()
                            .into_iter()
                            .find(|i| !tried.contains(i));
                        match next {
                            Some(i) => {
                                tried.push(i);
                                current = i;
                                ticket = set.transport(i).submit_traced(query.clone(), ctx);
                            }
                            None => {
                                return Err(TransportError::AllReplicasDown {
                                    replicas: set.num_replicas(),
                                })
                            }
                        }
                    }
                    other => return other,
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InProcTransport, Update};
    use kosr_core::figure1::figure1;
    use kosr_core::IndexedGraph;
    use kosr_service::{KosrService, ServiceConfig, ServiceError};

    fn fleet(
        n: usize,
    ) -> (
        Arc<ReplicaSet>,
        Vec<crate::KillSwitch>,
        kosr_core::figure1::Figure1,
    ) {
        let fx = figure1();
        let ig = IndexedGraph::build_default(fx.graph.clone());
        let mut transports: Vec<Arc<dyn ShardTransport>> = Vec::new();
        let mut switches = Vec::new();
        for _ in 0..n {
            let svc = Arc::new(KosrService::new(
                Arc::new(ig.clone()),
                ServiceConfig {
                    workers: 1,
                    ..Default::default()
                },
            ));
            let t = InProcTransport::new(svc);
            switches.push(t.kill_switch());
            transports.push(Arc::new(t));
        }
        (Arc::new(ReplicaSet::new(transports)), switches, fx)
    }

    #[test]
    fn queries_fail_over_and_mark_down() {
        let (set, switches, fx) = fleet(3);
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        assert_eq!(
            set.query(q.clone()).wait().unwrap().outcome.costs(),
            vec![20, 21, 22]
        );

        switches[0].kill();
        let resp = set.query(q.clone()).wait().unwrap();
        assert_eq!(resp.outcome.costs(), vec![20, 21, 22]);
        assert_eq!(set.health()[0], ReplicaHealth::Down);
        assert_eq!(set.failovers(), 1);

        switches[1].kill();
        assert_eq!(
            set.query(q.clone()).wait().unwrap().outcome.costs(),
            vec![20, 21, 22]
        );
        switches[2].kill();
        assert_eq!(
            set.query(q).wait().unwrap_err(),
            TransportError::AllReplicasDown { replicas: 3 }
        );
    }

    #[test]
    fn rejections_do_not_fail_over() {
        let (set, _switches, fx) = fleet(2);
        let err = set
            .query(Query::new(fx.s, fx.t, vec![fx.ma], 0))
            .wait()
            .unwrap_err();
        assert_eq!(
            err,
            TransportError::Service(ServiceError::InvalidQuery(kosr_core::QueryError::ZeroK))
        );
        assert_eq!(set.failovers(), 0);
        assert_eq!(set.healthy_indices(), vec![0, 1]);
    }

    #[test]
    fn heartbeat_marks_faulting_replicas_but_never_revives() {
        let (set, switches, _fx) = fleet(2);
        assert!(set.heartbeat().iter().all(Result::is_ok));
        switches[1].kill();
        let beats = set.heartbeat();
        assert!(beats[0].is_ok() && beats[1].is_err());
        assert_eq!(
            set.health(),
            vec![ReplicaHealth::Healthy, ReplicaHealth::Down]
        );
        switches[1].revive();
        let beats = set.heartbeat();
        assert!(beats[1].is_ok(), "reachable again");
        assert_eq!(
            set.health()[1],
            ReplicaHealth::Down,
            "revival requires recovery replay, not just reachability"
        );
        set.mark_healthy(1);
        assert_eq!(set.healthy_indices(), vec![0, 1]);
    }

    #[test]
    fn health_snapshot_reflects_failover_state() {
        let (set, switches, fx) = fleet(3);
        let snap = set.health_snapshot();
        assert_eq!(snap.total(), 3);
        assert!(snap.all_healthy());
        assert_eq!(snap.failovers, 0);

        switches[0].kill();
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 1);
        set.query(q).wait().unwrap();
        let snap = set.health_snapshot();
        assert_eq!(snap.healthy, 2);
        assert!(!snap.all_healthy());
        assert_eq!(snap.health[0], ReplicaHealth::Down);
        assert_eq!(snap.failovers, 1);
    }

    #[test]
    fn attached_journal_records_failovers_and_forwards_replica_events() {
        let (set, switches, fx) = fleet(2);
        let journal = Arc::new(EventJournal::new(64));
        set.attach_events(Arc::clone(&journal), 7);

        // A traced query failover journals a Critical, trace-correlated
        // Failover event exactly once for the one transition.
        switches[0].kill();
        let ctx = TraceContext::root(TraceId::from_parts(0, 0x51), true);
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 1);
        set.query_traced(q, Some(ctx)).wait().unwrap();
        let downs = journal.events_since(0, None, None);
        assert_eq!(downs.len(), 1);
        assert_eq!(downs[0].kind, EventKind::Failover);
        assert_eq!(downs[0].trace_id, Some(TraceId::from_parts(0, 0x51)));
        assert_eq!(
            downs[0].source,
            Source::Replica {
                shard: 7,
                replica: 0
            }
        );
        assert_eq!(set.last_down_seq(0), Some(downs[0].seq));
        assert_eq!(set.last_down_seq(1), None);

        // Re-downing the same replica journals nothing: one outage, one
        // event.
        assert!(set.note_down(0, EventKind::ReplicaDown, None).is_none());
        assert_eq!(journal.next_seq(), downs[0].seq + 1);

        // The heartbeat drains the healthy replica's local journal into
        // the fleet journal, resequenced and origin-tagged.
        let replica1 = set.transport(1);
        let gone = {
            let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 1);
            replica1.submit(q).wait().unwrap().outcome.witnesses[0].vertices[2]
        };
        replica1
            .apply_update(&Update::RemoveMembership {
                vertex: gone,
                category: fx.re,
            })
            .unwrap();
        set.heartbeat();
        let swaps: Vec<_> = journal
            .events_since(0, None, None)
            .into_iter()
            .filter(|e| e.kind == EventKind::EpochSwap)
            .collect();
        assert_eq!(swaps.len(), 1, "the replica's epoch swap was forwarded");
        assert_eq!(
            swaps[0].source,
            Source::Replica {
                shard: 7,
                replica: 1
            }
        );
        // The cursor advanced: another heartbeat forwards nothing new.
        let before = journal.next_seq();
        set.heartbeat();
        assert_eq!(journal.next_seq(), before, "no re-delivery");
    }

    #[test]
    fn call_with_failover_walks_the_fleet() {
        let (set, switches, _fx) = fleet(3);
        switches[0].kill();
        let mc = set.call_with_failover(|t| t.member_counts()).unwrap();
        assert_eq!(mc.counts.len(), 3);
        assert_eq!(set.health()[0], ReplicaHealth::Down);
        switches[1].kill();
        switches[2].kill();
        assert_eq!(
            set.call_with_failover(|t| t.member_counts()).unwrap_err(),
            TransportError::AllReplicasDown { replicas: 3 }
        );
    }
}
