//! # kosr-transport
//!
//! The wire layer that takes `kosr-shard` past one process: a
//! length-prefixed binary [`protocol`] (request/response + update-publish
//! frames, versioned encode/decode) behind the [`ShardTransport`] trait,
//! with two implementations and a replica-fleet abstraction on top:
//!
//! | piece | role |
//! |---|---|
//! | [`protocol`] | versioned frames: queries, §IV-C updates, heartbeats, member counts, snapshots |
//! | [`InProcTransport`] | loopback through the full encode/decode path, plus a kill switch for fault tests |
//! | [`TcpTransport`] / [`TcpServer`] | each replica behind a socket, a pooled blocking client in front |
//! | [`ReplicaSet`] | N replicas per shard: health state, heartbeats, retry-on-next-replica failover |
//!
//! ## Consistency model
//!
//! Failover may only retry on **faults** (connection/protocol trouble —
//! [`TransportError::is_fault`]); deterministic service rejections
//! propagate, because every consistent replica would repeat them. Queries
//! are served exclusively by replicas marked [`ReplicaHealth::Healthy`]; a
//! replica that misses an update (or dies) is marked `Down` and must be
//! brought back through snapshot + update replay (the shard layer's
//! update-bus recovery) before serving again — so a stale replica can
//! never contaminate a merged top-k answer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod host;
mod inproc;
pub mod mux;
pub mod protocol;
mod replica;
mod tcp;

use crate::protocol::{Heartbeat, MemberCounts, RemoteResponse, SnapshotBlob};
pub use error::TransportError;
pub use host::{handle_request, member_counts};
pub use inproc::{InProcTransport, KillSwitch};
pub use replica::{ReplicaHealth, ReplicaSet, ReplicaSetSnapshot};
pub use tcp::{TcpServer, TcpTransport};

// Re-exported so transport users don't need direct sibling dependencies
// for the common types.
pub use kosr_core::Query;
pub use kosr_service::{ServiceError, TraceContext, Update, UpdateError, UpdateReceipt};

/// A pending remote response: redeem with [`TransportTicket::wait`].
///
/// Submissions return immediately so a router can fan a query out to many
/// shards before blocking on any of them.
#[must_use = "a transport ticket must be waited on to observe the response"]
pub struct TransportTicket(Box<dyn FnOnce() -> Result<RemoteResponse, TransportError> + Send>);

impl TransportTicket {
    /// Wraps the blocking tail of a submission.
    pub fn new(
        wait: impl FnOnce() -> Result<RemoteResponse, TransportError> + Send + 'static,
    ) -> TransportTicket {
        TransportTicket(Box::new(wait))
    }

    /// A ticket already resolved (e.g. the frame was refused up front).
    pub fn ready(result: Result<RemoteResponse, TransportError>) -> TransportTicket {
        TransportTicket(Box::new(move || result))
    }

    /// Blocks until the replica answers (or the channel faults).
    pub fn wait(self) -> Result<RemoteResponse, TransportError> {
        (self.0)()
    }
}

impl std::fmt::Debug for TransportTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TransportTicket(..)")
    }
}

/// One shard replica's wire surface: everything `kosr-shard`'s router and
/// update bus need, abstracted over *where* the replica runs.
///
/// All methods map 1:1 onto [`protocol`] frames; implementations must
/// route through the codec so in-process and remote deployments exercise
/// identical bytes.
pub trait ShardTransport: Send + Sync {
    /// Sends a query frame; the ticket blocks for the response frame.
    fn submit(&self, query: Query) -> TransportTicket;

    /// Sends a query with a trace context attached. Implementations that
    /// speak protocol v3 send the traced frame (after negotiating the
    /// peer's version) and return replica-side spans on the response;
    /// the default drops the context and behaves exactly like
    /// [`ShardTransport::submit`] — the correct degradation for v2-era
    /// peers and transports that predate tracing.
    fn submit_traced(&self, query: Query, ctx: Option<TraceContext>) -> TransportTicket {
        let _ = ctx;
        self.submit(query)
    }

    /// Sends an update-publish frame and waits for the receipt.
    fn apply_update(&self, update: &Update) -> Result<UpdateReceipt, TransportError>;

    /// Heartbeat: liveness + the replica's index epoch.
    fn ping(&self) -> Result<Heartbeat, TransportError>;

    /// Member counts per category (fan-out planning reads these).
    fn member_counts(&self) -> Result<MemberCounts, TransportError>;

    /// Pulls an index snapshot (cold-replica join).
    fn snapshot(&self) -> Result<SnapshotBlob, TransportError>;

    /// Pushes a snapshot *into* the replica, replacing its served index —
    /// the supervisor's refresh path for replicas too far behind the
    /// update log to replay. A refused blob is a typed
    /// [`TransportError::Snapshot`] and leaves the old index serving.
    fn install_snapshot(&self, blob: &SnapshotBlob) -> Result<Heartbeat, TransportError>;

    /// Tells the replica the upstream update log was compacted below
    /// `through`; returns the replica's recorded (monotone) head. A
    /// `through` behind the recorded head is the typed
    /// [`TransportError::CursorTooOld`].
    fn compact(&self, through: u64) -> Result<u64, TransportError>;

    /// Heartbeat that also drains the replica's local lifecycle journal
    /// from `since_seq` (the protocol-v4 event-forwarding probe): returns
    /// the liveness report, the journal's next sequence (the cursor for
    /// the following probe) and the drained events. The default degrades
    /// to a plain [`ShardTransport::ping`] with an empty drain — correct
    /// for pre-v4 peers and transports that predate the journal.
    fn ping_events(
        &self,
        since_seq: u64,
    ) -> Result<(Heartbeat, u64, Vec<kosr_service::Event>), TransportError> {
        let _ = since_seq;
        self.ping().map(|hb| (hb, 0, Vec::new()))
    }
}
