//! The demultiplexing core of a multiplexed connection: per-request
//! **completion slots** keyed by frame id.
//!
//! A connection stamps every outgoing request with a fresh monotone id and
//! registers a slot; the reader thread routes each incoming response to
//! the slot with the matching id. The table enforces the three properties
//! the mux acceptance suite hammers:
//!
//! * **no misdelivery** — a response completes exactly the slot whose id
//!   it carries; ids that are unknown (stray), already completed
//!   (duplicate) or already abandoned (deadline passed) are dropped on the
//!   floor, never delivered to another caller;
//! * **no convoy** — one wedged request (slot never completed) does not
//!   block any other slot: waits are independent, and a per-request
//!   deadline turns the wedge into a connection *fault* for that request
//!   alone, so failover can route around the replica while unrelated
//!   in-flight queries keep streaming on the same connection;
//! * **no leak past death** — when the connection dies, `fail_all` fails
//!   every pending slot with the fatal error and poisons the table so
//!   later registrations fail fast instead of hanging.

use std::collections::HashMap;
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use crate::protocol::Response;
use crate::TransportError;

type Slot = mpsc::Sender<Result<Response, TransportError>>;

struct Inner {
    slots: HashMap<u64, Slot>,
    /// Set once the connection is dead; registrations after that fail
    /// immediately with a clone of the fatal error.
    dead: Option<TransportError>,
}

/// The completion-slot table of one multiplexed connection.
pub struct DemuxTable {
    inner: Mutex<Inner>,
}

impl Default for DemuxTable {
    fn default() -> DemuxTable {
        DemuxTable::new()
    }
}

impl DemuxTable {
    /// An empty, live table.
    pub fn new() -> DemuxTable {
        DemuxTable {
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                dead: None,
            }),
        }
    }

    /// Registers a slot for frame id `id` and returns its completion
    /// handle. On a dead table the handle is already failed.
    ///
    /// Ids are chosen by the connection's monotone counter, so a live
    /// duplicate registration is a caller bug; the newer slot wins and the
    /// abandoned one reports a connection fault.
    pub fn register(self: &Arc<Self>, id: u64) -> Completion {
        let (tx, rx) = mpsc::channel();
        {
            let mut inner = self.inner.lock().unwrap();
            if let Some(err) = &inner.dead {
                let _ = tx.send(Err(err.clone()));
            } else {
                inner.slots.insert(id, tx);
            }
        }
        Completion {
            id,
            rx,
            table: Arc::clone(self),
            registered: Instant::now(),
        }
    }

    /// Routes `result` to the slot registered under `id`. Returns `false`
    /// when no such slot exists (stray, duplicate or abandoned id) — the
    /// response is discarded rather than misdelivered.
    pub fn complete(&self, id: u64, result: Result<Response, TransportError>) -> bool {
        let slot = self.inner.lock().unwrap().slots.remove(&id);
        match slot {
            // A send can only fail when the waiter gave up (deadline) in
            // the window between our remove and its drop — equivalent to a
            // dropped response, and still not a misdelivery.
            Some(tx) => tx.send(result).is_ok(),
            None => false,
        }
    }

    /// Fails every pending slot with `err` and poisons the table: the
    /// connection is dead, and every registration from now on fails fast.
    pub fn fail_all(&self, err: TransportError) {
        let slots = {
            let mut inner = self.inner.lock().unwrap();
            inner.dead = Some(err.clone());
            std::mem::take(&mut inner.slots)
        };
        for (_, tx) in slots {
            let _ = tx.send(Err(err.clone()));
        }
    }

    /// `true` once [`DemuxTable::fail_all`] has run.
    pub fn is_dead(&self) -> bool {
        self.inner.lock().unwrap().dead.is_some()
    }

    /// Number of registered, uncompleted slots.
    pub fn pending(&self) -> usize {
        self.inner.lock().unwrap().slots.len()
    }
}

/// One request's pending response on a multiplexed connection.
#[must_use = "a completion must be waited on to observe the response"]
pub struct Completion {
    id: u64,
    rx: mpsc::Receiver<Result<Response, TransportError>>,
    table: Arc<DemuxTable>,
    registered: Instant,
}

impl Completion {
    /// The frame id this completion waits for.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the response arrives or `deadline` (measured from
    /// registration) passes. A deadline expiry abandons the slot and
    /// reports a *connection fault* — the caller's failover path treats
    /// the wedged replica like a dead one — without touching any other
    /// slot on the connection.
    pub fn wait(self, deadline: Duration) -> Result<Response, TransportError> {
        let remaining = deadline.saturating_sub(self.registered.elapsed());
        match self.rx.recv_timeout(remaining) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Deregister so a late response is discarded, not leaked.
                self.table.inner.lock().unwrap().slots.remove(&self.id);
                Err(TransportError::Connection(format!(
                    "request {} exceeded its {deadline:?} deadline",
                    self.id
                )))
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(TransportError::Connection(
                "connection closed before the response frame".into(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Heartbeat;

    fn pong(epoch: u64) -> Response {
        Response::Pong(Heartbeat { epoch })
    }

    fn epoch_of(resp: Response) -> u64 {
        match resp {
            Response::Pong(hb) => hb.epoch,
            other => panic!("not a pong: {other:?}"),
        }
    }

    #[test]
    fn out_of_order_completion_reaches_the_right_slots() {
        let table = Arc::new(DemuxTable::new());
        let a = table.register(1);
        let b = table.register(2);
        let c = table.register(3);
        assert!(table.complete(2, Ok(pong(22))));
        assert!(table.complete(3, Ok(pong(33))));
        assert!(table.complete(1, Ok(pong(11))));
        assert_eq!(epoch_of(c.wait(Duration::from_secs(1)).unwrap()), 33);
        assert_eq!(epoch_of(a.wait(Duration::from_secs(1)).unwrap()), 11);
        assert_eq!(epoch_of(b.wait(Duration::from_secs(1)).unwrap()), 22);
        assert_eq!(table.pending(), 0);
    }

    #[test]
    fn strays_and_duplicates_are_discarded_not_misdelivered() {
        let table = Arc::new(DemuxTable::new());
        let a = table.register(1);
        assert!(!table.complete(99, Ok(pong(0))), "stray id");
        assert!(table.complete(1, Ok(pong(1))));
        assert!(!table.complete(1, Ok(pong(2))), "duplicate id");
        assert_eq!(epoch_of(a.wait(Duration::from_secs(1)).unwrap()), 1);
    }

    #[test]
    fn wedged_slot_times_out_without_stalling_others() {
        let table = Arc::new(DemuxTable::new());
        let wedged = table.register(1);
        let fine = table.register(2);
        assert!(table.complete(2, Ok(pong(2))));
        // The unwedged slot answers immediately…
        assert_eq!(epoch_of(fine.wait(Duration::from_secs(1)).unwrap()), 2);
        // …while the wedged one faults at its own deadline.
        let err = wedged.wait(Duration::from_millis(5)).unwrap_err();
        assert!(err.is_fault(), "{err:?}");
        assert_eq!(table.pending(), 0, "abandoned slot deregistered");
        // A late response for the abandoned id is discarded.
        assert!(!table.complete(1, Ok(pong(1))));
    }

    #[test]
    fn fail_all_fails_pending_and_poisons_later_registrations() {
        let table = Arc::new(DemuxTable::new());
        let a = table.register(1);
        table.fail_all(TransportError::Connection("died".into()));
        assert!(a.wait(Duration::from_secs(1)).unwrap_err().is_fault());
        assert!(table.is_dead());
        let late = table.register(2);
        assert!(late.wait(Duration::from_secs(1)).unwrap_err().is_fault());
        assert_eq!(table.pending(), 0);
    }
}
