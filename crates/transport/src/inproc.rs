//! The loopback transport: a replica in the same process, reached through
//! the **full** encode/decode path — every operation serializes its request
//! frame (stamped with a fresh frame id, mirroring the TCP mux), decodes
//! it server-side, dispatches, serializes the response and decodes it
//! client-side verifying the echoed id, so in-process deployments (and the
//! fault-injection test suites built on them) exercise byte-for-byte the
//! same protocol as TCP ones.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use kosr_core::Query;
use kosr_service::{KosrService, Update, UpdateReceipt};

use crate::host::handle_request;
use crate::protocol::{
    decode_request, decode_response, encode_request, encode_response, Heartbeat, MemberCounts,
    ProtocolError, RemoteResponse, Request, Response, SnapshotBlob,
};
use crate::{ShardTransport, TransportError, TransportTicket};

/// Maps a decoded response onto the query call's result.
pub(crate) fn expect_query(resp: Response) -> Result<RemoteResponse, TransportError> {
    match resp {
        Response::Query(Ok(rr)) => Ok(rr),
        Response::Query(Err(e)) => Err(TransportError::Service(e)),
        Response::Fault(e) => Err(TransportError::Protocol(e)),
        _ => Err(unexpected()),
    }
}

pub(crate) fn expect_update(resp: Response) -> Result<UpdateReceipt, TransportError> {
    match resp {
        Response::Update(Ok(receipt)) => Ok(receipt),
        Response::Update(Err(e)) => Err(TransportError::Update(e)),
        Response::Fault(e) => Err(TransportError::Protocol(e)),
        _ => Err(unexpected()),
    }
}

pub(crate) fn expect_pong(resp: Response) -> Result<Heartbeat, TransportError> {
    match resp {
        Response::Pong(hb) => Ok(hb),
        Response::Fault(e) => Err(TransportError::Protocol(e)),
        _ => Err(unexpected()),
    }
}

pub(crate) fn expect_member_counts(resp: Response) -> Result<MemberCounts, TransportError> {
    match resp {
        Response::MemberCounts(mc) => Ok(mc),
        Response::Fault(e) => Err(TransportError::Protocol(e)),
        _ => Err(unexpected()),
    }
}

pub(crate) fn expect_snapshot(resp: Response) -> Result<SnapshotBlob, TransportError> {
    match resp {
        Response::Snapshot(blob) => Ok(blob),
        Response::Fault(e) => Err(TransportError::Protocol(e)),
        _ => Err(unexpected()),
    }
}

pub(crate) fn expect_install(resp: Response) -> Result<Heartbeat, TransportError> {
    match resp {
        Response::Install(Ok(hb)) => Ok(hb),
        Response::Install(Err(e)) => Err(TransportError::Snapshot(e)),
        Response::Fault(e) => Err(TransportError::Protocol(e)),
        _ => Err(unexpected()),
    }
}

pub(crate) fn expect_compacted(resp: Response) -> Result<u64, TransportError> {
    match resp {
        Response::Compacted { head } => Ok(head),
        Response::CursorTooOld { cursor, head } => {
            Err(TransportError::CursorTooOld { cursor, head })
        }
        Response::Fault(e) => Err(TransportError::Protocol(e)),
        _ => Err(unexpected()),
    }
}

fn unexpected() -> TransportError {
    TransportError::Protocol(ProtocolError::Corrupt("unexpected response kind"))
}

fn killed_error() -> TransportError {
    TransportError::Connection("replica killed".into())
}

/// A handle that severs (and restores) an [`InProcTransport`]'s virtual
/// connection — the test suites' replica kill/restart lever.
#[derive(Clone, Debug)]
pub struct KillSwitch {
    flag: Arc<AtomicBool>,
}

impl KillSwitch {
    /// Severs the connection: every in-flight and future operation on the
    /// transport reports a connection fault.
    pub fn kill(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Restores the connection. The replica's *service* kept running (only
    /// the channel was cut), so its state is whatever updates reached it —
    /// recovery replay is the caller's responsibility.
    pub fn revive(&self) {
        self.flag.store(false, Ordering::Release);
    }

    /// `true` while severed.
    pub fn is_killed(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A replica in this process, behind the wire codec.
pub struct InProcTransport {
    service: Arc<KosrService>,
    killed: Arc<AtomicBool>,
    next_id: AtomicU64,
}

impl InProcTransport {
    /// Wraps `service` as a loopback replica.
    pub fn new(service: Arc<KosrService>) -> InProcTransport {
        InProcTransport {
            service,
            killed: Arc::new(AtomicBool::new(false)),
            next_id: AtomicU64::new(1),
        }
    }

    /// The wrapped service (introspection and tests).
    pub fn service(&self) -> &Arc<KosrService> {
        &self.service
    }

    /// A handle that can sever/restore this transport's connection.
    pub fn kill_switch(&self) -> KillSwitch {
        KillSwitch {
            flag: Arc::clone(&self.killed),
        }
    }

    fn fresh_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Encode → decode → dispatch → encode → decode, all in-process. The
    /// frame id must survive the full loop — the same invariant the TCP
    /// demux relies on to route responses.
    fn roundtrip(&self, req: Request) -> Result<Response, TransportError> {
        if self.killed.load(Ordering::Acquire) {
            return Err(killed_error());
        }
        let id = self.fresh_id();
        let frame = encode_request(id, &req);
        let (decoded_id, req) = decode_request(&frame)?;
        let resp = handle_request(&self.service, req);
        let frame = encode_response(decoded_id, &resp);
        let (echoed_id, resp) = decode_response(&frame)?;
        if echoed_id != id {
            return Err(TransportError::Protocol(ProtocolError::Corrupt(
                "response frame id does not match the request",
            )));
        }
        Ok(resp)
    }
}

impl ShardTransport for InProcTransport {
    fn submit(&self, query: Query) -> TransportTicket {
        if self.killed.load(Ordering::Acquire) {
            return TransportTicket::ready(Err(killed_error()));
        }
        let id = self.fresh_id();
        let frame = encode_request(id, &Request::Query(query));
        let decoded = match decode_request(&frame) {
            Ok((_, Request::Query(q))) => q,
            Ok(_) => return TransportTicket::ready(Err(unexpected())),
            Err(e) => return TransportTicket::ready(Err(e.into())),
        };
        // Keep the service's own asynchrony: enqueue now, block in wait().
        let pending = self.service.submit(decoded);
        let killed = Arc::clone(&self.killed);
        TransportTicket::new(move || {
            let result = pending.and_then(|t| t.wait()).map(|resp| RemoteResponse {
                outcome: resp.outcome,
                cached: resp.cached,
            });
            if killed.load(Ordering::Acquire) {
                // The connection died before the response frame arrived.
                return Err(killed_error());
            }
            let frame = encode_response(id, &Response::Query(result));
            let (echoed_id, resp) = decode_response(&frame)?;
            if echoed_id != id {
                return Err(TransportError::Protocol(ProtocolError::Corrupt(
                    "response frame id does not match the request",
                )));
            }
            expect_query(resp)
        })
    }

    fn apply_update(&self, update: &Update) -> Result<UpdateReceipt, TransportError> {
        expect_update(self.roundtrip(Request::Update(*update))?)
    }

    fn ping(&self) -> Result<Heartbeat, TransportError> {
        expect_pong(self.roundtrip(Request::Ping)?)
    }

    fn member_counts(&self) -> Result<MemberCounts, TransportError> {
        expect_member_counts(self.roundtrip(Request::MemberCounts)?)
    }

    fn snapshot(&self) -> Result<SnapshotBlob, TransportError> {
        expect_snapshot(self.roundtrip(Request::Snapshot)?)
    }

    fn install_snapshot(&self, blob: &SnapshotBlob) -> Result<Heartbeat, TransportError> {
        expect_install(self.roundtrip(Request::InstallSnapshot(blob.clone()))?)
    }

    fn compact(&self, through: u64) -> Result<u64, TransportError> {
        expect_compacted(self.roundtrip(Request::Compact { through })?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_core::figure1::figure1;
    use kosr_core::IndexedGraph;
    use kosr_service::{ServiceConfig, ServiceError};

    fn transport() -> (InProcTransport, kosr_core::figure1::Figure1) {
        let fx = figure1();
        let ig = Arc::new(IndexedGraph::build_default(fx.graph.clone()));
        let svc = Arc::new(KosrService::new(
            ig,
            ServiceConfig {
                workers: 2,
                ..Default::default()
            },
        ));
        (InProcTransport::new(svc), fx)
    }

    #[test]
    fn queries_flow_through_the_codec() {
        let (t, fx) = transport();
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        let resp = t.submit(q.clone()).wait().unwrap();
        assert_eq!(resp.outcome.costs(), vec![20, 21, 22]);
        assert!(!resp.cached);
        let again = t.submit(q).wait().unwrap();
        assert!(again.cached, "cache flag survives the wire");
    }

    #[test]
    fn rejections_come_back_typed() {
        let (t, fx) = transport();
        let err = t
            .submit(Query::new(fx.s, fx.t, vec![fx.ma], 0))
            .wait()
            .unwrap_err();
        assert_eq!(
            err,
            TransportError::Service(ServiceError::InvalidQuery(kosr_core::QueryError::ZeroK))
        );
        assert!(
            !err.is_fault(),
            "deterministic rejections must not fail over"
        );
    }

    #[test]
    fn updates_heartbeats_counts_and_snapshots_work() {
        let (t, fx) = transport();
        assert_eq!(t.ping().unwrap().epoch, 0);
        let mc = t.member_counts().unwrap();
        assert_eq!(mc.num_vertices as usize, fx.graph.num_vertices());
        assert_eq!(mc.counts.len(), 3);

        let gone = fx.graph.categories().vertices_of(fx.re)[0];
        let receipt = t
            .apply_update(&Update::RemoveMembership {
                vertex: gone,
                category: fx.re,
            })
            .unwrap();
        assert!(receipt.applied);
        assert_eq!(t.ping().unwrap().epoch, 1);
        let mc2 = t.member_counts().unwrap();
        assert_eq!(mc2.epoch, 1);
        assert_eq!(mc2.counts[fx.re.index()], mc.counts[fx.re.index()] - 1);

        let blob = t.snapshot().unwrap();
        assert_eq!(blob.epoch, 1);
        let replica = IndexedGraph::decode_snapshot(&blob.bytes).unwrap();
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        assert_eq!(
            replica
                .run_canonical(&q, kosr_core::Method::Sk, u64::MAX)
                .witnesses,
            t.service()
                .indexed_graph()
                .run_canonical(&q, kosr_core::Method::Sk, u64::MAX)
                .witnesses
        );
    }

    #[test]
    fn kill_switch_severs_and_restores() {
        let (t, fx) = transport();
        let switch = t.kill_switch();
        switch.kill();
        assert!(switch.is_killed());
        let q = Query::new(fx.s, fx.t, vec![fx.ma], 1);
        assert!(t.submit(q.clone()).wait().unwrap_err().is_fault());
        assert!(t.ping().unwrap_err().is_fault());
        assert!(t
            .apply_update(&Update::InsertMembership {
                vertex: fx.s,
                category: fx.ma,
            })
            .unwrap_err()
            .is_fault());
        switch.revive();
        assert!(t.submit(q).wait().is_ok());
        assert_eq!(t.ping().unwrap().epoch, 0, "service state survived the cut");
    }

    #[test]
    fn kill_mid_flight_faults_the_ticket() {
        let (t, fx) = transport();
        let switch = t.kill_switch();
        let ticket = t.submit(Query::new(fx.s, fx.t, vec![fx.ma], 1));
        switch.kill();
        assert!(ticket.wait().unwrap_err().is_fault());
    }
}
