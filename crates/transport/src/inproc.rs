//! The loopback transport: a replica in the same process, reached through
//! the **full** encode/decode path — every operation serializes its request
//! frame (stamped with a fresh frame id, mirroring the TCP mux), decodes
//! it server-side, dispatches, serializes the response and decodes it
//! client-side verifying the echoed id, so in-process deployments (and the
//! fault-injection test suites built on them) exercise byte-for-byte the
//! same protocol as TCP ones.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use kosr_core::Query;
use kosr_service::{KosrService, TraceContext, Update, UpdateReceipt};

use crate::host::handle_request;
use crate::protocol::{
    adapt_blob_for_peer, decode_request_limited, decode_response, encode_request, encode_response,
    Heartbeat, MemberCounts, ProtocolError, RemoteResponse, Request, Response, SnapshotBlob,
    MIN_PROTOCOL_VERSION, PROTOCOL_VERSION, SNAPSHOT_V2_VERSION,
};
use crate::{ShardTransport, TransportError, TransportTicket};

/// Maps a decoded response onto the query call's result.
pub(crate) fn expect_query(resp: Response) -> Result<RemoteResponse, TransportError> {
    match resp {
        Response::Query(Ok(rr)) => Ok(rr),
        Response::Query(Err(e)) => Err(TransportError::Service(e)),
        Response::Fault(e) => Err(TransportError::Protocol(e)),
        _ => Err(unexpected()),
    }
}

pub(crate) fn expect_update(resp: Response) -> Result<UpdateReceipt, TransportError> {
    match resp {
        Response::Update(Ok(receipt)) => Ok(receipt),
        Response::Update(Err(e)) => Err(TransportError::Update(e)),
        Response::Fault(e) => Err(TransportError::Protocol(e)),
        _ => Err(unexpected()),
    }
}

pub(crate) fn expect_pong(resp: Response) -> Result<Heartbeat, TransportError> {
    match resp {
        Response::Pong(hb) => Ok(hb),
        Response::Fault(e) => Err(TransportError::Protocol(e)),
        _ => Err(unexpected()),
    }
}

pub(crate) fn expect_pong_events(
    resp: Response,
) -> Result<(Heartbeat, u64, Vec<kosr_service::Event>), TransportError> {
    match resp {
        Response::PongEvents {
            heartbeat,
            next_seq,
            events,
        } => Ok((heartbeat, next_seq, events)),
        Response::Fault(e) => Err(TransportError::Protocol(e)),
        _ => Err(unexpected()),
    }
}

pub(crate) fn expect_member_counts(resp: Response) -> Result<MemberCounts, TransportError> {
    match resp {
        Response::MemberCounts(mc) => Ok(mc),
        Response::Fault(e) => Err(TransportError::Protocol(e)),
        _ => Err(unexpected()),
    }
}

pub(crate) fn expect_snapshot(resp: Response) -> Result<SnapshotBlob, TransportError> {
    match resp {
        Response::Snapshot(blob) => Ok(blob),
        Response::Fault(e) => Err(TransportError::Protocol(e)),
        _ => Err(unexpected()),
    }
}

pub(crate) fn expect_install(resp: Response) -> Result<Heartbeat, TransportError> {
    match resp {
        Response::Install(Ok(hb)) => Ok(hb),
        Response::Install(Err(e)) => Err(TransportError::Snapshot(e)),
        Response::Fault(e) => Err(TransportError::Protocol(e)),
        _ => Err(unexpected()),
    }
}

pub(crate) fn expect_compacted(resp: Response) -> Result<u64, TransportError> {
    match resp {
        Response::Compacted { head } => Ok(head),
        Response::CursorTooOld { cursor, head } => {
            Err(TransportError::CursorTooOld { cursor, head })
        }
        Response::Fault(e) => Err(TransportError::Protocol(e)),
        _ => Err(unexpected()),
    }
}

fn unexpected() -> TransportError {
    TransportError::Protocol(ProtocolError::Corrupt("unexpected response kind"))
}

fn killed_error() -> TransportError {
    TransportError::Connection("replica killed".into())
}

/// A handle that severs (and restores) an [`InProcTransport`]'s virtual
/// connection — the test suites' replica kill/restart lever.
#[derive(Clone, Debug)]
pub struct KillSwitch {
    flag: Arc<AtomicBool>,
}

impl KillSwitch {
    /// Severs the connection: every in-flight and future operation on the
    /// transport reports a connection fault.
    pub fn kill(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Restores the connection. The replica's *service* kept running (only
    /// the channel was cut), so its state is whatever updates reached it —
    /// recovery replay is the caller's responsibility.
    pub fn revive(&self) {
        self.flag.store(false, Ordering::Release);
    }

    /// `true` while severed.
    pub fn is_killed(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A replica in this process, behind the wire codec.
pub struct InProcTransport {
    service: Arc<KosrService>,
    killed: Arc<AtomicBool>,
    next_id: AtomicU64,
    /// The protocol version the simulated replica *speaks* — capping it at
    /// 2 makes this loopback behave exactly like a v2-era binary (traced
    /// frames fault typed, Hello is an unknown kind), which is what the
    /// mixed-fleet interop suites run against.
    peer_version: u8,
    /// The peer version learned through [`Request::Hello`]; 0 until the
    /// first traced submission negotiates.
    negotiated: AtomicU8,
}

impl InProcTransport {
    /// Wraps `service` as a loopback replica.
    pub fn new(service: Arc<KosrService>) -> InProcTransport {
        InProcTransport {
            service,
            killed: Arc::new(AtomicBool::new(false)),
            next_id: AtomicU64::new(1),
            peer_version: PROTOCOL_VERSION,
            negotiated: AtomicU8::new(0),
        }
    }

    /// Wraps `service` as a loopback replica that speaks at most
    /// `version` — the v2-peer simulation lever for interop tests.
    pub fn with_max_version(service: Arc<KosrService>, version: u8) -> InProcTransport {
        let mut t = InProcTransport::new(service);
        t.peer_version = version.clamp(MIN_PROTOCOL_VERSION, PROTOCOL_VERSION);
        t
    }

    /// Learns the peer's protocol version (cached after the first probe):
    /// a Hello roundtrip that a v3 peer answers with its version and a v2
    /// peer faults with `UnknownKind` — the negotiation the doc block of
    /// [`crate::protocol`] describes.
    fn peer_protocol_version(&self) -> u8 {
        let cached = self.negotiated.load(Ordering::Acquire);
        if cached != 0 {
            return cached;
        }
        let learned = match self.roundtrip(Request::Hello {
            max_version: PROTOCOL_VERSION,
        }) {
            Ok(Response::Hello { max_version }) => {
                max_version.clamp(MIN_PROTOCOL_VERSION, PROTOCOL_VERSION)
            }
            // A typed fault (UnknownKind from a v2 peer): the peer
            // answered, and its answer says v2. Cacheable.
            Ok(_) => MIN_PROTOCOL_VERSION,
            // Channel trouble — no answer at all. Fall back to v2 for
            // this submission but do NOT cache: the peer may be v3.
            Err(_) => return MIN_PROTOCOL_VERSION,
        };
        self.negotiated.store(learned, Ordering::Release);
        learned
    }

    /// The wrapped service (introspection and tests).
    pub fn service(&self) -> &Arc<KosrService> {
        &self.service
    }

    /// A handle that can sever/restore this transport's connection.
    pub fn kill_switch(&self) -> KillSwitch {
        KillSwitch {
            flag: Arc::clone(&self.killed),
        }
    }

    fn fresh_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Encode → decode → dispatch → encode → decode, all in-process. The
    /// frame id must survive the full loop — the same invariant the TCP
    /// demux relies on to route responses.
    fn roundtrip(&self, req: Request) -> Result<Response, TransportError> {
        if self.killed.load(Ordering::Acquire) {
            return Err(killed_error());
        }
        let id = self.fresh_id();
        let frame = encode_request(id, &req);
        // Server side, decoding as the (possibly version-capped) peer
        // would: an undecodable frame is answered with a typed Fault —
        // the same contract the TCP server keeps.
        let resp = match decode_request_limited(&frame, self.peer_version) {
            Ok((_, req)) => handle_request(&self.service, req),
            Err(e) => Response::Fault(e),
        };
        // A version-capped simulation must *answer Hello* as the old
        // binary would — with its own (capped) version, not this build's.
        let resp = match resp {
            Response::Hello { max_version } => Response::Hello {
                max_version: max_version.min(self.peer_version),
            },
            other => other,
        };
        let frame = encode_response(id, &resp);
        let (echoed_id, resp) = decode_response(&frame)?;
        if echoed_id != id {
            return Err(TransportError::Protocol(ProtocolError::Corrupt(
                "response frame id does not match the request",
            )));
        }
        Ok(resp)
    }

    /// The shared submit path. With a (sampled) context the request goes
    /// out as a traced v3 frame and the response carries replica spans;
    /// without one it is byte-for-byte the v2 exchange.
    fn submit_inner(&self, query: Query, ctx: Option<TraceContext>) -> TransportTicket {
        if self.killed.load(Ordering::Acquire) {
            return TransportTicket::ready(Err(killed_error()));
        }
        let id = self.fresh_id();
        let req = match ctx {
            Some(c) => Request::QueryTraced(query, c),
            None => Request::Query(query),
        };
        let frame = encode_request(id, &req);
        let (decoded, ctx) = match decode_request_limited(&frame, self.peer_version) {
            Ok((_, Request::Query(q))) => (q, None),
            Ok((_, Request::QueryTraced(q, c))) => (q, Some(c)),
            Ok(_) => return TransportTicket::ready(Err(unexpected())),
            Err(e) => return TransportTicket::ready(Err(e.into())),
        };
        // Keep the service's own asynchrony: enqueue now, block in wait().
        let pending = self.service.submit_traced(decoded, ctx);
        let killed = Arc::clone(&self.killed);
        TransportTicket::new(move || {
            let result = pending.and_then(|t| t.wait()).map(|resp| RemoteResponse {
                outcome: resp.outcome,
                cached: resp.cached,
                spans: resp.spans,
            });
            if killed.load(Ordering::Acquire) {
                // The connection died before the response frame arrived.
                return Err(killed_error());
            }
            let frame = encode_response(id, &Response::Query(result));
            let (echoed_id, resp) = decode_response(&frame)?;
            if echoed_id != id {
                return Err(TransportError::Protocol(ProtocolError::Corrupt(
                    "response frame id does not match the request",
                )));
            }
            expect_query(resp)
        })
    }
}

impl ShardTransport for InProcTransport {
    fn submit(&self, query: Query) -> TransportTicket {
        self.submit_inner(query, None)
    }

    fn submit_traced(&self, query: Query, ctx: Option<TraceContext>) -> TransportTicket {
        // Only sampled contexts are worth a traced frame; and only peers
        // that negotiated v3 can decode one.
        let ctx = ctx.filter(|c| c.sampled);
        if ctx.is_some() && self.peer_protocol_version() < 3 {
            return self.submit_inner(query, None);
        }
        self.submit_inner(query, ctx)
    }

    fn apply_update(&self, update: &Update) -> Result<UpdateReceipt, TransportError> {
        expect_update(self.roundtrip(Request::Update(*update))?)
    }

    fn ping(&self) -> Result<Heartbeat, TransportError> {
        expect_pong(self.roundtrip(Request::Ping)?)
    }

    fn member_counts(&self) -> Result<MemberCounts, TransportError> {
        expect_member_counts(self.roundtrip(Request::MemberCounts)?)
    }

    fn snapshot(&self) -> Result<SnapshotBlob, TransportError> {
        // Peers that negotiated v5 serve the flat-arena blob (O(bytes)
        // install); older ones only know the legacy v1 pull.
        let req = if self.peer_protocol_version() >= SNAPSHOT_V2_VERSION {
            Request::SnapshotV2
        } else {
            Request::Snapshot
        };
        expect_snapshot(self.roundtrip(req)?)
    }

    fn install_snapshot(&self, blob: &SnapshotBlob) -> Result<Heartbeat, TransportError> {
        // Pushing a v2 blob at a pre-v5 peer: transcode down client-side
        // so the old binary installs it natively.
        let blob = adapt_blob_for_peer(blob, self.peer_protocol_version())
            .map_err(TransportError::Snapshot)?;
        expect_install(self.roundtrip(Request::InstallSnapshot(blob))?)
    }

    fn compact(&self, through: u64) -> Result<u64, TransportError> {
        expect_compacted(self.roundtrip(Request::Compact { through })?)
    }

    fn ping_events(
        &self,
        since_seq: u64,
    ) -> Result<(Heartbeat, u64, Vec<kosr_service::Event>), TransportError> {
        // Only peers that negotiated v4 can decode the event-forwarding
        // probe; older ones get the plain heartbeat with an empty drain.
        if self.peer_protocol_version() < 4 {
            return self.ping().map(|hb| (hb, 0, Vec::new()));
        }
        expect_pong_events(self.roundtrip(Request::PingEvents { since_seq })?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_core::figure1::figure1;
    use kosr_core::IndexedGraph;
    use kosr_service::{ServiceConfig, ServiceError};

    fn transport() -> (InProcTransport, kosr_core::figure1::Figure1) {
        let fx = figure1();
        let ig = Arc::new(IndexedGraph::build_default(fx.graph.clone()));
        let svc = Arc::new(KosrService::new(
            ig,
            ServiceConfig {
                workers: 2,
                ..Default::default()
            },
        ));
        (InProcTransport::new(svc), fx)
    }

    #[test]
    fn queries_flow_through_the_codec() {
        let (t, fx) = transport();
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        let resp = t.submit(q.clone()).wait().unwrap();
        assert_eq!(resp.outcome.costs(), vec![20, 21, 22]);
        assert!(!resp.cached);
        let again = t.submit(q).wait().unwrap();
        assert!(again.cached, "cache flag survives the wire");
    }

    #[test]
    fn rejections_come_back_typed() {
        let (t, fx) = transport();
        let err = t
            .submit(Query::new(fx.s, fx.t, vec![fx.ma], 0))
            .wait()
            .unwrap_err();
        assert_eq!(
            err,
            TransportError::Service(ServiceError::InvalidQuery(kosr_core::QueryError::ZeroK))
        );
        assert!(
            !err.is_fault(),
            "deterministic rejections must not fail over"
        );
    }

    #[test]
    fn updates_heartbeats_counts_and_snapshots_work() {
        let (t, fx) = transport();
        assert_eq!(t.ping().unwrap().epoch, 0);
        let mc = t.member_counts().unwrap();
        assert_eq!(mc.num_vertices as usize, fx.graph.num_vertices());
        assert_eq!(mc.counts.len(), 3);

        let gone = fx.graph.categories().vertices_of(fx.re)[0];
        let receipt = t
            .apply_update(&Update::RemoveMembership {
                vertex: gone,
                category: fx.re,
            })
            .unwrap();
        assert!(receipt.applied);
        assert_eq!(t.ping().unwrap().epoch, 1);
        let mc2 = t.member_counts().unwrap();
        assert_eq!(mc2.epoch, 1);
        assert_eq!(mc2.counts[fx.re.index()], mc.counts[fx.re.index()] - 1);

        let blob = t.snapshot().unwrap();
        assert_eq!(blob.epoch, 1);
        let replica = IndexedGraph::decode_snapshot(&blob.bytes).unwrap();
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        assert_eq!(
            replica
                .run_canonical(&q, kosr_core::Method::Sk, u64::MAX)
                .witnesses,
            t.service()
                .indexed_graph()
                .run_canonical(&q, kosr_core::Method::Sk, u64::MAX)
                .witnesses
        );
    }

    #[test]
    fn kill_switch_severs_and_restores() {
        let (t, fx) = transport();
        let switch = t.kill_switch();
        switch.kill();
        assert!(switch.is_killed());
        let q = Query::new(fx.s, fx.t, vec![fx.ma], 1);
        assert!(t.submit(q.clone()).wait().unwrap_err().is_fault());
        assert!(t.ping().unwrap_err().is_fault());
        assert!(t
            .apply_update(&Update::InsertMembership {
                vertex: fx.s,
                category: fx.ma,
            })
            .unwrap_err()
            .is_fault());
        switch.revive();
        assert!(t.submit(q).wait().is_ok());
        assert_eq!(t.ping().unwrap().epoch, 0, "service state survived the cut");
    }

    #[test]
    fn traced_submission_returns_replica_spans() {
        let (t, fx) = transport();
        let ctx = TraceContext::root(kosr_service::TraceId(7), true);
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        let resp = t.submit_traced(q.clone(), Some(ctx)).wait().unwrap();
        assert_eq!(resp.outcome.costs(), vec![20, 21, 22]);
        let root = resp
            .spans
            .iter()
            .find(|s| s.name == "replica")
            .expect("replica root span");
        assert_eq!(root.parent, Some(ctx.parent_span));
        assert!(resp.spans.iter().any(|s| s.name == "execute"));
        // Unsampled contexts cost nothing: the plain v2 exchange.
        let unsampled = TraceContext::root(kosr_service::TraceId(8), false);
        let resp = t.submit_traced(q, Some(unsampled)).wait().unwrap();
        assert!(resp.spans.is_empty());
    }

    #[test]
    fn v2_peer_negotiates_down_and_still_answers() {
        let fx = figure1();
        let ig = Arc::new(IndexedGraph::build_default(fx.graph.clone()));
        let svc = Arc::new(KosrService::new(
            ig,
            ServiceConfig {
                workers: 1,
                ..Default::default()
            },
        ));
        let t = InProcTransport::with_max_version(svc, 2);
        let ctx = TraceContext::root(kosr_service::TraceId(9), true);
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        // The Hello probe faults typed, the transport falls back to the
        // untraced frame, and the answer is still the canonical one.
        let resp = t.submit_traced(q, Some(ctx)).wait().unwrap();
        assert_eq!(resp.outcome.costs(), vec![20, 21, 22]);
        assert!(resp.spans.is_empty(), "a v2 peer cannot produce spans");
        assert_eq!(t.negotiated.load(Ordering::Acquire), 2, "cached as v2");
    }

    #[test]
    fn ping_events_drains_the_replica_journal_with_a_cursor() {
        let (t, fx) = transport();
        let (hb, next, events) = t.ping_events(0).unwrap();
        assert_eq!(hb.epoch, 0);
        assert_eq!(next, 0);
        assert!(events.is_empty(), "nothing journaled yet");

        // An applied update journals an epoch swap replica-side.
        let gone = fx.graph.categories().vertices_of(fx.re)[0];
        t.apply_update(&Update::RemoveMembership {
            vertex: gone,
            category: fx.re,
        })
        .unwrap();
        let (hb, next, events) = t.ping_events(0).unwrap();
        assert_eq!(hb.epoch, 1);
        assert_eq!(next, 1);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, kosr_service::EventKind::EpochSwap);
        // The cursor advances: a second probe from `next` drains nothing.
        let (_, _, rest) = t.ping_events(next).unwrap();
        assert!(rest.is_empty(), "cursor excludes already-forwarded events");

        // A v2 peer degrades to the plain heartbeat with an empty drain.
        let v2 = InProcTransport::with_max_version(Arc::clone(t.service()), 2);
        let (hb, next, events) = v2.ping_events(0).unwrap();
        assert_eq!(hb.epoch, 1);
        assert_eq!(next, 0);
        assert!(events.is_empty());
    }

    #[test]
    fn kill_mid_flight_faults_the_ticket() {
        let (t, fx) = transport();
        let switch = t.kill_switch();
        let ticket = t.submit(Query::new(fx.s, fx.t, vec![fx.ma], 1));
        switch.kill();
        assert!(ticket.wait().unwrap_err().is_fault());
    }
}
