//! The socket transport, **multiplexed**: one connection carries any
//! number of in-flight requests, each stamped with a monotone frame id.
//!
//! Client side, a [`TcpTransport`] owns (at most) one live connection: a
//! **writer thread** drains a frame queue onto the socket and a **reader
//! thread** demultiplexes response frames into per-request completion
//! slots ([`crate::mux::DemuxTable`]). Every request carries a deadline,
//! so a wedged replica turns into a per-request connection *fault* (and a
//! failover upstream) without stalling unrelated in-flight queries on the
//! same connection. A dead connection fails every pending slot; the next
//! request re-dials.
//!
//! Server side, a [`TcpServer`] reads frames per connection and answers
//! each request on its own handler thread behind a shared writer lock, so
//! responses interleave in completion order — a slow query does not block
//! a heartbeat that arrived after it.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Duration;

use std::sync::atomic::AtomicU8;

use kosr_core::Query;
use kosr_service::{KosrService, TraceContext, Update, UpdateReceipt};

use crate::host::handle_request;
use crate::inproc::{
    expect_compacted, expect_install, expect_member_counts, expect_pong, expect_pong_events,
    expect_query, expect_snapshot, expect_update,
};
use crate::mux::DemuxTable;
use crate::protocol::{
    adapt_blob_for_peer, decode_request, decode_response, encode_request, encode_response,
    peek_frame_id, read_frame, write_frame, Heartbeat, MemberCounts, Request, Response,
    SnapshotBlob, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION, SNAPSHOT_V2_VERSION,
};
use crate::{ShardTransport, TransportError, TransportTicket};

/// How often blocked server reads wake up to check for shutdown.
const POLL: Duration = Duration::from_millis(25);

/// Default per-request deadline: generous enough for the heaviest query a
/// planner admits, small enough that a wedged replica becomes a fault
/// (and a failover) instead of a hang.
const REQUEST_DEADLINE: Duration = Duration::from_secs(30);

/// Reads exactly `buf.len()` bytes, riding out read timeouts (checking the
/// shutdown flag between chunks) without ever losing partially read bytes.
/// `Ok(false)` on clean EOF before the first byte.
fn read_exact_polled(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(false)
                } else {
                    Err(std::io::ErrorKind::UnexpectedEof.into())
                };
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if shutdown.load(Ordering::Acquire) {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::ConnectionAborted,
                        "server shutting down",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

fn serve_connection(mut stream: TcpStream, service: Arc<KosrService>, shutdown: Arc<AtomicBool>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    // Responses are written by per-request handler threads in completion
    // order; the mutex keeps frames whole, the frame ids keep them
    // routable.
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut handlers: Vec<thread::JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::Acquire) {
        let mut len = [0u8; 4];
        match read_exact_polled(&mut stream, &mut len, &shutdown) {
            Ok(true) => {}
            _ => break, // clean EOF, peer reset, or shutdown
        }
        let len = u32::from_le_bytes(len) as usize;
        if len > crate::protocol::MAX_FRAME_LEN {
            break; // length framing desynced: the connection is untrusted
        }
        let mut payload = vec![0u8; len];
        if !matches!(
            read_exact_polled(&mut stream, &mut payload, &shutdown),
            Ok(true)
        ) {
            break;
        }
        match decode_request(&payload) {
            Ok((id, req)) => {
                // One handler thread per in-flight request: responses
                // overtake each other freely, so a slow query never
                // convoys a heartbeat behind it.
                handlers.retain(|h| !h.is_finished());
                let service = Arc::clone(&service);
                let writer = Arc::clone(&writer);
                handlers.push(thread::spawn(move || {
                    let resp = handle_request(&service, req);
                    let frame = encode_response(id, &resp);
                    // A write failure means the peer is gone; the reader
                    // loop will notice on its next read.
                    let _ = write_frame(&mut *writer.lock().unwrap(), &frame);
                }));
            }
            Err(e) => {
                // The length framing is still intact (the payload was a
                // whole frame), so a typed fault keeps the connection —
                // and every unrelated in-flight request — alive. Address
                // it with the frame id when the header yielded one.
                let id = peek_frame_id(&payload).unwrap_or(0);
                let frame = encode_response(id, &Response::Fault(e));
                if write_frame(&mut *writer.lock().unwrap(), &frame).is_err() {
                    break;
                }
            }
        }
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// One shard replica served over a loopback TCP socket.
///
/// Dropping the server shuts it down: the accept loop stops, handler
/// threads drain, and every client sees its connection close.
pub struct TcpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<thread::JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `127.0.0.1:0` (an OS-assigned port) and starts serving
    /// `service`.
    pub fn spawn(service: Arc<KosrService>) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let accept_handle = thread::Builder::new()
            .name(format!("kosr-tcp-{}", addr.port()))
            .spawn(move || {
                let mut handlers = Vec::new();
                while !flag.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Reap finished handlers so connection churn
                            // doesn't grow the handle list unboundedly.
                            handlers.retain(|h: &thread::JoinHandle<()>| !h.is_finished());
                            let service = Arc::clone(&service);
                            let flag = Arc::clone(&flag);
                            handlers.push(thread::spawn(move || {
                                serve_connection(stream, service, flag)
                            }));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
                for h in handlers {
                    let _ = h.join();
                }
            })
            .expect("spawn accept loop");
        Ok(TcpServer {
            addr,
            shutdown,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server: new connections are refused, existing handler
    /// threads exit at their next poll, clients see connection faults —
    /// the "replica killed" event of the failover model.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One live multiplexed connection: writer thread + demux reader thread.
struct MuxConn {
    frames: mpsc::Sender<Vec<u8>>,
    table: Arc<DemuxTable>,
    next_id: AtomicU64,
}

impl MuxConn {
    fn dial(addr: SocketAddr, deadline: Duration) -> std::io::Result<Arc<MuxConn>> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        // A peer that stops *reading* (stalled process, full receive
        // buffer) must not park the writer thread forever while the frame
        // queue grows: a timed-out write is a connection fault that tears
        // the mux down, and the next request re-dials.
        let _ = stream.set_write_timeout(Some(deadline.max(Duration::from_millis(1))));
        let mut read_half = stream.try_clone()?;
        let table = Arc::new(DemuxTable::new());
        let (tx, rx) = mpsc::channel::<Vec<u8>>();

        let write_table = Arc::clone(&table);
        thread::Builder::new()
            .name("kosr-mux-writer".into())
            .spawn(move || {
                let mut stream = stream;
                while let Ok(frame) = rx.recv() {
                    if let Err(e) = write_frame(&mut stream, &frame) {
                        write_table.fail_all(conn_err(e));
                        return;
                    }
                }
                // The owning transport dropped the sender: close the write
                // half so the server sees a clean EOF.
                let _ = stream.shutdown(std::net::Shutdown::Both);
            })
            .expect("spawn mux writer");

        let read_table = Arc::clone(&table);
        thread::Builder::new()
            .name("kosr-mux-reader".into())
            .spawn(move || loop {
                match read_frame(&mut read_half) {
                    Ok(Some(payload)) => match decode_response(&payload) {
                        Ok((id, resp)) => {
                            // Unknown ids (stray/duplicate/abandoned) are
                            // discarded by the table, never misdelivered.
                            let _ = read_table.complete(id, Ok(resp));
                        }
                        Err(e) => {
                            // A whole frame that doesn't decode: we can't
                            // tell whose it was, so the stream can no
                            // longer be trusted to route responses.
                            read_table.fail_all(TransportError::Protocol(e));
                            return;
                        }
                    },
                    Ok(None) => {
                        read_table.fail_all(TransportError::Connection(
                            "server closed the connection".into(),
                        ));
                        return;
                    }
                    Err(e) => {
                        read_table.fail_all(conn_err(e));
                        return;
                    }
                }
            })
            .expect("spawn mux reader");

        Ok(Arc::new(MuxConn {
            frames: tx,
            table,
            next_id: AtomicU64::new(1),
        }))
    }

    fn alive(&self) -> bool {
        !self.table.is_dead()
    }

    /// Registers a slot, enqueues the request frame, returns the
    /// completion. Never blocks on the socket.
    fn send(&self, req: &Request) -> crate::mux::Completion {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let completion = self.table.register(id);
        // A send failure means the writer died; fail_all has run (or is
        // about to), which resolves this completion through its slot.
        let _ = self.frames.send(encode_request(id, req));
        completion
    }
}

/// A multiplexed client for one replica's [`TcpServer`].
///
/// All requests share one connection; submissions return immediately and
/// any number may be in flight, interleaved by frame id. A failed
/// connection is torn down (failing its in-flight requests) and the next
/// request dials fresh, so a restarted server is reached transparently.
pub struct TcpTransport {
    addr: SocketAddr,
    deadline: Duration,
    conn: Mutex<Option<Arc<MuxConn>>>,
    /// Peer version learned by [`Request::Hello`]; 0 until negotiated.
    /// Cached per transport — replicas in one fleet run one build, and a
    /// wrong cache is only a lost trace, never a wrong answer.
    negotiated: AtomicU8,
}

fn conn_err(e: std::io::Error) -> TransportError {
    TransportError::Connection(e.to_string())
}

impl TcpTransport {
    /// A client for the replica at `addr`. Lazy: the first request dials.
    pub fn connect(addr: SocketAddr) -> TcpTransport {
        TcpTransport::with_deadline(addr, REQUEST_DEADLINE)
    }

    /// Like [`TcpTransport::connect`] with a custom per-request deadline
    /// (submission → response frame). On expiry the request reports a
    /// connection fault and its slot is abandoned; other in-flight
    /// requests on the connection are untouched.
    pub fn with_deadline(addr: SocketAddr, deadline: Duration) -> TcpTransport {
        TcpTransport {
            addr,
            deadline,
            conn: Mutex::new(None),
            negotiated: AtomicU8::new(0),
        }
    }

    /// Learns (and caches) the peer's protocol version through a Hello
    /// roundtrip. A v3 server answers [`Response::Hello`]; a v2 server
    /// answers a typed `Fault(UnknownKind)` — both definitive. Channel
    /// trouble returns the v2 floor without caching.
    fn peer_protocol_version(&self) -> u8 {
        let cached = self.negotiated.load(Ordering::Acquire);
        if cached != 0 {
            return cached;
        }
        let learned = match self.roundtrip(&Request::Hello {
            max_version: PROTOCOL_VERSION,
        }) {
            Ok(Response::Hello { max_version }) => {
                max_version.clamp(MIN_PROTOCOL_VERSION, PROTOCOL_VERSION)
            }
            Ok(_) => MIN_PROTOCOL_VERSION,
            Err(_) => return MIN_PROTOCOL_VERSION,
        };
        self.negotiated.store(learned, Ordering::Release);
        learned
    }

    /// The live connection, dialing (or re-dialing after a death) on
    /// demand.
    fn mux(&self) -> Result<Arc<MuxConn>, TransportError> {
        let mut guard = self.conn.lock().unwrap();
        if let Some(conn) = guard.as_ref() {
            if conn.alive() {
                return Ok(Arc::clone(conn));
            }
        }
        let conn = MuxConn::dial(self.addr, self.deadline).map_err(conn_err)?;
        *guard = Some(Arc::clone(&conn));
        Ok(conn)
    }

    fn roundtrip(&self, req: &Request) -> Result<Response, TransportError> {
        self.mux()?.send(req).wait(self.deadline)
    }
}

impl ShardTransport for TcpTransport {
    fn submit(&self, query: Query) -> TransportTicket {
        // No thread per request: the completion slot is the in-flight
        // state, and the ticket just waits on it.
        let deadline = self.deadline;
        match self.mux() {
            Ok(conn) => {
                let completion = conn.send(&Request::Query(query));
                TransportTicket::new(move || completion.wait(deadline).and_then(expect_query))
            }
            Err(e) => TransportTicket::ready(Err(e)),
        }
    }

    fn submit_traced(&self, query: Query, ctx: Option<TraceContext>) -> TransportTicket {
        let req = match ctx.filter(|c| c.sampled) {
            Some(c) if self.peer_protocol_version() >= 3 => Request::QueryTraced(query, c),
            _ => Request::Query(query),
        };
        let deadline = self.deadline;
        match self.mux() {
            Ok(conn) => {
                let completion = conn.send(&req);
                TransportTicket::new(move || completion.wait(deadline).and_then(expect_query))
            }
            Err(e) => TransportTicket::ready(Err(e)),
        }
    }

    fn apply_update(&self, update: &Update) -> Result<UpdateReceipt, TransportError> {
        expect_update(self.roundtrip(&Request::Update(*update))?)
    }

    fn ping(&self) -> Result<Heartbeat, TransportError> {
        expect_pong(self.roundtrip(&Request::Ping)?)
    }

    fn member_counts(&self) -> Result<MemberCounts, TransportError> {
        expect_member_counts(self.roundtrip(&Request::MemberCounts)?)
    }

    fn snapshot(&self) -> Result<SnapshotBlob, TransportError> {
        // Peers that negotiated v5 serve the flat-arena blob; older ones
        // only know the legacy v1 pull.
        let req = if self.peer_protocol_version() >= SNAPSHOT_V2_VERSION {
            Request::SnapshotV2
        } else {
            Request::Snapshot
        };
        expect_snapshot(self.roundtrip(&req)?)
    }

    fn install_snapshot(&self, blob: &SnapshotBlob) -> Result<Heartbeat, TransportError> {
        // Pushing a v2 blob at a pre-v5 peer: transcode down client-side
        // so the old binary installs it natively.
        let blob = adapt_blob_for_peer(blob, self.peer_protocol_version())
            .map_err(TransportError::Snapshot)?;
        expect_install(self.roundtrip(&Request::InstallSnapshot(blob))?)
    }

    fn compact(&self, through: u64) -> Result<u64, TransportError> {
        expect_compacted(self.roundtrip(&Request::Compact { through })?)
    }

    fn ping_events(
        &self,
        since_seq: u64,
    ) -> Result<(Heartbeat, u64, Vec<kosr_service::Event>), TransportError> {
        if self.peer_protocol_version() < 4 {
            return self.ping().map(|hb| (hb, 0, Vec::new()));
        }
        expect_pong_events(self.roundtrip(&Request::PingEvents { since_seq })?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_core::figure1::figure1;
    use kosr_core::IndexedGraph;
    use kosr_service::ServiceConfig;

    fn serve() -> (TcpServer, TcpTransport, kosr_core::figure1::Figure1) {
        let fx = figure1();
        let ig = Arc::new(IndexedGraph::build_default(fx.graph.clone()));
        let svc = Arc::new(KosrService::new(
            ig,
            ServiceConfig {
                workers: 2,
                ..Default::default()
            },
        ));
        let server = TcpServer::spawn(svc).unwrap();
        let client = TcpTransport::connect(server.addr());
        (server, client, fx)
    }

    #[test]
    fn queries_and_updates_over_a_real_socket() {
        let (_server, client, fx) = serve();
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        let resp = client.submit(q.clone()).wait().unwrap();
        assert_eq!(resp.outcome.costs(), vec![20, 21, 22]);
        assert!(client.submit(q.clone()).wait().unwrap().cached);

        let gone = resp.outcome.witnesses[0].vertices[2];
        let receipt = client
            .apply_update(&Update::RemoveMembership {
                vertex: gone,
                category: fx.re,
            })
            .unwrap();
        assert!(receipt.applied);
        assert_eq!(client.ping().unwrap().epoch, 1);
        let after = client.submit(q).wait().unwrap();
        assert!(!after.cached);
        assert_ne!(after.outcome.costs(), vec![20, 21, 22]);
    }

    #[test]
    fn concurrent_submissions_multiplex_one_connection() {
        let (_server, client, fx) = serve();
        // All in flight at once, all on the same connection.
        let tickets: Vec<TransportTicket> = (1..=4)
            .map(|k| client.submit(Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], k)))
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            assert_eq!(t.wait().unwrap().outcome.witnesses.len(), i + 1);
        }
        let conn = client.conn.lock().unwrap();
        let conn = conn.as_ref().expect("connection established");
        assert!(conn.alive());
        assert!(
            conn.next_id.load(Ordering::Relaxed) > 4,
            "all requests shared the one mux connection"
        );
        assert_eq!(conn.table.pending(), 0, "every slot completed");
    }

    #[test]
    fn snapshots_ship_and_install_over_the_wire() {
        let (_server, client, fx) = serve();
        let blob = client.snapshot().unwrap();
        let replica = IndexedGraph::decode_snapshot(&blob.bytes).unwrap();
        assert_eq!(replica.num_vertices(), fx.graph.num_vertices());
        let mc = client.member_counts().unwrap();
        assert_eq!(mc.counts.len(), 3);
        // Push the snapshot back: install bumps the epoch.
        let hb = client.install_snapshot(&blob).unwrap();
        assert_eq!(hb.epoch, 1);
        // A corrupt blob is a typed deterministic rejection, not a fault.
        let err = client
            .install_snapshot(&SnapshotBlob {
                epoch: 0,
                bytes: vec![0xde, 0xad],
            })
            .unwrap_err();
        assert!(matches!(err, TransportError::Snapshot(_)), "{err:?}");
        assert!(!err.is_fault());
    }

    #[test]
    fn compaction_notices_are_monotone_over_the_wire() {
        let (_server, client, _fx) = serve();
        assert_eq!(client.compact(5).unwrap(), 5);
        assert_eq!(client.compact(9).unwrap(), 9);
        // A stale controller proposing an older head gets the typed no.
        let err = client.compact(3).unwrap_err();
        assert_eq!(err, TransportError::CursorTooOld { cursor: 3, head: 9 });
        assert!(!err.is_fault());
    }

    #[test]
    fn traced_queries_negotiate_and_return_spans_over_the_wire() {
        let (_server, client, fx) = serve();
        let ctx = kosr_service::TraceContext::root(kosr_service::TraceId(5), true);
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        let resp = client.submit_traced(q, Some(ctx)).wait().unwrap();
        assert_eq!(resp.outcome.costs(), vec![20, 21, 22]);
        assert!(
            resp.spans.iter().any(|s| s.name == "replica"),
            "replica spans crossed the socket: {:?}",
            resp.spans
        );
        assert_eq!(
            client.negotiated.load(Ordering::Acquire),
            PROTOCOL_VERSION,
            "hello negotiation cached the peer version"
        );
    }

    #[test]
    fn ping_events_drains_the_remote_journal_over_the_wire() {
        let (_server, client, fx) = serve();
        let (hb, next, events) = client.ping_events(0).unwrap();
        assert_eq!(hb.epoch, 0);
        assert_eq!(next, 0);
        assert!(events.is_empty());
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 1);
        let resp = client.submit(q).wait().unwrap();
        let gone = resp.outcome.witnesses[0].vertices[2];
        let receipt = client
            .apply_update(&Update::RemoveMembership {
                vertex: gone,
                category: fx.re,
            })
            .unwrap();
        assert!(receipt.applied);
        let (hb, next, events) = client.ping_events(next).unwrap();
        assert_eq!(hb.epoch, 1);
        assert_eq!(next, 1);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, kosr_service::EventKind::EpochSwap);
        // The cursor advances past the drain: nothing is re-delivered.
        let (_, _, again) = client.ping_events(next).unwrap();
        assert!(again.is_empty());
    }

    #[test]
    fn server_shutdown_faults_clients_and_redial_recovers() {
        let (mut server, client, fx) = serve();
        let q = Query::new(fx.s, fx.t, vec![fx.ma], 1);
        assert!(client.submit(q.clone()).wait().is_ok());
        server.shutdown();
        let err = client.submit(q.clone()).wait().unwrap_err();
        assert!(err.is_fault(), "{err:?}");
        assert!(client.ping().unwrap_err().is_fault());
    }
}
