//! The socket transport: each shard replica runs behind a [`TcpServer`]
//! that wraps its `KosrService` submit/wait + `apply_update` surface, and
//! routers reach it through a pooled blocking [`TcpTransport`] client.
//!
//! The server is deliberately simple — an accept loop plus one handler
//! thread per connection reading length-prefixed frames — because the
//! protocol is strictly request/response per connection; concurrency comes
//! from the client opening one (pooled) connection per in-flight request.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use kosr_core::Query;
use kosr_service::{KosrService, Update, UpdateReceipt};

use crate::host::handle_request;
use crate::inproc::{
    expect_member_counts, expect_pong, expect_query, expect_snapshot, expect_update,
};
use crate::protocol::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    Heartbeat, MemberCounts, Request, Response, SnapshotBlob,
};
use crate::{ShardTransport, TransportError, TransportTicket};

/// How often blocked server reads wake up to check for shutdown.
const POLL: Duration = Duration::from_millis(25);

/// Client-side socket deadline: generous enough for the heaviest query a
/// planner admits, small enough that a wedged replica becomes a fault
/// (and a failover) instead of a hang.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Reads exactly `buf.len()` bytes, riding out read timeouts (checking the
/// shutdown flag between chunks) without ever losing partially read bytes.
/// `Ok(false)` on clean EOF before the first byte.
fn read_exact_polled(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(false)
                } else {
                    Err(std::io::ErrorKind::UnexpectedEof.into())
                };
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if shutdown.load(Ordering::Acquire) {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::ConnectionAborted,
                        "server shutting down",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

fn serve_connection(mut stream: TcpStream, service: Arc<KosrService>, shutdown: Arc<AtomicBool>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    while !shutdown.load(Ordering::Acquire) {
        let mut len = [0u8; 4];
        match read_exact_polled(&mut stream, &mut len, &shutdown) {
            Ok(true) => {}
            _ => return, // clean EOF, peer reset, or shutdown
        }
        let len = u32::from_le_bytes(len) as usize;
        if len > crate::protocol::MAX_FRAME_LEN {
            return; // refuse oversized frames by dropping the connection
        }
        let mut payload = vec![0u8; len];
        if !matches!(
            read_exact_polled(&mut stream, &mut payload, &shutdown),
            Ok(true)
        ) {
            return;
        }
        // Undecodable requests get a typed fault response (so a client
        // speaking a newer protocol version learns why), then the
        // connection closes — its framing can no longer be trusted.
        let (resp, close) = match decode_request(&payload) {
            Ok(req) => (handle_request(&service, req), false),
            Err(e) => (Response::Fault(e), true),
        };
        if write_frame(&mut stream, &encode_response(&resp)).is_err() || close {
            return;
        }
    }
}

/// One shard replica served over a loopback TCP socket.
///
/// Dropping the server shuts it down: the accept loop stops, handler
/// threads drain, and every client sees its connection close.
pub struct TcpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<thread::JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `127.0.0.1:0` (an OS-assigned port) and starts serving
    /// `service`.
    pub fn spawn(service: Arc<KosrService>) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let accept_handle = thread::Builder::new()
            .name(format!("kosr-tcp-{}", addr.port()))
            .spawn(move || {
                let mut handlers = Vec::new();
                while !flag.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Reap finished handlers so connection churn
                            // doesn't grow the handle list unboundedly.
                            handlers.retain(|h: &thread::JoinHandle<()>| !h.is_finished());
                            let service = Arc::clone(&service);
                            let flag = Arc::clone(&flag);
                            handlers.push(thread::spawn(move || {
                                serve_connection(stream, service, flag)
                            }));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
                for h in handlers {
                    let _ = h.join();
                }
            })
            .expect("spawn accept loop");
        Ok(TcpServer {
            addr,
            shutdown,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server: new connections are refused, existing handler
    /// threads exit at their next poll, clients see connection faults —
    /// the "replica killed" event of the failover model.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A pooled blocking client for one replica's [`TcpServer`].
///
/// Connections are created on demand, one per in-flight request, and
/// returned to the pool after a successful round trip; a failed round trip
/// discards its connection, so a restarted server is reached by a fresh
/// dial on the next request.
pub struct TcpTransport {
    addr: SocketAddr,
    pool: Arc<Mutex<Vec<TcpStream>>>,
}

fn conn_err(e: std::io::Error) -> TransportError {
    TransportError::Connection(e.to_string())
}

impl TcpTransport {
    /// A client for the replica at `addr`. Lazy: the first request dials.
    pub fn connect(addr: SocketAddr) -> TcpTransport {
        TcpTransport {
            addr,
            pool: Arc::new(Mutex::new(Vec::new())),
        }
    }

    fn roundtrip_on(
        addr: SocketAddr,
        pool: &Mutex<Vec<TcpStream>>,
        req: &Request,
    ) -> Result<Response, TransportError> {
        let mut stream = match pool.lock().unwrap().pop() {
            Some(s) => s,
            None => TcpStream::connect(addr).map_err(conn_err)?,
        };
        let _ = stream.set_nodelay(true);
        // A replica that accepts but never answers (stuck worker) must
        // surface as a *fault* so failover can route around it, not hang
        // the caller — and through it the router's planning/update planes.
        let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
        let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
        write_frame(&mut stream, &encode_request(req)).map_err(conn_err)?;
        let frame = read_frame(&mut stream)
            .map_err(conn_err)?
            .ok_or_else(|| TransportError::Connection("server closed the connection".into()))?;
        let resp = decode_response(&frame)?;
        // After answering a fault the server closes the connection (its
        // framing is untrusted); pooling it would poison a later request.
        if !matches!(resp, Response::Fault(_)) {
            pool.lock().unwrap().push(stream);
        }
        Ok(resp)
    }

    fn roundtrip(&self, req: &Request) -> Result<Response, TransportError> {
        Self::roundtrip_on(self.addr, &self.pool, req)
    }
}

impl ShardTransport for TcpTransport {
    fn submit(&self, query: Query) -> TransportTicket {
        // One thread per in-flight request keeps fan-out parallel while the
        // protocol stays strictly request/response per connection.
        let addr = self.addr;
        let pool = Arc::clone(&self.pool);
        let (tx, rx) = std::sync::mpsc::channel();
        thread::spawn(move || {
            let result =
                Self::roundtrip_on(addr, &pool, &Request::Query(query)).and_then(expect_query);
            let _ = tx.send(result);
        });
        TransportTicket::new(move || {
            rx.recv()
                .unwrap_or_else(|_| Err(TransportError::Connection("request thread lost".into())))
        })
    }

    fn apply_update(&self, update: &Update) -> Result<UpdateReceipt, TransportError> {
        expect_update(self.roundtrip(&Request::Update(*update))?)
    }

    fn ping(&self) -> Result<Heartbeat, TransportError> {
        expect_pong(self.roundtrip(&Request::Ping)?)
    }

    fn member_counts(&self) -> Result<MemberCounts, TransportError> {
        expect_member_counts(self.roundtrip(&Request::MemberCounts)?)
    }

    fn snapshot(&self) -> Result<SnapshotBlob, TransportError> {
        expect_snapshot(self.roundtrip(&Request::Snapshot)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_core::figure1::figure1;
    use kosr_core::IndexedGraph;
    use kosr_service::ServiceConfig;

    fn serve() -> (TcpServer, TcpTransport, kosr_core::figure1::Figure1) {
        let fx = figure1();
        let ig = Arc::new(IndexedGraph::build_default(fx.graph.clone()));
        let svc = Arc::new(KosrService::new(
            ig,
            ServiceConfig {
                workers: 2,
                ..Default::default()
            },
        ));
        let server = TcpServer::spawn(svc).unwrap();
        let client = TcpTransport::connect(server.addr());
        (server, client, fx)
    }

    #[test]
    fn queries_and_updates_over_a_real_socket() {
        let (_server, client, fx) = serve();
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        let resp = client.submit(q.clone()).wait().unwrap();
        assert_eq!(resp.outcome.costs(), vec![20, 21, 22]);
        assert!(client.submit(q.clone()).wait().unwrap().cached);

        let gone = resp.outcome.witnesses[0].vertices[2];
        let receipt = client
            .apply_update(&Update::RemoveMembership {
                vertex: gone,
                category: fx.re,
            })
            .unwrap();
        assert!(receipt.applied);
        assert_eq!(client.ping().unwrap().epoch, 1);
        let after = client.submit(q).wait().unwrap();
        assert!(!after.cached);
        assert_ne!(after.outcome.costs(), vec![20, 21, 22]);
    }

    #[test]
    fn parallel_submissions_share_the_pool() {
        let (_server, client, fx) = serve();
        let tickets: Vec<TransportTicket> = (1..=4)
            .map(|k| client.submit(Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], k)))
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            assert_eq!(t.wait().unwrap().outcome.witnesses.len(), i + 1);
        }
        assert!(
            !client.pool.lock().unwrap().is_empty(),
            "round trips return their connections"
        );
    }

    #[test]
    fn snapshots_ship_over_the_wire() {
        let (_server, client, fx) = serve();
        let blob = client.snapshot().unwrap();
        let replica = IndexedGraph::decode_snapshot(&blob.bytes).unwrap();
        assert_eq!(replica.num_vertices(), fx.graph.num_vertices());
        let mc = client.member_counts().unwrap();
        assert_eq!(mc.counts.len(), 3);
    }

    #[test]
    fn server_shutdown_faults_clients() {
        let (mut server, client, fx) = serve();
        let q = Query::new(fx.s, fx.t, vec![fx.ma], 1);
        assert!(client.submit(q.clone()).wait().is_ok());
        server.shutdown();
        let err = client.submit(q).wait().unwrap_err();
        assert!(err.is_fault(), "{err:?}");
        assert!(client.ping().unwrap_err().is_fault());
    }
}
