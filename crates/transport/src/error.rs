//! The transport error surface, split along the line that drives failover:
//! **faults** (connection/protocol trouble — retry on another replica) vs
//! **deterministic rejections** (the remote service said no — every
//! consistent replica would say the same, so failover must not retry).

use kosr_service::{ServiceError, UpdateError};

use crate::protocol::ProtocolError;

/// Why a transport operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// A frame could not be encoded/decoded (version mismatch, corrupt
    /// bytes). A fault: the replica may be healthy, the channel is not.
    Protocol(ProtocolError),
    /// The connection died, the replica is killed, or a frame was lost.
    Connection(String),
    /// Every replica of the shard is down or was tried and faulted.
    AllReplicasDown {
        /// How many replicas were available to try.
        replicas: usize,
    },
    /// The remote service rejected the query (typed admission error).
    /// Deterministic: not retried on other replicas.
    Service(ServiceError),
    /// The remote service rejected the update. Deterministic.
    Update(UpdateError),
    /// The remote snapshot blob failed to decode.
    Snapshot(kosr_index::snapshot::SnapshotError),
    /// A compaction notice named a log head behind what the replica has
    /// already recorded — the sender's view of the update log is stale.
    /// Deterministic: retrying on another replica would not help the
    /// sender's log view.
    CursorTooOld {
        /// The stale head the sender proposed.
        cursor: u64,
        /// The head the replica has recorded.
        head: u64,
    },
}

impl TransportError {
    /// `true` for channel-level trouble that failover should hide by
    /// retrying on the next replica; `false` for deterministic rejections
    /// that every consistent replica would repeat.
    pub fn is_fault(&self) -> bool {
        matches!(
            self,
            TransportError::Protocol(_)
                | TransportError::Connection(_)
                | TransportError::AllReplicasDown { .. }
        )
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Protocol(e) => write!(f, "protocol error: {e}"),
            TransportError::Connection(what) => write!(f, "connection failed: {what}"),
            TransportError::AllReplicasDown { replicas } => {
                write!(f, "all {replicas} replicas down")
            }
            TransportError::Service(e) => write!(f, "remote service rejection: {e}"),
            TransportError::Update(e) => write!(f, "remote update rejection: {e}"),
            TransportError::Snapshot(e) => write!(f, "snapshot decode failed: {e}"),
            TransportError::CursorTooOld { cursor, head } => {
                write!(f, "cursor {cursor} predates compacted log head {head}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

impl From<ProtocolError> for TransportError {
    fn from(e: ProtocolError) -> TransportError {
        TransportError::Protocol(e)
    }
}

impl From<ServiceError> for TransportError {
    fn from(e: ServiceError) -> TransportError {
        TransportError::Service(e)
    }
}

impl From<UpdateError> for TransportError {
    fn from(e: UpdateError) -> TransportError {
        TransportError::Update(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_classification_drives_failover() {
        assert!(TransportError::Connection("x".into()).is_fault());
        assert!(TransportError::Protocol(ProtocolError::Truncated).is_fault());
        assert!(TransportError::AllReplicasDown { replicas: 2 }.is_fault());
        assert!(!TransportError::Service(ServiceError::ShuttingDown).is_fault());
        assert!(
            !TransportError::Update(UpdateError::UnknownCategory(kosr_graph::CategoryId(3)))
                .is_fault()
        );
        assert!(!TransportError::CursorTooOld { cursor: 1, head: 4 }.is_fault());
    }

    #[test]
    fn display_renders_every_variant() {
        for e in [
            TransportError::Protocol(ProtocolError::Truncated),
            TransportError::Connection("refused".into()),
            TransportError::AllReplicasDown { replicas: 3 },
            TransportError::Service(ServiceError::ShuttingDown),
            TransportError::Update(UpdateError::VertexOutOfRange(kosr_graph::VertexId(1))),
            TransportError::CursorTooOld { cursor: 1, head: 4 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
