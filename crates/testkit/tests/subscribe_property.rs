//! The subscribe PR's load-bearing guarantee: a standing subscription's
//! **delta replay is bit-identical to a fresh canonical re-query at every
//! epoch**. On random worlds with random update schedules, each publish is
//! mirrored onto an unsharded oracle; every subscription then drains its
//! queued deltas, applies them over its last known top-k, and the replayed
//! state must equal the oracle's fresh answer — witness tuples and costs,
//! not just shapes. The same identity is re-proven under seeded
//! drop/delay/duplicate transport faults and a kill/recover cycle, where
//! failed recomputes degrade to typed resyncs instead of wrong deltas.
//!
//! The suite also proves the invalidation filter's *negative* space: on
//! traffic entirely outside every subscription's category set, the hub
//! performs **zero recomputes and zero wakes** — every publish is
//! skip-counted through the inverted index without visiting the engine.

use std::sync::Arc;
use std::time::Duration;

use kosr_core::{IndexedGraph, Query, Witness};
use kosr_graph::{CategoryId, Graph, PartitionConfig, Partitioner, VertexId};
use kosr_service::{KosrService, ServiceConfig, Update};
use kosr_shard::{FleetSupervisor, ShardError, ShardRouter, ShardSet, SupervisorConfig};
use kosr_subscribe::{HubConfig, PollResponse, SessionId, SubscriptionHub};
use kosr_testkit::{FaultConfig, FaultSchedule, FaultyTransport};
use kosr_workloads::{
    assign_uniform, assign_zipf, gen_membership_flips, gen_mixed_traffic, road_grid_directed,
    social_graph, MembershipFlip, TrafficMix,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_world(seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5AB5);
    let mut g = if rng.gen_bool(0.5) {
        let side = rng.gen_range(6..9);
        road_grid_directed(side, side, seed)
    } else {
        social_graph(rng.gen_range(60..100), 4, seed)
    };
    let cats = rng.gen_range(3..6);
    let n = g.num_vertices();
    if rng.gen_bool(0.5) {
        let size = rng.gen_range(6..18.min(n) as u32) as usize;
        assign_uniform(&mut g, cats, size, seed ^ 1);
    } else {
        assign_zipf(&mut g, cats, n / 2, 1.4, seed ^ 2);
    }
    g
}

fn flip_to_update(f: &MembershipFlip) -> Update {
    if f.insert {
        Update::InsertMembership {
            vertex: f.vertex,
            category: f.category,
        }
    } else {
        Update::RemoveMembership {
            vertex: f.vertex,
            category: f.category,
        }
    }
}

/// A mixed update schedule: membership flips plus a sprinkle of edge
/// inserts, so both filter families (inverted-index category stages and
/// the distance-bound edge stage) see traffic.
fn update_schedule(g: &Graph, count: usize, seed: u64) -> Vec<Update> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xED6E);
    let mut updates: Vec<Update> = gen_membership_flips(g, count, seed ^ 0xF11B)
        .iter()
        .map(flip_to_update)
        .collect();
    let n = g.num_vertices() as u32;
    for _ in 0..count / 3 {
        let at = rng.gen_range(0..updates.len() as u32) as usize;
        updates.insert(
            at,
            Update::InsertEdge {
                from: VertexId(rng.gen_range(0..n)),
                to: VertexId(rng.gen_range(0..n)),
                weight: rng.gen_range(1..30) as u64,
            },
        );
    }
    updates
}

/// One standing subscription's client-side view: what a real client
/// reconstructs purely from the initial payload plus replayed deltas.
struct ClientView {
    id: SessionId,
    query: Query,
    routes: Vec<Witness>,
    last_epoch: u64,
}

/// Drains one poll and advances the client view exactly the way a client
/// would: apply deltas in order, or swap in the resync's full top-k.
/// Returns the typed failure when the session is resync-pending on a
/// fleet that cannot answer (the caller matches it against the oracle).
fn advance(hub: &SubscriptionHub, view: &mut ClientView) -> Result<(), ShardError> {
    match hub.poll(view.id, Duration::ZERO) {
        PollResponse::Deltas { deltas, .. } => {
            for d in &deltas {
                assert!(
                    d.epoch > view.last_epoch,
                    "delta epochs must advance: {} after {}",
                    d.epoch,
                    view.last_epoch
                );
                view.last_epoch = d.epoch;
                d.apply(&mut view.routes);
            }
            Ok(())
        }
        PollResponse::Resync { routes, epoch, .. } => {
            view.routes = routes;
            view.last_epoch = epoch;
            Ok(())
        }
        PollResponse::Failed(e) => Err(e),
        PollResponse::UnknownSession => panic!("session {} vanished", view.id),
    }
}

/// The replay identity for one subscription at one epoch: the replayed
/// state must equal the oracle's fresh canonical answer — or both sides
/// must reject the (now invalid) query with the same typed error.
fn assert_replay_identity(
    hub: &SubscriptionHub,
    oracle: &KosrService,
    view: &mut ClientView,
    label: &str,
) {
    let fresh = oracle.submit(view.query.clone()).and_then(|t| t.wait());
    match (advance(hub, view), fresh) {
        (Ok(()), Ok(resp)) => {
            assert_eq!(
                view.routes, resp.outcome.witnesses,
                "{label}: session {} replay diverged from fresh re-query",
                view.id
            );
        }
        (Err(se), Err(oe)) => {
            assert_eq!(
                se.to_string(),
                oe.to_string(),
                "{label}: session {} rejections differ",
                view.id
            );
        }
        (got, want) => panic!(
            "{label}: session {} split: replay {got:?} vs oracle {}",
            view.id,
            match want {
                Ok(r) => format!("{} routes", r.outcome.witnesses.len()),
                Err(e) => e.to_string(),
            }
        ),
    }
}

fn service_config() -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        queue_capacity: 2048,
        cache_capacity: 128,
        ..Default::default()
    }
}

fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(|c: u64| c.clamp(2, 12))
        .unwrap_or(4)
}

/// Subscribes `count` random queries, returning each client's initial
/// view (already verified against the oracle).
fn subscribe_random(
    hub: &SubscriptionHub,
    oracle: &KosrService,
    g: &Graph,
    count: usize,
    seed: u64,
) -> Vec<ClientView> {
    gen_mixed_traffic(
        g,
        count,
        &TrafficMix {
            hot_fraction: 0.25,
            ..Default::default()
        },
        seed,
    )
    .iter()
    .map(|s| Query::new(s.source, s.target, s.categories.clone(), s.k))
    .filter_map(|q| {
        let reply = match hub.subscribe(q.clone()) {
            Ok(r) => r,
            // A generated query the fleet rejects (e.g. k = 0 from a
            // degenerate mix) is simply not a subscription.
            Err(_) => return None,
        };
        let fresh = oracle
            .submit(q.clone())
            .and_then(|t| t.wait())
            .expect("oracle accepts what the hub accepted");
        assert_eq!(
            reply.routes, fresh.outcome.witnesses,
            "initial payload must already be canonical"
        );
        Some(ClientView {
            id: reply.id,
            query: q,
            routes: reply.routes,
            last_epoch: reply.epoch,
        })
    })
    .collect()
}

/// Quiet fleet: delta replay ≡ fresh re-query at every publish epoch, on
/// random worlds and random membership/edge schedules.
#[test]
fn delta_replay_matches_fresh_requery_at_every_epoch() {
    for seed in 0..cases() {
        let g = random_world(seed);
        let ig = IndexedGraph::build_default(g.clone());
        let mut rng = StdRng::seed_from_u64(seed ^ 0x10CA1);
        let partition = Partitioner::new(PartitionConfig {
            num_shards: rng.gen_range(2..4),
            ..Default::default()
        })
        .partition(&ig.graph);
        let router = Arc::new(ShardRouter::new(
            ShardSet::build(&ig, partition),
            service_config(),
        ));
        let oracle = KosrService::new(Arc::new(ig), service_config());
        let hub = Arc::new(SubscriptionHub::new(&router, HubConfig::default()));
        router.register_update_observer(Arc::clone(&hub) as _);

        let mut views = subscribe_random(&hub, &oracle, &g, 4, seed ^ 0xAB);
        assert!(!views.is_empty(), "seed {seed}: no subscribable traffic");
        let bus = router.update_bus();
        let label = format!("seed {seed}");
        for (i, u) in update_schedule(&g, 12, seed).iter().enumerate() {
            // Rejected publishes change nothing on either side.
            if bus.publish(u).is_err() {
                continue;
            }
            oracle
                .apply_update(u)
                .expect("oracle accepts what the bus accepted");
            for view in &mut views {
                assert_replay_identity(&hub, &oracle, view, &format!("{label}, update {i}"));
            }
        }
        let s = hub.stats();
        assert_eq!(s.recompute_failures, 0, "{label}: quiet fleet never fails");
        assert!(
            s.skipped_total() > 0,
            "{label}: a 12-update schedule against category-diverse \
             subscriptions should prove at least one skip"
        );
    }
}

/// Negative space: traffic entirely outside every subscription's category
/// set is counter-proven irrelevant — zero wakes, zero recomputes, every
/// publish skip-counted per session through the inverted index.
#[test]
fn disjoint_category_traffic_never_reaches_the_engine() {
    for seed in 0..cases() {
        // A guaranteed-uniform world with exactly 4 categories: queries
        // mention {0, 1}, the update schedule touches only {2, 3}.
        let mut g = road_grid_directed(7, 7, seed);
        assign_uniform(&mut g, 4, 10, seed ^ 0xD15);
        let ig = IndexedGraph::build_default(g.clone());
        let partition = Partitioner::new(PartitionConfig {
            num_shards: 2,
            ..Default::default()
        })
        .partition(&ig.graph);
        let router = Arc::new(ShardRouter::new(
            ShardSet::build(&ig, partition),
            service_config(),
        ));
        let hub = Arc::new(SubscriptionHub::new(&router, HubConfig::default()));
        router.register_update_observer(Arc::clone(&hub) as _);

        let mut rng = StdRng::seed_from_u64(seed ^ 0xD155);
        let n = g.num_vertices() as u32;
        let mut subs = 0u64;
        while subs < 3 {
            let q = Query::new(
                VertexId(rng.gen_range(0..n)),
                VertexId(rng.gen_range(0..n)),
                vec![CategoryId(0), CategoryId(1)],
                rng.gen_range(1..4) as usize,
            );
            if hub.subscribe(q).is_ok() {
                subs += 1;
            }
        }

        let bus = router.update_bus();
        let mut publishes = 0u64;
        for f in &gen_membership_flips(&g, 24, seed ^ 0xD17) {
            if f.category.0 < 2 {
                continue;
            }
            if bus.publish(&flip_to_update(f)).is_ok() {
                publishes += 1;
            }
        }
        assert!(publishes > 0, "seed {seed}: schedule produced no traffic");
        let s = hub.stats();
        assert_eq!(s.wakeups_total(), 0, "seed {seed}: nothing may wake");
        assert_eq!(s.recomputes, 0, "seed {seed}: zero engine work");
        assert_eq!(s.deltas_pushed, 0, "seed {seed}");
        assert_eq!(
            s.skipped_category,
            subs * publishes,
            "seed {seed}: every publish skip-counted for every session \
             without being visited"
        );
    }
}

/// Publishes through a faulted bus, stepping the supervisor's clock on
/// transport-level failures, and mirrors the success onto the oracle.
fn publish_mirrored(
    bus: &kosr_shard::LiveUpdateBus,
    sup: &FleetSupervisor,
    oracle: &KosrService,
    u: &Update,
) -> bool {
    for _ in 0..32 {
        match bus.publish(u) {
            Ok(_) => {
                oracle
                    .apply_update(u)
                    .expect("oracle accepts what the bus accepted");
                return true;
            }
            Err(ShardError::Transport(_)) => sup.tick(),
            // Deterministic rejection: skipped on both sides.
            Err(_) => return false,
        }
    }
    panic!("update kept failing after 32 supervisor ticks: {u:?}");
}

/// Replay identity with recovery: transport-failed resyncs step the
/// supervisor and retry until the fleet answers (or deterministically
/// rejects, which must match the oracle).
fn assert_replay_identity_faulted(
    hub: &SubscriptionHub,
    sup: &FleetSupervisor,
    oracle: &KosrService,
    view: &mut ClientView,
    label: &str,
) {
    for _ in 0..32 {
        let fresh = oracle.submit(view.query.clone()).and_then(|t| t.wait());
        match (advance(hub, view), fresh) {
            (Ok(()), Ok(resp)) => {
                assert_eq!(
                    view.routes, resp.outcome.witnesses,
                    "{label}: session {} replay diverged",
                    view.id
                );
                return;
            }
            (Err(ShardError::Transport(_)), _) => sup.tick(),
            (Err(se), Err(oe)) => {
                assert_eq!(
                    se.to_string(),
                    oe.to_string(),
                    "{label}: session {}",
                    view.id
                );
                return;
            }
            (got, want) => panic!(
                "{label}: session {} split: replay {got:?} vs oracle ok={}",
                view.id,
                want.is_ok()
            ),
        }
    }
    panic!("{label}: session {} kept failing after 32 ticks", view.id);
}

/// The replay identity survives seeded frame faults and a full
/// kill/recover cycle: wrong deltas are never delivered — a recompute the
/// faults break degrades to a typed resync the client replays from.
#[test]
fn replay_identity_survives_faults_and_kill_recover() {
    for seed in 0..cases() {
        let g = random_world(seed ^ 0xFA);
        let ig = IndexedGraph::build_default(g.clone());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFAB);
        let partition = Partitioner::new(PartitionConfig {
            num_shards: rng.gen_range(2..4),
            ..Default::default()
        })
        .partition(&ig.graph);
        let replicas = rng.gen_range(2..4);
        let mut switches = Vec::new();
        let router = Arc::new(ShardRouter::with_replicas(
            ShardSet::build(&ig, partition),
            service_config(),
            replicas,
            |j, r, t| {
                switches.push(t.kill_switch());
                let schedule = FaultSchedule::new(
                    seed ^ (j as u64) << 8 ^ (r as u64) << 16,
                    FaultConfig::default(),
                );
                let _ = (j, r);
                Arc::new(FaultyTransport::new(Arc::new(t), Arc::new(schedule)))
            },
        ));
        let oracle = KosrService::new(Arc::new(ig), service_config());
        let hub = Arc::new(SubscriptionHub::new(&router, HubConfig::default()));
        router.register_update_observer(Arc::clone(&hub) as _);
        let sup = router.supervisor(SupervisorConfig::default());
        let bus = router.update_bus();
        let label = format!("seed {seed}, {replicas} replicas");

        // Subscribing itself rides the faulted fan-out.
        let mut views = Vec::new();
        for q in gen_mixed_traffic(
            &g,
            3,
            &TrafficMix {
                hot_fraction: 0.25,
                ..Default::default()
            },
            seed ^ 0xFAC,
        )
        .iter()
        .map(|s| Query::new(s.source, s.target, s.categories.clone(), s.k))
        {
            for _ in 0..32 {
                match hub.subscribe(q.clone()) {
                    Ok(reply) => {
                        views.push(ClientView {
                            id: reply.id,
                            query: q.clone(),
                            routes: reply.routes,
                            last_epoch: reply.epoch,
                        });
                        break;
                    }
                    Err(ShardError::Transport(_)) => sup.tick(),
                    Err(_) => break,
                }
            }
        }
        assert!(!views.is_empty(), "{label}: no subscribable traffic");

        // Phase 1 — frame faults only.
        for u in &update_schedule(&g, 8, seed ^ 0xFAD) {
            if !publish_mirrored(&bus, &sup, &oracle, u) {
                continue;
            }
            for view in &mut views {
                assert_replay_identity_faulted(&hub, &sup, &oracle, view, &label);
            }
        }

        // Phase 2 — kill every shard's primary, publish through the
        // degraded fleet, then revive and let the supervisor's clock
        // restore the killed replicas; the replay identity must hold
        // across the whole cycle.
        for (i, s) in switches.iter().enumerate() {
            if i % replicas == 0 {
                s.kill();
            }
        }
        let mut killed_phase_published = false;
        for u in &update_schedule(&g, 6, seed ^ 0xFAE) {
            killed_phase_published |= publish_mirrored(&bus, &sup, &oracle, u);
        }
        for s in &switches {
            s.revive();
        }
        for _ in 0..32 {
            if sup.all_healthy() {
                break;
            }
            sup.tick();
        }
        assert!(sup.all_healthy(), "{label}: fleet failed to converge");
        assert!(
            killed_phase_published,
            "{label}: degraded fleet accepted nothing"
        );
        for view in &mut views {
            assert_replay_identity_faulted(
                &hub,
                &sup,
                &oracle,
                view,
                &format!("{label}, post-recovery"),
            );
        }
    }
}
