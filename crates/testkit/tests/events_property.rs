//! The event journal's load-bearing guarantees, property-tested over
//! seeded emission schedules: sequence numbers are **monotone and
//! gap-free** (even under concurrent emitters), the per-severity rings
//! mean an Info flood can **never evict a Critical record**, cumulative
//! `(severity, kind)` totals account for every emission ever made, and
//! `events_since` slices are exactly the retained tail — sorted, deduped,
//! filter-faithful.

use std::collections::HashSet;
use std::sync::Arc;
use std::thread;

use kosr_service::{Event, EventJournal, EventKind, Severity, Source, TagValue, TraceId};

/// Deterministic xorshift64* — the same seeded-schedule idiom as the
/// fault property suites; no external RNG dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(|c: u64| c.clamp(2, 16))
        .unwrap_or(6)
}

/// A seed-chosen kind, biased ~10:1 toward Info chatter so the Critical
/// ring is under real eviction pressure from the flood.
fn random_kind(rng: &mut Rng) -> EventKind {
    if rng.below(10) == 0 {
        let critical = [
            EventKind::ReplicaDown,
            EventKind::Failover,
            EventKind::AlertFiring,
        ];
        critical[rng.below(3) as usize]
    } else {
        let noisy = [
            EventKind::UpdatePublished,
            EventKind::EpochSwap,
            EventKind::LogCompacted,
            EventKind::ReplayRecovered,
            EventKind::CalibrationAdjusted,
            EventKind::CursorTooOld,
            EventKind::AdmissionRejected,
        ];
        noisy[rng.below(7) as usize]
    }
}

fn random_source(rng: &mut Rng) -> Source {
    match rng.below(5) {
        0 => Source::Service,
        1 => Source::Shard(rng.below(4) as u32),
        2 => Source::Replica {
            shard: rng.below(4) as u32,
            replica: rng.below(3) as u32,
        },
        3 => Source::Supervisor,
        _ => Source::Gateway,
    }
}

fn round(seed: u64) {
    let mut rng = Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
    let capacity = 2 + rng.below(7) as usize;
    let journal = EventJournal::new(capacity);
    let emissions = 50 + rng.below(200) as usize;

    let mut emitted: Vec<(u64, EventKind, Severity)> = Vec::new();
    for i in 0..emissions {
        let kind = random_kind(&mut rng);
        let source = random_source(&mut rng);
        let trace = (rng.below(3) == 0).then(|| TraceId::from_parts(seed, i as u64));
        let tags = vec![("i".to_string(), TagValue::U64(i as u64))];
        let seq = journal.emit(source, kind, trace, tags);
        emitted.push((seq, kind, kind.severity()));
    }
    let label = format!("seed {seed} capacity {capacity} emissions {emissions}");

    // Gap-free monotone issue: seqs are exactly 0..emissions in order.
    let seqs: Vec<u64> = emitted.iter().map(|(s, ..)| *s).collect();
    assert_eq!(
        seqs,
        (0..emissions as u64).collect::<Vec<_>>(),
        "{label}: issued seqs must be gap-free"
    );
    assert_eq!(journal.next_seq(), emissions as u64, "{label}");

    // Cumulative totals account for every emission ever made — eviction
    // must never disturb them.
    for kind in EventKind::ALL {
        let want = emitted.iter().filter(|(_, k, _)| *k == kind).count() as u64;
        assert_eq!(journal.kind_total(kind), want, "{label}: total {kind:?}");
    }

    // Per-severity retention: each ring holds exactly the most recent
    // `capacity` events of its severity. In particular the Info flood
    // never evicts a Critical record.
    let retained = journal.recent();
    let retained_seqs: HashSet<u64> = retained.iter().map(|e| e.seq).collect();
    assert_eq!(
        retained_seqs.len(),
        retained.len(),
        "{label}: retained seqs are unique"
    );
    for sev in Severity::ALL {
        let of_sev: Vec<u64> = emitted
            .iter()
            .filter(|(_, _, s)| *s == sev)
            .map(|(s, ..)| *s)
            .collect();
        let keep: HashSet<u64> = of_sev.iter().rev().take(capacity).copied().collect();
        let have: HashSet<u64> = retained
            .iter()
            .filter(|e| e.severity == sev)
            .map(|e| e.seq)
            .collect();
        assert_eq!(
            have, keep,
            "{label}: {sev:?} ring must hold exactly its most recent {capacity}"
        );
    }
    let critical_emitted = emitted
        .iter()
        .filter(|(_, _, s)| *s == Severity::Critical)
        .count();
    let critical_retained = retained
        .iter()
        .filter(|e| e.severity == Severity::Critical)
        .count();
    assert_eq!(
        critical_retained,
        critical_emitted.min(capacity),
        "{label}: an Info flood must never evict Critical"
    );

    // events_since slices: sorted ascending, inclusive lower bound,
    // filters faithful to severity and source tier.
    let since = rng.below(emissions as u64);
    let slice = journal.events_since(since, None, None);
    assert!(
        slice.windows(2).all(|w| w[0].seq < w[1].seq),
        "{label}: slice sorted"
    );
    assert!(
        slice.iter().all(|e| e.seq >= since),
        "{label}: inclusive since_seq"
    );
    let want: HashSet<u64> = retained
        .iter()
        .filter(|e| e.seq >= since)
        .map(|e| e.seq)
        .collect();
    assert_eq!(
        slice.iter().map(|e| e.seq).collect::<HashSet<_>>(),
        want,
        "{label}: slice is exactly the retained tail"
    );
    let only_warn = journal.events_since(0, Some(Severity::Warn), None);
    assert!(
        only_warn.iter().all(|e| e.severity == Severity::Warn),
        "{label}: severity filter"
    );
    let only_supervisor = journal.events_since(0, None, Some("supervisor"));
    assert!(
        only_supervisor
            .iter()
            .all(|e| e.source.label() == "supervisor"),
        "{label}: source filter"
    );
}

#[test]
fn seeded_schedules_keep_seqs_gap_free_and_critical_retained() {
    for seed in 0..cases() {
        round(seed);
    }
}

/// Concurrent emitters: the single `fetch_add` issue point means seqs
/// stay collectively gap-free — every seq in `0..N*M` issued exactly
/// once — and the totals account for every thread's emissions.
#[test]
fn concurrent_emitters_never_tear_the_sequence() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 200;
    let journal = Arc::new(EventJournal::new(64));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let journal = Arc::clone(&journal);
            thread::spawn(move || {
                let mut rng = Rng(0xC0FFEE ^ (t as u64) << 8);
                let mut seqs = Vec::with_capacity(PER_THREAD);
                for _ in 0..PER_THREAD {
                    let kind = random_kind(&mut rng);
                    seqs.push(journal.emit(random_source(&mut rng), kind, None, Vec::new()));
                }
                seqs
            })
        })
        .collect();
    let mut all: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("emitter panicked"))
        .collect();
    all.sort_unstable();
    let want: Vec<u64> = (0..(THREADS * PER_THREAD) as u64).collect();
    assert_eq!(all, want, "every seq issued exactly once, no gaps");
    assert_eq!(journal.next_seq(), (THREADS * PER_THREAD) as u64);
    let total: u64 = EventKind::ALL.iter().map(|&k| journal.kind_total(k)).sum();
    assert_eq!(total, (THREADS * PER_THREAD) as u64, "totals reconcile");
}

/// Forwarded events are re-sequenced locally but keep their identity:
/// severity, kind, trace id and tags survive, the original seq rides in
/// `origin_seq`, and the local sequence stays gap-free across a mix of
/// local emissions and forwards.
#[test]
fn forwarding_resequences_without_losing_identity_or_gap_freedom() {
    let remote = EventJournal::new(32);
    let local = EventJournal::new(32);
    let mut rng = Rng(0xF0);
    for i in 0..20u64 {
        if rng.below(2) == 0 {
            remote.emit(
                Source::Service,
                random_kind(&mut rng),
                Some(TraceId::from_parts(7, i)),
                vec![("i".to_string(), TagValue::U64(i))],
            );
        } else {
            local.emit(Source::Supervisor, random_kind(&mut rng), None, Vec::new());
        }
    }
    let forwarded: Vec<Event> = remote.events_since(0, None, None);
    for e in &forwarded {
        local.append_forwarded(e, 3, 1);
    }
    let total = local.recent();
    let seqs: Vec<u64> = total.iter().map(|e| e.seq).collect();
    assert_eq!(
        seqs,
        (0..local.next_seq()).collect::<Vec<_>>(),
        "local journal stays gap-free across forwards"
    );
    for e in &forwarded {
        let copy = total
            .iter()
            .find(|c| {
                c.tags
                    .iter()
                    .any(|(k, v)| k == "origin_seq" && *v == TagValue::U64(e.seq))
            })
            .expect("forwarded copy present");
        assert_eq!(copy.kind, e.kind);
        assert_eq!(copy.severity, e.severity);
        assert_eq!(copy.trace_id, e.trace_id);
        assert_eq!(
            copy.source,
            Source::Replica {
                shard: 3,
                replica: 1
            }
        );
    }
}
