//! The transport PR's load-bearing guarantee, now supervisor-driven: on
//! random worlds, a replicated `ShardRouter` whose every replica sits
//! behind a seeded fault-injecting transport (frame drops, response
//! drops, delays, duplicates, replica kills, snapshot cold-joins) still
//! answers **bit-identically** to an unsharded canonical oracle — before
//! and after live updates, including updates recovered into a replica
//! that joined from a shipped snapshot after failover.
//!
//! The suite makes **zero manual `recover`/`heartbeat` calls**: every
//! quarantined or cold-joined replica is restored exclusively by stepping
//! the [`FleetSupervisor`]'s clock (`tick`), the same pass a production
//! deployment runs on a timer.

use std::sync::Arc;

use kosr_core::{IndexedGraph, Query};
use kosr_graph::{Graph, PartitionConfig, Partitioner};
use kosr_service::{KosrService, ServiceConfig, ServiceError, Update};
use kosr_shard::{
    FleetSupervisor, ShardError, ShardRouter, ShardSet, ShardedResponse, SupervisorConfig,
};
use kosr_testkit::{FaultConfig, FaultSchedule, FaultyTransport};
use kosr_transport::{InProcTransport, KillSwitch};
use kosr_workloads::{
    assign_uniform, assign_zipf, gen_membership_flips, gen_mixed_traffic, road_grid_directed,
    social_graph, MembershipFlip, TrafficMix,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_world(seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA07);
    let mut g = if rng.gen_bool(0.5) {
        let side = rng.gen_range(6..9);
        road_grid_directed(side, side, seed)
    } else {
        social_graph(rng.gen_range(60..100), 4, seed)
    };
    let cats = rng.gen_range(3..6);
    let n = g.num_vertices();
    if rng.gen_bool(0.5) {
        let size = rng.gen_range(6..18.min(n) as u32) as usize;
        assign_uniform(&mut g, cats, size, seed ^ 1);
    } else {
        assign_zipf(&mut g, cats, n / 2, 1.4, seed ^ 2);
    }
    g
}

fn queries_for(g: &Graph, count: usize, seed: u64) -> Vec<Query> {
    gen_mixed_traffic(
        g,
        count,
        &TrafficMix {
            hot_fraction: 0.25,
            ..Default::default()
        },
        seed,
    )
    .iter()
    .map(|s| Query::new(s.source, s.target, s.categories.clone(), s.k))
    .collect()
}

fn flip_to_update(f: &MembershipFlip) -> Update {
    if f.insert {
        Update::InsertMembership {
            vertex: f.vertex,
            category: f.category,
        }
    } else {
        Update::RemoveMembership {
            vertex: f.vertex,
            category: f.category,
        }
    }
}

/// Asks the faulted router, stepping the supervisor's clock on
/// transport-level failures (a fault schedule can take a whole shard down
/// between ticks). Deterministic rejections return immediately.
fn ask(
    router: &ShardRouter,
    sup: &FleetSupervisor,
    q: &Query,
) -> Result<ShardedResponse, ShardError> {
    for _ in 0..32 {
        match router.submit(q.clone()).and_then(|t| t.wait()) {
            Err(ShardError::Transport(_)) => sup.tick(),
            other => return other,
        }
    }
    panic!("query kept failing after 32 supervisor ticks: {q:?}");
}

/// The faulted deployment must agree with the oracle bit-for-bit — on
/// answers *and* on rejections (string parity, as rejections are typed
/// service errors on both sides).
fn assert_matches_oracle(
    router: &ShardRouter,
    sup: &FleetSupervisor,
    oracle: &KosrService,
    queries: &[Query],
    label: &str,
) {
    for (i, q) in queries.iter().enumerate() {
        let sharded = ask(router, sup, q);
        let plain = oracle.submit(q.clone()).and_then(|t| t.wait());
        match (sharded, plain) {
            (Ok(s), Ok(u)) => {
                assert_eq!(
                    s.outcome.witnesses, u.outcome.witnesses,
                    "{label}: query {i} diverged"
                );
                assert_eq!(s.outcome.costs(), u.outcome.costs(), "{label}: query {i}");
            }
            (Err(se), Err(ue)) => {
                assert_eq!(
                    se.to_string(),
                    ue.to_string(),
                    "{label}: query {i} rejections differ"
                );
            }
            (s, u) => panic!("{label}: query {i} split: sharded {s:?} vs oracle {u:?}"),
        }
    }
}

/// Publishes one update through the faulted bus, stepping the supervisor
/// on transport-level failures, and mirrors it onto the oracle.
fn publish_mirrored(
    bus: &kosr_shard::LiveUpdateBus,
    sup: &FleetSupervisor,
    oracle: &KosrService,
    u: &Update,
) {
    let mut published = false;
    for _ in 0..32 {
        match bus.publish(u) {
            Ok(_) => {
                published = true;
                break;
            }
            Err(ShardError::Transport(_)) => sup.tick(),
            Err(e) => panic!("unexpected rejection of {u:?}: {e}"),
        }
    }
    assert!(published, "update kept failing: {u:?}");
    oracle
        .apply_update(u)
        .expect("oracle accepts what the bus accepted");
}

/// Ticks the supervisor until the whole fleet serves (bounded).
fn converge(sup: &FleetSupervisor, label: &str) {
    for _ in 0..32 {
        if sup.all_healthy() {
            return;
        }
        sup.tick();
    }
    assert!(sup.all_healthy(), "{label}: fleet failed to converge");
}

/// One full fault-schedule round.
fn round(seed: u64) {
    let g = random_world(seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA27);
    let num_shards = rng.gen_range(2..4);
    let replicas = rng.gen_range(2..5);

    let ig = IndexedGraph::build_default(g.clone());
    let partition = Partitioner::new(PartitionConfig {
        num_shards,
        ..Default::default()
    })
    .partition(&ig.graph);
    let config = ServiceConfig {
        workers: 1,
        queue_capacity: 2048,
        cache_capacity: 128,
        ..Default::default()
    };
    let oracle = KosrService::new(Arc::new(ig.clone()), config.clone());

    // Every replica behind its own seeded fault schedule + kill switch.
    let mut switches: Vec<((usize, usize), KillSwitch)> = Vec::new();
    let router = ShardRouter::with_replicas(
        ShardSet::build(&ig, partition),
        config.clone(),
        replicas,
        |j, r, t| {
            switches.push(((j, r), t.kill_switch()));
            let schedule = FaultSchedule::new(
                seed ^ (j as u64) << 8 ^ (r as u64) << 16,
                FaultConfig::default(),
            );
            Arc::new(FaultyTransport::new(Arc::new(t), Arc::new(schedule)))
        },
    );
    let bus = router.update_bus();
    let sup = router.supervisor(SupervisorConfig::default());
    let label = format!("seed {seed}, {num_shards} shards × {replicas} replicas");

    // Phase 1 — frame faults only: equivalence holds through drop/delay/
    // duplicate schedules, with failover + supervised recovery absorbing
    // the damage.
    assert_matches_oracle(
        &router,
        &sup,
        &oracle,
        &queries_for(&g, 20, seed ^ 0x1111),
        &format!("{label}, phase 1"),
    );

    // Phase 2 — kill the primary replica of every shard outright.
    for ((_, r), s) in &switches {
        if *r == 0 {
            s.kill();
        }
    }
    assert_matches_oracle(
        &router,
        &sup,
        &oracle,
        &queries_for(&g, 12, seed ^ 0x2222),
        &format!("{label}, phase 2 (primaries killed)"),
    );

    // Phase 3 — snapshot shard 0 *now*, then publish live updates under
    // faults (killed primaries miss all of them), mirrored onto the oracle.
    let (cursor, blob) = loop {
        match router.snapshot_shard(0) {
            Ok(got) => break got,
            Err(ShardError::Transport(_)) => sup.tick(),
            Err(e) => panic!("snapshot failed: {e}"),
        }
    };
    for f in &gen_membership_flips(&g, 8, seed ^ 0x3333) {
        publish_mirrored(&bus, &sup, &oracle, &flip_to_update(f));
    }

    // Phase 4 — revive the killed channels; the supervisor's clock alone
    // replays what each replica missed before it serves again.
    for (_, s) in &switches {
        s.revive();
    }
    converge(&sup, &format!("{label}, phase 4"));
    assert!(
        sup.report().replays + sup.report().snapshot_refreshes > 0,
        "{label}: the supervisor must have restored the killed primaries"
    );
    assert_matches_oracle(
        &router,
        &sup,
        &oracle,
        &queries_for(&g, 15, seed ^ 0x4444),
        &format!("{label}, phase 4 (post-update, post-replay)"),
    );

    // Phase 5 — cold join: replica 1 of shard 0 is replaced by a fresh
    // service decoded from the pre-update snapshot; the supervisor alone
    // notices the installed-but-behind replica and recovers it; then
    // every *other* replica of shard 0 is killed, so the snapshot-joined
    // replica answers for the shard by itself.
    let joined = IndexedGraph::decode_snapshot(&blob.bytes).expect("shipped snapshot decodes");
    let joined_svc = Arc::new(KosrService::new(Arc::new(joined), config));
    router.install_replica(0, 1, Arc::new(InProcTransport::new(joined_svc)), cursor);
    converge(&sup, &format!("{label}, phase 5 cold join"));
    let (joined_cursor, _, tail) = bus.cursor_state(0, 1);
    assert_eq!(
        joined_cursor, tail,
        "{label}: phase-3 updates must have been recovered into the joined replica"
    );
    for ((j, r), s) in &switches {
        if *j == 0 && *r != 1 {
            s.kill();
        }
    }
    assert_matches_oracle(
        &router,
        &sup,
        &oracle,
        &queries_for(&g, 15, seed ^ 0x5555),
        &format!("{label}, phase 5 (snapshot-joined replica serving alone)"),
    );
}

#[test]
fn faulted_sharded_topk_matches_unsharded_oracle_bit_for_bit() {
    // CI trims via PROPTEST_CASES; default covers 4 random worlds.
    let cases: u64 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(|c: u64| c.clamp(2, 12))
        .unwrap_or(4);
    for seed in 0..cases {
        round(seed);
    }
}

/// Sanity floor: with a quiet schedule the wrapper is invisible — zero
/// injected faults, zero failovers, bit-identical results.
#[test]
fn quiet_schedules_inject_nothing() {
    let g = random_world(50);
    let ig = IndexedGraph::build_default(g.clone());
    let partition = Partitioner::new(PartitionConfig {
        num_shards: 2,
        ..Default::default()
    })
    .partition(&ig.graph);
    let config = ServiceConfig {
        workers: 1,
        ..Default::default()
    };
    let oracle = KosrService::new(Arc::new(ig.clone()), config.clone());
    let mut schedules = Vec::new();
    let router =
        ShardRouter::with_replicas(ShardSet::build(&ig, partition), config, 2, |_, _, t| {
            let s = Arc::new(FaultSchedule::new(1, FaultConfig::quiet()));
            schedules.push(Arc::clone(&s));
            Arc::new(FaultyTransport::new(Arc::new(t), s))
        });
    let sup = router.supervisor(SupervisorConfig::default());
    assert_matches_oracle(&router, &sup, &oracle, &queries_for(&g, 15, 3), "quiet");
    assert!(schedules.iter().all(|s| s.total_injected() == 0));
    for j in 0..router.num_shards() {
        assert_eq!(router.replica_set(j).failovers(), 0);
    }
}

/// Deterministic rejections must pass through the fault layer untouched
/// (no failover, no retries): parity with the oracle's typed errors.
#[test]
fn rejections_pass_through_fault_layer() {
    let g = random_world(51);
    let ig = IndexedGraph::build_default(g.clone());
    let partition = Partitioner::new(PartitionConfig {
        num_shards: 2,
        ..Default::default()
    })
    .partition(&ig.graph);
    let config = ServiceConfig {
        workers: 1,
        ..Default::default()
    };
    let oracle = KosrService::new(Arc::new(ig.clone()), config.clone());
    let router =
        ShardRouter::with_replicas(ShardSet::build(&ig, partition), config, 2, |j, r, t| {
            let s = Arc::new(FaultSchedule::new(
                51 ^ (j as u64) << 4 ^ r as u64,
                FaultConfig::default(),
            ));
            Arc::new(FaultyTransport::new(Arc::new(t), s))
        });
    let sup = router.supervisor(SupervisorConfig::default());
    let bad = Query::new(
        kosr_graph::VertexId(0),
        kosr_graph::VertexId(1),
        vec![kosr_graph::CategoryId(0)],
        0,
    );
    let sharded = ask(&router, &sup, &bad).unwrap_err();
    let plain = oracle.submit(bad).unwrap_err();
    assert_eq!(sharded.to_string(), plain.to_string());
    assert!(matches!(
        sharded,
        ShardError::Service(ServiceError::InvalidQuery(_))
    ));
}
