//! Supervisor soak: under a seeded fault schedule, a supervised fleet
//! absorbs **10×-watermark** update traffic with a bounded update log —
//! live length never exceeds the compaction watermark plus the in-flight
//! window — while a long-downed replica is stranded below the compacted
//! head and returns through the typed `CursorTooOld → snapshot refresh`
//! path, never through an unbounded replay. The run ends with the fleet
//! healthy and bit-identical to the unsharded oracle.

use std::sync::Arc;
use std::time::Duration;

use kosr_core::{IndexedGraph, Query};
use kosr_graph::{PartitionConfig, Partitioner};
use kosr_service::{EventKind, KosrService, ServiceConfig, Update};
use kosr_shard::{ShardError, ShardRouter, ShardSet, SupervisorConfig};
use kosr_testkit::{FaultConfig, FaultSchedule, FaultyTransport};
use kosr_transport::KillSwitch;
use kosr_workloads::{
    assign_uniform, gen_membership_flips, gen_mixed_traffic, road_grid_directed, MembershipFlip,
    TrafficMix,
};

const WATERMARK: usize = 16;
const REPLAY_LIMIT: usize = 8;
/// Publishes between supervisor ticks — the "in-flight window" of the
/// log-boundedness claim.
const TICK_EVERY: usize = 4;
const UPDATES: usize = 10 * WATERMARK;

fn flip_to_update(f: &MembershipFlip) -> Update {
    if f.insert {
        Update::InsertMembership {
            vertex: f.vertex,
            category: f.category,
        }
    } else {
        Update::RemoveMembership {
            vertex: f.vertex,
            category: f.category,
        }
    }
}

#[test]
fn log_stays_bounded_and_long_downed_replica_refreshes_by_snapshot() {
    let mut g = road_grid_directed(8, 8, 21);
    assign_uniform(&mut g, 4, 12, 9);
    let ig = IndexedGraph::build_default(g.clone());
    let partition = Partitioner::new(PartitionConfig {
        num_shards: 2,
        ..Default::default()
    })
    .partition(&ig.graph);
    let config = ServiceConfig {
        workers: 1,
        cache_capacity: 64,
        ..Default::default()
    };
    let oracle = KosrService::new(Arc::new(ig.clone()), config.clone());

    let mut switches: Vec<((usize, usize), KillSwitch)> = Vec::new();
    let mut probe: Option<Arc<dyn kosr_transport::ShardTransport>> = None;
    let router =
        ShardRouter::with_replicas(ShardSet::build(&ig, partition), config, 2, |j, r, t| {
            switches.push(((j, r), t.kill_switch()));
            let schedule = FaultSchedule::new(
                0x50AC ^ (j as u64) << 8 ^ (r as u64) << 16,
                // A mild seeded mix: enough churn to exercise mid-publish
                // quarantines without making the soak flaky-slow.
                FaultConfig {
                    drop_per_mille: 40,
                    drop_response_per_mille: 20,
                    delay_per_mille: 40,
                    duplicate_per_mille: 40,
                    max_delay: Duration::from_micros(200),
                },
            );
            let t: Arc<dyn kosr_transport::ShardTransport> =
                Arc::new(FaultyTransport::new(Arc::new(t), Arc::new(schedule)));
            if (j, r) == (0, 0) {
                probe = Some(Arc::clone(&t));
            }
            t
        });
    let probe = probe.expect("replica (0,0) was wrapped");
    let bus = router.update_bus();
    let sup = router.supervisor(SupervisorConfig {
        compact_watermark: WATERMARK,
        replay_limit: REPLAY_LIMIT,
        ..Default::default()
    });

    // Kill shard 0 replica 1 for the whole publish storm: its cursor will
    // fall ~UPDATES entries behind while compaction keeps trimming.
    let victim = &switches
        .iter()
        .find(|((j, r), _)| (*j, *r) == (0, 1))
        .unwrap()
        .1;
    victim.kill();
    sup.tick();

    let flips = gen_membership_flips(&g, UPDATES, 0x50AC);
    let mut max_live = 0usize;
    for (i, f) in flips.iter().enumerate() {
        let u = flip_to_update(f);
        // Publish through the faulted fleet; the supervisor (not the
        // test) repairs any replica a fault takes down mid-publish.
        let mut published = false;
        for _ in 0..64 {
            match bus.publish(&u) {
                Ok(_) => {
                    published = true;
                    break;
                }
                Err(ShardError::Transport(_)) => sup.tick(),
                Err(e) => panic!("unexpected rejection of {u:?}: {e}"),
            }
        }
        assert!(published, "update {i} kept failing");
        oracle.apply_update(&u).expect("oracle mirrors the bus");
        if i % TICK_EVERY == TICK_EVERY - 1 {
            sup.tick();
            // The boundedness claim, checked right after the tick: the
            // live log fits the watermark plus the in-flight window.
            let live = bus.log_live_len();
            max_live = max_live.max(live);
            assert!(
                live <= WATERMARK + TICK_EVERY,
                "after update {i}: live log {live} exceeds watermark {WATERMARK} + window {TICK_EVERY}"
            );
        }
    }
    assert_eq!(bus.log_len(), UPDATES, "every publish was logged");
    assert!(
        bus.log_head() > 0 && sup.report().compactions > 0,
        "the storm must actually compact: {:?}",
        sup.report()
    );

    // The victim's cursor fell below the head: replay is impossible.
    let (cursor, head, tail) = bus.cursor_state(0, 1);
    assert!(cursor < head, "cursor {cursor} vs head {head}");
    assert!(tail - cursor > REPLAY_LIMIT);

    // Revive it; the supervisor alone brings it back — via the typed
    // CursorTooOld → snapshot-refresh path, never an unbounded replay.
    victim.revive();
    for _ in 0..64 {
        if sup.all_healthy() {
            break;
        }
        sup.tick();
    }
    assert!(sup.all_healthy(), "{:?}", sup.report());
    let report = sup.report();
    assert!(report.cursor_too_old >= 1, "{report:?}");
    assert!(report.snapshot_refreshes >= 1, "{report:?}");
    let (cursor, _, tail) = bus.cursor_state(0, 1);
    assert_eq!(cursor, tail, "refreshed replica is caught up");
    // Same-version fleet, so the refresh that just ran pulled the v2
    // arena blob — byte 8 of the snapshot layout names the codec version.
    assert_eq!(
        probe.snapshot().unwrap().bytes[8],
        2,
        "a v5 fleet must snapshot-refresh with the v2 arena format"
    );

    // And the converged fleet answers bit-identically to the oracle.
    let queries: Vec<Query> = gen_mixed_traffic(&g, 25, &TrafficMix::default(), 77)
        .iter()
        .map(|s| Query::new(s.source, s.target, s.categories.clone(), s.k))
        .collect();
    for (i, q) in queries.iter().enumerate() {
        let mut sharded = router.submit(q.clone()).and_then(|t| t.wait());
        for _ in 0..64 {
            match sharded {
                Err(ShardError::Transport(_)) => {
                    sup.tick();
                    sharded = router.submit(q.clone()).and_then(|t| t.wait());
                }
                _ => break,
            }
        }
        let plain = oracle.submit(q.clone()).and_then(|t| t.wait());
        match (sharded, plain) {
            (Ok(s), Ok(u)) => {
                assert_eq!(s.outcome.witnesses, u.outcome.witnesses, "query {i}")
            }
            (Err(se), Err(ue)) => assert_eq!(se.to_string(), ue.to_string(), "query {i}"),
            (s, u) => panic!("query {i} split: {s:?} vs {u:?}"),
        }
    }

    // Every recovery decision the supervisor counted was journaled exactly
    // once, and nothing else emits these kinds: the report and the fleet
    // event journal must reconcile 1:1, even after a full soak.
    let report = sup.report();
    let journal = router.events();
    for (kind, counted) in [
        (EventKind::ReplayRecovered, report.replays),
        (EventKind::SnapshotRefreshed, report.snapshot_refreshes),
        (EventKind::CursorTooOld, report.cursor_too_old),
        (EventKind::LogCompacted, report.compactions),
        (EventKind::RecoveryFailed, report.recovery_failures),
    ] {
        assert_eq!(
            journal.kind_total(kind),
            counted,
            "{kind:?} journal total must equal the supervisor report"
        );
    }
}
