//! The tracing PR's load-bearing guarantee: traced queries pushed through
//! fault-injecting transports — frame drops, response drops, delays,
//! duplicate delivery, replica kills and supervised recovery — still
//! return **bit-identical** answers *and* structurally complete span
//! forests: unique span ids, exactly one root, every parent resolving, no
//! child outliving its parent, replica stage sums within the replica
//! wall ([`Trace::validate`]).
//!
//! Mixed-version fleets are covered too: a fleet where some replicas
//! negotiated protocol v2 answers bit-identically to the oracle, traces
//! degrade per-shard (v2-answered shards simply carry no replica spans),
//! and nothing orphans.

use std::sync::Arc;
use std::time::Instant;

use kosr_core::{IndexedGraph, Query};
use kosr_graph::{Graph, PartitionConfig, Partitioner};
use kosr_service::{KosrService, ServiceConfig, Span, Trace, TraceContext, TraceId};
use kosr_shard::{ShardError, ShardRouter, ShardSet, ShardedResponse, SupervisorConfig};
use kosr_testkit::{FaultConfig, FaultSchedule, FaultyTransport};
use kosr_transport::{InProcTransport, KillSwitch};
use kosr_workloads::{assign_uniform, gen_mixed_traffic, road_grid_directed, TrafficMix};

fn world(seed: u64) -> Graph {
    let mut g = road_grid_directed(7, 7, seed);
    assign_uniform(&mut g, 4, 10, seed ^ 1);
    g
}

fn queries_for(g: &Graph, count: usize, seed: u64) -> Vec<Query> {
    gen_mixed_traffic(g, count, &TrafficMix::default(), seed)
        .iter()
        .map(|s| Query::new(s.source, s.target, s.categories.clone(), s.k))
        .collect()
}

fn service_config() -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        queue_capacity: 2048,
        // Caches off: every traced answer must carry a real `execute`
        // span with the paper's pruning counters.
        cache_capacity: 0,
        ..Default::default()
    }
}

/// Submits one traced query, stepping the supervisor on transport-level
/// failures, and assembles the returned span forest into a [`Trace`]
/// under a synthetic client root (what the gateway tier does with the
/// same forest).
fn traced_ask(
    router: &ShardRouter,
    sup: Option<&kosr_shard::FleetSupervisor>,
    q: &Query,
    trace_id: TraceId,
) -> Result<(ShardedResponse, Trace), ShardError> {
    let ctx = TraceContext::root(trace_id, true);
    let t0 = Instant::now();
    for _ in 0..32 {
        match router
            .submit_traced(q.clone(), Some(ctx))
            .and_then(|t| t.wait())
        {
            Err(ShardError::Transport(_)) if sup.is_some() => sup.unwrap().tick(),
            Err(e) => return Err(e),
            Ok(resp) => {
                // The client root closes over every retry, so the floor of
                // its wall contains the floor of any span measured inside.
                let elapsed_us = t0.elapsed().as_micros() as u64;
                let mut spans = vec![Span::new(ctx.parent_span, None, "client", 0, elapsed_us)];
                spans.extend(resp.spans.iter().cloned());
                let trace = Trace {
                    trace_id,
                    wall_us: elapsed_us,
                    sampled: true,
                    spans,
                };
                return Ok((resp, trace));
            }
        }
    }
    panic!("traced query kept failing after 32 supervisor ticks: {q:?}");
}

/// The structural expectations beyond [`Trace::validate`]: one shard span
/// per fanned-out shard under the client root, a merge span, and (when
/// `replicas_traced`) a replica span with counter-tagged `execute` under
/// every shard span.
fn assert_complete(resp: &ShardedResponse, trace: &Trace, replicas_traced: bool, label: &str) {
    trace.validate().unwrap_or_else(|e| panic!("{label}: {e}"));
    let root = trace.root().expect("client root");
    let shard_spans: Vec<&Span> = trace.spans.iter().filter(|s| s.name == "shard").collect();
    assert_eq!(shard_spans.len(), resp.shards.len(), "{label}: shard spans");
    for s in &shard_spans {
        assert_eq!(s.parent, Some(root.id), "{label}: shard span parent");
    }
    assert!(trace.span_named("merge").is_some(), "{label}: merge span");
    if replicas_traced {
        for shard in &shard_spans {
            let replica = trace
                .children_of(shard.id)
                .into_iter()
                .find(|c| c.name == "replica")
                .unwrap_or_else(|| panic!("{label}: shard span without replica child"));
            let execute = trace
                .children_of(replica.id)
                .into_iter()
                .find(|c| c.name == "execute")
                .unwrap_or_else(|| panic!("{label}: replica without execute span"));
            assert!(
                execute.tag_u64("pne_expansions").is_some(),
                "{label}: execute span lost its pruning counters"
            );
        }
    }
}

fn assert_answer_matches(resp: &ShardedResponse, oracle: &KosrService, q: &Query, label: &str) {
    let plain = oracle
        .submit(q.clone())
        .and_then(|t| t.wait())
        .unwrap_or_else(|e| panic!("{label}: oracle rejected {q:?}: {e}"));
    assert_eq!(
        resp.outcome.witnesses, plain.outcome.witnesses,
        "{label}: witnesses diverged"
    );
    assert_eq!(
        resp.outcome.costs(),
        plain.outcome.costs(),
        "{label}: costs"
    );
}

/// One fault-schedule round: frame faults, then killed primaries
/// (failover), then supervised recovery — traced throughout.
fn round(seed: u64) {
    let g = world(seed);
    let ig = IndexedGraph::build_default(g.clone());
    let partition = Partitioner::new(PartitionConfig {
        num_shards: 2 + (seed as usize % 2),
        ..Default::default()
    })
    .partition(&ig.graph);
    let config = service_config();
    let oracle = KosrService::new(Arc::new(ig.clone()), config.clone());

    let mut switches: Vec<((usize, usize), KillSwitch)> = Vec::new();
    let router =
        ShardRouter::with_replicas(ShardSet::build(&ig, partition), config, 3, |j, r, t| {
            switches.push(((j, r), t.kill_switch()));
            let schedule = FaultSchedule::new(
                seed ^ ((j as u64) << 8) ^ ((r as u64) << 16),
                FaultConfig::default(),
            );
            Arc::new(FaultyTransport::new(Arc::new(t), Arc::new(schedule)))
        });
    let sup = router.supervisor(SupervisorConfig::default());
    let label = format!("seed {seed}");

    // Phase 1 — frame faults only.
    for (i, q) in queries_for(&g, 10, seed ^ 0xA1).iter().enumerate() {
        let trace_id = TraceId::from_parts(seed, 0x0100 + i as u64);
        let (resp, trace) = traced_ask(&router, Some(&sup), q, trace_id).expect("answers");
        assert_complete(&resp, &trace, true, &format!("{label} phase 1 q{i}"));
        assert_answer_matches(&resp, &oracle, q, &format!("{label} phase 1 q{i}"));
    }

    // Phase 2 — kill every primary: traced failover must stay complete.
    for ((_, r), s) in &switches {
        if *r == 0 {
            s.kill();
        }
    }
    for (i, q) in queries_for(&g, 6, seed ^ 0xA2).iter().enumerate() {
        let trace_id = TraceId::from_parts(seed, 0x0200 + i as u64);
        let (resp, trace) = traced_ask(&router, Some(&sup), q, trace_id).expect("fails over");
        assert_complete(&resp, &trace, true, &format!("{label} phase 2 q{i}"));
        assert_answer_matches(&resp, &oracle, q, &format!("{label} phase 2 q{i}"));
    }

    // Phase 3 — revive + supervised recovery, then trace again.
    for (_, s) in &switches {
        s.revive();
    }
    for _ in 0..32 {
        if sup.all_healthy() {
            break;
        }
        sup.tick();
    }
    assert!(sup.all_healthy(), "{label}: fleet failed to converge");
    for (i, q) in queries_for(&g, 6, seed ^ 0xA3).iter().enumerate() {
        let trace_id = TraceId::from_parts(seed, 0x0300 + i as u64);
        let (resp, trace) = traced_ask(&router, Some(&sup), q, trace_id).expect("recovered");
        assert_complete(&resp, &trace, true, &format!("{label} phase 3 q{i}"));
        assert_answer_matches(&resp, &oracle, q, &format!("{label} phase 3 q{i}"));
    }
}

#[test]
fn traced_queries_survive_fault_schedules_with_complete_traces() {
    let cases: u64 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(|c: u64| c.clamp(2, 8))
        .unwrap_or(3);
    for seed in 0..cases {
        round(seed);
    }
}

/// Duplicate-heavy schedules: the duplicate executes on the replica, but
/// exactly one response is read — so span ids stay unique (a duplicated
/// forest would fail `validate`) and answers stay canonical.
#[test]
fn duplicate_delivery_never_duplicates_spans() {
    let g = world(77);
    let ig = IndexedGraph::build_default(g.clone());
    let partition = Partitioner::new(PartitionConfig {
        num_shards: 2,
        ..Default::default()
    })
    .partition(&ig.graph);
    let config = service_config();
    let oracle = KosrService::new(Arc::new(ig.clone()), config.clone());
    let duplicate_storm = FaultConfig {
        drop_per_mille: 0,
        drop_response_per_mille: 0,
        delay_per_mille: 0,
        duplicate_per_mille: 600,
        max_delay: std::time::Duration::ZERO,
    };
    let router =
        ShardRouter::with_replicas(ShardSet::build(&ig, partition), config, 2, |j, r, t| {
            let s = FaultSchedule::new(77 ^ ((j as u64) << 4) ^ r as u64, duplicate_storm);
            Arc::new(FaultyTransport::new(Arc::new(t), Arc::new(s)))
        });
    for (i, q) in queries_for(&g, 12, 0xD0).iter().enumerate() {
        let trace_id = TraceId::from_parts(77, i as u64);
        let (resp, trace) = traced_ask(&router, None, q, trace_id).expect("duplicates are benign");
        assert_complete(&resp, &trace, true, &format!("duplicate storm q{i}"));
        assert_answer_matches(&resp, &oracle, q, &format!("duplicate storm q{i}"));
    }
}

/// Mixed v3/v2 fleets: even-numbered shards serve from a v2-capped
/// primary (its Hello negotiates down, traced frames fall back to the
/// plain v2 exchange), odd shards from a v3 one. Answers are
/// bit-identical to the oracle either way; traces degrade *per shard* —
/// the v2-answered shard spans simply have no replica children — without
/// ever orphaning a span.
#[test]
fn mixed_version_fleets_stay_bit_identical_and_trace_what_they_can() {
    let g = world(91);
    let ig = IndexedGraph::build_default(g.clone());
    let partition = Partitioner::new(PartitionConfig {
        num_shards: 3,
        ..Default::default()
    })
    .partition(&ig.graph);
    let config = service_config();
    let oracle = KosrService::new(Arc::new(ig.clone()), config.clone());
    let router =
        ShardRouter::with_replicas(ShardSet::build(&ig, partition), config, 1, |j, _, t| {
            if j % 2 == 0 {
                Arc::new(InProcTransport::with_max_version(
                    Arc::clone(t.service()),
                    2,
                ))
            } else {
                Arc::new(t)
            }
        });
    for (i, q) in queries_for(&g, 12, 0x91).iter().enumerate() {
        let trace_id = TraceId::from_parts(91, i as u64);
        let (resp, trace) = traced_ask(&router, None, q, trace_id).expect("mixed fleet answers");
        let label = format!("mixed fleet q{i}");
        // Structure first (without the all-replicas-traced expectation)…
        assert_complete(&resp, &trace, false, &label);
        assert_answer_matches(&resp, &oracle, q, &label);
        // …then the per-shard degradation: replica spans exactly where
        // the answering peer speaks v3.
        for shard_span in trace.spans.iter().filter(|s| s.name == "shard") {
            let shard_j = shard_span
                .tag_u64("shard")
                .expect("shard spans are tagged with their index")
                as usize;
            let has_replica = trace
                .children_of(shard_span.id)
                .iter()
                .any(|c| c.name == "replica");
            assert_eq!(
                has_replica,
                shard_j % 2 == 1,
                "{label}: shard {shard_j} traced-ness should follow its peer version"
            );
        }
    }
}
