//! Mixed-version fleet interop: one replica runs behind a transport capped
//! at protocol 4 — exactly how a binary from before the v2 arena snapshot
//! behaves on the wire (it answers Hello with 4 and only knows the legacy
//! v1 snapshot pull). The suite drives the fleet through a compaction
//! storm that forces the old peer to **cold-join by snapshot**: the
//! supervisor pulls a v2 blob from a sibling and the push path transcodes
//! it to v1 for the old binary — which must end up answering bit-identical
//! to the unsharded oracle.

use std::sync::Arc;

use kosr_core::{IndexedGraph, Query};
use kosr_graph::{PartitionConfig, Partitioner};
use kosr_service::{KosrService, ServiceConfig, Update};
use kosr_shard::{ShardError, ShardRouter, ShardSet, SupervisorConfig};
use kosr_transport::{InProcTransport, ShardTransport};
use kosr_workloads::{
    assign_uniform, gen_membership_flips, gen_mixed_traffic, road_grid_directed, MembershipFlip,
    TrafficMix,
};

const WATERMARK: usize = 8;
const UPDATES: usize = 5 * WATERMARK;

fn flip_to_update(f: &MembershipFlip) -> Update {
    if f.insert {
        Update::InsertMembership {
            vertex: f.vertex,
            category: f.category,
        }
    } else {
        Update::RemoveMembership {
            vertex: f.vertex,
            category: f.category,
        }
    }
}

#[test]
fn v1_only_peer_cold_joins_through_negotiated_fallback() {
    let mut g = road_grid_directed(6, 6, 33);
    assign_uniform(&mut g, 3, 10, 5);
    let ig = IndexedGraph::build_default(g.clone());
    let partition = Partitioner::new(PartitionConfig {
        num_shards: 2,
        ..Default::default()
    })
    .partition(&ig.graph);
    let config = ServiceConfig {
        workers: 1,
        ..Default::default()
    };
    let oracle = KosrService::new(Arc::new(ig.clone()), config.clone());

    // Shard 0 replica 1 joins the fleet as an "old binary": same service,
    // but its transport speaks at most protocol 4 — Hello negotiates down,
    // snapshot pulls use the legacy request, and pushes transcode to v1.
    let mut old_peer: Option<Arc<InProcTransport>> = None;
    let mut new_peer: Option<Arc<InProcTransport>> = None;
    let router =
        ShardRouter::with_replicas(ShardSet::build(&ig, partition), config, 2, |j, r, t| {
            if (j, r) == (0, 1) {
                let capped = Arc::new(InProcTransport::with_max_version(
                    Arc::clone(t.service()),
                    4,
                ));
                old_peer = Some(Arc::clone(&capped));
                capped
            } else {
                let t = Arc::new(t);
                if (j, r) == (0, 0) {
                    new_peer = Some(Arc::clone(&t));
                }
                t
            }
        });
    let old_peer = old_peer.expect("replica (0,1) was wrapped");
    let new_peer = new_peer.expect("replica (0,0) was wrapped");

    // Negotiation picks the format per peer: the v5 sibling hands out the
    // v2 arena blob, the capped peer is pulled via the legacy v1 request.
    assert_eq!(new_peer.snapshot().unwrap().bytes[8], 2);
    assert_eq!(old_peer.snapshot().unwrap().bytes[8], 1);

    let bus = router.update_bus();
    let sup = router.supervisor(SupervisorConfig {
        compact_watermark: WATERMARK,
        replay_limit: 4,
        ..Default::default()
    });

    // Cut the old peer for a whole compaction storm: its missed suffix is
    // trimmed away, so the only road back is the snapshot cold-join.
    let switch = old_peer.kill_switch();
    switch.kill();
    sup.tick();
    for (i, f) in gen_membership_flips(&g, UPDATES, 0x33).iter().enumerate() {
        let u = flip_to_update(f);
        let mut published = false;
        for _ in 0..16 {
            match bus.publish(&u) {
                Ok(_) => {
                    published = true;
                    break;
                }
                Err(ShardError::Transport(_)) => sup.tick(),
                Err(e) => panic!("unexpected rejection of {u:?}: {e}"),
            }
        }
        assert!(published, "update {i} kept failing");
        oracle.apply_update(&u).expect("oracle mirrors the bus");
        if i % 4 == 3 {
            sup.tick();
        }
    }

    switch.revive();
    for _ in 0..64 {
        if sup.all_healthy() {
            break;
        }
        sup.tick();
    }
    assert!(sup.all_healthy(), "{:?}", sup.report());
    assert!(
        sup.report().snapshot_refreshes >= 1,
        "the old peer must have come back by snapshot, not replay: {:?}",
        sup.report()
    );

    // The cold-joined old peer serves the same state: every answer is
    // bit-identical to the unsharded oracle, across both replicas.
    let queries: Vec<Query> = gen_mixed_traffic(&g, 20, &TrafficMix::default(), 44)
        .iter()
        .map(|s| Query::new(s.source, s.target, s.categories.clone(), s.k))
        .collect();
    for (i, q) in queries.iter().enumerate() {
        let sharded = router.submit(q.clone()).and_then(|t| t.wait());
        let plain = oracle.submit(q.clone()).and_then(|t| t.wait());
        match (sharded, plain) {
            (Ok(s), Ok(u)) => assert_eq!(s.outcome.witnesses, u.outcome.witnesses, "query {i}"),
            (Err(se), Err(ue)) => assert_eq!(se.to_string(), ue.to_string(), "query {i}"),
            (s, u) => panic!("query {i} split: {s:?} vs {u:?}"),
        }
    }
}
