//! Property suite for the inter-category lower-bound tables and every
//! consumer of them:
//!
//! * the tables are **exact** (not merely admissible) minima over member
//!   pairs on arbitrary random worlds — including after seeded live-update
//!   schedules (membership churn and edge inserts);
//! * bound-pruned searches answer **bit-identically** to the unpruned
//!   canonical oracle for all six methods, on random worlds *and* on the
//!   mixed-traffic grid that once exposed a StarKOSR sibling-chain
//!   ordering bug (kept here as a permanent regression);
//! * a sharded fleet whose router skips chain-infeasible shards still
//!   answers bit-identically to an unsharded run.

use std::sync::Arc;

use kosr_core::{IndexedGraph, Method, Query};
use kosr_graph::{CategoryId, GraphBuilder, Partition, VertexId, Weight};
use kosr_service::ServiceConfig;
use kosr_shard::{ShardRouter, ShardSet};
use kosr_workloads::{assign_uniform, gen_mixed_traffic, road_grid_directed, TrafficMix};
use proptest::prelude::*;

const CATS: u32 = 3;

/// A world from proptest-driven raw material (see the flat-arena fuzz
/// suite): self-loops and duplicate memberships fall out naturally.
fn world(n: usize, edges: &[(u32, u32, u64)], members: &[(u32, u32)]) -> IndexedGraph {
    let mut b = GraphBuilder::new(n);
    for &(a, t, w) in edges {
        let (a, t) = (a % n as u32, t % n as u32);
        if a != t {
            b.add_edge(VertexId(a), VertexId(t), w % 50 + 1);
        }
    }
    b.categories_mut().ensure_categories(CATS as usize);
    for &(v, c) in members {
        b.categories_mut()
            .insert(VertexId(v % n as u32), CategoryId(c % CATS));
    }
    IndexedGraph::build_default(b.build())
}

/// Brute-force `min { dis(u, v) : u ∈ ci, v ∈ cj }` straight off the
/// labels — the definition the table must reproduce bit for bit.
fn brute_pair(ig: &IndexedGraph, ci: CategoryId, cj: CategoryId) -> Weight {
    let mut best = kosr_graph::INFINITY;
    for &u in ig.graph.categories().vertices_of(ci) {
        for &v in ig.graph.categories().vertices_of(cj) {
            best = best.min(ig.labels.distance(u, v));
        }
    }
    best
}

fn brute_to(ig: &IndexedGraph, v: VertexId, c: CategoryId) -> Weight {
    ig.graph
        .categories()
        .vertices_of(c)
        .iter()
        .map(|&m| ig.labels.distance(v, m))
        .min()
        .unwrap_or(kosr_graph::INFINITY)
}

fn brute_from(ig: &IndexedGraph, c: CategoryId, v: VertexId) -> Weight {
    ig.graph
        .categories()
        .vertices_of(c)
        .iter()
        .map(|&m| ig.labels.distance(m, v))
        .min()
        .unwrap_or(kosr_graph::INFINITY)
}

fn assert_tables_exact(ig: &IndexedGraph) {
    for i in 0..CATS {
        for j in 0..CATS {
            let (ci, cj) = (CategoryId(i), CategoryId(j));
            assert_eq!(ig.bounds.pair(ci, cj), brute_pair(ig, ci, cj));
        }
        let c = CategoryId(i);
        for v in ig.graph.vertices() {
            assert_eq!(ig.bounds.to_category(&ig.labels, v, c), brute_to(ig, v, c));
            assert_eq!(
                ig.bounds.from_category(&ig.labels, c, v),
                brute_from(ig, c, v)
            );
        }
    }
}

/// All six methods, pruned vs. unpruned, must agree witness for witness.
fn assert_pruned_matches(ig: &IndexedGraph, q: &Query) {
    let sb = ig.seq_bounds(q);
    for m in Method::ALL {
        let base = ig.run_canonical(q, m, u64::MAX);
        let opt = ig.run_canonical_opt(q, m, u64::MAX, Some(&sb));
        assert_eq!(base.witnesses, opt.witnesses, "method {m:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The offline build produces exact tables on arbitrary worlds.
    #[test]
    fn tables_are_exact_on_random_worlds(
        n in 2usize..12,
        edges in proptest::collection::vec((0u32..12, 0u32..12, 1u64..50), 1..36),
        members in proptest::collection::vec((0u32..12, 0u32..CATS), 0..18),
    ) {
        let ig = world(n, &edges, &members);
        assert_tables_exact(&ig);
    }

    /// Incremental maintenance keeps the tables exact through membership
    /// churn and edge inserts — never just admissible, always the true
    /// minima of the post-update world.
    #[test]
    fn tables_stay_exact_under_update_schedules(
        n in 3usize..10,
        edges in proptest::collection::vec((0u32..10, 0u32..10, 1u64..40), 2..24),
        members in proptest::collection::vec((0u32..10, 0u32..CATS), 1..12),
        ops in proptest::collection::vec((0u8..3, 0u32..10, 0u32..CATS, 1u64..20), 1..10),
    ) {
        let mut ig = world(n, &edges, &members);
        for &(kind, v, c, w) in &ops {
            let v = VertexId(v % n as u32);
            let c = CategoryId(c % CATS);
            match kind {
                0 => { ig.insert_membership(v, c); }
                1 => { ig.remove_membership(v, c); }
                _ => {
                    let u = VertexId((v.0 + 1) % n as u32);
                    let _ = ig.insert_edge(v, u, w);
                }
            }
            assert_tables_exact(&ig);
        }
    }

    /// Bound-pruned searches are bit-identical to the unpruned canonical
    /// oracle on random worlds, for every method — including infeasible
    /// sequences (both sides must return empty).
    #[test]
    fn pruned_searches_match_the_unpruned_oracle(
        n in 3usize..10,
        edges in proptest::collection::vec((0u32..10, 0u32..10, 1u64..40), 2..24),
        members in proptest::collection::vec((0u32..10, 0u32..CATS), 1..12),
        s in 0u32..10,
        t in 0u32..10,
        cats in proptest::collection::vec(0u32..CATS, 0..4),
        k in 1usize..5,
    ) {
        let ig = world(n, &edges, &members);
        let cats: Vec<CategoryId> = cats.into_iter().map(CategoryId).collect();
        let q = Query::new(VertexId(s % n as u32), VertexId(t % n as u32), cats, k);
        assert_pruned_matches(&ig, &q);
    }
}

/// The permanent regression for the StarKOSR sibling-chain bug: on this
/// mixed-traffic grid a `max(est, cost + rem)` queue key silently dropped
/// a 645-cost route (FindNEN's lazy chain is ordered by estimate, and the
/// combined key is not monotone along it). Small worlds never caught it.
#[test]
fn mixed_traffic_grid_is_bit_identical_under_pruning() {
    let mut g = road_grid_directed(14, 14, 21);
    assign_uniform(&mut g, 6, 18, 33);
    let ig = IndexedGraph::build_default(g);
    let stream = gen_mixed_traffic(
        &ig.graph,
        200,
        &TrafficMix {
            hot_fraction: 0.4,
            ..Default::default()
        },
        77,
    );
    for s in &stream {
        let q = Query::new(s.source, s.target, s.categories.clone(), s.k);
        let sb = ig.seq_bounds(&q);
        for m in Method::ALL {
            let base = ig.run_canonical(&q, m, u64::MAX);
            let opt = ig.run_canonical_opt(&q, m, u64::MAX, Some(&sb));
            assert_eq!(base.witnesses, opt.witnesses, "{m:?} diverged on {q:?}");
        }
    }
}

/// Two directed components bridged one way (`A → B`): queries ending in A
/// force chain-infeasible first stops on B's shards, so the router's
/// bound gate actually fires — and the fleet must still answer exactly
/// like a single-shard run.
#[test]
fn sharded_fleet_with_bound_skips_matches_unsharded() {
    let n = 12u32;
    let mut b = GraphBuilder::new(n as usize);
    for i in 0..5 {
        b.add_edge(VertexId(i), VertexId(i + 1), (i as u64 % 3) + 2);
        b.add_edge(VertexId(i + 1), VertexId(i), (i as u64 % 2) + 3);
        b.add_edge(VertexId(6 + i), VertexId(7 + i), (i as u64 % 4) + 1);
        b.add_edge(VertexId(7 + i), VertexId(6 + i), (i as u64 % 3) + 2);
    }
    b.add_edge(VertexId(5), VertexId(6), 4); // the one-way bridge
    b.categories_mut().ensure_categories(3);
    for (v, c) in [(2, 0), (8, 0), (4, 1), (10, 1), (1, 2), (7, 2)] {
        b.categories_mut().insert(VertexId(v), CategoryId(c));
    }
    let ig = IndexedGraph::build_default(b.build());

    let config = || ServiceConfig {
        workers: 1,
        ..Default::default()
    };
    let split = Partition::from_owner((0..n).map(|v| u32::from(v >= 6)).collect(), 2);
    let sharded =
        ShardRouter::with_replicas(ShardSet::build(&ig, split), config(), 1, |_, _, t| {
            Arc::new(t)
        });
    let single = ShardRouter::with_replicas(
        ShardSet::build(&ig, Partition::from_owner(vec![0; n as usize], 1)),
        config(),
        1,
        |_, _, t| Arc::new(t),
    );

    let queries = [
        // First stops {2, 8}: 8 lives past the one-way bridge and cannot
        // return to t=5 — shard 1 is skipped, shard 0 still answers.
        Query::new(VertexId(0), VertexId(5), vec![CategoryId(0)], 3),
        // Everything feasible: both shards queried, bounded merge active.
        Query::new(
            VertexId(0),
            VertexId(11),
            vec![CategoryId(0), CategoryId(1)],
            4,
        ),
        // Globally infeasible: every planned shard skipped, empty answer.
        Query::new(VertexId(7), VertexId(5), vec![CategoryId(1)], 2),
    ];
    for q in &queries {
        let a = sharded.submit(q.clone()).unwrap().wait().unwrap();
        let b = single.submit(q.clone()).unwrap().wait().unwrap();
        assert_eq!(
            a.outcome.witnesses, b.outcome.witnesses,
            "sharded and unsharded diverged on {q:?}"
        );
    }
    // One skip from the first query, two from the third.
    assert_eq!(sharded.bound_skips(), 3, "the gate fired unexpectedly");
    assert_eq!(single.bound_skips(), 0, "a single shard is never skippable");
}
