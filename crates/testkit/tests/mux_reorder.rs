//! Mux-reordering property suite: seed-deterministic [`MuxFaultPlan`]
//! delivery schedules — permuted order, duplicates, stray ids — driven
//! against the transport's demultiplexing core, proving that interleaved
//! request ids never misdeliver a response however the frames arrive.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use kosr_testkit::{MuxEvent, MuxFaultPlan};
use kosr_transport::mux::DemuxTable;
use kosr_transport::protocol::{Heartbeat, Response};

fn pong(epoch: u64) -> Response {
    Response::Pong(Heartbeat { epoch })
}

fn epoch_of(resp: Response) -> u64 {
    match resp {
        Response::Pong(hb) => hb.epoch,
        other => panic!("not a pong: {other:?}"),
    }
}

#[test]
fn plans_are_deterministic_per_seed_and_cover_every_request() {
    let a = MuxFaultPlan::generate(11, 50, 200, 150);
    let b = MuxFaultPlan::generate(11, 50, 200, 150);
    assert_eq!(a.events(), b.events());
    let c = MuxFaultPlan::generate(12, 50, 200, 150);
    assert_ne!(a.events(), c.events(), "different seed, different schedule");

    // Every request is delivered exactly once (duplicates are extra).
    let mut delivered = vec![0usize; 50];
    for e in a.events() {
        if let MuxEvent::Deliver(i) = e {
            delivered[*i] += 1;
        }
    }
    assert!(delivered.iter().all(|&n| n == 1));
    assert!(a.len() >= 50);
    assert!(MuxFaultPlan::generate(1, 0, 500, 500).is_empty());
}

/// The acceptance property: across seeds, any plan's delivery order —
/// with duplicates and strays interleaved, applied from another thread —
/// completes every slot with exactly its own response.
#[test]
fn reordered_interleaved_ids_never_misdeliver() {
    let cases: u64 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(|c: u64| c.clamp(8, 64))
        .unwrap_or(24);
    for seed in 0..cases {
        let n = 1 + (seed as usize * 7) % 48;
        let plan = MuxFaultPlan::generate(seed, n, 250, 250);
        let table = Arc::new(DemuxTable::new());
        // Sparse ids, so stray ids and off-by-one bugs cannot alias.
        let id_of = |i: usize| (i as u64) * 5 + 2;
        let completions: Vec<_> = (0..n).map(|i| table.register(id_of(i))).collect();

        let delivery = Arc::clone(&table);
        let events = plan.events().to_vec();
        let deliverer = thread::spawn(move || {
            let mut discarded = 0u64;
            for e in events {
                let routed = match e {
                    MuxEvent::Deliver(i) | MuxEvent::Duplicate(i) => {
                        delivery.complete(id_of(i), Ok(pong(id_of(i))))
                    }
                    MuxEvent::Stray(id) => delivery.complete(id, Ok(pong(id))),
                };
                if !routed {
                    discarded += 1;
                }
            }
            discarded
        });

        for (i, completion) in completions.into_iter().enumerate() {
            let resp = completion
                .wait(Duration::from_secs(10))
                .unwrap_or_else(|e| panic!("seed {seed}: request {i} failed: {e}"));
            assert_eq!(
                epoch_of(resp),
                id_of(i),
                "seed {seed}: request {i} got someone else's response"
            );
        }
        let discarded = deliverer.join().unwrap();
        assert_eq!(
            discarded as usize,
            plan.len() - n,
            "seed {seed}: every duplicate/stray discarded, every delivery routed"
        );
        assert_eq!(table.pending(), 0, "seed {seed}");
    }
}
