//! End-to-end gateway suite over **real sockets**: a supervised 2-shard ×
//! 2-replica fleet behind the HTTP edge, driven with JSON traffic through
//! TCP connections, checked **bit-identically** (cost + full route vertex
//! sequence) against the unsharded oracle — before and after live
//! updates, and across a replica kill/recover cycle healed by the
//! supervisor alone. The `/metrics` page is validated as Prometheus text
//! carrying the acceptance set: QPS, p50/p99 latency, cache hit rate,
//! per-shard health, and supervisor failover/recovery counters.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use kosr_core::{IndexedGraph, Query};
use kosr_gateway::{client, Gateway, GatewayConfig};
use kosr_graph::{PartitionConfig, Partitioner};
use kosr_service::{validate_prometheus_text, KosrService, ServiceConfig, Update};
use kosr_shard::{ShardRouter, ShardSet, SupervisorConfig};
use kosr_workloads::{
    assign_clustered, gen_membership_flips, gen_mixed_traffic, road_grid_directed, route_body,
    QuerySpec, TrafficMix,
};

struct Fleet {
    gateway: Gateway,
    reference: KosrService,
    switches: Vec<kosr_transport::KillSwitch>,
    supervisor: Arc<kosr_shard::SupervisorHandle>,
    world: kosr_graph::Graph,
}

fn fleet() -> Fleet {
    let mut g = road_grid_directed(16, 16, 42);
    assign_clustered(&mut g, 6, 25, 0.06, 7);
    let ig = IndexedGraph::build_default(g.clone());
    let partition = Partitioner::new(PartitionConfig {
        num_shards: 2,
        ..Default::default()
    })
    .partition(&ig.graph);
    let set = ShardSet::build(&ig, partition);
    let config = ServiceConfig {
        workers: 2,
        queue_capacity: 1024,
        cache_capacity: 256,
        ..Default::default()
    };
    let reference = KosrService::new(Arc::new(ig), config.clone());
    let mut switches = Vec::new();
    let router = Arc::new(ShardRouter::with_replicas(set, config, 2, |_, _, t| {
        switches.push(t.kill_switch());
        Arc::new(t)
    }));
    let supervisor = Arc::new(
        router
            .supervisor(SupervisorConfig {
                tick_every: Duration::from_millis(5),
                compact_watermark: 8,
                replay_limit: 4,
            })
            .start(),
    );
    let gateway = Gateway::spawn(
        Arc::clone(&router),
        Some(Arc::clone(&supervisor)),
        GatewayConfig::default(),
    )
    .unwrap();
    drop(router);
    Fleet {
        gateway,
        reference,
        switches,
        supervisor,
        world: g,
    }
}

/// Issues `spec` over a real socket and asserts the JSON answer is
/// bit-identical (cost + vertex sequence per route) to the oracle's.
fn assert_route_matches_oracle(addr: SocketAddr, reference: &KosrService, spec: &QuerySpec) {
    let resp = client::call(addr, "POST", "/v1/route", Some(&route_body(spec, None))).unwrap();
    let query = Query::new(spec.source, spec.target, spec.categories.clone(), spec.k);
    let want = reference.submit(query).unwrap().wait().unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let v = resp.json().unwrap();
    let routes = v.get("routes").unwrap().as_array().unwrap();
    assert_eq!(routes.len(), want.outcome.witnesses.len(), "route count");
    for (route, w) in routes.iter().zip(&want.outcome.witnesses) {
        assert_eq!(
            route.get("cost").unwrap().as_u64().unwrap(),
            w.cost,
            "cost diverged from the unsharded oracle"
        );
        let vertices: Vec<u64> = route
            .get("vertices")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|x| x.as_u64().unwrap())
            .collect();
        let oracle: Vec<u64> = w.vertices.iter().map(|v| v.0 as u64).collect();
        assert_eq!(vertices, oracle, "route sequence diverged");
    }
}

fn metric_value(text: &str, prefix: &str) -> Option<f64> {
    text.lines()
        .find(|l| l.starts_with(prefix))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

#[test]
fn gateway_serves_bit_identical_answers_across_updates_and_recovery() {
    let f = fleet();
    let addr = f.gateway.addr();
    let specs = gen_mixed_traffic(
        &f.world,
        120,
        &TrafficMix {
            hot_fraction: 0.4,
            ..Default::default()
        },
        9,
    );

    // Act 1 — baseline: every JSON answer over the socket matches the
    // unsharded oracle bit for bit.
    for spec in &specs {
        assert_route_matches_oracle(addr, &f.reference, spec);
    }

    // Act 2 — live updates through the HTTP surface, mirrored onto the
    // oracle; answers stay identical afterwards.
    for flip in gen_membership_flips(&f.world, 10, 23) {
        let (op, update) = if flip.insert {
            (
                "insert_membership",
                Update::InsertMembership {
                    vertex: flip.vertex,
                    category: flip.category,
                },
            )
        } else {
            (
                "remove_membership",
                Update::RemoveMembership {
                    vertex: flip.vertex,
                    category: flip.category,
                },
            )
        };
        let body = format!(
            "{{\"op\": \"{op}\", \"vertex\": {}, \"category\": {}}}",
            flip.vertex.0, flip.category.0
        );
        let resp = client::call(addr, "POST", "/v1/update", Some(&body)).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        f.reference.apply_update(&update).unwrap();
    }
    for spec in &specs[..60] {
        assert_route_matches_oracle(addr, &f.reference, spec);
    }

    // Act 3 — kill shard 0's primary replica. The supervisor quarantines
    // it; served answers never waver.
    f.switches[0].kill();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while f.supervisor.all_healthy() {
        assert!(
            std::time::Instant::now() < deadline,
            "supervisor never noticed the kill"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let health = client::call(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 503, "degraded fleet must flip /healthz");
    for spec in &specs[..40] {
        assert_route_matches_oracle(addr, &f.reference, spec);
    }

    // More updates while the replica is down: its cursor falls behind, so
    // recovery must actually replay (or refresh), not just flip a bit.
    for flip in gen_membership_flips(&f.world, 6, 31) {
        let (op, update) = if flip.insert {
            (
                "insert_membership",
                Update::InsertMembership {
                    vertex: flip.vertex,
                    category: flip.category,
                },
            )
        } else {
            (
                "remove_membership",
                Update::RemoveMembership {
                    vertex: flip.vertex,
                    category: flip.category,
                },
            )
        };
        let body = format!(
            "{{\"op\": \"{op}\", \"vertex\": {}, \"category\": {}}}",
            flip.vertex.0, flip.category.0
        );
        assert_eq!(
            client::call(addr, "POST", "/v1/update", Some(&body))
                .unwrap()
                .status,
            200
        );
        f.reference.apply_update(&update).unwrap();
    }

    // Act 4 — revive: the supervisor heals the fleet on its own clock;
    // /healthz flips back and answers are still bit-identical.
    f.switches[0].revive();
    assert!(
        f.supervisor.await_healthy(Duration::from_secs(30)),
        "supervisor failed to heal: {:?}",
        f.supervisor.report()
    );
    let health = client::call(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200, "{}", health.text());
    for spec in &specs[..60] {
        assert_route_matches_oracle(addr, &f.reference, spec);
    }
    let report = f.supervisor.report();
    assert!(
        report.replays + report.snapshot_refreshes >= 1,
        "recovery must have run: {report:?}"
    );

    // Act 5 — /metrics: valid Prometheus text carrying the acceptance
    // set, with the recovery visible in the counters.
    let metrics = client::call(addr, "GET", "/metrics", None).unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    validate_prometheus_text(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
    for needle in [
        "kosr_gateway_qps",
        "kosr_gateway_latency_seconds{quantile=\"0.5\"}",
        "kosr_gateway_latency_seconds{quantile=\"0.99\"}",
        "kosr_gateway_shard_cache_hit_rate",
        "kosr_service_cache_hit_rate{shard=\"0\",replica=\"0\"}",
        "kosr_service_cache_hit_rate{shard=\"0\",replica=\"1\"}",
        "kosr_shard_replicas_healthy{shard=\"0\"} 2",
        "kosr_shard_replicas_healthy{shard=\"1\"} 2",
        "kosr_shard_failovers_total",
        "kosr_supervisor_replays_total",
        "kosr_supervisor_snapshot_refreshes_total",
        "kosr_supervisor_recovery_failures_total",
        "kosr_fleet_healthy 1",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
    let recoveries = metric_value(&text, "kosr_supervisor_replays_total").unwrap_or(0.0)
        + metric_value(&text, "kosr_supervisor_snapshot_refreshes_total").unwrap_or(0.0);
    assert!(recoveries >= 1.0, "recovery counters advance on /metrics");
    let qps = metric_value(&text, "kosr_gateway_qps").unwrap();
    assert!(qps > 0.0, "edge QPS is live");
    // The hot set repeats: the fleet cache hit rate is visible end-to-end.
    let hit_rate = metric_value(&text, "kosr_gateway_shard_cache_hit_rate").unwrap();
    assert!(hit_rate > 0.0, "hot-set repeats must hit replica caches");
}

/// The observability acceptance cycle, end-to-end over real sockets:
/// killing a replica surfaces a **Critical** event on `/v1/events` and a
/// **Firing** availability alert on `/v1/alerts` within the supervisor's
/// clock; the event's trace id resolves via `/v1/traces/{id}`; after the
/// supervisor heals the fleet the alert transitions to **Resolved**; and
/// `/metrics` carries `kosr_events_total` + `kosr_alert_active` all along.
#[test]
fn replica_kill_fires_an_alert_and_healing_resolves_it() {
    let f = fleet();
    let addr = f.gateway.addr();
    let specs = gen_mixed_traffic(&f.world, 8, &TrafficMix::default(), 17);

    // Warm the SLO windows with healthy ticks + live traffic.
    for spec in &specs {
        assert_route_matches_oracle(addr, &f.reference, spec);
    }
    std::thread::sleep(Duration::from_millis(50));
    let resp = client::call(addr, "GET", "/v1/alerts", None).unwrap();
    assert_eq!(resp.status, 200);
    assert!(
        resp.json()
            .unwrap()
            .get("firing")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty(),
        "healthy fleet must not fire"
    );

    // Kill a replica; a routed query observes the fault mid-flight.
    f.switches[0].kill();
    for spec in &specs[..4] {
        assert_route_matches_oracle(addr, &f.reference, spec);
    }

    // Within the supervisor's clock: a Critical event on /v1/events…
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let failover = loop {
        let resp = client::call(addr, "GET", "/v1/events?severity=critical", None).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        let v = resp.json().unwrap();
        let hit = v
            .get("events")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .find(|e| {
                matches!(
                    e.get("kind").unwrap().as_str().unwrap(),
                    "failover" | "replica_down"
                )
            })
            .cloned();
        if let Some(e) = hit {
            break e;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no Critical failover event appeared: {}",
            resp.text()
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(failover.get("severity").unwrap().as_str(), Some("critical"));

    // …whose trace id (a live query observed the fault) resolves.
    let resp = client::call(addr, "GET", "/v1/events?severity=critical", None).unwrap();
    let traced = resp
        .json()
        .unwrap()
        .get("events")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .find_map(|e| e.get("trace_id").and_then(|t| t.as_str().map(String::from)));
    if let Some(id) = traced {
        let fetched = client::call(addr, "GET", &format!("/v1/traces/{id}"), None).unwrap();
        assert_eq!(fetched.status, 200, "event trace id must resolve");
    }

    // …and a Firing availability alert on /v1/alerts.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let resp = client::call(addr, "GET", "/v1/alerts", None).unwrap();
        let v = resp.json().unwrap();
        let firing = v.get("firing").unwrap().as_array().unwrap();
        if firing
            .iter()
            .any(|a| a.get("slo").unwrap().as_str() == Some("availability"))
        {
            let alert = firing
                .iter()
                .find(|a| a.get("slo").unwrap().as_str() == Some("availability"))
                .unwrap();
            assert_eq!(alert.get("state").unwrap().as_str(), Some("firing"));
            assert!(alert.get("seq").unwrap().as_u64().is_some());
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "availability alert never fired: {}",
            resp.text()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // The firing state is visible on /metrics.
    let text = client::call(addr, "GET", "/metrics", None).unwrap().text();
    validate_prometheus_text(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
    assert!(
        text.contains("kosr_alert_active{slo=\"availability\"} 1"),
        "gauge must be 1 while firing:\n{text}"
    );
    assert!(text.contains("kosr_events_total{severity=\"critical\""));

    // Heal: the supervisor recovers the replica, the alert resolves.
    f.switches[0].revive();
    assert!(
        f.supervisor.await_healthy(Duration::from_secs(30)),
        "supervisor failed to heal: {:?}",
        f.supervisor.report()
    );
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let resp = client::call(addr, "GET", "/v1/alerts", None).unwrap();
        let v = resp.json().unwrap();
        let firing_clear = !v
            .get("firing")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .any(|a| a.get("slo").unwrap().as_str() == Some("availability"));
        let resolved = v
            .get("recently_resolved")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .any(|a| a.get("slo").unwrap().as_str() == Some("availability"));
        if firing_clear && resolved {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "alert never resolved: {}",
            resp.text()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let text = client::call(addr, "GET", "/metrics", None).unwrap().text();
    assert!(
        text.contains("kosr_alert_active{slo=\"availability\"} 0"),
        "gauge must drop after resolution:\n{text}"
    );
    assert!(text.contains("kosr_alert_transitions_total{slo=\"availability\",state=\"resolved\"}"));

    // The alert_firing → alert_resolved pair is journaled and queryable.
    let resp = client::call(addr, "GET", "/v1/events?source=supervisor", None).unwrap();
    let v = resp.json().unwrap();
    let kinds: Vec<String> = v
        .get("events")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|e| e.get("kind").unwrap().as_str().unwrap().to_string())
        .collect();
    assert!(kinds.contains(&"alert_firing".to_string()), "{kinds:?}");
    assert!(kinds.contains(&"alert_resolved".to_string()), "{kinds:?}");
}

#[test]
fn gateway_maps_admission_pressure_to_typed_statuses() {
    let f = fleet();
    let addr = f.gateway.addr();
    // A deadline of zero is admission-rejected 503 with the typed kind —
    // the deadline path end-to-end over a socket.
    let spec = &gen_mixed_traffic(&f.world, 1, &TrafficMix::default(), 3)[0];
    let resp = client::call(addr, "POST", "/v1/route", Some(&route_body(spec, Some(0)))).unwrap();
    assert_eq!(resp.status, 503);
    assert!(resp.text().contains("deadline_exceeded"), "{}", resp.text());
    // And an unknown category is the typed 400 from the shard taxonomy.
    let bad = format!(
        "{{\"source\": {}, \"target\": {}, \"categories\": [99], \"k\": 1}}",
        spec.source.0, spec.target.0
    );
    let resp = client::call(addr, "POST", "/v1/route", Some(&bad)).unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.text().contains("invalid_query"));
}
