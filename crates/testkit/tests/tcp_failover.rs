//! The acceptance criterion's TCP half, supervisor-driven: a
//! `ShardRouter` whose replicas run behind real loopback sockets
//! (`TcpServer` + multiplexed `TcpTransport`) answers bit-identically to
//! the unsharded oracle — through a server kill (failover), live updates
//! published over the wire, and a replica restarted from a shipped
//! snapshot whose missed updates are recovered **by the supervisor's
//! clock alone**, with zero manual `recover`/`heartbeat` calls.

use std::sync::Arc;
use std::time::Duration;

use kosr_core::{IndexedGraph, Query};
use kosr_graph::{PartitionConfig, Partitioner};
use kosr_service::{KosrService, ServiceConfig, Update};
use kosr_shard::{ReplicaHealth, ShardRouter, ShardSet, ShardTransport, SupervisorConfig};
use kosr_transport::{TcpServer, TcpTransport};
use kosr_workloads::{
    assign_clustered, gen_membership_flips, gen_mixed_traffic, road_grid_directed, MembershipFlip,
    TrafficMix,
};

const SHARDS: usize = 2;
const REPLICAS: usize = 2;

fn flip_to_update(f: &MembershipFlip) -> Update {
    if f.insert {
        Update::InsertMembership {
            vertex: f.vertex,
            category: f.category,
        }
    } else {
        Update::RemoveMembership {
            vertex: f.vertex,
            category: f.category,
        }
    }
}

fn compare(router: &ShardRouter, oracle: &KosrService, queries: &[Query], label: &str) {
    for (i, q) in queries.iter().enumerate() {
        let s = router.submit(q.clone()).and_then(|t| t.wait());
        let u = oracle.submit(q.clone()).and_then(|t| t.wait());
        match (s, u) {
            (Ok(s), Ok(u)) => {
                assert_eq!(
                    s.outcome.witnesses, u.outcome.witnesses,
                    "{label}: query {i}"
                );
            }
            (Err(se), Err(ue)) => {
                assert_eq!(se.to_string(), ue.to_string(), "{label}: query {i}")
            }
            (s, u) => panic!("{label}: query {i} split: {s:?} vs {u:?}"),
        }
    }
}

#[test]
fn tcp_sharded_topk_matches_oracle_through_kill_and_snapshot_restart() {
    let mut g = road_grid_directed(9, 9, 17);
    assign_clustered(&mut g, 5, 12, 0.1, 3);
    let ig = IndexedGraph::build_default(g.clone());
    let partition = Partitioner::new(PartitionConfig {
        num_shards: SHARDS,
        ..Default::default()
    })
    .partition(&ig.graph);
    let set = ShardSet::build(&ig, partition);

    let config = ServiceConfig {
        workers: 2,
        cache_capacity: 64,
        ..Default::default()
    };
    let oracle = KosrService::new(Arc::new(ig.clone()), config.clone());

    // Each replica: its shard's indexed graph behind a real socket. Short
    // request deadlines keep a killed server's in-flight requests from
    // holding the test for the default 30s.
    let deadline = Duration::from_secs(5);
    let mut servers: Vec<Vec<Option<TcpServer>>> = Vec::new();
    let mut transports: Vec<Vec<Arc<dyn ShardTransport>>> = Vec::new();
    for j in 0..SHARDS {
        let shard_ig = Arc::new(set.shard(j).clone());
        let mut row = Vec::new();
        let mut ts: Vec<Arc<dyn ShardTransport>> = Vec::new();
        for _ in 0..REPLICAS {
            let svc = Arc::new(KosrService::new(Arc::clone(&shard_ig), config.clone()));
            let server = TcpServer::spawn(svc).unwrap();
            ts.push(Arc::new(TcpTransport::with_deadline(
                server.addr(),
                deadline,
            )));
            row.push(Some(server));
        }
        servers.push(row);
        transports.push(ts);
    }
    let router = ShardRouter::from_transports(
        transports,
        set.partition().clone(),
        set.base_categories(),
        set.partition_stats().clone(),
    );
    let bus = router.update_bus();
    let sup = router.supervisor(SupervisorConfig::default());

    let queries: Vec<Query> = gen_mixed_traffic(
        &g,
        25,
        &TrafficMix {
            hot_fraction: 0.3,
            ..Default::default()
        },
        5,
    )
    .iter()
    .map(|s| Query::new(s.source, s.target, s.categories.clone(), s.k))
    .collect();
    compare(&router, &oracle, &queries, "tcp pre-kill");

    // Kill shard 0's primary server: the supervisor's heartbeat pass
    // quarantines it (no query has to pay the failover latency first).
    servers[0][0].take();
    sup.tick();
    assert_eq!(router.replica_set(0).health()[0], ReplicaHealth::Down);
    compare(&router, &oracle, &queries, "tcp post-kill");

    // Snapshot shard 0 before the updates; then publish updates over the
    // wire, mirrored onto the oracle (the dead replica defers them).
    let (cursor, blob) = router.snapshot_shard(0).unwrap();
    for f in &gen_membership_flips(&g, 6, 29) {
        let u = flip_to_update(f);
        let receipt = bus.publish(&u).unwrap();
        assert_eq!(receipt.deferred_replicas, 1, "the killed replica defers");
        let mirror = oracle.apply_update(&u).unwrap();
        assert_eq!(receipt.applied, mirror.applied);
    }
    let fresh = gen_mixed_traffic(&g, 15, &TrafficMix::default(), 31)
        .iter()
        .map(|s| Query::new(s.source, s.target, s.categories.clone(), s.k))
        .collect::<Vec<_>>();
    compare(&router, &oracle, &fresh, "tcp post-update");

    // Restart replica (0,0) as a new process: decode the shipped
    // snapshot, serve it on a new socket, install the transport — and let
    // the supervisor's clock replay the missed updates. No manual
    // recover call.
    let joined = IndexedGraph::decode_snapshot(&blob.bytes).unwrap();
    let joined_svc = Arc::new(KosrService::new(Arc::new(joined), config));
    let new_server = TcpServer::spawn(joined_svc).unwrap();
    let new_transport = Arc::new(TcpTransport::with_deadline(new_server.addr(), deadline));
    router.install_replica(0, 0, new_transport, cursor);
    assert_eq!(router.replica_set(0).health()[0], ReplicaHealth::Down);
    for _ in 0..8 {
        if sup.all_healthy() {
            break;
        }
        sup.tick();
    }
    servers[0][0] = Some(new_server);
    assert_eq!(router.replica_set(0).health()[0], ReplicaHealth::Healthy);
    let (joined_cursor, _, tail) = bus.cursor_state(0, 0);
    assert_eq!(joined_cursor, tail, "all post-snapshot updates recovered");
    assert!(sup.report().replays >= 1, "{:?}", sup.report());

    // Kill the *other* replica: the restarted one now answers alone for
    // shard 0, from snapshot + supervised replay — and must still match
    // the oracle.
    servers[0][1].take();
    sup.tick();
    compare(
        &router,
        &oracle,
        &fresh,
        "tcp snapshot-restart serving alone",
    );
    compare(
        &router,
        &oracle,
        &queries,
        "tcp snapshot-restart, original mix",
    );
}
