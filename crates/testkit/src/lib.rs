//! # kosr-testkit
//!
//! Deterministic fault injection for the shard transport. A
//! [`FaultyTransport`] wraps any [`ShardTransport`] and, driven by a
//! seed-deterministic [`FaultSchedule`], injects the failure modes a real
//! network exhibits:
//!
//! * **drop** — the request frame never reaches the replica; the caller
//!   sees a connection fault (and fails over);
//! * **drop-response** — the replica *executes* the request but the
//!   response frame is lost: the caller sees a fault even though state
//!   changed. This is the nastiest mode — it proves update replay is
//!   idempotent;
//! * **delay** — the frame arrives late (bounded sleep);
//! * **duplicate** — the frame arrives twice; the duplicate's response is
//!   discarded, so duplicates are only observable through (idempotent)
//!   state.
//!
//! Replica **kill/restart** is the transport layer's own lever
//! ([`kosr_transport::KillSwitch`] for loopback replicas,
//! `TcpServer::shutdown` for socket ones); this crate adds the frame-level
//! faults between those extremes. Control-plane frames (ping, member
//! counts, snapshot) pass through unfaulted — their failure modes are
//! kill/restart, already covered — so fault schedules stay aligned with
//! the data-plane frame sequence regardless of planning-cache behavior.
//!
//! Everything is deterministic per seed: a failing fault schedule replays
//! exactly from its seed, which is what makes the cross-shard
//! fault-equivalence property suite debuggable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use kosr_core::Query;
use kosr_service::{TraceContext, Update, UpdateReceipt};
use kosr_transport::protocol::{Heartbeat, MemberCounts, SnapshotBlob};
use kosr_transport::{ShardTransport, TransportError, TransportTicket};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One injected fault decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Deliver normally.
    None,
    /// Lose the request frame: nothing executes, the caller faults.
    Drop,
    /// Execute, then lose the response frame: the caller faults anyway.
    DropResponse,
    /// Deliver after a bounded sleep.
    Delay,
    /// Deliver twice; the duplicate's response is discarded.
    Duplicate,
}

/// Fault mix, in per-mille of data-plane frames.
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Request-drop probability (‰).
    pub drop_per_mille: u32,
    /// Response-drop probability (‰).
    pub drop_response_per_mille: u32,
    /// Delay probability (‰).
    pub delay_per_mille: u32,
    /// Duplicate probability (‰).
    pub duplicate_per_mille: u32,
    /// Upper bound of an injected delay.
    pub max_delay: Duration,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            drop_per_mille: 100,
            drop_response_per_mille: 50,
            delay_per_mille: 100,
            duplicate_per_mille: 100,
            max_delay: Duration::from_millis(2),
        }
    }
}

impl FaultConfig {
    /// A schedule that never faults (wiring sanity checks).
    pub fn quiet() -> FaultConfig {
        FaultConfig {
            drop_per_mille: 0,
            drop_response_per_mille: 0,
            delay_per_mille: 0,
            duplicate_per_mille: 0,
            max_delay: Duration::ZERO,
        }
    }
}

/// A seed-deterministic stream of fault decisions with injection counters.
pub struct FaultSchedule {
    config: FaultConfig,
    rng: Mutex<StdRng>,
    drops: AtomicU64,
    response_drops: AtomicU64,
    delays: AtomicU64,
    duplicates: AtomicU64,
}

impl FaultSchedule {
    /// A schedule drawing from `seed`. Distinct replicas get distinct
    /// seeds (e.g. `seed ^ hash(shard, replica)`) so their schedules are
    /// independent yet reproducible.
    pub fn new(seed: u64, config: FaultConfig) -> FaultSchedule {
        FaultSchedule {
            config,
            rng: Mutex::new(StdRng::seed_from_u64(seed ^ 0xFA17)),
            drops: AtomicU64::new(0),
            response_drops: AtomicU64::new(0),
            delays: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
        }
    }

    /// Draws the next fault decision (and counts it).
    pub fn next_fault(&self) -> Fault {
        let roll = self.rng.lock().unwrap().gen_range(0..1000u32);
        let c = &self.config;
        let mut edge = c.drop_per_mille;
        if roll < edge {
            self.drops.fetch_add(1, Ordering::Relaxed);
            return Fault::Drop;
        }
        edge += c.drop_response_per_mille;
        if roll < edge {
            self.response_drops.fetch_add(1, Ordering::Relaxed);
            return Fault::DropResponse;
        }
        edge += c.delay_per_mille;
        if roll < edge {
            self.delays.fetch_add(1, Ordering::Relaxed);
            return Fault::Delay;
        }
        edge += c.duplicate_per_mille;
        if roll < edge {
            self.duplicates.fetch_add(1, Ordering::Relaxed);
            return Fault::Duplicate;
        }
        Fault::None
    }

    /// The delay used for [`Fault::Delay`] injections.
    pub fn delay(&self) -> Duration {
        if self.config.max_delay.is_zero() {
            return Duration::ZERO;
        }
        let nanos = self.config.max_delay.as_nanos().min(u64::MAX as u128) as u64;
        Duration::from_nanos(self.rng.lock().unwrap().gen_range(0..nanos.max(1)))
    }

    /// `(drops, response_drops, delays, duplicates)` injected so far.
    pub fn injected(&self) -> (u64, u64, u64, u64) {
        (
            self.drops.load(Ordering::Relaxed),
            self.response_drops.load(Ordering::Relaxed),
            self.delays.load(Ordering::Relaxed),
            self.duplicates.load(Ordering::Relaxed),
        )
    }

    /// Total injected faults of any kind.
    pub fn total_injected(&self) -> u64 {
        let (a, b, c, d) = self.injected();
        a + b + c + d
    }
}

fn dropped(what: &str) -> TransportError {
    TransportError::Connection(format!("injected fault: {what}"))
}

/// A [`ShardTransport`] wrapper injecting frame-level faults per its
/// [`FaultSchedule`].
pub struct FaultyTransport {
    inner: Arc<dyn ShardTransport>,
    schedule: Arc<FaultSchedule>,
}

impl FaultyTransport {
    /// Wraps `inner` under `schedule`.
    pub fn new(inner: Arc<dyn ShardTransport>, schedule: Arc<FaultSchedule>) -> FaultyTransport {
        FaultyTransport { inner, schedule }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &Arc<dyn ShardTransport> {
        &self.inner
    }

    /// The schedule driving this wrapper.
    pub fn schedule(&self) -> &Arc<FaultSchedule> {
        &self.schedule
    }
}

impl ShardTransport for FaultyTransport {
    fn submit(&self, query: Query) -> TransportTicket {
        match self.schedule.next_fault() {
            Fault::Drop => TransportTicket::ready(Err(dropped("query frame dropped"))),
            Fault::DropResponse => {
                // The replica computes the answer; the caller never sees it.
                let ticket = self.inner.submit(query);
                TransportTicket::new(move || {
                    let _ = ticket.wait();
                    Err(dropped("query response dropped"))
                })
            }
            Fault::Delay => {
                let delay = self.schedule.delay();
                let ticket = self.inner.submit(query);
                TransportTicket::new(move || {
                    std::thread::sleep(delay);
                    ticket.wait()
                })
            }
            Fault::Duplicate => {
                let first = self.inner.submit(query.clone());
                // The duplicate executes; its response is discarded. (An
                // unwaited ticket is exactly a response nobody reads.)
                let _duplicate = self.inner.submit(query);
                first
            }
            Fault::None => self.inner.submit(query),
        }
    }

    fn submit_traced(&self, query: Query, ctx: Option<TraceContext>) -> TransportTicket {
        // Same fault machinery as `submit` — one decision per data-plane
        // frame, so traced and untraced runs of the same schedule stay
        // aligned — but the trace context rides through to the inner
        // transport instead of being dropped by the trait default.
        match self.schedule.next_fault() {
            Fault::Drop => TransportTicket::ready(Err(dropped("query frame dropped"))),
            Fault::DropResponse => {
                let ticket = self.inner.submit_traced(query, ctx);
                TransportTicket::new(move || {
                    let _ = ticket.wait();
                    Err(dropped("query response dropped"))
                })
            }
            Fault::Delay => {
                let delay = self.schedule.delay();
                let ticket = self.inner.submit_traced(query, ctx);
                TransportTicket::new(move || {
                    std::thread::sleep(delay);
                    ticket.wait()
                })
            }
            Fault::Duplicate => {
                let first = self.inner.submit_traced(query.clone(), ctx);
                let _duplicate = self.inner.submit_traced(query, ctx);
                first
            }
            Fault::None => self.inner.submit_traced(query, ctx),
        }
    }

    fn apply_update(&self, update: &Update) -> Result<UpdateReceipt, TransportError> {
        match self.schedule.next_fault() {
            Fault::Drop => Err(dropped("update frame dropped")),
            Fault::DropResponse => {
                // Applied on the replica — but the publisher can't know.
                let _ = self.inner.apply_update(update);
                Err(dropped("update response dropped"))
            }
            Fault::Delay => {
                std::thread::sleep(self.schedule.delay());
                self.inner.apply_update(update)
            }
            Fault::Duplicate => {
                let first = self.inner.apply_update(update);
                // Membership duplicates are no-ops; an edge-insert
                // duplicate is refused as a non-decrease. Either way the
                // discarded response leaves consistent state.
                let _ = self.inner.apply_update(update);
                first
            }
            Fault::None => self.inner.apply_update(update),
        }
    }

    // Control plane passes through unfaulted (see the crate docs).

    fn ping(&self) -> Result<Heartbeat, TransportError> {
        self.inner.ping()
    }

    fn member_counts(&self) -> Result<MemberCounts, TransportError> {
        self.inner.member_counts()
    }

    fn snapshot(&self) -> Result<SnapshotBlob, TransportError> {
        self.inner.snapshot()
    }

    fn install_snapshot(&self, blob: &SnapshotBlob) -> Result<Heartbeat, TransportError> {
        self.inner.install_snapshot(blob)
    }

    fn compact(&self, through: u64) -> Result<u64, TransportError> {
        self.inner.compact(through)
    }
}

/// One frame-delivery event in a [`MuxFaultPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MuxEvent {
    /// Deliver the response for request `index` (of the plan's request
    /// set).
    Deliver(usize),
    /// Deliver a *duplicate* response for request `index` (it may or may
    /// not have been delivered already).
    Duplicate(usize),
    /// Deliver a response carrying a frame id that belongs to no request.
    Stray(u64),
}

/// A seed-deterministic delivery schedule for `n` multiplexed in-flight
/// requests: every request's response is delivered exactly once, but in a
/// random **permuted order**, interleaved with duplicates and stray
/// frames — the adversarial reader-side traffic a demultiplexer must
/// never misroute. The supervisor/mux property suites replay plans from
/// their seed, which keeps failures debuggable.
#[derive(Clone, Debug)]
pub struct MuxFaultPlan {
    events: Vec<MuxEvent>,
}

impl MuxFaultPlan {
    /// A plan over `n` requests drawn from `seed`, with roughly
    /// `dup_per_mille`/`stray_per_mille` extra duplicate/stray events
    /// (each clamped to 999‰ so a run of extras always terminates).
    pub fn generate(seed: u64, n: usize, dup_per_mille: u32, stray_per_mille: u32) -> MuxFaultPlan {
        let dup_per_mille = dup_per_mille.min(999);
        let stray_per_mille = stray_per_mille.min(999);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0DE3);
        // A random permutation of the mandatory deliveries…
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        // …interleaved with duplicates and strays.
        let mut events = Vec::with_capacity(n + n / 2);
        for idx in order {
            while rng.gen_range(0..1000u32) < dup_per_mille {
                events.push(MuxEvent::Duplicate(rng.gen_range(0..n as u64) as usize));
            }
            while rng.gen_range(0..1000u32) < stray_per_mille {
                // Ids far outside the request set: provably stray.
                events.push(MuxEvent::Stray(u64::MAX - rng.gen_range(0..1000u64)));
            }
            events.push(MuxEvent::Deliver(idx));
        }
        MuxFaultPlan { events }
    }

    /// The delivery events, in schedule order.
    pub fn events(&self) -> &[MuxEvent] {
        &self.events
    }

    /// How many events the plan holds (≥ the request count).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when the plan has no events (only for `n == 0`).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let a = FaultSchedule::new(7, FaultConfig::default());
        let b = FaultSchedule::new(7, FaultConfig::default());
        let seq_a: Vec<Fault> = (0..64).map(|_| a.next_fault()).collect();
        let seq_b: Vec<Fault> = (0..64).map(|_| b.next_fault()).collect();
        assert_eq!(seq_a, seq_b);
        let c = FaultSchedule::new(8, FaultConfig::default());
        let seq_c: Vec<Fault> = (0..64).map(|_| c.next_fault()).collect();
        assert_ne!(seq_a, seq_c, "different seed, different schedule");
        assert_eq!(a.total_injected(), b.total_injected());
    }

    #[test]
    fn quiet_config_never_faults() {
        let s = FaultSchedule::new(1, FaultConfig::quiet());
        assert!((0..256).all(|_| s.next_fault() == Fault::None));
        assert_eq!(s.total_injected(), 0);
    }

    #[test]
    fn default_mix_injects_every_kind() {
        let s = FaultSchedule::new(3, FaultConfig::default());
        for _ in 0..2000 {
            s.next_fault();
        }
        let (drops, rdrops, delays, dups) = s.injected();
        assert!(drops > 0 && rdrops > 0 && delays > 0 && dups > 0);
        let total = s.total_injected();
        // ~35% of 2000; generous bounds, just not degenerate.
        assert!(total > 400 && total < 1100, "{total}");
    }
}
