//! Region partitioning of the graph for sharded serving.
//!
//! The sharding layer (`kosr-shard`) splits an indexed graph into
//! region/category shards: every vertex gets exactly one **owner shard**,
//! and a shard owns the category memberships of its vertices. The
//! [`Partitioner`] here computes that assignment directly over the CSR
//! adjacency:
//!
//! * **region growing** — `num_shards` seeds spread by a farthest-point
//!   heuristic over BFS hops, then grown breadth-first in a
//!   lightest-shard-first order, so regions come out connected (within a
//!   weakly connected component) and balanced;
//! * **membership-aware balance** — a vertex's weight is `1 +
//!   membership_weight · |F(v)|`, so shards balance the category data they
//!   own (the part of the index that is actually partitioned) rather than
//!   raw vertex counts;
//! * **boundary accounting** — [`Partition::boundary_vertices`] and the cut
//!   statistics report which vertices sit on inter-region edges. Those are
//!   the vertices whose adjacency a subgraph extraction would have to
//!   replicate for intra-shard routes to stay exact; the in-process shard
//!   build replicates the whole routing skeleton and uses these numbers as
//!   the cost model for a future cross-box transport.
//!
//! Everything is deterministic: same graph + same config → same partition.

use crate::{CategoryTable, Graph, VertexId};
use std::collections::VecDeque;

/// Tunables for [`Partitioner`].
#[derive(Clone, Debug)]
pub struct PartitionConfig {
    /// Number of shards (regions) to produce. Clamped to at least 1.
    pub num_shards: usize,
    /// Extra balance weight per category membership of a vertex: vertex
    /// weight is `1 + membership_weight * |F(v)|`. `0` balances raw vertex
    /// counts.
    pub membership_weight: u64,
}

impl Default for PartitionConfig {
    fn default() -> PartitionConfig {
        PartitionConfig {
            num_shards: 4,
            membership_weight: 4,
        }
    }
}

/// An assignment of every vertex to exactly one shard.
#[derive(Clone, Debug)]
pub struct Partition {
    owner: Vec<u32>,
    num_shards: usize,
}

impl Partition {
    /// A partition from an explicit per-vertex assignment — for
    /// deterministic deployments and tests that need full control over
    /// shard layout (the [`Partitioner`] is the tuned path).
    ///
    /// # Panics
    /// Panics when `num_shards == 0` or any owner is out of range.
    pub fn from_owner(owner: Vec<u32>, num_shards: usize) -> Partition {
        assert!(num_shards >= 1, "a partition needs at least one shard");
        assert!(
            owner.iter().all(|&o| (o as usize) < num_shards),
            "owner out of range"
        );
        Partition { owner, num_shards }
    }

    /// The owning shard of `v`.
    #[inline]
    pub fn owner(&self, v: VertexId) -> usize {
        self.owner[v.index()] as usize
    }

    /// Number of shards in the partition.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.owner.len()
    }

    /// The vertices owned by `shard`, ascending.
    pub fn vertices_of(&self, shard: usize) -> Vec<VertexId> {
        self.owner
            .iter()
            .enumerate()
            .filter(|&(_, &o)| o as usize == shard)
            .map(|(i, _)| VertexId(i as u32))
            .collect()
    }

    /// The members of category `c` owned by `shard`, ascending — the
    /// shard's slice of `V_{Ci}`.
    pub fn members_owned(
        &self,
        categories: &CategoryTable,
        c: crate::CategoryId,
        shard: usize,
    ) -> Vec<VertexId> {
        categories
            .vertices_of(c)
            .iter()
            .copied()
            .filter(|&v| self.owner(v) == shard)
            .collect()
    }

    /// Vertices incident to at least one inter-region edge — the set a
    /// subgraph extraction would replicate across the shards it borders.
    pub fn boundary_vertices(&self, g: &Graph) -> Vec<VertexId> {
        let mut boundary = vec![false; self.owner.len()];
        for u in g.vertices() {
            for (v, _) in g.out_edges(u) {
                if self.owner[u.index()] != self.owner[v.index()] {
                    boundary[u.index()] = true;
                    boundary[v.index()] = true;
                }
            }
        }
        boundary
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(i, _)| VertexId(i as u32))
            .collect()
    }

    /// Partition quality statistics against a graph.
    pub fn stats(&self, g: &Graph) -> PartitionStats {
        let mut sizes = vec![0usize; self.num_shards];
        for &o in &self.owner {
            sizes[o as usize] += 1;
        }
        let mut memberships = vec![0usize; self.num_shards];
        for (v, _) in g.categories().memberships() {
            memberships[self.owner(v)] += 1;
        }
        let cut_edges = g
            .vertices()
            .map(|u| {
                g.out_edges(u)
                    .filter(|&(v, _)| self.owner[u.index()] != self.owner[v.index()])
                    .count()
            })
            .sum();
        PartitionStats {
            shard_sizes: sizes,
            shard_memberships: memberships,
            cut_edges,
            boundary_vertices: self.boundary_vertices(g).len(),
        }
    }
}

/// How well a [`Partition`] balances and separates.
#[derive(Clone, Debug)]
pub struct PartitionStats {
    /// Vertices owned per shard.
    pub shard_sizes: Vec<usize>,
    /// Category memberships owned per shard (the partitioned index data).
    pub shard_memberships: Vec<usize>,
    /// Directed edges crossing regions.
    pub cut_edges: usize,
    /// Vertices incident to a cut edge.
    pub boundary_vertices: usize,
}

impl PartitionStats {
    /// Largest / smallest shard size ratio (1.0 is perfect; ∞ when a shard
    /// is empty on a non-empty graph).
    pub fn imbalance(&self) -> f64 {
        let max = self.shard_sizes.iter().copied().max().unwrap_or(0);
        let min = self.shard_sizes.iter().copied().min().unwrap_or(0);
        if max == 0 {
            1.0
        } else if min == 0 {
            f64::INFINITY
        } else {
            max as f64 / min as f64
        }
    }
}

/// Deterministic membership-aware region-growing partitioner.
#[derive(Clone, Debug, Default)]
pub struct Partitioner {
    config: PartitionConfig,
}

impl Partitioner {
    /// A partitioner with the given tunables.
    pub fn new(config: PartitionConfig) -> Partitioner {
        Partitioner { config }
    }

    /// Partitions `g` into `config.num_shards` regions.
    pub fn partition(&self, g: &Graph) -> Partition {
        let n = g.num_vertices();
        let shards = self.config.num_shards.max(1).min(n.max(1));
        let mut owner = vec![u32::MAX; n];
        if n == 0 {
            return Partition {
                owner,
                num_shards: shards,
            };
        }

        let weight = |v: VertexId| -> u64 {
            1 + self.config.membership_weight * g.categories().categories_of(v).len() as u64
        };

        // Seeds: start from the max-degree vertex, then repeatedly take the
        // vertex farthest (in BFS hops over the undirected skeleton) from
        // all chosen seeds — a classic k-center farthest-point sweep.
        let seeds = farthest_point_seeds(g, shards);

        // Lightest-first BFS growth: each shard keeps a frontier queue; the
        // shard with the least claimed weight claims its next unowned
        // frontier vertex. Regions stay connected and balanced.
        let mut frontiers: Vec<VecDeque<VertexId>> = vec![VecDeque::new(); shards];
        let mut weights = vec![0u64; shards];
        for (s, &seed) in seeds.iter().enumerate() {
            frontiers[s].push_back(seed);
        }
        let mut remaining = n;
        while remaining > 0 {
            // The lightest shard with a non-empty frontier moves next.
            let next = (0..shards)
                .filter(|&s| !frontiers[s].is_empty())
                .min_by_key(|&s| (weights[s], s));
            let Some(s) = next else {
                // All frontiers exhausted but vertices remain (other weak
                // components): reseed the lightest shard with the smallest
                // unowned vertex.
                let v = owner
                    .iter()
                    .position(|&o| o == u32::MAX)
                    .map(|i| VertexId(i as u32))
                    .expect("remaining > 0 implies an unowned vertex");
                let s = (0..shards).min_by_key(|&s| (weights[s], s)).unwrap();
                frontiers[s].push_back(v);
                continue;
            };
            let Some(v) = frontiers[s].pop_front() else {
                continue;
            };
            if owner[v.index()] != u32::MAX {
                continue;
            }
            owner[v.index()] = s as u32;
            weights[s] += weight(v);
            remaining -= 1;
            // Undirected skeleton: expand across both edge directions.
            for (u, _) in g.out_edges(v).chain(g.in_edges(v)) {
                if owner[u.index()] == u32::MAX {
                    frontiers[s].push_back(u);
                }
            }
        }

        Partition {
            owner,
            num_shards: shards,
        }
    }
}

/// Max-degree start + farthest-point (BFS hops, undirected skeleton) seeds.
fn farthest_point_seeds(g: &Graph, shards: usize) -> Vec<VertexId> {
    let n = g.num_vertices();
    let first = g
        .vertices()
        .max_by_key(|&v| (g.degree(v), std::cmp::Reverse(v.index())))
        .expect("non-empty graph");
    let mut seeds = vec![first];
    // hops[v] = min BFS distance to any chosen seed.
    let mut hops = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    let absorb = |seed: VertexId, hops: &mut Vec<usize>, queue: &mut VecDeque<VertexId>| {
        hops[seed.index()] = 0;
        queue.push_back(seed);
        while let Some(v) = queue.pop_front() {
            let d = hops[v.index()];
            for (u, _) in g.out_edges(v).chain(g.in_edges(v)) {
                if hops[u.index()] > d + 1 {
                    hops[u.index()] = d + 1;
                    queue.push_back(u);
                }
            }
        }
    };
    absorb(first, &mut hops, &mut queue);
    while seeds.len() < shards {
        // Farthest vertex from all seeds; unreached components (hop = MAX)
        // count as farthest of all. Ties break on the smaller id.
        let far = g
            .vertices()
            .filter(|v| hops[v.index()] > 0)
            .max_by_key(|&v| (hops[v.index()], std::cmp::Reverse(v.index())));
        let Some(far) = far else { break };
        seeds.push(far);
        absorb(far, &mut hops, &mut queue);
    }
    // Degenerate tiny graphs: fewer distinct vertices than shards — pad by
    // reusing the first seed (the grower just leaves those shards empty).
    while seeds.len() < shards {
        seeds.push(first);
    }
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// An `n`-vertex cycle, both directions.
    fn ring(n: u32) -> Graph {
        let mut b = GraphBuilder::new(n as usize);
        for i in 0..n {
            b.add_undirected_edge(v(i), v((i + 1) % n), 1);
        }
        b.build()
    }

    #[test]
    fn covers_every_vertex_exactly_once() {
        let g = ring(40);
        let p = Partitioner::new(PartitionConfig {
            num_shards: 4,
            membership_weight: 0,
        })
        .partition(&g);
        assert_eq!(p.num_shards(), 4);
        let mut seen = 0;
        for s in 0..4 {
            seen += p.vertices_of(s).len();
        }
        assert_eq!(seen, 40);
        for u in g.vertices() {
            assert!(p.owner(u) < 4);
        }
    }

    #[test]
    fn ring_partition_is_balanced_with_small_cut() {
        let g = ring(64);
        let p = Partitioner::new(PartitionConfig {
            num_shards: 4,
            membership_weight: 0,
        })
        .partition(&g);
        let stats = p.stats(&g);
        assert!(stats.imbalance() <= 1.5, "sizes {:?}", stats.shard_sizes);
        // A ring cut into 4 arcs has exactly 4 crossing streets — 8
        // directed cut edges — when regions are contiguous.
        assert!(stats.cut_edges <= 16, "cut {}", stats.cut_edges);
        assert_eq!(stats.boundary_vertices, p.boundary_vertices(&g).len());
    }

    #[test]
    fn membership_weight_balances_category_data() {
        // 20 plain vertices in a line, plus a dense block where every
        // vertex carries 3 memberships.
        let mut b = GraphBuilder::new(30);
        for i in 0..29u32 {
            b.add_undirected_edge(v(i), v(i + 1), 1);
        }
        for c in 0..3 {
            let cid = b.categories_mut().add_category(format!("C{c}"));
            for i in 20..30u32 {
                b.categories_mut().insert(v(i), cid);
            }
        }
        let g = b.build();
        let p = Partitioner::new(PartitionConfig {
            num_shards: 2,
            membership_weight: 8,
        })
        .partition(&g);
        let stats = p.stats(&g);
        // The membership-heavy tail must not land entirely with a half of
        // the plain vertices: weighted growth shifts the split point.
        let max_m = *stats.shard_memberships.iter().max().unwrap();
        let total_m: usize = stats.shard_memberships.iter().sum();
        assert_eq!(total_m, 30);
        assert!(
            max_m < total_m,
            "memberships all on one shard: {:?}",
            stats.shard_memberships
        );
    }

    #[test]
    fn disconnected_components_are_all_assigned() {
        // Two disjoint rings.
        let mut b = GraphBuilder::new(20);
        for i in 0..10u32 {
            b.add_undirected_edge(v(i), v((i + 1) % 10), 1);
            b.add_undirected_edge(v(10 + i), v(10 + (i + 1) % 10), 1);
        }
        let g = b.build();
        let p = Partitioner::new(PartitionConfig {
            num_shards: 3,
            membership_weight: 0,
        })
        .partition(&g);
        for u in g.vertices() {
            assert!(p.owner(u) < 3);
        }
        let stats = p.stats(&g);
        assert_eq!(stats.shard_sizes.iter().sum::<usize>(), 20);
    }

    #[test]
    fn more_shards_than_vertices_clamps() {
        let g = ring(3);
        let p = Partitioner::new(PartitionConfig {
            num_shards: 8,
            membership_weight: 0,
        })
        .partition(&g);
        assert_eq!(p.num_shards(), 3);
        for u in g.vertices() {
            assert!(p.owner(u) < 3);
        }
    }

    #[test]
    fn deterministic() {
        let g = ring(50);
        let cfg = PartitionConfig {
            num_shards: 5,
            membership_weight: 2,
        };
        let a = Partitioner::new(cfg.clone()).partition(&g);
        let b = Partitioner::new(cfg).partition(&g);
        for u in g.vertices() {
            assert_eq!(a.owner(u), b.owner(u));
        }
    }

    #[test]
    fn members_owned_splits_category() {
        let mut b = GraphBuilder::new(16);
        for i in 0..15u32 {
            b.add_undirected_edge(v(i), v(i + 1), 1);
        }
        let c = b.categories_mut().add_category("POI");
        for i in (0..16u32).step_by(2) {
            b.categories_mut().insert(v(i), c);
        }
        let g = b.build();
        let p = Partitioner::new(PartitionConfig {
            num_shards: 2,
            membership_weight: 0,
        })
        .partition(&g);
        let a = p.members_owned(g.categories(), c, 0);
        let bm = p.members_owned(g.categories(), c, 1);
        assert_eq!(a.len() + bm.len(), 8);
        for m in a.iter().chain(&bm) {
            assert!(g.categories().has_category(*m, c));
        }
        assert!(a.iter().all(|m| p.owner(*m) == 0));
        assert!(bm.iter().all(|m| p.owner(*m) == 1));
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        let p = Partitioner::default().partition(&g);
        assert_eq!(p.num_vertices(), 0);
        assert!(p.boundary_vertices(&g).is_empty());
    }
}
