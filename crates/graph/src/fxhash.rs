//! A small, fast, non-cryptographic hasher for integer-keyed maps.
//!
//! The hot paths of the KOSR algorithms hash `(VertexId, len)` pairs millions
//! of times per query. `SipHash` (std's default) is measurably slower for
//! such short integer keys; the classic `FxHash` multiply-xor scheme used by
//! rustc is a drop-in replacement. External fast-hash crates are outside the
//! allowed dependency set, so the ~40 lines live here.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// Multiply-xor hasher (the `FxHash` algorithm from the Firefox/rustc
/// codebases). Low quality but extremely fast for short integer keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline(always)]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline(always)]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline(always)]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline(always)]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline(always)]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline(always)]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline(always)]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basic_operations() {
        let mut m: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i * 2), i as u64 * 3);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, i * 2)), Some(&(i as u64 * 3)));
        }
        assert_eq!(m.get(&(5, 11)), None);
    }

    #[test]
    fn set_deduplicates() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..100 {
            s.insert(i % 10);
        }
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn hash_is_deterministic() {
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn byte_stream_matches_padding_semantics() {
        // Hashing a short byte slice must be deterministic and distinct from
        // a different slice of the same length.
        let h = |b: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(b);
            hasher.finish()
        };
        assert_eq!(h(b"abc"), h(b"abc"));
        assert_ne!(h(b"abc"), h(b"abd"));
        assert_ne!(h(b"abcdefgh1"), h(b"abcdefgh2"));
    }
}
