//! Compressed-sparse-row storage of the directed weighted graph
//! `G(V, E, F, W)` (Definition 1), with both forward and backward adjacency
//! so that reverse searches (backward pruned Dijkstra, bidirectional search)
//! are as cheap as forward ones.

use crate::categories::CategoryTable;
use crate::{CategoryId, VertexId, Weight};

/// An immutable directed weighted graph with vertex categories.
///
/// Construction goes through [`GraphBuilder`]; the finished graph stores
/// adjacency in CSR form (offset array + target/weight arrays, boxed slices —
/// two words each instead of a `Vec`'s three).
#[derive(Clone, Debug)]
pub struct Graph {
    out_offsets: Box<[u32]>,
    out_targets: Box<[VertexId]>,
    out_weights: Box<[Weight]>,
    in_offsets: Box<[u32]>,
    in_sources: Box<[VertexId]>,
    in_weights: Box<[Weight]>,
    categories: CategoryTable,
}

impl Graph {
    /// Reconstructs a graph straight from a forward-CSR triplet — the
    /// snapshot install path, which validates offset-addressed arenas and
    /// reinterprets them instead of re-sorting an edge list through
    /// [`GraphBuilder`]. The builder's invariants are *checked*, not
    /// re-established: offsets must be a monotone prefix-sum array ending
    /// at the edge count, every adjacency row must hold strictly
    /// increasing in-range targets, and self-loops are refused. The
    /// backward CSR is derived in one counting-sort pass (linear in
    /// `n + m`), and `categories` must cover exactly `n` vertices.
    pub fn try_from_csr(
        num_vertices: usize,
        out_offsets: Vec<u32>,
        out_targets: Vec<VertexId>,
        out_weights: Vec<Weight>,
        categories: CategoryTable,
    ) -> Result<Graph, &'static str> {
        let n = num_vertices;
        let m = out_targets.len();
        if n > u32::MAX as usize {
            return Err("vertex ids are u32");
        }
        if out_offsets.len() != n + 1 {
            return Err("offset array must have n + 1 entries");
        }
        if out_weights.len() != m || m > u32::MAX as usize {
            return Err("target and weight arrays must cover every edge");
        }
        if out_offsets[0] != 0 || out_offsets[n] as usize != m {
            return Err("offsets must run from 0 to the edge count");
        }
        if categories.num_vertices() != n {
            return Err("category table must cover every vertex");
        }
        for u in 0..n {
            let (lo, hi) = (out_offsets[u] as usize, out_offsets[u + 1] as usize);
            if hi < lo || hi > m {
                return Err("offsets must be monotone");
            }
            let mut prev: Option<VertexId> = None;
            for &t in &out_targets[lo..hi] {
                if t.index() >= n {
                    return Err("edge target out of range");
                }
                if t.index() == u {
                    return Err("self-loops are not stored");
                }
                if prev.is_some_and(|p| p >= t) {
                    return Err("adjacency row not strictly increasing");
                }
                prev = Some(t);
            }
        }

        // Backward CSR by counting sort; iterating sources in order keeps
        // each backward row sorted by source, same as the builder.
        let mut in_offsets = vec![0u32; n + 1];
        for &t in &out_targets {
            in_offsets[t.index() + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor: Vec<u32> = in_offsets[..n].to_vec();
        let mut in_sources = vec![VertexId(0); m];
        let mut in_weights = vec![0 as Weight; m];
        for u in 0..n {
            let (lo, hi) = (out_offsets[u] as usize, out_offsets[u + 1] as usize);
            for e in lo..hi {
                let t = out_targets[e];
                let slot = cursor[t.index()] as usize;
                cursor[t.index()] += 1;
                in_sources[slot] = VertexId(u as u32);
                in_weights[slot] = out_weights[e];
            }
        }
        Ok(Graph {
            out_offsets: out_offsets.into_boxed_slice(),
            out_targets: out_targets.into_boxed_slice(),
            out_weights: out_weights.into_boxed_slice(),
            in_offsets: in_offsets.into_boxed_slice(),
            in_sources: in_sources.into_boxed_slice(),
            in_weights: in_weights.into_boxed_slice(),
            categories,
        })
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of directed edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Iterates every vertex id.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.num_vertices() as u32).map(VertexId)
    }

    /// Outgoing edges of `v` as `(target, weight)` pairs, sorted by target id.
    #[inline]
    pub fn out_edges(&self, v: VertexId) -> EdgeIter<'_> {
        let lo = self.out_offsets[v.index()] as usize;
        let hi = self.out_offsets[v.index() + 1] as usize;
        EdgeIter {
            endpoints: &self.out_targets[lo..hi],
            weights: &self.out_weights[lo..hi],
            pos: 0,
        }
    }

    /// Incoming edges of `v` as `(source, weight)` pairs, sorted by source id.
    #[inline]
    pub fn in_edges(&self, v: VertexId) -> EdgeIter<'_> {
        let lo = self.in_offsets[v.index()] as usize;
        let hi = self.in_offsets[v.index() + 1] as usize;
        EdgeIter {
            endpoints: &self.in_sources[lo..hi],
            weights: &self.in_weights[lo..hi],
            pos: 0,
        }
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        (self.out_offsets[v.index() + 1] - self.out_offsets[v.index()]) as usize
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        (self.in_offsets[v.index() + 1] - self.in_offsets[v.index()]) as usize
    }

    /// Total degree (in + out) of `v`; the default hub-ordering key.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.out_degree(v) + self.in_degree(v)
    }

    /// The weight of edge `(u, v)` if present (minimum over parallel edges,
    /// which the builder already collapsed). Binary search over the sorted
    /// adjacency row.
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        let lo = self.out_offsets[u.index()] as usize;
        let hi = self.out_offsets[u.index() + 1] as usize;
        let row = &self.out_targets[lo..hi];
        row.binary_search(&v)
            .ok()
            .map(|pos| self.out_weights[lo + pos])
    }

    /// `true` iff the directed edge `(u, v)` exists.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.edge_weight(u, v).is_some()
    }

    /// The category table (`F` and the `V_{Ci}` sets).
    #[inline]
    pub fn categories(&self) -> &CategoryTable {
        &self.categories
    }

    /// Mutable access to the category table, for the dynamic category
    /// updates of §IV-C. The graph structure itself is immutable.
    #[inline]
    pub fn categories_mut(&mut self) -> &mut CategoryTable {
        &mut self.categories
    }

    /// Replaces the category table (used by workload generators that assign
    /// categories after graph construction).
    pub fn set_categories(&mut self, table: CategoryTable) {
        assert_eq!(
            table.num_vertices(),
            self.num_vertices(),
            "category table must cover every vertex"
        );
        self.categories = table;
    }

    /// A graph with every edge reversed (categories shared by clone).
    /// Mostly a testing aid; algorithms use [`Graph::in_edges`] directly.
    pub fn reversed(&self) -> Graph {
        let mut b = GraphBuilder::new(self.num_vertices());
        for v in self.vertices() {
            for (w, wt) in self.out_edges(v) {
                b.add_edge(w, v, wt);
            }
        }
        let mut g = b.build();
        g.set_categories(self.categories.clone());
        g
    }

    /// Sum of all edge weights; a cheap fingerprint used in tests.
    pub fn total_weight(&self) -> Weight {
        self.out_weights.iter().sum()
    }

    /// Re-opens the graph as a [`GraphBuilder`] holding every edge and the
    /// category table — the escape hatch for structural updates (CSR is
    /// immutable, so an edge insert rebuilds through the builder).
    pub fn to_builder(&self) -> GraphBuilder {
        let mut b = GraphBuilder::new(self.num_vertices()).with_edge_capacity(self.num_edges());
        for u in self.vertices() {
            for (v, w) in self.out_edges(u) {
                b.add_edge(u, v, w);
            }
        }
        b.categories = self.categories.clone();
        b
    }
}

/// Iterator over one adjacency row, yielding `(endpoint, weight)`.
#[derive(Clone)]
pub struct EdgeIter<'a> {
    endpoints: &'a [VertexId],
    weights: &'a [Weight],
    pos: usize,
}

impl<'a> Iterator for EdgeIter<'a> {
    type Item = (VertexId, Weight);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        if self.pos < self.endpoints.len() {
            let i = self.pos;
            self.pos += 1;
            Some((self.endpoints[i], self.weights[i]))
        } else {
            None
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.endpoints.len() - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for EdgeIter<'_> {}

/// Mutable edge-list accumulator that finalises into a [`Graph`].
///
/// * parallel edges are collapsed to their minimum weight,
/// * self-loops are dropped (they can never lie on a shortest path with
///   non-negative weights),
/// * adjacency rows are sorted by endpoint id.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId, Weight)>,
    categories: CategoryTable,
}

impl GraphBuilder {
    /// A builder over `num_vertices` isolated vertices.
    pub fn new(num_vertices: usize) -> Self {
        assert!(num_vertices <= u32::MAX as usize, "vertex ids are u32");
        GraphBuilder {
            num_vertices,
            edges: Vec::new(),
            categories: CategoryTable::new(num_vertices),
        }
    }

    /// Pre-sizes the edge accumulator.
    pub fn with_edge_capacity(mut self, edges: usize) -> Self {
        self.edges.reserve(edges);
        self
    }

    /// Number of vertices the builder covers.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Appends `n` fresh vertices, returning the id of the first.
    pub fn add_vertices(&mut self, n: usize) -> VertexId {
        let first = VertexId(self.num_vertices as u32);
        self.num_vertices += n;
        self.categories.resize_vertices(self.num_vertices);
        first
    }

    /// Adds the directed edge `(u, v)` with weight `w`.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, w: Weight) {
        assert!(u.index() < self.num_vertices, "source {u:?} out of range");
        assert!(v.index() < self.num_vertices, "target {v:?} out of range");
        self.edges.push((u, v, w));
    }

    /// Adds `(u, v)` and `(v, u)` with the same weight — the undirected-graph
    /// convention used by the paper's CAL/NYC road networks.
    pub fn add_undirected_edge(&mut self, u: VertexId, v: VertexId, w: Weight) {
        self.add_edge(u, v, w);
        self.add_edge(v, u, w);
    }

    /// The category table being assembled (usable before `build`).
    pub fn categories_mut(&mut self) -> &mut CategoryTable {
        &mut self.categories
    }

    /// Convenience: registers (if needed) and assigns a category by id.
    pub fn assign_category(&mut self, v: VertexId, c: CategoryId) {
        self.categories.ensure_categories(c.index() + 1);
        self.categories.insert(v, c);
    }

    /// Finalises into an immutable CSR [`Graph`].
    pub fn build(mut self) -> Graph {
        let n = self.num_vertices;
        // Sort by (src, dst, weight) then dedup (src, dst) keeping the first
        // (= minimum-weight) copy, and drop self loops.
        self.edges.sort_unstable();
        self.edges.dedup_by_key(|&mut (u, v, _)| (u, v));
        self.edges.retain(|&(u, v, _)| u != v);

        let m = self.edges.len();
        let mut out_offsets = vec![0u32; n + 1];
        for &(u, _, _) in &self.edges {
            out_offsets[u.index() + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut out_targets = Vec::with_capacity(m);
        let mut out_weights = Vec::with_capacity(m);
        for &(_, v, w) in &self.edges {
            out_targets.push(v);
            out_weights.push(w);
        }

        // Backward CSR: counting sort by target keeps rows sorted by source
        // because the edge list is sorted by (src, dst).
        let mut in_offsets = vec![0u32; n + 1];
        for &(_, v, _) in &self.edges {
            in_offsets[v.index() + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor: Vec<u32> = in_offsets[..n].to_vec();
        let mut in_sources = vec![VertexId(0); m];
        let mut in_weights = vec![0 as Weight; m];
        for &(u, v, w) in &self.edges {
            let slot = cursor[v.index()] as usize;
            cursor[v.index()] += 1;
            in_sources[slot] = u;
            in_weights[slot] = w;
        }

        self.categories.resize_vertices(n);
        Graph {
            out_offsets: out_offsets.into_boxed_slice(),
            out_targets: out_targets.into_boxed_slice(),
            out_weights: out_weights.into_boxed_slice(),
            in_offsets: in_offsets.into_boxed_slice(),
            in_sources: in_sources.into_boxed_slice(),
            in_weights: in_weights.into_boxed_slice(),
            categories: self.categories,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn diamond() -> Graph {
        // 0 -> 1 (2), 0 -> 2 (5), 1 -> 3 (2), 2 -> 3 (1)
        let mut b = GraphBuilder::new(4);
        b.add_edge(v(0), v(1), 2);
        b.add_edge(v(0), v(2), 5);
        b.add_edge(v(1), v(3), 2);
        b.add_edge(v(2), v(3), 1);
        b.build()
    }

    #[test]
    fn csr_shape() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(v(0)), 2);
        assert_eq!(g.in_degree(v(3)), 2);
        assert_eq!(g.degree(v(0)), 2);
        let out0: Vec<_> = g.out_edges(v(0)).collect();
        assert_eq!(out0, vec![(v(1), 2), (v(2), 5)]);
        let in3: Vec<_> = g.in_edges(v(3)).collect();
        assert_eq!(in3, vec![(v(1), 2), (v(2), 1)]);
        assert_eq!(g.out_edges(v(3)).len(), 0);
    }

    #[test]
    fn edge_weight_lookup() {
        let g = diamond();
        assert_eq!(g.edge_weight(v(0), v(2)), Some(5));
        assert_eq!(g.edge_weight(v(2), v(0)), None);
        assert!(g.has_edge(v(1), v(3)));
        assert!(!g.has_edge(v(3), v(1)));
    }

    #[test]
    fn parallel_edges_keep_minimum() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(v(0), v(1), 9);
        b.add_edge(v(0), v(1), 3);
        b.add_edge(v(0), v(1), 7);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(v(0), v(1)), Some(3));
    }

    #[test]
    fn self_loops_are_dropped() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(v(0), v(0), 1);
        b.add_edge(v(0), v(1), 4);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_edge(v(0), v(0)));
    }

    #[test]
    fn undirected_edge_adds_both_directions() {
        let mut b = GraphBuilder::new(2);
        b.add_undirected_edge(v(0), v(1), 6);
        let g = b.build();
        assert_eq!(g.edge_weight(v(0), v(1)), Some(6));
        assert_eq!(g.edge_weight(v(1), v(0)), Some(6));
    }

    #[test]
    fn reversed_swaps_adjacency() {
        let g = diamond();
        let r = g.reversed();
        assert_eq!(r.num_edges(), g.num_edges());
        assert_eq!(r.edge_weight(v(3), v(1)), Some(2));
        assert_eq!(r.edge_weight(v(1), v(0)), Some(2));
        assert_eq!(r.edge_weight(v(0), v(1)), None);
        // in/out degrees swap
        assert_eq!(r.out_degree(v(3)), g.in_degree(v(3)));
        assert_eq!(r.in_degree(v(0)), g.out_degree(v(0)));
    }

    #[test]
    fn add_vertices_extends_graph() {
        let mut b = GraphBuilder::new(1);
        let first = b.add_vertices(2);
        assert_eq!(first, v(1));
        assert_eq!(b.num_vertices(), 3);
        b.add_edge(v(0), v(2), 1);
        let g = b.build();
        assert_eq!(g.num_vertices(), 3);
    }

    #[test]
    fn categories_flow_through_builder() {
        let mut b = GraphBuilder::new(3);
        let c0 = b.categories_mut().add_category("MA");
        b.categories_mut().insert(v(1), c0);
        b.add_edge(v(0), v(1), 1);
        let g = b.build();
        assert!(g.categories().has_category(v(1), c0));
        assert_eq!(g.categories().vertices_of(c0), &[v(1)]);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.vertices().count(), 0);
    }

    #[test]
    fn total_weight_fingerprint() {
        assert_eq!(diamond().total_weight(), 10);
    }

    #[test]
    fn try_from_csr_matches_builder_output() {
        let g = diamond();
        let offsets: Vec<u32> = (0..=g.num_vertices())
            .scan(0u32, |acc, u| {
                let cur = *acc;
                if u < g.num_vertices() {
                    *acc += g.out_degree(v(u as u32)) as u32;
                }
                Some(cur)
            })
            .collect();
        let mut targets = Vec::new();
        let mut weights = Vec::new();
        for u in g.vertices() {
            for (t, w) in g.out_edges(u) {
                targets.push(t);
                weights.push(w);
            }
        }
        let g2 = Graph::try_from_csr(
            g.num_vertices(),
            offsets,
            targets,
            weights,
            g.categories().clone(),
        )
        .unwrap();
        for u in g.vertices() {
            assert_eq!(
                g2.out_edges(u).collect::<Vec<_>>(),
                g.out_edges(u).collect::<Vec<_>>()
            );
            assert_eq!(
                g2.in_edges(u).collect::<Vec<_>>(),
                g.in_edges(u).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn try_from_csr_refuses_broken_invariants() {
        let cats = CategoryTable::new(2);
        // Non-monotone offsets.
        assert!(Graph::try_from_csr(2, vec![0, 2, 1], vec![v(1)], vec![1], cats.clone()).is_err());
        // Self loop.
        assert!(Graph::try_from_csr(2, vec![0, 1, 1], vec![v(0)], vec![1], cats.clone()).is_err());
        // Target out of range.
        assert!(Graph::try_from_csr(2, vec![0, 1, 1], vec![v(9)], vec![1], cats.clone()).is_err());
        // Unsorted row.
        assert!(Graph::try_from_csr(
            3,
            vec![0, 2, 2, 2],
            vec![v(2), v(1)],
            vec![1, 1],
            CategoryTable::new(3)
        )
        .is_err());
        // Category table covering the wrong vertex count.
        assert!(
            Graph::try_from_csr(2, vec![0, 1, 1], vec![v(1)], vec![1], CategoryTable::new(1))
                .is_err()
        );
        // A valid one still works.
        assert!(Graph::try_from_csr(2, vec![0, 1, 1], vec![v(1)], vec![1], cats).is_ok());
    }

    #[test]
    fn to_builder_roundtrips_edges_and_categories() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(v(0), v(1), 2);
        b.add_edge(v(1), v(3), 2);
        let c = b.categories_mut().add_category("A");
        b.categories_mut().insert(v(1), c);
        let g = b.build();

        let mut rb = g.to_builder();
        rb.add_edge(v(0), v(3), 9);
        let g2 = rb.build();
        assert_eq!(g2.num_edges(), 3);
        assert_eq!(g2.edge_weight(v(0), v(1)), Some(2));
        assert_eq!(g2.edge_weight(v(0), v(3)), Some(9));
        assert!(g2.categories().has_category(v(1), c));
    }
}
