//! # kosr-graph
//!
//! Graph substrate for the KOSR workspace: the directed weighted,
//! vertex-categorised graph `G(V, E, F, W)` of *Finding Top-k Optimal
//! Sequenced Routes* (Liu et al., ICDE 2018), Definition 1.
//!
//! * [`Graph`] / [`GraphBuilder`] — immutable CSR adjacency (forward **and**
//!   backward) with minimum-weight parallel-edge collapsing.
//! * [`CategoryTable`] — the category function `F : V → 2^S` and the
//!   per-category vertex sets `V_{Ci}`, with the dynamic updates of §IV-C.
//! * [`io`] — native text format and DIMACS `.gr` parsing.
//! * [`partition`] — deterministic membership-aware region partitioning
//!   for the sharded serving layer.
//! * [`fxhash`] — fast integer hashing used by every hot map in the
//!   workspace.
//!
//! Edge weights are arbitrary non-negative integers; nothing here (or
//! anywhere else in the workspace) assumes the triangle inequality.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod categories;
mod csr;
pub mod fxhash;
pub mod io;
pub mod partition;
pub mod scc;
mod types;

pub use categories::CategoryTable;
pub use csr::{EdgeIter, Graph, GraphBuilder};
pub use fxhash::{FxHashMap, FxHashSet};
pub use partition::{Partition, PartitionConfig, PartitionStats, Partitioner};
pub use scc::{strongly_connected_components, SccDecomposition};
pub use types::{inf_add, is_finite, CategoryId, VertexId, Weight, INFINITY};
