//! The category function `F : V → 2^S` of Definition 1, stored in both
//! directions: per-vertex category sets and per-category vertex sets
//! (`V_{Ci}`, Definition 3).
//!
//! Updates (adding/removing a category of a vertex) follow the paper's
//! "handling dynamic updates" extension (§IV-C); downstream indexes such as
//! the inverted label index subscribe to the same operations.

use crate::{CategoryId, VertexId};

/// Bidirectional vertex ↔ category membership table.
///
/// The paper's `F(v)` is [`CategoryTable::categories_of`], and `V_{Ci}` is
/// [`CategoryTable::vertices_of`]. Membership is a set: inserting a duplicate
/// pair is a no-op.
#[derive(Clone, Debug, Default)]
pub struct CategoryTable {
    /// `F(v)`: categories of each vertex, sorted ascending.
    per_vertex: Vec<Vec<CategoryId>>,
    /// `V_{Ci}`: vertices of each category, sorted ascending.
    per_category: Vec<Vec<VertexId>>,
    /// Optional human-readable names, indexed by category.
    names: Vec<String>,
}

impl CategoryTable {
    /// Creates an empty table for `num_vertices` vertices and no categories.
    pub fn new(num_vertices: usize) -> Self {
        CategoryTable {
            per_vertex: vec![Vec::new(); num_vertices],
            per_category: Vec::new(),
            names: Vec::new(),
        }
    }

    /// Assembles a table from prebuilt per-category member lists — the
    /// bulk-construction path snapshot installs use instead of per-pair
    /// [`CategoryTable::insert`] calls. Member lists must be strictly
    /// increasing and in range; the per-vertex view is derived in one
    /// linear pass (ascending category ids keep each vertex's list sorted
    /// for free).
    pub fn from_parts(
        num_vertices: usize,
        names: Vec<String>,
        per_category: Vec<Vec<VertexId>>,
    ) -> Result<CategoryTable, &'static str> {
        if names.len() != per_category.len() {
            return Err("category names and member lists differ in length");
        }
        let mut per_vertex: Vec<Vec<CategoryId>> = vec![Vec::new(); num_vertices];
        for (ci, members) in per_category.iter().enumerate() {
            let c = CategoryId(ci as u32);
            let mut prev: Option<VertexId> = None;
            for &m in members {
                if m.index() >= num_vertices {
                    return Err("category member out of range");
                }
                if prev.is_some_and(|p| p >= m) {
                    return Err("category members not strictly increasing");
                }
                prev = Some(m);
                per_vertex[m.index()].push(c);
            }
        }
        Ok(CategoryTable {
            per_vertex,
            per_category,
            names,
        })
    }

    /// Number of vertices the table covers.
    pub fn num_vertices(&self) -> usize {
        self.per_vertex.len()
    }

    /// Number of known categories (`|S|`).
    pub fn num_categories(&self) -> usize {
        self.per_category.len()
    }

    /// Registers a new category with the given display name and returns its id.
    pub fn add_category(&mut self, name: impl Into<String>) -> CategoryId {
        let id = CategoryId(self.per_category.len() as u32);
        self.per_category.push(Vec::new());
        self.names.push(name.into());
        id
    }

    /// Ensures at least `n` categories exist, creating anonymous ones
    /// (named `"C<i>"`) as needed.
    pub fn ensure_categories(&mut self, n: usize) {
        while self.per_category.len() < n {
            let next = self.per_category.len();
            self.add_category(format!("C{next}"));
        }
    }

    /// The display name of a category.
    pub fn name(&self, c: CategoryId) -> &str {
        &self.names[c.index()]
    }

    /// Replaces the display name of a category.
    pub fn rename(&mut self, c: CategoryId, name: impl Into<String>) {
        self.names[c.index()] = name.into();
    }

    /// Looks a category up by display name.
    pub fn category_by_name(&self, name: &str) -> Option<CategoryId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| CategoryId(i as u32))
    }

    /// Adds `v` to category `c` (the paper's *category insert* update).
    /// Returns `true` if the membership was newly created.
    ///
    /// # Panics
    /// Panics if `v` or `c` is out of range.
    pub fn insert(&mut self, v: VertexId, c: CategoryId) -> bool {
        let cats = &mut self.per_vertex[v.index()];
        match cats.binary_search(&c) {
            Ok(_) => false,
            Err(pos) => {
                cats.insert(pos, c);
                let verts = &mut self.per_category[c.index()];
                match verts.binary_search(&v) {
                    Ok(_) => unreachable!("membership tables out of sync"),
                    Err(vpos) => verts.insert(vpos, v),
                }
                true
            }
        }
    }

    /// Removes `v` from category `c` (the paper's *category remove* update).
    /// Returns `true` if the membership existed.
    pub fn remove(&mut self, v: VertexId, c: CategoryId) -> bool {
        let cats = &mut self.per_vertex[v.index()];
        match cats.binary_search(&c) {
            Ok(pos) => {
                cats.remove(pos);
                let verts = &mut self.per_category[c.index()];
                let vpos = verts
                    .binary_search(&v)
                    .expect("membership tables out of sync");
                verts.remove(vpos);
                true
            }
            Err(_) => false,
        }
    }

    /// `F(v)`: the (sorted) categories of vertex `v`.
    #[inline]
    pub fn categories_of(&self, v: VertexId) -> &[CategoryId] {
        &self.per_vertex[v.index()]
    }

    /// `V_{Ci}`: the (sorted) vertices of category `c`.
    #[inline]
    pub fn vertices_of(&self, c: CategoryId) -> &[VertexId] {
        &self.per_category[c.index()]
    }

    /// `|Ci|`: the size of a category's vertex set.
    #[inline]
    pub fn category_size(&self, c: CategoryId) -> usize {
        self.per_category[c.index()].len()
    }

    /// `true` iff `Ci ∈ F(v)`.
    #[inline]
    pub fn has_category(&self, v: VertexId, c: CategoryId) -> bool {
        self.per_vertex[v.index()].binary_search(&c).is_ok()
    }

    /// Iterates all `(vertex, category)` membership pairs.
    pub fn memberships(&self) -> impl Iterator<Item = (VertexId, CategoryId)> + '_ {
        self.per_vertex
            .iter()
            .enumerate()
            .flat_map(|(v, cats)| cats.iter().map(move |&c| (VertexId(v as u32), c)))
    }

    /// Total number of `(vertex, category)` memberships.
    pub fn num_memberships(&self) -> usize {
        self.per_vertex.iter().map(Vec::len).sum()
    }

    /// Grows the table to cover `n` vertices (no-op if already larger).
    pub fn resize_vertices(&mut self, n: usize) {
        if n > self.per_vertex.len() {
            self.per_vertex.resize(n, Vec::new());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn insert_and_query() {
        let mut t = CategoryTable::new(5);
        let ma = t.add_category("MA");
        let re = t.add_category("RE");
        assert!(t.insert(v(0), ma));
        assert!(t.insert(v(2), ma));
        assert!(t.insert(v(1), re));
        assert!(!t.insert(v(0), ma), "duplicate insert is a no-op");

        assert_eq!(t.vertices_of(ma), &[v(0), v(2)]);
        assert_eq!(t.categories_of(v(0)), &[ma]);
        assert!(t.has_category(v(2), ma));
        assert!(!t.has_category(v(2), re));
        assert_eq!(t.category_size(ma), 2);
        assert_eq!(t.num_memberships(), 3);
    }

    #[test]
    fn multi_category_vertex_stays_sorted() {
        let mut t = CategoryTable::new(3);
        let a = t.add_category("A");
        let b = t.add_category("B");
        let c = t.add_category("C");
        t.insert(v(1), c);
        t.insert(v(1), a);
        t.insert(v(1), b);
        assert_eq!(t.categories_of(v(1)), &[a, b, c]);
    }

    #[test]
    fn remove_membership() {
        let mut t = CategoryTable::new(4);
        let a = t.add_category("A");
        t.insert(v(3), a);
        t.insert(v(1), a);
        assert!(t.remove(v(3), a));
        assert!(!t.remove(v(3), a), "double remove reports absence");
        assert_eq!(t.vertices_of(a), &[v(1)]);
        assert!(t.categories_of(v(3)).is_empty());
    }

    #[test]
    fn name_lookup() {
        let mut t = CategoryTable::new(1);
        let ma = t.add_category("MA");
        assert_eq!(t.name(ma), "MA");
        assert_eq!(t.category_by_name("MA"), Some(ma));
        assert_eq!(t.category_by_name("nope"), None);
    }

    #[test]
    fn ensure_categories_creates_anonymous_names() {
        let mut t = CategoryTable::new(1);
        t.ensure_categories(3);
        assert_eq!(t.num_categories(), 3);
        assert_eq!(t.name(CategoryId(2)), "C2");
        t.ensure_categories(2); // shrink request is a no-op
        assert_eq!(t.num_categories(), 3);
    }

    #[test]
    fn from_parts_matches_incremental_inserts() {
        let mut t = CategoryTable::new(4);
        let a = t.add_category("A");
        let b = t.add_category("B");
        t.insert(v(0), a);
        t.insert(v(2), a);
        t.insert(v(2), b);
        t.insert(v(3), b);
        let bulk = CategoryTable::from_parts(
            4,
            vec!["A".into(), "B".into()],
            vec![vec![v(0), v(2)], vec![v(2), v(3)]],
        )
        .unwrap();
        assert_eq!(bulk.num_categories(), 2);
        for c in [a, b] {
            assert_eq!(bulk.vertices_of(c), t.vertices_of(c));
            assert_eq!(bulk.name(c), t.name(c));
        }
        for i in 0..4u32 {
            assert_eq!(bulk.categories_of(v(i)), t.categories_of(v(i)));
        }
    }

    #[test]
    fn from_parts_refuses_bad_member_lists() {
        // Out of range.
        assert!(CategoryTable::from_parts(2, vec!["A".into()], vec![vec![v(5)]]).is_err());
        // Duplicate / unsorted.
        assert!(CategoryTable::from_parts(3, vec!["A".into()], vec![vec![v(1), v(1)]]).is_err());
        assert!(CategoryTable::from_parts(3, vec!["A".into()], vec![vec![v(2), v(1)]]).is_err());
        // Mismatched name count.
        assert!(CategoryTable::from_parts(3, vec![], vec![vec![v(1)]]).is_err());
    }

    #[test]
    fn memberships_iterates_all_pairs() {
        let mut t = CategoryTable::new(3);
        let a = t.add_category("A");
        let b = t.add_category("B");
        t.insert(v(0), a);
        t.insert(v(2), b);
        t.insert(v(2), a);
        let pairs: Vec<_> = t.memberships().collect();
        assert_eq!(pairs, vec![(v(0), a), (v(2), a), (v(2), b)]);
    }
}
