//! Strongly connected components (iterative Tarjan).
//!
//! Used by the workload generators and tests to validate that query
//! endpoints live in one strongly connected region — the paper samples
//! source/destination pairs uniformly, which only measures route-finding
//! work when the pair is actually connected.

use crate::{Graph, VertexId};

/// The strongly-connected-component decomposition of a graph.
#[derive(Clone, Debug)]
pub struct SccDecomposition {
    /// Component id per vertex (dense, `0..num_components`).
    pub component: Vec<u32>,
    /// Number of components.
    pub num_components: usize,
}

impl SccDecomposition {
    /// `true` iff `a` and `b` are mutually reachable.
    pub fn same_component(&self, a: VertexId, b: VertexId) -> bool {
        self.component[a.index()] == self.component[b.index()]
    }

    /// Size of each component, indexed by component id.
    pub fn component_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_components];
        for &c in &self.component {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// The id and size of the largest component.
    pub fn largest(&self) -> (u32, usize) {
        self.component_sizes()
            .into_iter()
            .enumerate()
            .max_by_key(|&(_, s)| s)
            .map(|(i, s)| (i as u32, s))
            .unwrap_or((0, 0))
    }
}

/// Computes the SCCs of `g` with an iterative Tarjan traversal
/// (explicit stack — safe on deep graphs).
pub fn strongly_connected_components(g: &Graph) -> SccDecomposition {
    let n = g.num_vertices();
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n]; // discovery index
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut component = vec![UNSET; n];
    let mut next_index = 0u32;
    let mut num_components = 0u32;

    // Explicit DFS frames: (vertex, next out-edge position).
    let mut frames: Vec<(u32, u32)> = Vec::new();
    for root in 0..n as u32 {
        if index[root as usize] != UNSET {
            continue;
        }
        frames.push((root, 0));
        index[root as usize] = next_index;
        low[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut edge_pos)) = frames.last_mut() {
            let out: Vec<VertexId> = g.out_edges(VertexId(v)).map(|(u, _)| u).collect();
            if (*edge_pos as usize) < out.len() {
                let u = out[*edge_pos as usize].0;
                *edge_pos += 1;
                if index[u as usize] == UNSET {
                    index[u as usize] = next_index;
                    low[u as usize] = next_index;
                    next_index += 1;
                    stack.push(u);
                    on_stack[u as usize] = true;
                    frames.push((u, 0));
                } else if on_stack[u as usize] {
                    low[v as usize] = low[v as usize].min(index[u as usize]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    low[parent as usize] = low[parent as usize].min(low[v as usize]);
                }
                if low[v as usize] == index[v as usize] {
                    // v roots a component: pop the stack down to v.
                    loop {
                        let w = stack.pop().expect("tarjan stack invariant");
                        on_stack[w as usize] = false;
                        component[w as usize] = num_components;
                        if w == v {
                            break;
                        }
                    }
                    num_components += 1;
                }
            }
        }
    }

    SccDecomposition {
        component,
        num_components: num_components as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn two_cycles_and_a_bridge() {
        // cycle {0,1,2} -> bridge -> cycle {3,4}
        let mut b = GraphBuilder::new(5);
        b.add_edge(v(0), v(1), 1);
        b.add_edge(v(1), v(2), 1);
        b.add_edge(v(2), v(0), 1);
        b.add_edge(v(2), v(3), 1);
        b.add_edge(v(3), v(4), 1);
        b.add_edge(v(4), v(3), 1);
        let g = b.build();
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.num_components, 2);
        assert!(scc.same_component(v(0), v(2)));
        assert!(scc.same_component(v(3), v(4)));
        assert!(!scc.same_component(v(0), v(3)));
        let mut sizes = scc.component_sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 3]);
        assert_eq!(scc.largest().1, 3);
    }

    #[test]
    fn dag_is_all_singletons() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(v(0), v(1), 1);
        b.add_edge(v(1), v(2), 1);
        b.add_edge(v(0), v(3), 1);
        let g = b.build();
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.num_components, 4);
    }

    #[test]
    fn full_cycle_is_one_component() {
        let mut b = GraphBuilder::new(6);
        for i in 0..6u32 {
            b.add_edge(v(i), v((i + 1) % 6), 1);
        }
        let g = b.build();
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.num_components, 1);
        assert_eq!(scc.largest().1, 6);
    }

    #[test]
    fn empty_and_isolated() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(strongly_connected_components(&g).num_components, 0);
        let g = GraphBuilder::new(3).build();
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.num_components, 3);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 60k-vertex path: a recursive Tarjan would blow the stack.
        let n = 60_000u32;
        let mut b = GraphBuilder::new(n as usize);
        for i in 0..n - 1 {
            b.add_edge(v(i), v(i + 1), 1);
        }
        let g = b.build();
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.num_components, n as usize);
    }

    /// Ground-truth cross-check on random graphs: mutual reachability
    /// (computed by forward+backward BFS) must match component equality.
    #[test]
    fn matches_mutual_reachability() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let n = 20usize;
            let mut b = GraphBuilder::new(n);
            for _ in 0..40 {
                let x = rng.gen_range(0..n as u32);
                let y = rng.gen_range(0..n as u32);
                if x != y {
                    b.add_edge(v(x), v(y), 1);
                }
            }
            let g = b.build();
            let scc = strongly_connected_components(&g);
            let reach = |from: VertexId| -> Vec<bool> {
                let mut seen = vec![false; n];
                let mut stack = vec![from];
                seen[from.index()] = true;
                while let Some(u) = stack.pop() {
                    for (w, _) in g.out_edges(u) {
                        if !seen[w.index()] {
                            seen[w.index()] = true;
                            stack.push(w);
                        }
                    }
                }
                seen
            };
            let reachable: Vec<Vec<bool>> = (0..n as u32).map(|i| reach(v(i))).collect();
            #[allow(clippy::needless_range_loop)] // a/c index two parallel tables
            for a in 0..n {
                for c in 0..n {
                    let mutual = reachable[a][c] && reachable[c][a];
                    assert_eq!(
                        mutual,
                        scc.same_component(v(a as u32), v(c as u32)),
                        "a={a} c={c}"
                    );
                }
            }
        }
    }
}
