//! Fundamental scalar types shared by every crate in the workspace.
//!
//! Vertices and categories are compact `u32` newtypes (the performance guide's
//! "smaller integers" advice): the hot search structures store millions of
//! them, and half-width ids keep queue entries within two machine words.
//! Accumulated path costs use `u64` so that summing `u32`-scale edge weights
//! over long witnesses can never overflow.

use std::fmt;

/// Identifier of a vertex in a [`Graph`](crate::Graph).
///
/// Vertices are dense indices `0..graph.num_vertices()`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The vertex index as a `usize`, for slice indexing.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for VertexId {
    #[inline(always)]
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

impl From<usize> for VertexId {
    #[inline(always)]
    fn from(v: usize) -> Self {
        debug_assert!(v <= u32::MAX as usize);
        VertexId(v as u32)
    }
}

/// Identifier of a point-of-interest category (e.g. *shopping mall*,
/// *restaurant*). Categories are dense indices `0..num_categories`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CategoryId(pub u32);

impl CategoryId {
    /// The category index as a `usize`, for slice indexing.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for CategoryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl fmt::Display for CategoryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for CategoryId {
    #[inline(always)]
    fn from(v: u32) -> Self {
        CategoryId(v)
    }
}

/// Additive travel cost. Edge weights are non-negative and need **not**
/// satisfy the triangle inequality (Definition 1 of the paper).
pub type Weight = u64;

/// Sentinel for "unreachable". Chosen far below `u64::MAX` so that
/// `INFINITY + w` for any realistic edge weight `w` cannot wrap around;
/// saturating arithmetic is still used wherever sums of distances occur.
pub const INFINITY: Weight = u64::MAX / 4;

/// `true` iff `w` denotes a reachable (finite) distance.
#[inline(always)]
pub fn is_finite(w: Weight) -> bool {
    w < INFINITY
}

/// Saturating distance addition that keeps [`INFINITY`] absorbing:
/// `inf_add(INFINITY, x) >= INFINITY` for every `x`.
#[inline(always)]
pub fn inf_add(a: Weight, b: Weight) -> Weight {
    a.saturating_add(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let v = VertexId::from(42u32);
        assert_eq!(v.index(), 42);
        assert_eq!(format!("{v:?}"), "v42");
        assert_eq!(format!("{v}"), "42");
        assert_eq!(VertexId::from(7usize), VertexId(7));
    }

    #[test]
    fn category_id_roundtrip() {
        let c = CategoryId::from(3u32);
        assert_eq!(c.index(), 3);
        assert_eq!(format!("{c:?}"), "C3");
    }

    #[test]
    fn infinity_is_absorbing() {
        assert!(!is_finite(INFINITY));
        assert!(is_finite(0));
        assert!(is_finite(INFINITY - 1));
        assert!(inf_add(INFINITY, INFINITY) >= INFINITY);
        assert!(inf_add(INFINITY, 123) >= INFINITY);
        assert_eq!(inf_add(2, 3), 5);
    }

    #[test]
    fn infinity_headroom_for_sums() {
        // Adding a full edge weight to INFINITY must not wrap to a small value.
        assert!(inf_add(INFINITY, u32::MAX as Weight) > INFINITY / 2);
    }
}
