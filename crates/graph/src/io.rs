//! Plain-text serialization of graphs and categories.
//!
//! Two formats are supported:
//!
//! * the native `kosr` format (round-trips categories), and
//! * the 9th DIMACS Implementation Challenge `.gr` format, the format the
//!   paper's COL/FLA road networks are distributed in (`p sp n m` header and
//!   `a u v w` arc lines). DIMACS has no category information.
//!
//! Native format, line oriented:
//! ```text
//! kosr 1                # magic + version
//! p <V> <E> <NC>        # sizes (E and NC informative)
//! n <cat-id> <name>     # category names (optional)
//! e <u> <v> <w>         # one directed edge
//! c <v> <cat-id>        # one category membership
//! ```

use std::io::{self, BufRead, Write};

use crate::{CategoryId, Graph, GraphBuilder, VertexId, Weight};

/// Errors produced while parsing a graph file.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with the input, with a line number (1-based).
    Malformed {
        /// 1-based line number of the offending record (0 = whole file).
        line: usize,
        /// Human-readable description of the problem.
        msg: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Malformed { line, msg } => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

fn malformed(line: usize, msg: impl Into<String>) -> ParseError {
    ParseError::Malformed {
        line,
        msg: msg.into(),
    }
}

/// Writes `g` in the native text format.
pub fn write_native<W: Write>(g: &Graph, mut out: W) -> io::Result<()> {
    writeln!(out, "kosr 1")?;
    writeln!(
        out,
        "p {} {} {}",
        g.num_vertices(),
        g.num_edges(),
        g.categories().num_categories()
    )?;
    for c in 0..g.categories().num_categories() {
        writeln!(out, "n {} {}", c, g.categories().name(CategoryId(c as u32)))?;
    }
    for u in g.vertices() {
        for (v, w) in g.out_edges(u) {
            writeln!(out, "e {} {} {}", u, v, w)?;
        }
    }
    for (v, c) in g.categories().memberships() {
        writeln!(out, "c {} {}", v, c)?;
    }
    Ok(())
}

/// Reads a graph in the native text format.
pub fn read_native<R: BufRead>(input: R) -> Result<Graph, ParseError> {
    let mut builder: Option<GraphBuilder> = None;
    let mut names: Vec<(u32, String)> = Vec::new();
    let mut memberships: Vec<(VertexId, CategoryId)> = Vec::new();
    let mut saw_magic = false;

    for (idx, line) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_ascii_whitespace();
        let tag = it.next().unwrap();
        match tag {
            "kosr" => {
                let ver = it
                    .next()
                    .ok_or_else(|| malformed(lineno, "missing version"))?;
                if ver != "1" {
                    return Err(malformed(lineno, format!("unsupported version {ver}")));
                }
                saw_magic = true;
            }
            "p" => {
                let n: usize = parse_field(&mut it, lineno, "vertex count")?;
                let _e: usize = parse_field(&mut it, lineno, "edge count")?;
                let nc: usize = parse_field(&mut it, lineno, "category count")?;
                let mut b = GraphBuilder::new(n);
                b.categories_mut().ensure_categories(nc);
                builder = Some(b);
            }
            "n" => {
                let c: u32 = parse_field(&mut it, lineno, "category id")?;
                let name = it.collect::<Vec<_>>().join(" ");
                names.push((c, name));
            }
            "e" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| malformed(lineno, "edge before 'p' header"))?;
                let u: u32 = parse_field(&mut it, lineno, "edge source")?;
                let v: u32 = parse_field(&mut it, lineno, "edge target")?;
                let w: Weight = parse_field(&mut it, lineno, "edge weight")?;
                if u as usize >= b.num_vertices() || v as usize >= b.num_vertices() {
                    return Err(malformed(lineno, "edge endpoint out of range"));
                }
                b.add_edge(VertexId(u), VertexId(v), w);
            }
            "c" => {
                let v: u32 = parse_field(&mut it, lineno, "member vertex")?;
                let c: u32 = parse_field(&mut it, lineno, "member category")?;
                memberships.push((VertexId(v), CategoryId(c)));
            }
            other => return Err(malformed(lineno, format!("unknown record tag '{other}'"))),
        }
    }

    if !saw_magic {
        return Err(malformed(0, "missing 'kosr 1' magic line"));
    }
    let mut b = builder.ok_or_else(|| malformed(0, "missing 'p' header"))?;
    for (v, c) in memberships {
        if v.index() >= b.num_vertices() {
            return Err(malformed(0, "membership vertex out of range"));
        }
        b.categories_mut().ensure_categories(c.index() + 1);
        b.categories_mut().insert(v, c);
    }
    let mut g = b.build();
    // Names can only be applied post-hoc through re-registration; rebuild the
    // table names in place.
    for (c, name) in names {
        if (c as usize) < g.categories().num_categories() && !name.is_empty() {
            // CategoryTable has no rename; emulate by rebuilding when needed.
            // Names are cosmetic, so we tolerate the default when ids exceed
            // the declared count.
            set_name(g.categories_mut(), CategoryId(c), name);
        }
    }
    Ok(g)
}

// Internal helper: CategoryTable keeps names private; renaming is only needed
// by the reader, so it lives here behind a crate-internal accessor.
fn set_name(table: &mut crate::CategoryTable, c: CategoryId, name: String) {
    table.rename(c, name);
}

/// Reads a 9th-DIMACS-challenge `.gr` file (`c` comments, `p sp n m` header,
/// `a u v w` arcs with **1-based** vertex ids).
pub fn read_dimacs<R: BufRead>(input: R) -> Result<Graph, ParseError> {
    let mut builder: Option<GraphBuilder> = None;
    for (idx, line) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut it = line.split_ascii_whitespace();
        match it.next().unwrap() {
            "p" => {
                let kind = it.next().ok_or_else(|| malformed(lineno, "missing 'sp'"))?;
                if kind != "sp" {
                    return Err(malformed(
                        lineno,
                        format!("expected 'p sp', got 'p {kind}'"),
                    ));
                }
                let n: usize = parse_field(&mut it, lineno, "vertex count")?;
                let m: usize = parse_field(&mut it, lineno, "edge count")?;
                builder = Some(GraphBuilder::new(n).with_edge_capacity(m));
            }
            "a" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| malformed(lineno, "arc before 'p sp' header"))?;
                let u: u32 = parse_field(&mut it, lineno, "arc source")?;
                let v: u32 = parse_field(&mut it, lineno, "arc target")?;
                let w: Weight = parse_field(&mut it, lineno, "arc weight")?;
                if u == 0 || v == 0 {
                    return Err(malformed(lineno, "DIMACS ids are 1-based"));
                }
                if u as usize > b.num_vertices() || v as usize > b.num_vertices() {
                    return Err(malformed(lineno, "arc endpoint out of range"));
                }
                b.add_edge(VertexId(u - 1), VertexId(v - 1), w);
            }
            other => return Err(malformed(lineno, format!("unknown record '{other}'"))),
        }
    }
    builder
        .map(GraphBuilder::build)
        .ok_or_else(|| malformed(0, "missing 'p sp' header"))
}

fn parse_field<'a, T: std::str::FromStr>(
    it: &mut impl Iterator<Item = &'a str>,
    line: usize,
    what: &str,
) -> Result<T, ParseError> {
    let tok = it
        .next()
        .ok_or_else(|| malformed(line, format!("missing {what}")))?;
    tok.parse()
        .map_err(|_| malformed(line, format!("invalid {what}: '{tok}'")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn sample() -> Graph {
        let mut b = GraphBuilder::new(3);
        let ma = b.categories_mut().add_category("MA");
        let re = b.categories_mut().add_category("RE");
        b.add_edge(v(0), v(1), 5);
        b.add_edge(v(1), v(2), 7);
        b.add_edge(v(2), v(0), 1);
        b.categories_mut().insert(v(1), ma);
        b.categories_mut().insert(v(2), re);
        b.build()
    }

    #[test]
    fn native_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_native(&g, &mut buf).unwrap();
        let g2 = read_native(BufReader::new(&buf[..])).unwrap();
        assert_eq!(g2.num_vertices(), 3);
        assert_eq!(g2.num_edges(), 3);
        assert_eq!(g2.edge_weight(v(1), v(2)), Some(7));
        assert_eq!(g2.categories().num_categories(), 2);
        assert_eq!(g2.categories().name(CategoryId(0)), "MA");
        assert!(g2.categories().has_category(v(2), CategoryId(1)));
    }

    #[test]
    fn native_rejects_missing_magic() {
        let txt = "p 2 1 0\ne 0 1 3\n";
        assert!(read_native(BufReader::new(txt.as_bytes())).is_err());
    }

    #[test]
    fn native_rejects_out_of_range_edge() {
        let txt = "kosr 1\np 2 1 0\ne 0 9 3\n";
        let err = read_native(BufReader::new(txt.as_bytes())).unwrap_err();
        assert!(matches!(err, ParseError::Malformed { line: 3, .. }));
    }

    #[test]
    fn native_skips_comments_and_blank_lines() {
        let txt = "# hello\nkosr 1\n\np 2 1 0\ne 0 1 3\n";
        let g = read_native(BufReader::new(txt.as_bytes())).unwrap();
        assert_eq!(g.edge_weight(v(0), v(1)), Some(3));
    }

    #[test]
    fn dimacs_parse() {
        let txt = "c demo\np sp 3 3\na 1 2 4\na 2 3 5\na 3 1 6\n";
        let g = read_dimacs(BufReader::new(txt.as_bytes())).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.edge_weight(v(0), v(1)), Some(4));
        assert_eq!(g.edge_weight(v(2), v(0)), Some(6));
    }

    #[test]
    fn dimacs_rejects_zero_based_ids() {
        let txt = "p sp 2 1\na 0 1 4\n";
        assert!(read_dimacs(BufReader::new(txt.as_bytes())).is_err());
    }

    #[test]
    fn dimacs_requires_header() {
        let txt = "a 1 2 4\n";
        assert!(read_dimacs(BufReader::new(txt.as_bytes())).is_err());
    }
}
