//! Property tests for the graph substrate: builder normalisation, CSR
//! consistency, category-table invariants and I/O round-trips over
//! arbitrary inputs.

use kosr_graph::{io, CategoryId, Graph, GraphBuilder, VertexId};
use proptest::prelude::*;

fn arb_edges() -> impl Strategy<Value = (usize, Vec<(u32, u32, u64)>)> {
    (2usize..30).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0u32..n as u32, 0u32..n as u32, 0u64..1000), 0..120),
        )
    })
}

fn build(n: usize, edges: &[(u32, u32, u64)]) -> Graph {
    let mut b = GraphBuilder::new(n);
    for &(u, v, w) in edges {
        b.add_edge(VertexId(u), VertexId(v), w);
    }
    b.build()
}

proptest! {
    /// Forward and backward CSR describe the same edge multiset, rows are
    /// sorted, and `edge_weight` equals the minimum weight over duplicates.
    #[test]
    fn csr_forward_backward_consistency((n, edges) in arb_edges()) {
        let g = build(n, &edges);
        // Forward == transposed backward.
        let mut fwd: Vec<(u32, u32, u64)> = Vec::new();
        let mut bwd: Vec<(u32, u32, u64)> = Vec::new();
        for v in g.vertices() {
            let mut last = None;
            for (u, w) in g.out_edges(v) {
                prop_assert!(last.is_none_or(|p| p < u), "rows sorted, no dups");
                last = Some(u);
                fwd.push((v.0, u.0, w));
            }
            for (u, w) in g.in_edges(v) {
                bwd.push((u.0, v.0, w));
            }
        }
        fwd.sort_unstable();
        bwd.sort_unstable();
        prop_assert_eq!(fwd, bwd);

        // edge_weight returns the min across parallel inputs; self loops gone.
        for &(u, v, _) in &edges {
            if u == v {
                prop_assert!(!g.has_edge(VertexId(u), VertexId(v)));
                continue;
            }
            let min = edges
                .iter()
                .filter(|&&(a, b, _)| a == u && b == v)
                .map(|&(_, _, w)| w)
                .min();
            prop_assert_eq!(g.edge_weight(VertexId(u), VertexId(v)), min);
        }
    }

    /// The native text format round-trips graphs with categories exactly.
    #[test]
    fn native_io_roundtrip((n, edges) in arb_edges(),
                           memberships in proptest::collection::vec((0u32..30, 0u32..4), 0..40)) {
        let mut b = GraphBuilder::new(n);
        b.categories_mut().ensure_categories(4);
        for &(u, v, w) in &edges {
            b.add_edge(VertexId(u), VertexId(v), w);
        }
        for &(v, c) in &memberships {
            b.categories_mut().insert(VertexId(v % n as u32), CategoryId(c));
        }
        let g = b.build();

        let mut buf = Vec::new();
        io::write_native(&g, &mut buf).unwrap();
        let g2 = io::read_native(std::io::BufReader::new(&buf[..])).unwrap();

        prop_assert_eq!(g.num_vertices(), g2.num_vertices());
        prop_assert_eq!(g.num_edges(), g2.num_edges());
        for v in g.vertices() {
            let a: Vec<_> = g.out_edges(v).collect();
            let b: Vec<_> = g2.out_edges(v).collect();
            prop_assert_eq!(a, b);
            prop_assert_eq!(g.categories().categories_of(v), g2.categories().categories_of(v));
        }
    }

    /// Category insert/remove sequences keep both directions of the
    /// membership table consistent.
    #[test]
    fn category_table_bidirectional_consistency(
        ops in proptest::collection::vec((0u32..20, 0u32..3, any::<bool>()), 0..60)
    ) {
        let mut t = kosr_graph::CategoryTable::new(20);
        t.ensure_categories(3);
        let mut model: std::collections::HashSet<(u32, u32)> = Default::default();
        for (v, c, insert) in ops {
            if insert {
                t.insert(VertexId(v), CategoryId(c));
                model.insert((v, c));
            } else {
                t.remove(VertexId(v), CategoryId(c));
                model.remove(&(v, c));
            }
        }
        prop_assert_eq!(t.num_memberships(), model.len());
        for &(v, c) in &model {
            prop_assert!(t.has_category(VertexId(v), CategoryId(c)));
            prop_assert!(t.vertices_of(CategoryId(c)).contains(&VertexId(v)));
        }
        for v in 0..20u32 {
            for c in 0..3u32 {
                prop_assert_eq!(
                    t.has_category(VertexId(v), CategoryId(c)),
                    model.contains(&(v, c))
                );
            }
        }
    }

    /// SCC components are consistent with `reversed()`: reversing edges
    /// never changes the decomposition.
    #[test]
    fn scc_invariant_under_reversal((n, edges) in arb_edges()) {
        let g = build(n, &edges);
        let a = kosr_graph::strongly_connected_components(&g);
        let b = kosr_graph::strongly_connected_components(&g.reversed());
        prop_assert_eq!(a.num_components, b.num_components);
        for x in 0..n as u32 {
            for y in 0..n as u32 {
                prop_assert_eq!(
                    a.same_component(VertexId(x), VertexId(y)),
                    b.same_component(VertexId(x), VertexId(y))
                );
            }
        }
    }
}
