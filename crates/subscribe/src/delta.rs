//! Compact top-k diffs. A [`Delta`] is the positional difference between
//! two canonical top-k lists: the ranks whose witness changed (including
//! ranks that newly exist) plus the new list length. Because canonical
//! top-k lists are totally ordered (nondecreasing cost, lexicographic
//! tie-break), rank-wise replacement plus truncation reconstructs the new
//! list exactly — replaying a subscription's deltas in epoch order over
//! its initial payload is bit-identical to a fresh re-query, which the
//! subscribe property suite enforces.

use kosr_core::Witness;

/// The difference between two delivered top-k lists, tagged with the
/// publish epoch the new list reflects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delta {
    /// The publish epoch the post-delta list is current at.
    pub epoch: u64,
    /// `(rank, new witness)` pairs in increasing rank order: every rank
    /// whose witness differs from the old list, including ranks past the
    /// old list's end (additions).
    pub changed: Vec<(usize, Witness)>,
    /// Length of the new list; ranks at or past it are removed.
    pub new_len: usize,
}

impl Delta {
    /// Diffs `new` against `old`. `None` when the lists are identical —
    /// an empty diff is never pushed.
    pub fn diff(old: &[Witness], new: &[Witness], epoch: u64) -> Option<Delta> {
        let changed: Vec<(usize, Witness)> = new
            .iter()
            .enumerate()
            .filter(|(i, w)| old.get(*i) != Some(w))
            .map(|(i, w)| (i, w.clone()))
            .collect();
        if changed.is_empty() && new.len() == old.len() {
            return None;
        }
        Some(Delta {
            epoch,
            changed,
            new_len: new.len(),
        })
    }

    /// Applies this delta in place: rank-wise replacement, appends for
    /// ranks past the current end, then truncation to `new_len`. Applying
    /// a subscription's deltas in order reconstructs each epoch's top-k
    /// exactly.
    pub fn apply(&self, routes: &mut Vec<Witness>) {
        for (rank, w) in &self.changed {
            if *rank < routes.len() {
                routes[*rank] = w.clone();
            } else {
                // `changed` is rank-ascending and additions are contiguous
                // from the old length, so the append lands at `rank`.
                debug_assert_eq!(*rank, routes.len(), "additions are contiguous");
                routes.push(w.clone());
            }
        }
        routes.truncate(self.new_len);
    }

    /// Number of rank replacements/additions the delta carries.
    pub fn changed_ranks(&self) -> usize {
        self.changed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_graph::VertexId;

    fn w(cost: u64, tail: u32) -> Witness {
        Witness {
            vertices: vec![VertexId(0), VertexId(tail), VertexId(1)],
            cost,
        }
    }

    fn replayed(old: &[Witness], delta: &Delta) -> Vec<Witness> {
        let mut routes = old.to_vec();
        delta.apply(&mut routes);
        routes
    }

    #[test]
    fn identical_lists_diff_to_none() {
        let a = vec![w(1, 10), w(2, 11)];
        assert_eq!(Delta::diff(&a, &a.clone(), 7), None);
        assert_eq!(Delta::diff(&[], &[], 7), None);
    }

    #[test]
    fn replacement_addition_removal_round_trip() {
        let old = vec![w(1, 10), w(2, 11), w(3, 12)];
        for new in [
            vec![w(1, 10), w(2, 99), w(3, 12)],           // mid-rank change
            vec![w(1, 10), w(2, 11), w(3, 12), w(4, 13)], // growth
            vec![w(1, 10)],                               // shrink
            vec![],                                       // all routes gone
            vec![w(0, 9), w(1, 10), w(2, 11)],            // new best shifts ranks
        ] {
            let delta = Delta::diff(&old, &new, 3).expect("lists differ");
            assert_eq!(delta.epoch, 3);
            assert_eq!(replayed(&old, &delta), new);
        }
    }

    #[test]
    fn diff_is_minimal_on_suffix_changes() {
        let old = vec![w(1, 10), w(2, 11), w(3, 12)];
        let new = vec![w(1, 10), w(2, 11), w(3, 13)];
        let delta = Delta::diff(&old, &new, 1).unwrap();
        assert_eq!(delta.changed_ranks(), 1, "only the changed rank ships");
        assert_eq!(delta.changed[0].0, 2);

        // Pure shrink: no changed ranks at all, just the new length.
        let delta = Delta::diff(&old, &old[..2], 2).unwrap();
        assert_eq!(delta.changed_ranks(), 0);
        assert_eq!(delta.new_len, 2);
        assert_eq!(replayed(&old, &delta), old[..2].to_vec());
    }

    #[test]
    fn chained_replay_reconstructs_every_epoch() {
        let states = [
            vec![w(5, 20), w(6, 21)],
            vec![w(4, 19), w(5, 20)],
            vec![w(4, 19)],
            vec![w(2, 18), w(4, 19)],
        ];
        let mut client = states[0].clone();
        for (e, pair) in states.windows(2).enumerate() {
            let delta = Delta::diff(&pair[0], &pair[1], e as u64 + 1).unwrap();
            delta.apply(&mut client);
            assert_eq!(client, pair[1], "client state tracks epoch {}", e + 1);
        }
    }
}
