//! The invalidation filter: decides, per subscription, whether a
//! published update can possibly change its top-k — **without touching
//! the engine**. Every skip rule below is backed by a soundness argument;
//! "when in doubt, wake" is the design rule, because a spurious wake
//! costs one recompute (usually a cache hit) while a wrong skip breaks
//! the replay-identity property.
//!
//! ## Why each skip is sound
//!
//! * **category** — a membership update of category `c` leaves every
//!   distance untouched and only changes which vertices satisfy `c`; a
//!   query that never mentions `c` evaluates identically before and
//!   after.
//! * **shard** — a removal's vertex can only matter at a *first-category*
//!   slot if some delivered witness starts there; delivered first stops
//!   are owned by the signature's shard set (refreshed on every
//!   recompute), so a removal owned elsewhere cannot hit one.
//! * **witness** — removals only remove routes. A route outside the
//!   current top-k that disappears leaves the top-k unchanged (and when
//!   fewer than `k` routes exist, *every* feasible route is delivered, so
//!   an untouched delivered set means nothing existed through that vertex
//!   slot at all).
//! * **bound** — an insert can only add routes that pass the new member
//!   `v` at one of its category's slots; chaining the `CategoryBounds`
//!   tables through `v` lower-bounds every such route. Likewise an edge
//!   insert only changes routes that traverse it, bounded below by
//!   `dis(s, from) + w + dis(to, t)` in the *post-update* metric. If the
//!   bound exceeds the current k-th cost while a full `k` is held,
//!   nothing can enter or improve.
//! * **chain** — when that same lower bound is infinite, no feasible
//!   route through the update's footprint exists at all, full `k` or not.
//!
//! Region-only filtering is deliberately **absent** for edge updates: the
//! routing skeleton is global and route legs cross regions freely, so "the
//! edge is in another region" proves nothing. The distance bound above is
//! the sound replacement.

use kosr_core::{IndexedGraph, Query};
use kosr_graph::{inf_add, is_finite, CategoryId, Partition, VertexId, Weight, INFINITY};
use kosr_service::Update;

use crate::registry::Subscription;

/// Why a woken subscription was woken — the `cause` label on
/// `kosr_sub_wakeups_total`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WakeCause {
    /// A membership update survived every filter stage.
    Membership,
    /// An edge insert's distance bound admits a top-k change.
    Edge,
}

/// Which filter stage proved the update irrelevant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SkipCause {
    /// The query never mentions the touched category.
    Category,
    /// First-category removal owned by a shard outside the signature set.
    Shard,
    /// No delivered witness passes the removed member at a matching slot.
    Witness,
    /// The chained lower bound through the update's footprint exceeds the
    /// k-th delivered cost.
    Bound,
    /// The chained lower bound is infinite: no feasible route through the
    /// footprint exists.
    Chain,
}

impl SkipCause {
    /// Stable label (metrics / assertions).
    pub fn name(self) -> &'static str {
        match self {
            SkipCause::Category => "category",
            SkipCause::Shard => "shard",
            SkipCause::Witness => "witness",
            SkipCause::Bound => "bound",
            SkipCause::Chain => "chain",
        }
    }
}

/// The filter's verdict for one (subscription, update) pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FilterDecision {
    /// The update may change this subscription's top-k: recompute.
    Wake(WakeCause),
    /// Provably irrelevant: zero engine work.
    Skip(SkipCause),
}

/// Classifies `update` against one subscription. `engine` supplies the
/// post-update labels and `CategoryBounds` tables for the bound/chain
/// stages; pass `None` when no consistent local engine is available (the
/// publish deferred somewhere, or the fleet is remote) — the filter then
/// degrades to the always-sound category/shard/witness stages and wakes
/// otherwise.
pub fn classify(
    sub: &Subscription,
    update: &Update,
    partition: &Partition,
    engine: Option<&IndexedGraph>,
) -> FilterDecision {
    match *update {
        Update::RemoveMembership { vertex, category } => {
            if !sub.signature.mentions(category) {
                return FilterDecision::Skip(SkipCause::Category);
            }
            if sub.query.categories.first() == Some(&category)
                && sub
                    .query
                    .categories
                    .iter()
                    .filter(|&&c| c == category)
                    .count()
                    == 1
                && !sub.signature.touches_shard(partition.owner(vertex))
            {
                return FilterDecision::Skip(SkipCause::Shard);
            }
            if witness_passes(&sub.query, &sub.delivered, vertex, category) {
                FilterDecision::Wake(WakeCause::Membership)
            } else {
                FilterDecision::Skip(SkipCause::Witness)
            }
        }
        Update::InsertMembership { vertex, category } => {
            if !sub.signature.mentions(category) {
                return FilterDecision::Skip(SkipCause::Category);
            }
            let Some(ig) = engine else {
                return FilterDecision::Wake(WakeCause::Membership);
            };
            let bound = insert_bound(ig, &sub.query, vertex, category);
            if !is_finite(bound) {
                return FilterDecision::Skip(SkipCause::Chain);
            }
            match sub.kth_cost() {
                Some(kth) if bound > kth => FilterDecision::Skip(SkipCause::Bound),
                _ => FilterDecision::Wake(WakeCause::Membership),
            }
        }
        Update::InsertEdge { from, to, weight } => {
            let Some(ig) = engine else {
                return FilterDecision::Wake(WakeCause::Edge);
            };
            // Any route whose cost the new edge changed traverses it, so
            // its post-update cost is at least this (post-update labels).
            let bound = inf_add(
                inf_add(ig.labels.distance(sub.query.source, from), weight),
                ig.labels.distance(to, sub.query.target),
            );
            if !is_finite(bound) {
                return FilterDecision::Skip(SkipCause::Chain);
            }
            match sub.kth_cost() {
                Some(kth) if bound > kth => FilterDecision::Skip(SkipCause::Bound),
                _ => FilterDecision::Wake(WakeCause::Edge),
            }
        }
    }
}

/// Whether any delivered witness visits `vertex` at a slot whose category
/// is `category` — the only way a removal can touch the current top-k.
fn witness_passes(
    query: &Query,
    delivered: &[kosr_core::Witness],
    vertex: VertexId,
    category: CategoryId,
) -> bool {
    delivered.iter().any(|w| {
        query
            .categories
            .iter()
            .enumerate()
            .any(|(i, &c)| c == category && w.vertices.get(i + 1) == Some(&vertex))
    })
}

/// Lower bound on the cost of **any** route that satisfies `query` and
/// passes `v` at some slot of category `category`: per-leg minima chained
/// through the `CategoryBounds` tables, minimised over the matching
/// slots. Every newly feasible witness an insert of `(v, category)`
/// creates is of that shape, so a bound above the k-th cost proves the
/// top-k unchanged; an infinite bound proves no such route exists.
fn insert_bound(ig: &IndexedGraph, query: &Query, v: VertexId, category: CategoryId) -> Weight {
    let cats = &query.categories;
    let m = cats.len();
    let labels = &ig.labels;
    let b = &ig.bounds;
    let mut best = INFINITY;
    for i in 0..m {
        if cats[i] != category {
            continue;
        }
        // s → C₁ → … → C_{i-1} → v, each leg its independent minimum.
        let prefix = if i == 0 {
            labels.distance(query.source, v)
        } else {
            let mut p = b.to_category(labels, query.source, cats[0]);
            for j in 0..i - 1 {
                p = inf_add(p, b.pair(cats[j], cats[j + 1]));
            }
            inf_add(p, b.from_category(labels, cats[i - 1], v))
        };
        // v → C_{i+1} → … → C_{m-1} → t.
        let suffix = if i == m - 1 {
            labels.distance(v, query.target)
        } else {
            let mut s = b.to_category(labels, v, cats[i + 1]);
            for j in i + 1..m - 1 {
                s = inf_add(s, b.pair(cats[j], cats[j + 1]));
            }
            inf_add(s, b.from_category(labels, cats[m - 1], query.target))
        };
        best = best.min(inf_add(prefix, suffix));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::RelevanceSignature;
    use kosr_core::figure1::figure1;
    use kosr_core::Method;
    use kosr_graph::{PartitionConfig, Partitioner};
    use std::collections::VecDeque;

    fn world() -> (IndexedGraph, Partition, kosr_core::figure1::Figure1) {
        let fx = figure1();
        let ig = IndexedGraph::build_default(fx.graph.clone());
        let partition = Partitioner::new(PartitionConfig {
            num_shards: 2,
            ..Default::default()
        })
        .partition(&ig.graph);
        (ig, partition, fx)
    }

    fn sub_for(ig: &IndexedGraph, partition: &Partition, query: Query) -> Subscription {
        let outcome = ig.run_canonical(&query, Method::Sk, u64::MAX);
        let shards: Vec<usize> = outcome
            .witnesses
            .iter()
            .map(|w| partition.owner(w.vertices[1]))
            .collect();
        Subscription {
            id: crate::SessionId(0),
            signature: RelevanceSignature::new(&query.categories, shards, 0),
            delivered: outcome.witnesses,
            epoch: 0,
            queue: VecDeque::new(),
            needs_resync: false,
            query,
        }
    }

    #[test]
    fn disjoint_category_updates_never_wake() {
        let (ig, partition, fx) = world();
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re], 2);
        let sub = sub_for(&ig, &partition, q);
        for update in [
            Update::InsertMembership {
                vertex: fx.s,
                category: fx.ci,
            },
            Update::RemoveMembership {
                vertex: fx.t,
                category: fx.ci,
            },
        ] {
            assert_eq!(
                classify(&sub, &update, &partition, Some(&ig)),
                FilterDecision::Skip(SkipCause::Category)
            );
        }
    }

    #[test]
    fn removal_of_a_delivered_stop_wakes_and_of_a_bystander_skips() {
        let (ig, partition, fx) = world();
        // k=1: figure 1 has exactly two restaurants, so the undelivered
        // one is the bystander.
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 1);
        let sub = sub_for(&ig, &partition, q.clone());
        let delivered_restaurant = sub.delivered[0].vertices[2];
        assert_eq!(
            classify(
                &sub,
                &Update::RemoveMembership {
                    vertex: delivered_restaurant,
                    category: fx.re,
                },
                &partition,
                Some(&ig),
            ),
            FilterDecision::Wake(WakeCause::Membership)
        );
        // A restaurant no delivered route stops at: removal is invisible.
        let bystander = fx
            .graph
            .categories()
            .vertices_of(fx.re)
            .iter()
            .copied()
            .find(|&v| sub.delivered.iter().all(|w| w.vertices[2] != v))
            .expect("figure 1 has more restaurants than the top-1 uses");
        assert_eq!(
            classify(
                &sub,
                &Update::RemoveMembership {
                    vertex: bystander,
                    category: fx.re,
                },
                &partition,
                Some(&ig),
            ),
            FilterDecision::Skip(SkipCause::Witness)
        );
    }

    #[test]
    fn insert_bound_is_a_true_lower_bound_and_gates_wakes() {
        let (ig, partition, fx) = world();
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 1);
        let mut sub = sub_for(&ig, &partition, q.clone());
        assert_eq!(sub.delivered.len(), 1, "k=1 held in full");
        let kth = sub.kth_cost().unwrap();

        // The bound never exceeds the true cost of a matching route: for
        // the delivered witness's own restaurant slot, bounding a route
        // through that exact vertex must come in at or below its cost.
        let v = sub.delivered[0].vertices[2];
        assert!(insert_bound(&ig, &q, v, fx.re) <= kth);

        // A full-k subscription with an absurdly low k-th cost skips any
        // insert whose chained bound cannot beat it.
        sub.delivered[0].cost = 0;
        for v in fx.graph.vertices() {
            match classify(
                &sub,
                &Update::InsertMembership {
                    vertex: v,
                    category: fx.re,
                },
                &partition,
                Some(&ig),
            ) {
                FilterDecision::Skip(SkipCause::Bound) | FilterDecision::Skip(SkipCause::Chain) => {
                }
                other => panic!("insert at {v:?} must bound- or chain-skip, got {other:?}"),
            }
        }
    }

    #[test]
    fn partial_k_wakes_on_feasible_inserts_but_chain_skips_unreachable() {
        let (ig, partition, fx) = world();
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re], 50);
        let sub = sub_for(&ig, &partition, q.clone());
        assert!(sub.delivered.len() < 50, "fewer than k routes exist");
        assert_eq!(sub.kth_cost(), None);
        // Any reachable insert could add a route: must wake.
        assert_eq!(
            classify(
                &sub,
                &Update::InsertMembership {
                    vertex: fx.t,
                    category: fx.re,
                },
                &partition,
                Some(&ig),
            ),
            FilterDecision::Wake(WakeCause::Membership)
        );
    }

    #[test]
    fn edge_bound_uses_post_update_distances() {
        let (ig, partition, fx) = world();
        let q = Query::new(fx.s, fx.t, vec![fx.ma], 1);
        let mut sub = sub_for(&ig, &partition, q);
        // Cheap k-th: an edge far off every s→t corridor bound-skips, a
        // zero-weight edge at the source cannot be bound-skipped.
        sub.delivered[0].cost = 0;
        assert_eq!(
            classify(
                &sub,
                &Update::InsertEdge {
                    from: fx.t,
                    to: fx.s,
                    weight: 1_000,
                },
                &partition,
                Some(&ig),
            ),
            FilterDecision::Skip(SkipCause::Bound)
        );
        // Without an engine the filter degrades to waking.
        assert_eq!(
            classify(
                &sub,
                &Update::InsertEdge {
                    from: fx.t,
                    to: fx.s,
                    weight: 1_000,
                },
                &partition,
                None,
            ),
            FilterDecision::Wake(WakeCause::Edge)
        );
    }
}
