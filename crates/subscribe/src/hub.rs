//! The subscription hub: owns the [`SubscriptionTable`], listens to the
//! update bus as an [`UpdateObserver`], runs the invalidation filter, and
//! drives woken subscriptions through the normal epoch-guarded
//! `ShardRouter` path (witness caches and all) to produce deltas.
//!
//! ## Concurrency model
//!
//! One mutex serialises every state transition — subscribe, poll drain,
//! and the per-publish filter/recompute sweep — with a condvar parking
//! long-polls until a delta (or resync) lands for them. The hub runs its
//! sweep on the *publishing* thread, post-commit, after the bus has
//! released the update log: the sweep may freely re-enter the router.
//!
//! The hub holds the router **weakly**: the router's observer registry
//! holds the hub strongly, and a strong back-edge would leak both. When
//! the router is gone the hub degrades to typed `ShuttingDown` errors.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::{Duration, Instant};

use kosr_core::{Query, Witness};
use kosr_service::{
    EventJournal, EventKind, MetricsRegistry, MetricsSource, ServiceError, Source, TagValue, Update,
};
use kosr_shard::{BusReceipt, LiveUpdateBus, ShardError, ShardRouter, UpdateObserver};

use crate::delta::Delta;
use crate::filter::{classify, FilterDecision, SkipCause, WakeCause};
use crate::registry::{RelevanceSignature, SessionId, SubscriptionTable};

/// Hub tunables.
#[derive(Clone, Debug)]
pub struct HubConfig {
    /// Undrained deltas a session may accumulate before the hub discards
    /// its queue and forces a resync — the bound that keeps a never-
    /// polling client from growing memory without limit.
    pub queue_capacity: usize,
}

impl Default for HubConfig {
    fn default() -> HubConfig {
        HubConfig { queue_capacity: 8 }
    }
}

/// The answer to a successful subscribe: the session handle plus the
/// initial full top-k and the epoch it is current at.
#[derive(Clone, Debug)]
pub struct SubscribeReply {
    /// Poll/unsubscribe with this.
    pub id: SessionId,
    /// The full top-k at subscription time.
    pub routes: Vec<Witness>,
    /// The publish epoch the routes reflect.
    pub epoch: u64,
}

/// What a poll drained.
#[derive(Clone, Debug)]
pub enum PollResponse {
    /// Queued deltas, oldest first (empty on long-poll timeout). The
    /// query rides along so edges can render per-route stop breakdowns.
    Deltas {
        /// The standing query.
        query: Query,
        /// Deltas to apply in order.
        deltas: Vec<Delta>,
    },
    /// The session's queue overflowed (or a recompute failed) since the
    /// last drain: discard local state and restart from this full top-k.
    Resync {
        /// The standing query.
        query: Query,
        /// The full current top-k.
        routes: Vec<Witness>,
        /// The publish epoch the routes reflect.
        epoch: u64,
    },
    /// No such session (never created, or unsubscribed).
    UnknownSession,
    /// A resync recompute failed; the session stays resync-pending and
    /// the client should retry.
    Failed(ShardError),
}

#[derive(Default)]
struct Counters {
    wakeups_membership: AtomicU64,
    wakeups_edge: AtomicU64,
    skipped_category: AtomicU64,
    skipped_shard: AtomicU64,
    skipped_witness: AtomicU64,
    skipped_bound: AtomicU64,
    skipped_chain: AtomicU64,
    deltas_pushed: AtomicU64,
    empty_diffs: AtomicU64,
    recomputes: AtomicU64,
    overflows: AtomicU64,
    resyncs_served: AtomicU64,
    recompute_failures: AtomicU64,
}

/// A point-in-time snapshot of the hub's counters (tests and docs).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HubStats {
    /// Standing subscriptions currently registered.
    pub active: usize,
    /// Wakes caused by membership updates.
    pub wakeups_membership: u64,
    /// Wakes caused by edge inserts.
    pub wakeups_edge: u64,
    /// Skips proven by category disjointness.
    pub skipped_category: u64,
    /// Skips proven by first-stop shard ownership.
    pub skipped_shard: u64,
    /// Skips proven by the delivered-witness scan.
    pub skipped_witness: u64,
    /// Skips proven by the chained cost lower bound.
    pub skipped_bound: u64,
    /// Skips proven by chain infeasibility.
    pub skipped_chain: u64,
    /// Deltas queued for delivery.
    pub deltas_pushed: u64,
    /// Wakes whose recompute produced an unchanged top-k.
    pub empty_diffs: u64,
    /// Recomputes run through the router (wakes, not resyncs).
    pub recomputes: u64,
    /// Queue overflows that forced a resync.
    pub overflows: u64,
    /// Full resyncs served to polls.
    pub resyncs_served: u64,
    /// Wake recomputes that failed (session forced to resync).
    pub recompute_failures: u64,
}

impl HubStats {
    /// All skips, across causes — the "zero engine work" counter.
    pub fn skipped_total(&self) -> u64 {
        self.skipped_category
            + self.skipped_shard
            + self.skipped_witness
            + self.skipped_bound
            + self.skipped_chain
    }

    /// All wakes, across causes.
    pub fn wakeups_total(&self) -> u64 {
        self.wakeups_membership + self.wakeups_edge
    }
}

/// The continuous-query engine. Register it on the router with
/// [`ShardRouter::register_update_observer`] so every bus publish flows
/// through its filter.
pub struct SubscriptionHub {
    router: Weak<ShardRouter>,
    bus: LiveUpdateBus,
    events: Arc<EventJournal>,
    table: Mutex<SubscriptionTable>,
    wakeups: Condvar,
    config: HubConfig,
    counters: Counters,
}

impl SubscriptionHub {
    /// A hub over `router`'s fleet. The caller still has to register it:
    /// `router.register_update_observer(hub.clone())`.
    pub fn new(router: &Arc<ShardRouter>, config: HubConfig) -> SubscriptionHub {
        SubscriptionHub {
            bus: router.update_bus(),
            events: Arc::clone(router.events()),
            router: Arc::downgrade(router),
            table: Mutex::new(SubscriptionTable::new()),
            wakeups: Condvar::new(),
            config,
            counters: Counters::default(),
        }
    }

    fn router(&self) -> Result<Arc<ShardRouter>, ShardError> {
        self.router
            .upgrade()
            .ok_or(ShardError::Service(ServiceError::ShuttingDown))
    }

    fn compute(
        router: &ShardRouter,
        query: &Query,
    ) -> Result<kosr_shard::ShardedResponse, ShardError> {
        router.submit(query.clone())?.wait()
    }

    /// Registers `query` as a standing subscription: runs it once through
    /// the router and returns the session id with the initial full top-k.
    pub fn subscribe(&self, query: Query) -> Result<SubscribeReply, ShardError> {
        let router = self.router()?;
        let mut table = self.table.lock().expect("subscription table poisoned");
        let resp = Self::compute(&router, &query)?;
        let epoch = self.bus.log_len() as u64;
        let shards = router.plan_fanout(&query)?;
        let signature = RelevanceSignature::new(
            &query.categories,
            shards,
            router.partition().owner(query.source),
        );
        let routes = resp.outcome.witnesses;
        let id = table.insert(query, signature, routes.clone(), epoch);
        self.events.emit(
            Source::Gateway,
            EventKind::SubscriptionCreated,
            None,
            vec![
                ("session".to_string(), TagValue::U64(id.0)),
                ("epoch".to_string(), TagValue::U64(epoch)),
            ],
        );
        Ok(SubscribeReply { id, routes, epoch })
    }

    /// Drops a subscription; `true` when it existed. Parked polls for the
    /// session wake and answer `UnknownSession`.
    pub fn unsubscribe(&self, id: SessionId) -> bool {
        let removed = self
            .table
            .lock()
            .expect("subscription table poisoned")
            .remove(id)
            .is_some();
        if removed {
            self.events.emit(
                Source::Gateway,
                EventKind::SubscriptionDropped,
                None,
                vec![("session".to_string(), TagValue::U64(id.0))],
            );
            self.wakeups.notify_all();
        }
        removed
    }

    /// Drains the session's delta queue, parking up to `max_wait` when it
    /// is empty (long-poll). An overflowed/failed session answers with a
    /// full [`PollResponse::Resync`] instead.
    pub fn poll(&self, id: SessionId, max_wait: Duration) -> PollResponse {
        let deadline = Instant::now() + max_wait;
        let mut table = self.table.lock().expect("subscription table poisoned");
        loop {
            let Some(sub) = table.get_mut(id) else {
                return PollResponse::UnknownSession;
            };
            if sub.needs_resync {
                let query = sub.query.clone();
                let recomputed = self.router().and_then(|r| {
                    let resp = Self::compute(&r, &query)?;
                    let shards = r.plan_fanout(&query)?;
                    Ok((resp, shards))
                });
                match recomputed {
                    Ok((resp, shards)) => {
                        let routes = resp.outcome.witnesses;
                        let epoch = self.bus.log_len() as u64;
                        sub.signature.refresh_shards(shards);
                        sub.delivered = routes.clone();
                        sub.epoch = epoch;
                        sub.queue.clear();
                        sub.needs_resync = false;
                        self.counters.resyncs_served.fetch_add(1, Ordering::Relaxed);
                        return PollResponse::Resync {
                            query,
                            routes,
                            epoch,
                        };
                    }
                    // The flag stays set: the next poll retries the resync.
                    Err(e) => return PollResponse::Failed(e),
                }
            }
            if !sub.queue.is_empty() {
                let deltas: Vec<Delta> = sub.queue.drain(..).collect();
                return PollResponse::Deltas {
                    query: sub.query.clone(),
                    deltas,
                };
            }
            let now = Instant::now();
            if now >= deadline {
                return PollResponse::Deltas {
                    query: sub.query.clone(),
                    deltas: Vec::new(),
                };
            }
            table = self
                .wakeups
                .wait_timeout(table, deadline - now)
                .expect("subscription table poisoned")
                .0;
        }
    }

    /// A point-in-time counter snapshot.
    pub fn stats(&self) -> HubStats {
        let c = &self.counters;
        let r = |a: &AtomicU64| a.load(Ordering::Relaxed);
        HubStats {
            active: self
                .table
                .lock()
                .expect("subscription table poisoned")
                .len(),
            wakeups_membership: r(&c.wakeups_membership),
            wakeups_edge: r(&c.wakeups_edge),
            skipped_category: r(&c.skipped_category),
            skipped_shard: r(&c.skipped_shard),
            skipped_witness: r(&c.skipped_witness),
            skipped_bound: r(&c.skipped_bound),
            skipped_chain: r(&c.skipped_chain),
            deltas_pushed: r(&c.deltas_pushed),
            empty_diffs: r(&c.empty_diffs),
            recomputes: r(&c.recomputes),
            overflows: r(&c.overflows),
            resyncs_served: r(&c.resyncs_served),
            recompute_failures: r(&c.recompute_failures),
        }
    }

    fn count_skip(&self, cause: SkipCause, n: u64) {
        let counter = match cause {
            SkipCause::Category => &self.counters.skipped_category,
            SkipCause::Shard => &self.counters.skipped_shard,
            SkipCause::Witness => &self.counters.skipped_witness,
            SkipCause::Bound => &self.counters.skipped_bound,
            SkipCause::Chain => &self.counters.skipped_chain,
        };
        counter.fetch_add(n, Ordering::Relaxed);
    }

    fn force_resync(&self, id: SessionId, cause: &str) {
        self.events.emit(
            Source::Gateway,
            EventKind::SubscriptionResync,
            None,
            vec![
                ("session".to_string(), TagValue::U64(id.0)),
                ("cause".to_string(), TagValue::Str(cause.to_string())),
            ],
        );
    }

    /// The per-publish sweep: filter every (relevant) subscription, wake
    /// and recompute the survivors, queue non-empty diffs.
    fn handle_update(&self, update: &Update, receipt: &BusReceipt) {
        let Some(router) = self.router.upgrade() else {
            return;
        };
        let mut table = self.table.lock().expect("subscription table poisoned");
        if table.is_empty() {
            return;
        }
        let total = table.len();
        // Membership updates enumerate only sessions mentioning the
        // category (the inverted index); everyone else is skip-counted
        // without being visited — the counter-proven fast path.
        let targets: Vec<SessionId> = match update.touched_category() {
            Some(c) => {
                let t = table.sessions_mentioning(c);
                self.count_skip(SkipCause::Category, (total - t.len()) as u64);
                t
            }
            None => table.sessions(),
        };
        // Bound/chain filtering needs an engine that has definitely
        // applied this update; a deferred replica means the local handle
        // might be the stale one, so degrade to the label-free stages.
        let engine = if receipt.deferred_replicas == 0 {
            router.local_shard_service(0).map(|s| s.indexed_graph())
        } else {
            None
        };
        let partition = router.partition();
        let mut delivered_something = false;
        for id in targets {
            let Some(sub) = table.get_mut(id) else {
                continue;
            };
            match classify(sub, update, partition, engine.as_deref()) {
                FilterDecision::Skip(cause) => self.count_skip(cause, 1),
                FilterDecision::Wake(cause) => {
                    match cause {
                        WakeCause::Membership => &self.counters.wakeups_membership,
                        WakeCause::Edge => &self.counters.wakeups_edge,
                    }
                    .fetch_add(1, Ordering::Relaxed);
                    self.counters.recomputes.fetch_add(1, Ordering::Relaxed);
                    match Self::compute(&router, &sub.query) {
                        Ok(resp) => {
                            sub.signature.refresh_shards(resp.shards.clone());
                            match Delta::diff(
                                &sub.delivered,
                                &resp.outcome.witnesses,
                                receipt.epoch,
                            ) {
                                Some(delta) => {
                                    sub.delivered = resp.outcome.witnesses;
                                    sub.epoch = receipt.epoch;
                                    sub.queue.push_back(delta);
                                    if sub.queue.len() > self.config.queue_capacity {
                                        sub.queue.clear();
                                        sub.needs_resync = true;
                                        self.counters.overflows.fetch_add(1, Ordering::Relaxed);
                                        self.force_resync(id, "queue_overflow");
                                    } else {
                                        self.counters.deltas_pushed.fetch_add(1, Ordering::Relaxed);
                                    }
                                    delivered_something = true;
                                }
                                None => {
                                    sub.epoch = receipt.epoch;
                                    self.counters.empty_diffs.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        Err(_) => {
                            // Can't prove anything about the new top-k:
                            // poison the queue and let poll resync once
                            // the fleet is reachable again.
                            sub.queue.clear();
                            sub.needs_resync = true;
                            self.counters
                                .recompute_failures
                                .fetch_add(1, Ordering::Relaxed);
                            self.force_resync(id, "recompute_failed");
                            delivered_something = true;
                        }
                    }
                }
            }
        }
        if delivered_something {
            self.wakeups.notify_all();
        }
    }
}

impl UpdateObserver for SubscriptionHub {
    fn on_update(&self, update: &Update, receipt: &BusReceipt) {
        self.handle_update(update, receipt);
    }
}

impl MetricsSource for SubscriptionHub {
    fn export(&self, registry: &mut MetricsRegistry) {
        let s = self.stats();
        registry.gauge(
            "kosr_subscriptions_active",
            "Standing subscriptions currently registered",
            &[],
            s.active as f64,
        );
        registry.counter(
            "kosr_sub_wakeups_total",
            "Subscription wakes that reached the delta engine, by update cause",
            &[("cause", "membership")],
            s.wakeups_membership as f64,
        );
        registry.counter(
            "kosr_sub_wakeups_total",
            "Subscription wakes that reached the delta engine, by update cause",
            &[("cause", "edge")],
            s.wakeups_edge as f64,
        );
        registry.counter(
            "kosr_sub_deltas_pushed_total",
            "Non-empty deltas queued for delivery",
            &[],
            s.deltas_pushed as f64,
        );
        let help = "Updates proven irrelevant to a subscription without recompute, by filter stage";
        for (cause, v) in [
            (SkipCause::Category, s.skipped_category),
            (SkipCause::Shard, s.skipped_shard),
            (SkipCause::Witness, s.skipped_witness),
            (SkipCause::Bound, s.skipped_bound),
            (SkipCause::Chain, s.skipped_chain),
        ] {
            registry.counter(
                "kosr_sub_skipped_total",
                help,
                &[("cause", cause.name())],
                v as f64,
            );
        }
        registry.counter(
            "kosr_sub_resyncs_total",
            "Sessions forced to full resync, by cause",
            &[("cause", "queue_overflow")],
            s.overflows as f64,
        );
        registry.counter(
            "kosr_sub_resyncs_total",
            "Sessions forced to full resync, by cause",
            &[("cause", "recompute_failed")],
            s.recompute_failures as f64,
        );
    }
}
