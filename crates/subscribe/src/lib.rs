//! # kosr-subscribe
//!
//! Continuous KOSR queries: standing top-k subscriptions that receive
//! **deltas** only when a live update actually changes their answer — the
//! ROADMAP's continuous-queries item, in the standing-query shape
//! keyword-aware route services need for long-lived user intents.
//!
//! A fleet that answers top-k optimal sequenced routes fast and ships
//! live updates still wastes its dominant cycles *re-answering unchanged
//! queries* once clients care about freshness. This crate closes that
//! loop in four stages:
//!
//! 1. **Registry** ([`SubscriptionTable`]) — standing queries keyed by
//!    [`SessionId`], each with its last delivered top-k, its delivery
//!    epoch, and a precomputed [`RelevanceSignature`] (category set +
//!    owning-shard set + source region).
//! 2. **Invalidation filter** ([`classify`]) — on each bus publish, the
//!    update's footprint is intersected against signatures via inverted
//!    indexes, delivered-witness scans, and `CategoryBounds`
//!    chain-feasibility. A sushi-shop insert on shard 3 never wakes a
//!    coffee-route subscriber on shard 0, and every skip is a proven
//!    fast path (see the [`filter`] module docs for the soundness
//!    arguments) counted on `kosr_sub_skipped_total`.
//! 3. **Delta engine** ([`SubscriptionHub`]) — woken subscriptions
//!    recompute through the normal epoch-guarded `ShardRouter` path
//!    (witness caches reused) and the new top-k is diffed against the
//!    last delivered one into a compact [`Delta`]: changed ranks, new
//!    length, new epoch. An empty diff pushes nothing.
//! 4. **Edge integration** — `kosr-gateway` exposes `POST /v1/subscribe`,
//!    `GET /v1/subscribe/{id}/poll` (long-poll drain with a bounded
//!    per-session queue; overflow forces a typed resync) and
//!    `DELETE /v1/subscribe/{id}`, and collects the hub's metrics.
//!
//! Replaying a subscription's deltas in epoch order over its initial
//! payload is **bit-identical** to a fresh canonical re-query at each
//! epoch — the subscribe property suite in `kosr-testkit` proves it on
//! random worlds and update schedules, under fault injection and
//! kill/recover cycles.
//!
//! ```
//! use std::sync::Arc;
//! use kosr_core::{figure1, IndexedGraph, Query};
//! use kosr_graph::{PartitionConfig, Partitioner};
//! use kosr_service::{ServiceConfig, Update};
//! use kosr_shard::{ShardRouter, ShardSet};
//! use kosr_subscribe::{HubConfig, PollResponse, SubscriptionHub};
//! use std::time::Duration;
//!
//! let fx = figure1::figure1();
//! let ig = IndexedGraph::build_default(fx.graph.clone());
//! let partition = Partitioner::new(PartitionConfig { num_shards: 2, ..Default::default() })
//!     .partition(&ig.graph);
//! let router = Arc::new(ShardRouter::new(
//!     ShardSet::build(&ig, partition),
//!     ServiceConfig { workers: 1, ..Default::default() },
//! ));
//! let hub = Arc::new(SubscriptionHub::new(&router, HubConfig::default()));
//! router.register_update_observer(Arc::clone(&hub) as _);
//!
//! // Subscribe: the initial payload is the full canonical top-k.
//! let reply = hub
//!     .subscribe(Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3))
//!     .unwrap();
//! assert_eq!(reply.routes.iter().map(|w| w.cost).collect::<Vec<_>>(), vec![20, 21, 22]);
//!
//! // Close the best route's restaurant: the publish wakes the
//! // subscription and queues exactly one delta.
//! let gone = reply.routes[0].vertices[2];
//! router.update_bus()
//!     .publish(&Update::RemoveMembership { vertex: gone, category: fx.re })
//!     .unwrap();
//! let mut routes = reply.routes.clone();
//! match hub.poll(reply.id, Duration::ZERO) {
//!     PollResponse::Deltas { deltas, .. } => {
//!         assert_eq!(deltas.len(), 1);
//!         for d in &deltas { d.apply(&mut routes); }
//!     }
//!     other => panic!("expected deltas, got {other:?}"),
//! }
//! assert_ne!(routes[0].vertices[2], gone, "replayed top-k dropped the closed stop");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delta;
pub mod filter;
pub mod hub;
pub mod registry;

pub use delta::Delta;
pub use filter::{classify, FilterDecision, SkipCause, WakeCause};
pub use hub::{HubConfig, HubStats, PollResponse, SubscribeReply, SubscriptionHub};
pub use registry::{RelevanceSignature, SessionId, Subscription, SubscriptionTable};

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_core::figure1::figure1;
    use kosr_core::{IndexedGraph, Method, Query};
    use kosr_graph::{PartitionConfig, Partitioner};
    use kosr_service::{ServiceConfig, Update};
    use kosr_shard::{ShardRouter, ShardSet};
    use std::sync::Arc;
    use std::time::Duration;

    fn fleet() -> (
        Arc<ShardRouter>,
        Arc<SubscriptionHub>,
        kosr_core::figure1::Figure1,
    ) {
        let fx = figure1();
        let ig = IndexedGraph::build_default(fx.graph.clone());
        let partition = Partitioner::new(PartitionConfig {
            num_shards: 3,
            ..Default::default()
        })
        .partition(&ig.graph);
        let router = Arc::new(ShardRouter::new(
            ShardSet::build(&ig, partition),
            ServiceConfig {
                workers: 1,
                ..Default::default()
            },
        ));
        let hub = Arc::new(SubscriptionHub::new(&router, HubConfig::default()));
        router.register_update_observer(Arc::clone(&hub) as _);
        (router, hub, fx)
    }

    fn drain(hub: &SubscriptionHub, id: SessionId) -> Vec<Delta> {
        match hub.poll(id, Duration::ZERO) {
            PollResponse::Deltas { deltas, .. } => deltas,
            other => panic!("expected deltas, got {other:?}"),
        }
    }

    #[test]
    fn delta_replay_tracks_relevant_updates() {
        let (router, hub, fx) = fleet();
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        let reply = hub.subscribe(q.clone()).unwrap();
        assert_eq!(reply.epoch, 0);
        let mut client = reply.routes.clone();

        let bus = router.update_bus();
        let gone = client[0].vertices[2];
        let receipt = bus
            .publish(&Update::RemoveMembership {
                vertex: gone,
                category: fx.re,
            })
            .unwrap();
        assert_eq!(receipt.epoch, 1);

        let deltas = drain(&hub, reply.id);
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].epoch, 1);
        for d in &deltas {
            d.apply(&mut client);
        }
        // Bit-identical to a fresh canonical run of the updated world.
        let mut g2 = fx.graph.clone();
        g2.categories_mut().remove(gone, fx.re);
        let fresh = IndexedGraph::build_default(g2);
        assert_eq!(
            client,
            fresh.run_canonical(&q, Method::Sk, u64::MAX).witnesses
        );

        // Reinstate it: the replayed state returns to the original.
        bus.publish(&Update::InsertMembership {
            vertex: gone,
            category: fx.re,
        })
        .unwrap();
        for d in drain(&hub, reply.id) {
            d.apply(&mut client);
        }
        assert_eq!(client, reply.routes);
        assert_eq!(hub.stats().deltas_pushed, 2);
    }

    #[test]
    fn disjoint_category_traffic_is_skip_counted_with_zero_recompute() {
        let (router, hub, fx) = fleet();
        let reply = hub
            .subscribe(Query::new(fx.s, fx.t, vec![fx.ma, fx.re], 2))
            .unwrap();
        let bus = router.update_bus();
        // Cinema traffic: entirely outside the subscription's categories.
        let cinemas = fx.graph.categories().vertices_of(fx.ci).to_vec();
        let mut publishes = 0u64;
        for &v in cinemas.iter().take(3) {
            bus.publish(&Update::RemoveMembership {
                vertex: v,
                category: fx.ci,
            })
            .unwrap();
            bus.publish(&Update::InsertMembership {
                vertex: v,
                category: fx.ci,
            })
            .unwrap();
            publishes += 2;
        }
        let s = hub.stats();
        assert_eq!(s.skipped_category, publishes, "every publish skip-counted");
        assert_eq!(s.wakeups_total(), 0);
        assert_eq!(s.recomputes, 0, "zero engine work on disjoint traffic");
        assert!(drain(&hub, reply.id).is_empty(), "nothing queued");
    }

    #[test]
    fn queue_overflow_forces_typed_resync_with_fresh_state() {
        let fx = figure1();
        let ig = IndexedGraph::build_default(fx.graph.clone());
        let partition = Partitioner::new(PartitionConfig {
            num_shards: 2,
            ..Default::default()
        })
        .partition(&ig.graph);
        let router = Arc::new(ShardRouter::new(
            ShardSet::build(&ig, partition),
            ServiceConfig {
                workers: 1,
                ..Default::default()
            },
        ));
        let hub = Arc::new(SubscriptionHub::new(
            &router,
            HubConfig { queue_capacity: 1 },
        ));
        router.register_update_observer(Arc::clone(&hub) as _);
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        let reply = hub.subscribe(q.clone()).unwrap();

        // Two answer-changing publishes without a drain in between: the
        // 1-deep queue overflows on the second, discarding both deltas.
        let bus = router.update_bus();
        let gone = reply.routes[0].vertices[2];
        bus.publish(&Update::RemoveMembership {
            vertex: gone,
            category: fx.re,
        })
        .unwrap();
        bus.publish(&Update::InsertMembership {
            vertex: gone,
            category: fx.re,
        })
        .unwrap();
        match hub.poll(reply.id, Duration::ZERO) {
            PollResponse::Resync { routes, epoch, .. } => {
                // Remove-then-reinsert is a net no-op: the resync's full
                // top-k matches the initial payload, at the later epoch.
                assert_eq!(routes, reply.routes);
                assert_eq!(epoch, 2);
            }
            other => panic!("expected resync after overflow, got {other:?}"),
        }
        let s = hub.stats();
        assert_eq!(s.overflows, 1);
        assert_eq!(s.resyncs_served, 1);
        // The session is healthy again: the next poll is an empty drain.
        assert!(matches!(
            hub.poll(reply.id, Duration::ZERO),
            PollResponse::Deltas { deltas, .. } if deltas.is_empty()
        ));
    }

    #[test]
    fn unsubscribe_ends_the_session() {
        let (_router, hub, fx) = fleet();
        let reply = hub
            .subscribe(Query::new(fx.s, fx.t, vec![fx.ma], 1))
            .unwrap();
        assert_eq!(hub.stats().active, 1);
        assert!(hub.unsubscribe(reply.id));
        assert!(!hub.unsubscribe(reply.id));
        assert_eq!(hub.stats().active, 0);
        assert!(matches!(
            hub.poll(reply.id, Duration::ZERO),
            PollResponse::UnknownSession
        ));
    }
}
