//! The standing-query registry: every subscription with its last
//! delivered top-k, its delivery epoch, and the precomputed *relevance
//! signature* the invalidation filter intersects update footprints
//! against — plus the category→session inverted index that lets a
//! membership update enumerate only the sessions that mention its
//! category.

use std::collections::{HashMap, VecDeque};

use kosr_core::{Query, Witness};
use kosr_graph::CategoryId;

use crate::delta::Delta;

/// Opaque handle identifying one standing subscription.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// What an update's footprint is intersected against *before* touching
/// the engine: the categories the query mentions, the shards its answers
/// can start in, and the source's home region.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelevanceSignature {
    /// The query's category set, sorted and deduplicated — membership
    /// updates of any other category are provably irrelevant (they leave
    /// distances untouched and the query never tests them).
    pub categories: Vec<CategoryId>,
    /// Shards that can own the first stop of a currently relevant route.
    /// Seeded from fan-out planning at subscribe time and refreshed on
    /// every recompute, so it stays a superset of the owners of the
    /// delivered witnesses' first stops — the invariant the shard-skip
    /// fast path relies on.
    pub shards: Vec<usize>,
    /// The shard owning the query's source vertex. Recorded for
    /// observability only: region intersection is **not** a sound filter
    /// for edge updates, because the routing skeleton is global and route
    /// legs cross regions freely.
    pub source_region: usize,
}

impl RelevanceSignature {
    /// Assembles a signature from raw parts, normalising the category set.
    pub fn new(
        categories: &[CategoryId],
        mut shards: Vec<usize>,
        source_region: usize,
    ) -> RelevanceSignature {
        let mut categories = categories.to_vec();
        categories.sort_unstable();
        categories.dedup();
        shards.sort_unstable();
        shards.dedup();
        RelevanceSignature {
            categories,
            shards,
            source_region,
        }
    }

    /// Whether the query mentions `c` anywhere in its sequence.
    pub fn mentions(&self, c: CategoryId) -> bool {
        self.categories.binary_search(&c).is_ok()
    }

    /// Whether shard `j` can own the first stop of a relevant route.
    pub fn touches_shard(&self, j: usize) -> bool {
        self.shards.binary_search(&j).is_ok()
    }

    /// Replaces the first-stop shard set (post-recompute refresh).
    pub fn refresh_shards(&mut self, mut shards: Vec<usize>) {
        shards.sort_unstable();
        shards.dedup();
        self.shards = shards;
    }
}

/// One standing query and everything needed to push it deltas.
#[derive(Clone, Debug)]
pub struct Subscription {
    /// The session handle clients poll with.
    pub id: SessionId,
    /// The standing query, exactly as submitted.
    pub query: Query,
    /// The filter signature (see [`RelevanceSignature`]).
    pub signature: RelevanceSignature,
    /// The current top-k at [`Subscription::epoch`] — the baseline the
    /// next delta is diffed against. Kept current on every wake even when
    /// the client has not polled yet.
    pub delivered: Vec<Witness>,
    /// The publish epoch `delivered` reflects.
    pub epoch: u64,
    /// Deltas computed but not yet drained by a poll, oldest first.
    pub queue: VecDeque<Delta>,
    /// Set when the queue overflowed (or a recompute failed): queued
    /// deltas were discarded and the next poll must answer with a full
    /// resync instead.
    pub needs_resync: bool,
}

impl Subscription {
    /// The current k-th delivered cost, when a full `k` routes are held —
    /// the admission bar bound-based skips compare against. `None` means
    /// fewer than `k` routes exist, so any new feasible route changes the
    /// answer.
    pub fn kth_cost(&self) -> Option<kosr_graph::Weight> {
        (self.delivered.len() == self.query.k).then(|| {
            self.delivered
                .last()
                .map(|w| w.cost)
                .expect("k == len > 0 when a query is valid")
        })
    }
}

/// The subscription registry: sessions by id plus the category→session
/// inverted index the membership-update fast path walks.
#[derive(Default)]
pub struct SubscriptionTable {
    subs: HashMap<u64, Subscription>,
    by_category: HashMap<CategoryId, Vec<u64>>,
    next_id: u64,
}

impl SubscriptionTable {
    /// An empty table.
    pub fn new() -> SubscriptionTable {
        SubscriptionTable::default()
    }

    /// Registers a standing query with its initial answer; returns the
    /// minted session id.
    pub fn insert(
        &mut self,
        query: Query,
        signature: RelevanceSignature,
        delivered: Vec<Witness>,
        epoch: u64,
    ) -> SessionId {
        let id = SessionId(self.next_id);
        self.next_id += 1;
        for &c in &signature.categories {
            self.by_category.entry(c).or_default().push(id.0);
        }
        self.subs.insert(
            id.0,
            Subscription {
                id,
                query,
                signature,
                delivered,
                epoch,
                queue: VecDeque::new(),
                needs_resync: false,
            },
        );
        id
    }

    /// Drops a subscription, unposting it from the inverted index.
    pub fn remove(&mut self, id: SessionId) -> Option<Subscription> {
        let sub = self.subs.remove(&id.0)?;
        for c in &sub.signature.categories {
            if let Some(list) = self.by_category.get_mut(c) {
                list.retain(|&s| s != id.0);
                if list.is_empty() {
                    self.by_category.remove(c);
                }
            }
        }
        Some(sub)
    }

    /// Immutable access by session id.
    pub fn get(&self, id: SessionId) -> Option<&Subscription> {
        self.subs.get(&id.0)
    }

    /// Mutable access by session id.
    pub fn get_mut(&mut self, id: SessionId) -> Option<&mut Subscription> {
        self.subs.get_mut(&id.0)
    }

    /// Sessions whose query mentions category `c` — the only sessions a
    /// membership update of `c` can possibly affect.
    pub fn sessions_mentioning(&self, c: CategoryId) -> Vec<SessionId> {
        self.by_category
            .get(&c)
            .map(|ids| ids.iter().map(|&s| SessionId(s)).collect())
            .unwrap_or_default()
    }

    /// Every registered session id.
    pub fn sessions(&self) -> Vec<SessionId> {
        self.subs.keys().map(|&s| SessionId(s)).collect()
    }

    /// Number of standing subscriptions.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// `true` when no subscription is registered.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_graph::VertexId;

    fn query(cats: &[u32]) -> Query {
        Query::new(
            VertexId(0),
            VertexId(1),
            cats.iter().map(|&c| CategoryId(c)).collect(),
            2,
        )
    }

    fn signature(q: &Query) -> RelevanceSignature {
        RelevanceSignature::new(&q.categories, vec![0], 0)
    }

    #[test]
    fn signature_normalises_and_answers_membership() {
        let q = query(&[3, 1, 3, 2]);
        let sig = RelevanceSignature::new(&q.categories, vec![2, 0, 2], 1);
        assert_eq!(
            sig.categories,
            vec![CategoryId(1), CategoryId(2), CategoryId(3)]
        );
        assert_eq!(sig.shards, vec![0, 2]);
        assert!(sig.mentions(CategoryId(2)));
        assert!(!sig.mentions(CategoryId(0)));
        assert!(sig.touches_shard(2));
        assert!(!sig.touches_shard(1));
    }

    #[test]
    fn inverted_index_tracks_insert_and_remove() {
        let mut t = SubscriptionTable::new();
        let qa = query(&[1, 2]);
        let qb = query(&[2, 3]);
        let a = t.insert(qa.clone(), signature(&qa), vec![], 0);
        let b = t.insert(qb.clone(), signature(&qb), vec![], 0);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        assert_eq!(t.sessions_mentioning(CategoryId(1)), vec![a]);
        let mut both = t.sessions_mentioning(CategoryId(2));
        both.sort();
        assert_eq!(both, vec![a, b]);
        assert!(t.sessions_mentioning(CategoryId(9)).is_empty());

        assert!(t.remove(a).is_some());
        assert!(t.remove(a).is_none());
        assert!(t.sessions_mentioning(CategoryId(1)).is_empty());
        assert_eq!(t.sessions_mentioning(CategoryId(2)), vec![b]);
    }

    #[test]
    fn kth_cost_requires_a_full_k() {
        let q = query(&[1]);
        let mut t = SubscriptionTable::new();
        let id = t.insert(q.clone(), signature(&q), vec![], 0);
        assert_eq!(t.get(id).unwrap().kth_cost(), None);
        let w = |cost| Witness {
            vertices: vec![VertexId(0), VertexId(5), VertexId(1)],
            cost,
        };
        t.get_mut(id).unwrap().delivered = vec![w(4)];
        assert_eq!(t.get(id).unwrap().kth_cost(), None, "1 of k=2 held");
        t.get_mut(id).unwrap().delivered = vec![w(4), w(7)];
        assert_eq!(t.get(id).unwrap().kth_cost(), Some(7));
    }
}
