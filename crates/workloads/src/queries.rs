//! Seeded KOSR query generation (§V-A "Queries"): "for each KOSR query
//! `(s, t, C, k)`, we randomly select a source-destination pair, a category
//! sequence with size |C|, and an integer k. … In each experiment, 50
//! random query instances are constructed and the average query time is
//! reported."
//!
//! Source/destination pairs are resampled (boundedly) until the destination
//! is reachable, so every instance measures real route-finding work rather
//! than an immediate infeasibility exit.

use kosr_graph::{is_finite, CategoryId, Graph, VertexId};
use kosr_pathfinding::{BiDijkstra, Dijkstra, Dir};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One generated query instance (mirrors `kosr_core::Query` without the
/// dependency).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuerySpec {
    /// Source vertex.
    pub source: VertexId,
    /// Destination vertex.
    pub target: VertexId,
    /// Category sequence of the requested length.
    pub categories: Vec<CategoryId>,
    /// Number of routes requested.
    pub k: usize,
}

/// Generates `count` seeded query instances over `g`.
///
/// * `c_len` — the category-sequence length `|C|`; categories are sampled
///   without replacement from the graph's non-empty categories (with
///   replacement if fewer than `c_len` exist).
/// * `k` — the fixed `k` of every instance.
///
/// # Panics
/// Panics if the graph has no vertices or no non-empty categories.
pub fn gen_queries(g: &Graph, count: usize, c_len: usize, k: usize, seed: u64) -> Vec<QuerySpec> {
    let n = g.num_vertices();
    assert!(n >= 2, "need at least two vertices");
    let nonempty: Vec<CategoryId> = (0..g.categories().num_categories() as u32)
        .map(CategoryId)
        .filter(|&c| g.categories().category_size(c) > 0)
        .collect();
    assert!(!nonempty.is_empty(), "graph has no categorised vertices");

    let mut rng = StdRng::seed_from_u64(seed);
    let mut bidir = BiDijkstra::new(n);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        // Reachable (s, t) pair, with a bounded number of retries.
        let (mut s, mut t) = (VertexId(0), VertexId(0));
        let mut ok = false;
        for _ in 0..100 {
            s = VertexId(rng.gen_range(0..n as u32));
            t = VertexId(rng.gen_range(0..n as u32));
            if s != t && is_finite(bidir.distance(g, s, t)) {
                ok = true;
                break;
            }
        }
        assert!(ok, "could not sample a reachable source-destination pair");

        let categories = if nonempty.len() >= c_len {
            let mut pool = nonempty.clone();
            pool.shuffle(&mut rng);
            pool.truncate(c_len);
            pool
        } else {
            (0..c_len)
                .map(|_| nonempty[rng.gen_range(0..nonempty.len())])
                .collect()
        };
        out.push(QuerySpec {
            source: s,
            target: t,
            categories,
            k,
        });
    }
    out
}

/// `true` iff at least one feasible route exists for `spec` — used by tests
/// to cross-check algorithm outputs on generated workloads.
pub fn is_feasible(g: &Graph, spec: &QuerySpec) -> bool {
    // Forward reachability sweep through the category layers.
    let mut d = Dijkstra::new(g.num_vertices());
    let mut frontier: Vec<(VertexId, kosr_graph::Weight)> = vec![(spec.source, 0)];
    for &c in &spec.categories {
        d.multi_source(g, Dir::Forward, &frontier);
        frontier = g
            .categories()
            .vertices_of(c)
            .iter()
            .filter(|&&m| is_finite(d.distance(m)))
            .map(|&m| (m, d.distance(m)))
            .collect();
        if frontier.is_empty() {
            return false;
        }
    }
    d.multi_source(g, Dir::Forward, &frontier);
    is_finite(d.distance(spec.target))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::categories::assign_uniform;
    use crate::graphs::{road_grid_directed, social_graph};

    fn setup() -> Graph {
        let mut g = road_grid_directed(12, 12, 5);
        assign_uniform(&mut g, 8, 20, 9);
        g
    }

    #[test]
    fn generates_requested_shape() {
        let g = setup();
        let qs = gen_queries(&g, 10, 4, 7, 42);
        assert_eq!(qs.len(), 10);
        for q in &qs {
            assert_ne!(q.source, q.target);
            assert_eq!(q.categories.len(), 4);
            assert_eq!(q.k, 7);
            // No-replacement sampling: distinct categories.
            let mut c = q.categories.clone();
            c.sort_unstable();
            c.dedup();
            assert_eq!(c.len(), 4);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = setup();
        assert_eq!(gen_queries(&g, 5, 3, 10, 1), gen_queries(&g, 5, 3, 10, 1));
        assert_ne!(gen_queries(&g, 5, 3, 10, 1), gen_queries(&g, 5, 3, 10, 2));
    }

    #[test]
    fn grid_queries_are_feasible() {
        let g = setup();
        for q in gen_queries(&g, 10, 3, 5, 3) {
            assert!(is_feasible(&g, &q));
        }
    }

    #[test]
    fn repeats_allowed_when_categories_scarce() {
        let mut g = social_graph(200, 5, 2);
        assign_uniform(&mut g, 2, 30, 3);
        let qs = gen_queries(&g, 5, 4, 3, 8);
        for q in &qs {
            assert_eq!(q.categories.len(), 4, "sampled with replacement");
        }
    }
}
