//! Mixed-traffic generation for the serving layer: a stream of
//! heterogeneous KOSR queries shaped like production traffic rather than
//! the paper's homogeneous 50-instance measurement batches.
//!
//! Two properties matter for exercising a query-serving subsystem and are
//! absent from [`crate::gen_queries`]:
//!
//! * **shape diversity** — interleaved cheap (`k = 1`, short `C`) and
//!   expensive (large `k`, long `C`) queries, so planners see different
//!   shapes and batch executors see skewed per-query costs;
//! * **repetition skew** — a small hot set of queries recurs throughout
//!   the stream (popular source/destination/category combinations), so
//!   result caches have real hit rates to measure.

use kosr_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::queries::{gen_queries, QuerySpec};

/// Parameters of a mixed traffic stream.
#[derive(Clone, Debug)]
pub struct TrafficMix {
    /// Number of *distinct* query templates drawn per (|C|, k) shape class.
    pub uniques_per_class: usize,
    /// The (|C|, k) shape classes interleaved in the stream.
    pub classes: Vec<(usize, usize)>,
    /// Size of the hot set: the most popular `hot_set` templates absorb
    /// `hot_fraction` of all traffic.
    pub hot_set: usize,
    /// Fraction of the stream drawn from the hot set (`0.0 ..= 1.0`).
    pub hot_fraction: f64,
}

impl Default for TrafficMix {
    fn default() -> TrafficMix {
        TrafficMix {
            uniques_per_class: 12,
            // From quick single-stop lookups to deep multi-stop planning.
            classes: vec![(1, 1), (2, 3), (3, 5), (4, 10)],
            hot_set: 8,
            hot_fraction: 0.5,
        }
    }
}

/// Generates a `count`-query mixed stream over `g`.
///
/// The stream interleaves the shape classes of `mix` and revisits a hot
/// set of templates with probability `hot_fraction` per slot, so roughly
/// `count · hot_fraction` queries are exact repeats — a serving layer with
/// a result cache of at least `hot_set` entries should therefore converge
/// to a hit rate near `hot_fraction`.
///
/// Deterministic per `(g, mix, seed)`.
///
/// # Panics
/// Panics if `mix.classes` is empty, a class is infeasible for `g`
/// (see [`gen_queries`]), or `g` has no categorised vertices.
pub fn gen_mixed_traffic(g: &Graph, count: usize, mix: &TrafficMix, seed: u64) -> Vec<QuerySpec> {
    assert!(!mix.classes.is_empty(), "need at least one shape class");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7A11_C0DE);

    // Distinct templates per class; shuffling before the hot set is carved
    // off makes popularity independent of shape, so cheap *and* expensive
    // templates recur (a hot set of only trivial queries would flatter any
    // cache measurement).
    let mut pool: Vec<QuerySpec> = Vec::new();
    for (i, &(c_len, k)) in mix.classes.iter().enumerate() {
        pool.extend(gen_queries(
            g,
            mix.uniques_per_class.max(1),
            c_len,
            k,
            seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9),
        ));
    }
    use rand::seq::SliceRandom;
    pool.shuffle(&mut rng);
    let hot = mix.hot_set.clamp(1, pool.len());

    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let from_hot = rng.gen_bool(mix.hot_fraction.clamp(0.0, 1.0));
        let idx = if from_hot {
            rng.gen_range(0..hot)
        } else {
            rng.gen_range(0..pool.len())
        };
        out.push(pool[idx].clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::categories::assign_uniform;
    use crate::graphs::road_grid_directed;
    use kosr_graph::FxHashMap;

    fn setup() -> Graph {
        let mut g = road_grid_directed(12, 12, 5);
        assign_uniform(&mut g, 8, 20, 9);
        g
    }

    #[test]
    fn stream_has_requested_length_and_shapes() {
        let g = setup();
        let mix = TrafficMix::default();
        let stream = gen_mixed_traffic(&g, 500, &mix, 7);
        assert_eq!(stream.len(), 500);
        for q in &stream {
            assert!(mix
                .classes
                .iter()
                .any(|&(c, k)| q.categories.len() == c && q.k == k));
        }
        // Every shape class actually appears.
        for &(c, k) in &mix.classes {
            assert!(
                stream.iter().any(|q| q.categories.len() == c && q.k == k),
                "class ({c}, {k}) missing"
            );
        }
    }

    #[test]
    fn hot_set_dominates_at_high_hot_fraction() {
        let g = setup();
        let mix = TrafficMix {
            hot_fraction: 0.9,
            hot_set: 4,
            ..Default::default()
        };
        let stream = gen_mixed_traffic(&g, 1000, &mix, 11);
        let mut counts: FxHashMap<String, usize> = Default::default();
        for q in &stream {
            *counts.entry(format!("{q:?}")).or_default() += 1;
        }
        let mut by_freq: Vec<usize> = counts.values().copied().collect();
        by_freq.sort_unstable_by(|a, b| b.cmp(a));
        let top4: usize = by_freq.iter().take(4).sum();
        assert!(
            top4 >= 800,
            "hot 4 templates should absorb ≳90% of 1000, got {top4}"
        );
        // Distinct queries exist outside the hot set too.
        assert!(counts.len() > 4);
    }

    #[test]
    fn repetition_rate_tracks_hot_fraction() {
        let g = setup();
        for &f in &[0.0, 0.5] {
            let mix = TrafficMix {
                hot_fraction: f,
                ..Default::default()
            };
            let stream = gen_mixed_traffic(&g, 800, &mix, 3);
            let mut seen: FxHashMap<String, ()> = Default::default();
            let mut repeats = 0usize;
            for q in &stream {
                if seen.insert(format!("{q:?}"), ()).is_some() {
                    repeats += 1;
                }
            }
            // With 48 uniques over 800 slots, almost everything repeats
            // eventually; the *hot* fraction just concentrates them. Check
            // the cheap invariant: a hotter mix never repeats less.
            assert!(repeats > 0);
        }
    }

    #[test]
    fn hot_set_spans_shape_classes() {
        let g = setup();
        let mix = TrafficMix {
            hot_fraction: 1.0,
            ..Default::default()
        };
        // All traffic comes from the hot set; it must not be stuck in a
        // single (|C|, k) class.
        let stream = gen_mixed_traffic(&g, 400, &mix, 5);
        let shapes: std::collections::HashSet<(usize, usize)> =
            stream.iter().map(|q| (q.categories.len(), q.k)).collect();
        assert!(shapes.len() > 1, "hot set stuck in one class: {shapes:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = setup();
        let mix = TrafficMix::default();
        assert_eq!(
            gen_mixed_traffic(&g, 100, &mix, 1),
            gen_mixed_traffic(&g, 100, &mix, 1)
        );
        assert_ne!(
            gen_mixed_traffic(&g, 100, &mix, 1),
            gen_mixed_traffic(&g, 100, &mix, 2)
        );
    }
}
