//! Mixed-traffic generation for the serving layer: a stream of
//! heterogeneous KOSR queries shaped like production traffic rather than
//! the paper's homogeneous 50-instance measurement batches.
//!
//! Two properties matter for exercising a query-serving subsystem and are
//! absent from [`crate::gen_queries`]:
//!
//! * **shape diversity** — interleaved cheap (`k = 1`, short `C`) and
//!   expensive (large `k`, long `C`) queries, so planners see different
//!   shapes and batch executors see skewed per-query costs;
//! * **repetition skew** — a small hot set of queries recurs throughout
//!   the stream (popular source/destination/category combinations), so
//!   result caches have real hit rates to measure.

use kosr_graph::{is_finite, CategoryId, Graph, Partition, VertexId};
use kosr_pathfinding::BiDijkstra;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::queries::{gen_queries, QuerySpec};

/// Parameters of a mixed traffic stream.
#[derive(Clone, Debug)]
pub struct TrafficMix {
    /// Number of *distinct* query templates drawn per (|C|, k) shape class.
    pub uniques_per_class: usize,
    /// The (|C|, k) shape classes interleaved in the stream.
    pub classes: Vec<(usize, usize)>,
    /// Size of the hot set: the most popular `hot_set` templates absorb
    /// `hot_fraction` of all traffic.
    pub hot_set: usize,
    /// Fraction of the stream drawn from the hot set (`0.0 ..= 1.0`).
    pub hot_fraction: f64,
}

impl Default for TrafficMix {
    fn default() -> TrafficMix {
        TrafficMix {
            uniques_per_class: 12,
            // From quick single-stop lookups to deep multi-stop planning.
            classes: vec![(1, 1), (2, 3), (3, 5), (4, 10)],
            hot_set: 8,
            hot_fraction: 0.5,
        }
    }
}

/// Generates a `count`-query mixed stream over `g`.
///
/// The stream interleaves the shape classes of `mix` and revisits a hot
/// set of templates with probability `hot_fraction` per slot, so roughly
/// `count · hot_fraction` queries are exact repeats — a serving layer with
/// a result cache of at least `hot_set` entries should therefore converge
/// to a hit rate near `hot_fraction`.
///
/// Deterministic per `(g, mix, seed)`.
///
/// # Panics
/// Panics if `mix.classes` is empty, a class is infeasible for `g`
/// (see [`gen_queries`]), or `g` has no categorised vertices.
pub fn gen_mixed_traffic(g: &Graph, count: usize, mix: &TrafficMix, seed: u64) -> Vec<QuerySpec> {
    assert!(!mix.classes.is_empty(), "need at least one shape class");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7A11_C0DE);

    // Distinct templates per class; shuffling before the hot set is carved
    // off makes popularity independent of shape, so cheap *and* expensive
    // templates recur (a hot set of only trivial queries would flatter any
    // cache measurement).
    let mut pool: Vec<QuerySpec> = Vec::new();
    for (i, &(c_len, k)) in mix.classes.iter().enumerate() {
        pool.extend(gen_queries(
            g,
            mix.uniques_per_class.max(1),
            c_len,
            k,
            seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9),
        ));
    }
    use rand::seq::SliceRandom;
    pool.shuffle(&mut rng);
    let hot = mix.hot_set.clamp(1, pool.len());

    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let from_hot = rng.gen_bool(mix.hot_fraction.clamp(0.0, 1.0));
        let idx = if from_hot {
            rng.gen_range(0..hot)
        } else {
            rng.gen_range(0..pool.len())
        };
        out.push(pool[idx].clone());
    }
    out
}

/// Parameters of a multi-region traffic stream (the shard-serving
/// workload: most load concentrates on a few hot regions, most trips stay
/// local).
#[derive(Clone, Debug)]
pub struct RegionTraffic {
    /// The (|C|, k) shape classes interleaved in the stream.
    pub classes: Vec<(usize, usize)>,
    /// Distinct query templates drawn per (region-weighted) shape class.
    pub uniques_per_class: usize,
    /// Size of the hot template set (absorbs `hot_fraction` of traffic).
    pub hot_set: usize,
    /// Fraction of the stream drawn from the hot set.
    pub hot_fraction: f64,
    /// Zipf exponent of region popularity: sources land in region of
    /// popularity rank `r` with weight `(r + 1)^-region_skew`. `0.0` is
    /// uniform; `1.0` makes the top region dominate.
    pub region_skew: f64,
    /// Probability that a query's destination lies in the source's region
    /// (trip locality).
    pub locality: f64,
}

impl Default for RegionTraffic {
    fn default() -> RegionTraffic {
        RegionTraffic {
            classes: vec![(1, 1), (2, 3), (3, 5), (4, 10)],
            uniques_per_class: 12,
            hot_set: 8,
            hot_fraction: 0.5,
            region_skew: 1.0,
            locality: 0.7,
        }
    }
}

/// Generates a `count`-query multi-region stream over `g`: sources are
/// drawn from `partition`'s regions with zipf-skewed region popularity
/// (which region is hot is seeded), destinations stay within the source
/// region with probability `mix.locality`, and a hot template set recurs
/// as in [`gen_mixed_traffic`]. This is the traffic shape a sharded
/// deployment sees: skewed per-shard load with mostly-local trips.
///
/// Deterministic per `(g, partition, mix, seed)`.
///
/// # Panics
/// Panics if `mix.classes` is empty, the partition does not cover `g`,
/// or `g` has no categorised vertices.
pub fn gen_region_traffic(
    g: &Graph,
    partition: &Partition,
    count: usize,
    mix: &RegionTraffic,
    seed: u64,
) -> Vec<QuerySpec> {
    assert!(!mix.classes.is_empty(), "need at least one shape class");
    assert_eq!(
        partition.num_vertices(),
        g.num_vertices(),
        "partition must cover the graph"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EC7_0A11);

    let regions: Vec<Vec<VertexId>> = (0..partition.num_shards())
        .map(|s| partition.vertices_of(s))
        .collect();
    // Seeded popularity ranking over the non-empty regions.
    let mut ranked: Vec<usize> = (0..regions.len())
        .filter(|&s| !regions[s].is_empty())
        .collect();
    assert!(!ranked.is_empty(), "partition has no populated region");
    ranked.shuffle(&mut rng);
    let weights: Vec<f64> = (0..ranked.len())
        .map(|r| ((r + 1) as f64).powf(-mix.region_skew.max(0.0)))
        .collect();
    let total_weight: f64 = weights.iter().sum();

    let nonempty: Vec<CategoryId> = (0..g.categories().num_categories() as u32)
        .map(CategoryId)
        .filter(|&c| g.categories().category_size(c) > 0)
        .collect();
    assert!(!nonempty.is_empty(), "graph has no categorised vertices");

    let pick_region = |rng: &mut StdRng| -> usize {
        let mut x = rng.gen_range(0.0..total_weight);
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return ranked[i];
            }
            x -= w;
        }
        ranked[ranked.len() - 1]
    };

    let mut bidir = BiDijkstra::new(g.num_vertices());
    let mut pool: Vec<QuerySpec> = Vec::new();
    for &(c_len, k) in &mix.classes {
        for _ in 0..mix.uniques_per_class.max(1) {
            // A reachable (s, t) pair honoring region popularity+locality,
            // with bounded resampling.
            let (mut s, mut t) = (VertexId(0), VertexId(0));
            let mut ok = false;
            for _ in 0..200 {
                let home = &regions[pick_region(&mut rng)];
                s = home[rng.gen_range(0..home.len())];
                t = if rng.gen_bool(mix.locality.clamp(0.0, 1.0)) {
                    home[rng.gen_range(0..home.len())]
                } else {
                    VertexId(rng.gen_range(0..g.num_vertices() as u32))
                };
                if s != t && is_finite(bidir.distance(g, s, t)) {
                    ok = true;
                    break;
                }
            }
            assert!(ok, "could not sample a reachable region-local pair");
            let categories = if nonempty.len() >= c_len {
                let mut cats = nonempty.clone();
                cats.shuffle(&mut rng);
                cats.truncate(c_len);
                cats
            } else {
                (0..c_len)
                    .map(|_| nonempty[rng.gen_range(0..nonempty.len())])
                    .collect()
            };
            pool.push(QuerySpec {
                source: s,
                target: t,
                categories,
                k,
            });
        }
    }
    pool.shuffle(&mut rng);
    let hot = mix.hot_set.clamp(1, pool.len());

    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let idx = if rng.gen_bool(mix.hot_fraction.clamp(0.0, 1.0)) {
            rng.gen_range(0..hot)
        } else {
            rng.gen_range(0..pool.len())
        };
        out.push(pool[idx].clone());
    }
    out
}

/// One membership change of a §IV-C update stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MembershipFlip {
    /// The vertex whose membership changes.
    pub vertex: VertexId,
    /// The category gaining or losing the vertex.
    pub category: CategoryId,
    /// `true` to insert the membership, `false` to remove it.
    pub insert: bool,
}

/// A seeded stream of membership updates against `g`'s category layout:
/// random vertex/category pairs where existing memberships mostly get
/// **removed** (with some duplicate-insert no-ops) and absent ones mostly
/// get **inserted** (with some no-op removals) — so a stream of any
/// length exercises real removals, real inserts *and* both no-op shapes.
/// Deterministic per seed — the update-driven equivalence suites replay
/// the same stream against both deployments under test.
pub fn gen_membership_flips(g: &Graph, count: usize, seed: u64) -> Vec<MembershipFlip> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF11B);
    let nc = g.categories().num_categories() as u32;
    assert!(nc > 0, "graph has no categories to flip");
    (0..count)
        .map(|_| {
            let vertex = VertexId(rng.gen_range(0..g.num_vertices() as u32));
            let category = CategoryId(rng.gen_range(0..nc));
            let insert = if g.categories().has_category(vertex, category) {
                rng.gen_bool(0.35) // mostly real removals, some dup inserts
            } else {
                rng.gen_bool(0.6) // mostly real inserts, some no-op removals
            };
            MembershipFlip {
                vertex,
                category,
                insert,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::categories::assign_uniform;
    use crate::graphs::road_grid_directed;
    use kosr_graph::FxHashMap;

    fn setup() -> Graph {
        let mut g = road_grid_directed(12, 12, 5);
        assign_uniform(&mut g, 8, 20, 9);
        g
    }

    #[test]
    fn stream_has_requested_length_and_shapes() {
        let g = setup();
        let mix = TrafficMix::default();
        let stream = gen_mixed_traffic(&g, 500, &mix, 7);
        assert_eq!(stream.len(), 500);
        for q in &stream {
            assert!(mix
                .classes
                .iter()
                .any(|&(c, k)| q.categories.len() == c && q.k == k));
        }
        // Every shape class actually appears.
        for &(c, k) in &mix.classes {
            assert!(
                stream.iter().any(|q| q.categories.len() == c && q.k == k),
                "class ({c}, {k}) missing"
            );
        }
    }

    #[test]
    fn hot_set_dominates_at_high_hot_fraction() {
        let g = setup();
        let mix = TrafficMix {
            hot_fraction: 0.9,
            hot_set: 4,
            ..Default::default()
        };
        let stream = gen_mixed_traffic(&g, 1000, &mix, 11);
        let mut counts: FxHashMap<String, usize> = Default::default();
        for q in &stream {
            *counts.entry(format!("{q:?}")).or_default() += 1;
        }
        let mut by_freq: Vec<usize> = counts.values().copied().collect();
        by_freq.sort_unstable_by(|a, b| b.cmp(a));
        let top4: usize = by_freq.iter().take(4).sum();
        assert!(
            top4 >= 800,
            "hot 4 templates should absorb ≳90% of 1000, got {top4}"
        );
        // Distinct queries exist outside the hot set too.
        assert!(counts.len() > 4);
    }

    #[test]
    fn repetition_rate_tracks_hot_fraction() {
        let g = setup();
        for &f in &[0.0, 0.5] {
            let mix = TrafficMix {
                hot_fraction: f,
                ..Default::default()
            };
            let stream = gen_mixed_traffic(&g, 800, &mix, 3);
            let mut seen: FxHashMap<String, ()> = Default::default();
            let mut repeats = 0usize;
            for q in &stream {
                if seen.insert(format!("{q:?}"), ()).is_some() {
                    repeats += 1;
                }
            }
            // With 48 uniques over 800 slots, almost everything repeats
            // eventually; the *hot* fraction just concentrates them. Check
            // the cheap invariant: a hotter mix never repeats less.
            assert!(repeats > 0);
        }
    }

    #[test]
    fn hot_set_spans_shape_classes() {
        let g = setup();
        let mix = TrafficMix {
            hot_fraction: 1.0,
            ..Default::default()
        };
        // All traffic comes from the hot set; it must not be stuck in a
        // single (|C|, k) class.
        let stream = gen_mixed_traffic(&g, 400, &mix, 5);
        let shapes: std::collections::HashSet<(usize, usize)> =
            stream.iter().map(|q| (q.categories.len(), q.k)).collect();
        assert!(shapes.len() > 1, "hot set stuck in one class: {shapes:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = setup();
        let mix = TrafficMix::default();
        assert_eq!(
            gen_mixed_traffic(&g, 100, &mix, 1),
            gen_mixed_traffic(&g, 100, &mix, 1)
        );
        assert_ne!(
            gen_mixed_traffic(&g, 100, &mix, 1),
            gen_mixed_traffic(&g, 100, &mix, 2)
        );
    }

    fn partition_of(g: &Graph, shards: usize) -> Partition {
        kosr_graph::Partitioner::new(kosr_graph::PartitionConfig {
            num_shards: shards,
            ..Default::default()
        })
        .partition(g)
    }

    #[test]
    fn region_traffic_shapes_and_determinism() {
        let g = setup();
        let p = partition_of(&g, 4);
        let mix = RegionTraffic::default();
        let stream = gen_region_traffic(&g, &p, 300, &mix, 5);
        assert_eq!(stream.len(), 300);
        for q in &stream {
            assert!(mix
                .classes
                .iter()
                .any(|&(c, k)| q.categories.len() == c && q.k == k));
            assert_ne!(q.source, q.target);
        }
        assert_eq!(
            gen_region_traffic(&g, &p, 100, &mix, 9),
            gen_region_traffic(&g, &p, 100, &mix, 9)
        );
        assert_ne!(
            gen_region_traffic(&g, &p, 100, &mix, 9),
            gen_region_traffic(&g, &p, 100, &mix, 10)
        );
    }

    #[test]
    fn region_skew_concentrates_sources() {
        let g = setup();
        let p = partition_of(&g, 4);
        let skewed = gen_region_traffic(
            &g,
            &p,
            600,
            &RegionTraffic {
                region_skew: 2.5,
                hot_fraction: 0.0,
                uniques_per_class: 30,
                ..Default::default()
            },
            11,
        );
        let mut per_region = vec![0usize; p.num_shards()];
        for q in &skewed {
            per_region[p.owner(q.source)] += 1;
        }
        per_region.sort_unstable_by(|a, b| b.cmp(a));
        assert!(
            per_region[0] > 600 / 4,
            "hot region should exceed the uniform share: {per_region:?}"
        );
    }

    #[test]
    fn high_locality_keeps_trips_in_region() {
        let g = setup();
        let p = partition_of(&g, 4);
        let local = gen_region_traffic(
            &g,
            &p,
            400,
            &RegionTraffic {
                locality: 1.0,
                hot_fraction: 0.0,
                uniques_per_class: 25,
                ..Default::default()
            },
            13,
        );
        let in_region = local
            .iter()
            .filter(|q| p.owner(q.source) == p.owner(q.target))
            .count();
        // All pairs were *drawn* in-region; resampling for reachability can
        // keep a few cross-region draws, but the mass stays local.
        assert!(in_region * 10 >= 400 * 9, "{in_region}/400 local");
    }

    #[test]
    fn membership_flips_are_deterministic_and_in_range() {
        let g = setup();
        let a = gen_membership_flips(&g, 50, 42);
        let b = gen_membership_flips(&g, 50, 42);
        assert_eq!(a, b, "same seed, same stream");
        assert_ne!(a, gen_membership_flips(&g, 50, 43));
        let nc = g.categories().num_categories() as u32;
        for f in &a {
            assert!(f.vertex.index() < g.num_vertices());
            assert!(f.category.0 < nc);
        }
        assert!(a.iter().any(|f| f.insert) && a.iter().any(|f| !f.insert));
        // Real removals (of initially-present memberships) must occur —
        // the fault suites rely on the stream exercising the remove path.
        assert!(
            a.iter()
                .any(|f| !f.insert && g.categories().has_category(f.vertex, f.category)),
            "no effective removal in 50 flips"
        );
        // And real inserts of absent memberships.
        assert!(a
            .iter()
            .any(|f| f.insert && !g.categories().has_category(f.vertex, f.category)));
    }
}
