//! # kosr-workloads
//!
//! Seeded synthetic workloads mirroring the paper's experimental setup
//! (§V-A): graph generators with the shape of Table VII's datasets,
//! category assigners (uniform and zipfian), query-instance generation,
//! the five named scenarios plus the Table VIII parameter grid, and
//! [`traffic`] — skewed mixed-shape query streams for the serving layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod categories;
pub mod graphs;
pub mod http;
pub mod queries;
pub mod scenarios;
pub mod traffic;

pub use categories::{assign_clustered, assign_uniform, assign_zipf, category_ids, zipf_sizes};
pub use graphs::{road_grid_directed, road_grid_undirected, social_graph};
pub use http::{gen_http_traffic, route_body, HttpCall, HttpCallKind, HttpTrafficMix};
pub use queries::{gen_queries, is_feasible, QuerySpec};
pub use scenarios::{ParameterGrid, Scenario, ScenarioName};
pub use traffic::{
    gen_membership_flips, gen_mixed_traffic, gen_region_traffic, MembershipFlip, RegionTraffic,
    TrafficMix,
};
