//! The five evaluation scenarios — laptop-scale analogues of the paper's
//! Table VII datasets, preserving each dataset's *shape*:
//!
//! | scenario | paper dataset | shape preserved |
//! |---|---|---|
//! | `cal`   | California road network + real POIs | undirected distance weights, many (63) modest categories |
//! | `nyc`   | New York City roads + OSM POIs | undirected, larger, many (135) small categories |
//! | `col`   | Colorado roads | directed asymmetric travel times, uniform synthetic categories |
//! | `fla`   | Florida roads (the paper's main sweep graph) | directed, largest road graph, uniform synthetic categories |
//! | `gplus` | Google+ social graph | dense unit-weight graph of tiny diameter |
//!
//! Sizes are scaled down ~50× so the full reproduction runs in minutes;
//! every generator parameter lives here so the scale can be turned back up.

use kosr_graph::Graph;

use crate::categories::{assign_uniform, assign_zipf};
use crate::graphs::{road_grid_directed, road_grid_undirected, social_graph};

/// Which scenario to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScenarioName {
    /// California-like: undirected roads, 63 real-ish categories.
    Cal,
    /// New-York-City-like: undirected roads, 135 POI categories.
    Nyc,
    /// Colorado-like: directed travel-time roads, uniform categories.
    Col,
    /// Florida-like: directed travel-time roads (the main sweep graph).
    Fla,
    /// Google+-like: dense unit-weight social graph.
    Gplus,
}

impl ScenarioName {
    /// All five scenarios in the paper's presentation order.
    pub const ALL: [ScenarioName; 5] = [
        ScenarioName::Cal,
        ScenarioName::Nyc,
        ScenarioName::Col,
        ScenarioName::Fla,
        ScenarioName::Gplus,
    ];

    /// Display name matching the paper's figures.
    pub fn as_str(&self) -> &'static str {
        match self {
            ScenarioName::Cal => "CAL",
            ScenarioName::Nyc => "NYC",
            ScenarioName::Col => "COL",
            ScenarioName::Fla => "FLA",
            ScenarioName::Gplus => "G+",
        }
    }
}

/// A fully parameterised scenario; [`Scenario::build`] yields the graph.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Which dataset this mimics.
    pub name: ScenarioName,
    /// Scaling knob: 1.0 = the default laptop scale below.
    pub scale: f64,
    /// Override for the per-category size of the uniform scenarios
    /// (`|Ci|`, the Figure 3(h) sweep). `None` = scenario default.
    pub category_size: Option<usize>,
    /// RNG seed for both the graph and the categories.
    pub seed: u64,
}

impl Scenario {
    /// The scenario at default scale and seed.
    pub fn new(name: ScenarioName) -> Scenario {
        Scenario {
            name,
            scale: 1.0,
            category_size: None,
            seed: 0x5eed_0000 + name as u64,
        }
    }

    /// Overrides the uniform per-category size `|Ci|`.
    pub fn with_category_size(mut self, size: usize) -> Scenario {
        self.category_size = Some(size);
        self
    }

    /// Overrides the scale factor.
    pub fn with_scale(mut self, scale: f64) -> Scenario {
        self.scale = scale;
        self
    }

    fn dim(&self, base: u32) -> u32 {
        ((base as f64) * self.scale.sqrt()).round().max(4.0) as u32
    }

    /// Default `|Ci|` for the uniform scenarios (the paper's 10,000 scaled).
    pub fn default_category_size(&self) -> usize {
        let base = match self.name {
            ScenarioName::Col => 150,
            ScenarioName::Fla => 200,
            ScenarioName::Gplus => 120,
            _ => 100,
        };
        ((base as f64) * self.scale).round().max(4.0) as usize
    }

    /// Number of categories carried by the scenario.
    pub fn num_categories(&self) -> usize {
        match self.name {
            ScenarioName::Cal => 63,
            ScenarioName::Nyc => 135,
            _ => 20,
        }
    }

    /// Builds the graph with categories assigned.
    pub fn build(&self) -> Graph {
        let seed = self.seed;
        match self.name {
            ScenarioName::Cal => {
                // ~4.2k vertices; 63 moderately skewed categories covering
                // ~60% of the vertices (CAL: 47k of 68k categorised).
                let mut g = road_grid_undirected(self.dim(64), self.dim(66), seed);
                let memberships = (g.num_vertices() as f64 * 0.6) as usize;
                assign_zipf(&mut g, 63, memberships, 1.6, seed ^ 0xCA7);
                g
            }
            ScenarioName::Nyc => {
                // ~7.4k vertices; 135 small POI categories (~30% coverage).
                let mut g = road_grid_undirected(self.dim(85), self.dim(87), seed);
                let memberships = (g.num_vertices() as f64 * 0.3) as usize;
                assign_zipf(&mut g, 135, memberships, 1.8, seed ^ 0x24C);
                g
            }
            ScenarioName::Col => {
                let mut g = road_grid_directed(self.dim(77), self.dim(78), seed);
                let size = self
                    .category_size
                    .unwrap_or_else(|| self.default_category_size());
                assign_uniform(&mut g, self.num_categories(), size, seed ^ 0xC01);
                g
            }
            ScenarioName::Fla => {
                let mut g = road_grid_directed(self.dim(95), self.dim(97), seed);
                let size = self
                    .category_size
                    .unwrap_or_else(|| self.default_category_size());
                assign_uniform(&mut g, self.num_categories(), size, seed ^ 0xF1A);
                g
            }
            ScenarioName::Gplus => {
                // ~2.2k vertices with ~25 attachments: dense, diameter ≈ 4.
                let n = ((2200.0 * self.scale) as u32).max(50);
                let mut g = social_graph(n, 25, seed);
                let size = self
                    .category_size
                    .unwrap_or_else(|| self.default_category_size())
                    .min(g.num_vertices());
                assign_uniform(&mut g, self.num_categories(), size, seed ^ 0x901);
                g
            }
        }
    }
}

/// The paper's Table VIII parameter grid, scaled: sweep values with the
/// defaults in **bold** marked by `default`.
#[derive(Clone, Copy, Debug)]
pub struct ParameterGrid {
    /// `|Ci|` sweep (Figure 3(h)); paper: 5k, **10k**, 15k, 20k.
    pub category_sizes: [usize; 4],
    /// `|C|` sweep (Figures 3(f,g)); paper: 2, 4, **6**, 8, 10.
    pub c_lens: [usize; 5],
    /// `k` sweep (Figures 3(d,e)); paper: 10, 20, **30**, 40, 50.
    pub ks: [usize; 5],
    /// Default `|C|`.
    pub default_c_len: usize,
    /// Default `k`.
    pub default_k: usize,
    /// Query instances per measurement point (the paper uses 50).
    pub instances: usize,
}

impl Default for ParameterGrid {
    fn default() -> Self {
        ParameterGrid {
            category_sizes: [100, 200, 300, 400],
            c_lens: [2, 4, 6, 8, 10],
            ks: [10, 20, 30, 40, 50],
            default_c_len: 6,
            default_k: 30,
            instances: 50,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_build() {
        for name in ScenarioName::ALL {
            let s = Scenario::new(name).with_scale(0.05);
            let g = s.build();
            assert!(g.num_vertices() > 0, "{}", name.as_str());
            assert!(g.num_edges() > 0);
            assert_eq!(g.categories().num_categories(), s.num_categories());
            assert!(g.categories().num_memberships() > 0);
        }
    }

    #[test]
    fn category_size_override() {
        let s = Scenario::new(ScenarioName::Fla)
            .with_scale(0.05)
            .with_category_size(7);
        let g = s.build();
        for c in 0..20u32 {
            assert_eq!(g.categories().category_size(kosr_graph::CategoryId(c)), 7);
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let a = Scenario::new(ScenarioName::Col).with_scale(0.05).build();
        let b = Scenario::new(ScenarioName::Col).with_scale(0.05).build();
        assert_eq!(a.total_weight(), b.total_weight());
        assert_eq!(
            a.categories().num_memberships(),
            b.categories().num_memberships()
        );
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(ScenarioName::Gplus.as_str(), "G+");
        assert_eq!(ScenarioName::ALL.len(), 5);
    }
}
