//! Category assignment following §V-A of the paper:
//!
//! * **uniform** — "we fix the number of vertices in each category with
//!   parameter `|Ci|`, and then uniformly assign a category to vertices"
//!   (the default for COL/FLA/G+);
//! * **zipfian** — skewed category sizes controlled by a factor `f ≥ 1`,
//!   where *greater `f` means less skew* (the FLA experiment of Figure 6).
//!
//! The paper does not spell out its zipf parameterisation; here sizes
//! follow `size(rank) ∝ rank^(-2.4 / f)`, which preserves the property the
//! experiment depends on (at `f = 1.2` the largest category outweighs the
//! smallest by orders of magnitude; by `f = 1.8` the sizes flatten).

use kosr_graph::{CategoryId, Graph, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Assigns `num_categories` categories of exactly `category_size` uniformly
/// random distinct vertices each (a vertex may serve several categories).
///
/// # Panics
/// Panics if `category_size` exceeds the vertex count.
pub fn assign_uniform(g: &mut Graph, num_categories: usize, category_size: usize, seed: u64) {
    let n = g.num_vertices();
    assert!(category_size <= n, "category larger than the graph");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut table = kosr_graph::CategoryTable::new(n);
    let mut pool: Vec<u32> = (0..n as u32).collect();
    for ci in 0..num_categories {
        let c = table.add_category(format!("C{ci}"));
        pool.shuffle(&mut rng);
        for &v in &pool[..category_size] {
            table.insert(VertexId(v), c);
        }
    }
    g.set_categories(table);
}

/// The zipfian sizes used by [`assign_zipf`], exposed for inspection:
/// `num_categories` sizes summing to ≈ `total_memberships`, skew controlled
/// by `f` (≥ 1; larger = flatter).
pub fn zipf_sizes(num_categories: usize, total_memberships: usize, f: f64) -> Vec<usize> {
    assert!(f >= 1.0, "the paper's factor f is at least 1");
    let alpha = 2.4 / f;
    let weights: Vec<f64> = (1..=num_categories)
        .map(|rank| (rank as f64).powf(-alpha))
        .collect();
    let total_w: f64 = weights.iter().sum();
    weights
        .iter()
        .map(|w| ((w / total_w) * total_memberships as f64).round().max(1.0) as usize)
        .collect()
}

/// Assigns `num_categories` categories with zipfian-skewed sizes totalling
/// ≈ `total_memberships` memberships.
pub fn assign_zipf(
    g: &mut Graph,
    num_categories: usize,
    total_memberships: usize,
    f: f64,
    seed: u64,
) {
    let n = g.num_vertices();
    let sizes = zipf_sizes(num_categories, total_memberships, f);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut table = kosr_graph::CategoryTable::new(n);
    let mut pool: Vec<u32> = (0..n as u32).collect();
    for (ci, &size) in sizes.iter().enumerate() {
        let c = table.add_category(format!("Z{ci}"));
        pool.shuffle(&mut rng);
        for &v in &pool[..size.min(n)] {
            table.insert(VertexId(v), c);
        }
    }
    g.set_categories(table);
}

/// Assigns `num_categories` **spatially clustered** categories of exactly
/// `category_size` members each: every category grows from a random anchor
/// vertex by BFS over the undirected skeleton (nearest neighborhoods
/// first), with a `spill` fraction of its members scattered uniformly.
///
/// Real POI categories cluster — restaurants line the same streets — and
/// it is the membership distribution region sharding is built for: a
/// clustered category lives almost entirely in one region, so first-stop
/// fan-out touches few shards.
///
/// # Panics
/// Panics if `category_size` exceeds the vertex count.
pub fn assign_clustered(
    g: &mut Graph,
    num_categories: usize,
    category_size: usize,
    spill: f64,
    seed: u64,
) {
    let n = g.num_vertices();
    assert!(category_size <= n, "category larger than the graph");
    let spill = spill.clamp(0.0, 1.0);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC1_05_7E);
    let mut table = kosr_graph::CategoryTable::new(n);
    let mut visited = vec![false; n];
    for ci in 0..num_categories {
        let c = table.add_category(format!("K{ci}"));
        let clustered = category_size - ((category_size as f64) * spill).round() as usize;

        // BFS from the anchor over the undirected skeleton.
        visited.iter_mut().for_each(|v| *v = false);
        let anchor = VertexId(rng.gen_range(0..n as u32));
        let mut queue = std::collections::VecDeque::from([anchor]);
        visited[anchor.index()] = true;
        let mut taken = 0;
        while let Some(v) = queue.pop_front() {
            if taken < clustered {
                table.insert(v, c);
                taken += 1;
            } else {
                break;
            }
            for (u, _) in g.out_edges(v).chain(g.in_edges(v)) {
                if !visited[u.index()] {
                    visited[u.index()] = true;
                    queue.push_back(u);
                }
            }
        }
        // Spill (plus any shortfall from a small component): uniform.
        while table.category_size(c) < category_size {
            table.insert(VertexId(rng.gen_range(0..n as u32)), c);
        }
    }
    g.set_categories(table);
}

/// Convenience: the category ids `0..count` (the assigners number them
/// densely).
pub fn category_ids(count: usize) -> Vec<CategoryId> {
    (0..count as u32).map(CategoryId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::road_grid_undirected;

    #[test]
    fn uniform_sizes_are_exact() {
        let mut g = road_grid_undirected(10, 10, 1);
        assign_uniform(&mut g, 5, 17, 99);
        assert_eq!(g.categories().num_categories(), 5);
        for c in category_ids(5) {
            assert_eq!(g.categories().category_size(c), 17);
        }
        assert_eq!(g.categories().num_memberships(), 5 * 17);
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let mut a = road_grid_undirected(8, 8, 1);
        let mut b = road_grid_undirected(8, 8, 1);
        assign_uniform(&mut a, 3, 10, 7);
        assign_uniform(&mut b, 3, 10, 7);
        for c in category_ids(3) {
            assert_eq!(a.categories().vertices_of(c), b.categories().vertices_of(c));
        }
    }

    #[test]
    fn zipf_sizes_skew_shrinks_with_f() {
        let skewed = zipf_sizes(20, 4000, 1.2);
        let flat = zipf_sizes(20, 4000, 1.8);
        let ratio = |s: &[usize]| s[0] as f64 / s[s.len() - 1].max(1) as f64;
        assert!(
            ratio(&skewed) > ratio(&flat),
            "f=1.2 must be more skewed than f=1.8 ({} vs {})",
            ratio(&skewed),
            ratio(&flat)
        );
        assert!(ratio(&skewed) > 50.0, "f=1.2 is heavily skewed");
        // Sizes are nonincreasing by rank.
        for w in skewed.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn zipf_assignment_totals_roughly_match() {
        let mut g = road_grid_undirected(20, 20, 3);
        assign_zipf(&mut g, 10, 300, 1.4, 5);
        let total = g.categories().num_memberships();
        assert!((250..=360).contains(&total), "total {total}");
        assert_eq!(g.categories().num_categories(), 10);
        // Every category is non-empty.
        for c in category_ids(10) {
            assert!(g.categories().category_size(c) >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "category larger")]
    fn uniform_rejects_oversized_categories() {
        let mut g = road_grid_undirected(3, 3, 1);
        assign_uniform(&mut g, 1, 100, 1);
    }

    #[test]
    fn clustered_categories_are_spatially_tight() {
        let mut g = road_grid_undirected(20, 20, 7);
        assign_clustered(&mut g, 6, 25, 0.1, 3);
        assert_eq!(g.categories().num_categories(), 6);
        for c in category_ids(6) {
            assert_eq!(g.categories().category_size(c), 25);
            // Tightness: members span few distinct grid rows — a uniform
            // draw of 25 from 20 rows would hit nearly all of them.
            let rows: std::collections::HashSet<u32> = g
                .categories()
                .vertices_of(c)
                .iter()
                .map(|v| v.0 / 20)
                .collect();
            assert!(rows.len() <= 12, "category {c:?} spans {} rows", rows.len());
        }
        // Deterministic.
        let mut h = road_grid_undirected(20, 20, 7);
        assign_clustered(&mut h, 6, 25, 0.1, 3);
        for c in category_ids(6) {
            assert_eq!(g.categories().vertices_of(c), h.categories().vertices_of(c));
        }
    }
}
