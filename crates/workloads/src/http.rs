//! HTTP traffic generation for the gateway edge: renders the mixed query
//! streams of [`crate::traffic`] as `/v1/route` JSON bodies and
//! interleaves live updates, health probes and deliberately invalid
//! requests — the full status-code surface a real edge sees, not just the
//! happy path.
//!
//! Bodies are plain strings (this crate stays JSON-library-free); the
//! gateway's parser is the component under test, so the *generator* not
//! sharing its codec is a feature.

use kosr_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::traffic::{gen_membership_flips, gen_mixed_traffic, TrafficMix};
use crate::QuerySpec;

/// One HTTP call of a generated gateway stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpCall {
    /// The request method (`GET` / `POST`).
    pub method: &'static str,
    /// The request path.
    pub path: &'static str,
    /// The JSON body, if any.
    pub body: Option<String>,
    /// What the generator intended — lets harnesses assert per-class
    /// behavior (e.g. invalid calls must 4xx) without re-parsing bodies.
    pub kind: HttpCallKind,
}

/// The intent class of a generated call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HttpCallKind {
    /// A well-formed `/v1/route` query.
    Route,
    /// A well-formed `/v1/update` publish.
    Update,
    /// A `GET /healthz` probe.
    Healthz,
    /// A `GET /metrics` scrape.
    Metrics,
    /// A deliberately invalid request (malformed JSON, missing fields, or
    /// an unknown category) that a correct edge answers with a `4xx`.
    Invalid,
}

/// Parameters of a mixed HTTP stream.
#[derive(Clone, Debug)]
pub struct HttpTrafficMix {
    /// Shape of the underlying query stream.
    pub queries: TrafficMix,
    /// Fraction of slots carrying a `/v1/update` publish.
    pub update_fraction: f64,
    /// Fraction of slots carrying a deliberately invalid request.
    pub invalid_fraction: f64,
    /// Fraction of slots probing `/healthz` or scraping `/metrics`.
    pub probe_fraction: f64,
    /// `deadline_ms` stamped on route bodies (`None` omits the field).
    pub deadline_ms: Option<u64>,
}

impl Default for HttpTrafficMix {
    fn default() -> HttpTrafficMix {
        HttpTrafficMix {
            queries: TrafficMix::default(),
            update_fraction: 0.05,
            invalid_fraction: 0.05,
            probe_fraction: 0.05,
            deadline_ms: None,
        }
    }
}

/// Renders one query as a `/v1/route` JSON body.
pub fn route_body(q: &QuerySpec, deadline_ms: Option<u64>) -> String {
    let categories: Vec<String> = q.categories.iter().map(|c| c.0.to_string()).collect();
    let deadline = deadline_ms
        .map(|d| format!(", \"deadline_ms\": {d}"))
        .unwrap_or_default();
    format!(
        "{{\"source\": {}, \"target\": {}, \"categories\": [{}], \"k\": {}{}}}",
        q.source.0,
        q.target.0,
        categories.join(", "),
        q.k,
        deadline
    )
}

/// Generates a `count`-call mixed HTTP stream over `g`: route queries from
/// [`gen_mixed_traffic`] (hot-set skew included), membership updates from
/// [`gen_membership_flips`], health/metrics probes, and invalid requests.
/// Deterministic per `(g, mix, seed)`.
///
/// # Panics
/// Propagates the panics of the underlying generators (empty classes,
/// categoryless graphs).
pub fn gen_http_traffic(g: &Graph, count: usize, mix: &HttpTrafficMix, seed: u64) -> Vec<HttpCall> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6A7E_3A7E);
    let queries = gen_mixed_traffic(g, count, &mix.queries, seed);
    let flips = gen_membership_flips(g, count.max(1), seed.wrapping_add(1));
    let num_categories = g.categories().num_categories() as u32;

    let invalid_variants = |rng: &mut StdRng, q: &QuerySpec| -> String {
        match rng.gen_range(0..3u32) {
            // Malformed JSON.
            0 => "{\"source\": 1, ".to_string(),
            // Missing fields.
            1 => format!("{{\"source\": {}}}", q.source.0),
            // Unknown category id.
            _ => format!(
                "{{\"source\": {}, \"target\": {}, \"categories\": [{}], \"k\": 1}}",
                q.source.0,
                q.target.0,
                num_categories + 7
            ),
        }
    };

    let mut out = Vec::with_capacity(count);
    for (i, q) in queries.iter().enumerate() {
        let draw = rng.gen_range(0.0..1.0f64);
        let call = if draw < mix.invalid_fraction {
            HttpCall {
                method: "POST",
                path: "/v1/route",
                body: Some(invalid_variants(&mut rng, q)),
                kind: HttpCallKind::Invalid,
            }
        } else if draw < mix.invalid_fraction + mix.update_fraction {
            let f = &flips[i % flips.len()];
            let op = if f.insert {
                "insert_membership"
            } else {
                "remove_membership"
            };
            HttpCall {
                method: "POST",
                path: "/v1/update",
                body: Some(format!(
                    "{{\"op\": \"{op}\", \"vertex\": {}, \"category\": {}}}",
                    f.vertex.0, f.category.0
                )),
                kind: HttpCallKind::Update,
            }
        } else if draw < mix.invalid_fraction + mix.update_fraction + mix.probe_fraction {
            if rng.gen_bool(0.5) {
                HttpCall {
                    method: "GET",
                    path: "/healthz",
                    body: None,
                    kind: HttpCallKind::Healthz,
                }
            } else {
                HttpCall {
                    method: "GET",
                    path: "/metrics",
                    body: None,
                    kind: HttpCallKind::Metrics,
                }
            }
        } else {
            HttpCall {
                method: "POST",
                path: "/v1/route",
                body: Some(route_body(q, mix.deadline_ms)),
                kind: HttpCallKind::Route,
            }
        };
        out.push(call);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::categories::assign_uniform;
    use crate::graphs::road_grid_directed;

    fn setup() -> Graph {
        let mut g = road_grid_directed(12, 12, 5);
        assign_uniform(&mut g, 8, 20, 9);
        g
    }

    #[test]
    fn stream_mixes_all_call_kinds_deterministically() {
        let g = setup();
        let mix = HttpTrafficMix {
            update_fraction: 0.2,
            invalid_fraction: 0.2,
            probe_fraction: 0.2,
            ..Default::default()
        };
        let stream = gen_http_traffic(&g, 600, &mix, 7);
        assert_eq!(stream.len(), 600);
        for kind in [
            HttpCallKind::Route,
            HttpCallKind::Update,
            HttpCallKind::Healthz,
            HttpCallKind::Metrics,
            HttpCallKind::Invalid,
        ] {
            assert!(
                stream.iter().any(|c| c.kind == kind),
                "missing kind {kind:?}"
            );
        }
        let routes = stream
            .iter()
            .filter(|c| c.kind == HttpCallKind::Route)
            .count();
        assert!(routes > 600 / 3, "routes dominate: {routes}");
        assert_eq!(stream, gen_http_traffic(&g, 600, &mix, 7), "same seed");
        assert_ne!(stream, gen_http_traffic(&g, 600, &mix, 8), "fresh seed");
    }

    #[test]
    fn bodies_carry_the_api_shape() {
        let g = setup();
        let mix = HttpTrafficMix {
            deadline_ms: Some(2000),
            ..Default::default()
        };
        let stream = gen_http_traffic(&g, 200, &mix, 3);
        for call in &stream {
            match call.kind {
                HttpCallKind::Route => {
                    let body = call.body.as_ref().unwrap();
                    assert!(body.contains("\"source\""), "{body}");
                    assert!(body.contains("\"categories\""), "{body}");
                    assert!(body.contains("\"deadline_ms\": 2000"), "{body}");
                    assert_eq!(call.method, "POST");
                }
                HttpCallKind::Update => {
                    assert!(call.body.as_ref().unwrap().contains("\"op\""));
                }
                HttpCallKind::Healthz | HttpCallKind::Metrics => {
                    assert_eq!(call.method, "GET");
                    assert!(call.body.is_none());
                }
                HttpCallKind::Invalid => {}
            }
        }
    }

    #[test]
    fn route_body_renders_compact_json() {
        let g = setup();
        let q = &gen_mixed_traffic(&g, 1, &TrafficMix::default(), 5)[0];
        let body = route_body(q, None);
        assert!(body.starts_with('{') && body.ends_with('}'));
        assert!(!body.contains("deadline_ms"));
        assert!(route_body(q, Some(50)).contains("\"deadline_ms\": 50"));
    }
}
