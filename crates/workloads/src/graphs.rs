//! Synthetic graph generators with the *shape* of the paper's datasets
//! (Table VII): sparse near-planar road networks — undirected with
//! distance-like weights (CAL, NYC) or directed with asymmetric travel
//! times (COL, FLA) — and a dense, low-diameter, unit-weight social graph
//! (G+). All generators are fully seeded and deterministic.

use kosr_graph::{Graph, GraphBuilder, VertexId, Weight};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An undirected road network: a `rows × cols` grid with perturbed
/// distance weights plus a sprinkle of diagonal shortcut streets.
///
/// Distances are symmetric; like real road distances they still violate
/// the triangle inequality as *graph* weights (a direct edge may be longer
/// than a detour).
pub fn road_grid_undirected(rows: u32, cols: u32, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = (rows * cols) as usize;
    let mut b = GraphBuilder::new(n).with_edge_capacity(4 * n);
    let id = |r: u32, c: u32| VertexId(r * cols + c);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_undirected_edge(id(r, c), id(r, c + 1), rng.gen_range(10..100));
            }
            if r + 1 < rows {
                b.add_undirected_edge(id(r, c), id(r + 1, c), rng.gen_range(10..100));
            }
            // Occasional diagonal street (~10% of cells).
            if c + 1 < cols && r + 1 < rows && rng.gen_bool(0.1) {
                b.add_undirected_edge(id(r, c), id(r + 1, c + 1), rng.gen_range(14..140));
            }
        }
    }
    b.build()
}

/// A directed road network: the same grid topology with **asymmetric**
/// travel-time weights — each direction of a street is perturbed
/// independently (rush-hour asymmetry), as in the paper's COL/FLA graphs.
pub fn road_grid_directed(rows: u32, cols: u32, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = (rows * cols) as usize;
    let mut b = GraphBuilder::new(n).with_edge_capacity(4 * n);
    let id = |r: u32, c: u32| VertexId(r * cols + c);
    let two_way = |b: &mut GraphBuilder, u: VertexId, v: VertexId, rng: &mut StdRng| {
        let base: Weight = rng.gen_range(10..100);
        // Each direction deviates up to ±30% from the base time.
        let skew = |rng: &mut StdRng, base: Weight| {
            let lo = (base * 7) / 10;
            let hi = (base * 13) / 10;
            rng.gen_range(lo..=hi).max(1)
        };
        b.add_edge(u, v, skew(rng, base));
        b.add_edge(v, u, skew(rng, base));
    };
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                two_way(&mut b, id(r, c), id(r, c + 1), &mut rng);
            }
            if r + 1 < rows {
                two_way(&mut b, id(r, c), id(r + 1, c), &mut rng);
            }
            if c + 1 < cols && r + 1 < rows && rng.gen_bool(0.1) {
                two_way(&mut b, id(r, c), id(r + 1, c + 1), &mut rng);
            }
        }
    }
    b.build()
}

/// A social graph in the style of G+: preferential attachment with
/// `attach` links per new vertex, every edge in both directions with unit
/// weight. Dense neighborhoods, diameter of a handful of hops.
pub fn social_graph(n: u32, attach: usize, seed: u64) -> Graph {
    assert!(
        attach >= 1 && (attach as u32) < n.max(2),
        "attach out of range"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n as usize).with_edge_capacity(2 * attach * n as usize);
    // Endpoint multiset for degree-proportional sampling.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * attach * n as usize);
    let m0 = (attach as u32 + 1).min(n);
    for i in 0..m0 {
        for j in (i + 1)..m0 {
            b.add_undirected_edge(VertexId(i), VertexId(j), 1);
            endpoints.push(i);
            endpoints.push(j);
        }
    }
    for v in m0..n {
        let mut chosen: Vec<u32> = Vec::with_capacity(attach);
        let mut guard = 0;
        while chosen.len() < attach && guard < 50 * attach {
            guard += 1;
            let pick = endpoints[rng.gen_range(0..endpoints.len())];
            if pick != v && !chosen.contains(&pick) {
                chosen.push(pick);
            }
        }
        for &u in &chosen {
            b.add_undirected_edge(VertexId(v), VertexId(u), 1);
            endpoints.push(v);
            endpoints.push(u);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_pathfinding::{Dijkstra, Dir};

    #[test]
    fn undirected_grid_shape() {
        let g = road_grid_undirected(10, 12, 1);
        assert_eq!(g.num_vertices(), 120);
        // Grid edges both ways: at least 2*(9*12 + 10*11) directed edges.
        assert!(g.num_edges() >= 2 * (9 * 12 + 10 * 11));
        // Symmetric weights.
        for u in g.vertices().take(30) {
            for (v, w) in g.out_edges(u) {
                assert_eq!(g.edge_weight(v, u), Some(w));
            }
        }
    }

    #[test]
    fn undirected_grid_is_connected() {
        let g = road_grid_undirected(8, 8, 7);
        let mut d = Dijkstra::new(g.num_vertices());
        d.one_to_all(&g, Dir::Forward, VertexId(0));
        assert_eq!(d.settled_count, 64);
    }

    #[test]
    fn directed_grid_is_strongly_connected_but_asymmetric() {
        let g = road_grid_directed(8, 8, 3);
        let mut d = Dijkstra::new(g.num_vertices());
        d.one_to_all(&g, Dir::Forward, VertexId(0));
        assert_eq!(d.settled_count, 64, "forward reachability");
        d.one_to_all(&g, Dir::Backward, VertexId(0));
        assert_eq!(d.settled_count, 64, "backward reachability");
        // At least one street with asymmetric directions.
        let asymmetric = g.vertices().any(|u| {
            g.out_edges(u)
                .any(|(v, w)| g.edge_weight(v, u).is_some_and(|w2| w2 != w))
        });
        assert!(asymmetric);
    }

    #[test]
    fn social_graph_is_dense_and_low_diameter() {
        let g = social_graph(500, 8, 11);
        assert_eq!(g.num_vertices(), 500);
        assert!(g.num_edges() >= 2 * 8 * 450);
        // Unit weights ⇒ hop distances; diameter stays small.
        let mut d = Dijkstra::new(g.num_vertices());
        d.one_to_all(&g, Dir::Forward, VertexId(42));
        assert_eq!(d.settled_count, 500, "connected");
        let max_hops = g.vertices().map(|v| d.distance(v)).max().unwrap();
        assert!(
            max_hops <= 6,
            "diameter {max_hops} too large for a PA graph"
        );
    }

    #[test]
    fn generators_are_deterministic() {
        let a = road_grid_directed(6, 6, 42);
        let b = road_grid_directed(6, 6, 42);
        assert_eq!(a.total_weight(), b.total_weight());
        assert_eq!(a.num_edges(), b.num_edges());
        let c = road_grid_directed(6, 6, 43);
        assert_ne!(a.total_weight(), c.total_weight());
        let s1 = social_graph(100, 4, 9);
        let s2 = social_graph(100, 4, 9);
        assert_eq!(s1.num_edges(), s2.num_edges());
    }
}
