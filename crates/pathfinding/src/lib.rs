//! # kosr-pathfinding
//!
//! Shortest-path substrate for the KOSR workspace:
//!
//! * [`Dijkstra`] — reusable one-to-one / one-to-all / one-to-many /
//!   multi-source searches with parent and origin tracking (the GSP
//!   baseline's transition engine),
//! * [`BiDijkstra`] — bidirectional point-to-point queries,
//! * [`AStar`] — heuristic point-to-point search (the single-pair analogue
//!   of StarKOSR's estimation strategy),
//! * [`ResumableDijkstra`] — pausable settled-vertex streams powering the
//!   paper's Dijkstra-based nearest-neighbor baselines (`*-Dij`),
//! * [`Path`] — validated concrete routes,
//! * [`TimestampedVec`] — O(1)-resettable scratch arrays shared by all of
//!   the above.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod astar;
mod bidirectional;
mod dijkstra;
mod knn;
mod path;
mod timestamp;

pub use astar::AStar;
pub use bidirectional::BiDijkstra;
pub use dijkstra::{Dijkstra, Dir};
pub use knn::ResumableDijkstra;
pub use path::{Path, PathError};
pub use timestamp::TimestampedVec;
