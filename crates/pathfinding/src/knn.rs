//! Resumable single-source Dijkstra that yields settled vertices in
//! nondecreasing distance order and can be **paused and resumed**.
//!
//! This is the machinery behind the paper's `KPNE-Dij` / `PK-Dij` / `SK-Dij`
//! baselines: "a straightforward way to find the x-th nearest neighbor of
//! vertex `v` in category `C` is by using Dijkstra's search" (§IV-A). The
//! paper stresses that restarting from scratch for every `x` duplicates
//! work, so this iterator keeps its heap alive between calls: asking for the
//! (x+1)-th neighbor continues exactly where the x-th left off.
//!
//! State is hash-based rather than array-based because *many* of these
//! searches are alive at once (one per route-extension vertex), and each
//! typically settles a tiny fraction of the graph.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use kosr_graph::{inf_add, FxHashMap, Graph, VertexId, Weight};

use crate::dijkstra::Dir;

/// An incremental Dijkstra "settled vertex" stream from one source.
#[derive(Clone, Debug)]
pub struct ResumableDijkstra {
    source: VertexId,
    dir: Dir,
    /// Tentative distances of touched vertices.
    dist: FxHashMap<VertexId, Weight>,
    /// Settled vertices in nondecreasing distance order.
    settled: Vec<(VertexId, Weight)>,
    heap: BinaryHeap<Reverse<(Weight, VertexId)>>,
    /// Total number of edge relaxations performed (profiling aid).
    pub relaxed_edges: usize,
}

impl ResumableDijkstra {
    /// Starts a new stream from `source` in direction `dir`.
    pub fn new(source: VertexId, dir: Dir) -> Self {
        let mut heap = BinaryHeap::new();
        heap.push(Reverse((0, source)));
        let mut dist = FxHashMap::default();
        dist.insert(source, 0);
        ResumableDijkstra {
            source,
            dir,
            dist,
            settled: Vec::new(),
            heap,
            relaxed_edges: 0,
        }
    }

    /// The stream's source vertex.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// The `i`-th settled vertex (0-based: the source itself is index 0),
    /// expanding the search as needed. `None` once the reachable set is
    /// exhausted.
    pub fn settled_at(&mut self, g: &Graph, i: usize) -> Option<(VertexId, Weight)> {
        while self.settled.len() <= i {
            self.expand_one(g)?;
        }
        Some(self.settled[i])
    }

    /// Settles and returns the next vertex, or `None` when exhausted.
    pub fn next_settled(&mut self, g: &Graph) -> Option<(VertexId, Weight)> {
        let i = self.settled.len();
        self.settled_at(g, i)
    }

    /// Number of vertices settled so far.
    pub fn num_settled(&self) -> usize {
        self.settled.len()
    }

    /// The settled prefix (read-only view).
    pub fn settled(&self) -> &[(VertexId, Weight)] {
        &self.settled
    }

    fn expand_one(&mut self, g: &Graph) -> Option<()> {
        while let Some(Reverse((d, v))) = self.heap.pop() {
            match self.dist.get(&v) {
                Some(&cur) if d > cur => continue, // stale entry
                _ => {}
            }
            self.settled.push((v, d));
            for (u, w) in self.dir.edges(g, v) {
                self.relaxed_edges += 1;
                let nd = inf_add(d, w);
                let entry = self.dist.entry(u).or_insert(Weight::MAX);
                if nd < *entry {
                    *entry = nd;
                    self.heap.push(Reverse((nd, u)));
                }
            }
            return Some(());
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::Dijkstra;
    use kosr_graph::GraphBuilder;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn sample() -> Graph {
        let mut b = GraphBuilder::new(6);
        b.add_edge(v(0), v(1), 4);
        b.add_edge(v(0), v(2), 1);
        b.add_edge(v(2), v(1), 2);
        b.add_edge(v(1), v(3), 1);
        b.add_edge(v(2), v(3), 7);
        b.add_edge(v(3), v(4), 2);
        // v5 unreachable from 0
        b.add_edge(v(5), v(0), 1);
        b.build()
    }

    #[test]
    fn settles_in_distance_order() {
        let g = sample();
        let mut r = ResumableDijkstra::new(v(0), Dir::Forward);
        let mut order = Vec::new();
        while let Some((u, d)) = r.next_settled(&g) {
            order.push((u, d));
        }
        assert_eq!(
            order,
            vec![(v(0), 0), (v(2), 1), (v(1), 3), (v(3), 4), (v(4), 6)]
        );
        assert_eq!(r.num_settled(), 5);
        // Exhausted stream keeps returning None.
        assert_eq!(r.next_settled(&g), None);
        assert_eq!(r.next_settled(&g), None);
    }

    #[test]
    fn settled_at_is_random_access_and_resumable() {
        let g = sample();
        let mut r = ResumableDijkstra::new(v(0), Dir::Forward);
        assert_eq!(r.settled_at(&g, 3), Some((v(3), 4)));
        // Earlier indices are now free.
        assert_eq!(r.settled_at(&g, 1), Some((v(2), 1)));
        assert_eq!(r.settled_at(&g, 4), Some((v(4), 6)));
        assert_eq!(r.settled_at(&g, 5), None);
    }

    #[test]
    fn matches_full_dijkstra_distances() {
        let g = sample();
        let mut full = Dijkstra::new(g.num_vertices());
        full.one_to_all(&g, Dir::Forward, v(0));
        let mut r = ResumableDijkstra::new(v(0), Dir::Forward);
        while let Some((u, d)) = r.next_settled(&g) {
            assert_eq!(d, full.distance(u));
        }
    }

    #[test]
    fn backward_direction_streams_reverse_distances() {
        let g = sample();
        // Backward from v3: distances dis(·, 3).
        let mut r = ResumableDijkstra::new(v(3), Dir::Backward);
        let all: Vec<_> = std::iter::from_fn(|| r.next_settled(&g)).collect();
        assert_eq!(all[0], (v(3), 0));
        assert!(all.contains(&(v(1), 1)));
        // dis(0,3) = 4 via 0→2→1→3.
        assert!(all.contains(&(v(0), 4)));
        // dis(5,3) = 1 + 4 = 5 via 5→0.
        assert!(all.contains(&(v(5), 5)));
    }

    #[test]
    fn distances_nondecreasing_property() {
        let g = sample();
        let mut r = ResumableDijkstra::new(v(0), Dir::Forward);
        let mut last = 0;
        while let Some((_, d)) = r.next_settled(&g) {
            assert!(d >= last);
            last = d;
        }
    }
}
