//! Bidirectional Dijkstra for point-to-point distance queries.
//!
//! Used as a faster ground-truth oracle in tests/benches and as the fallback
//! distance engine where no hop-labeling index has been built.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use kosr_graph::{inf_add, is_finite, Graph, VertexId, Weight, INFINITY};

use crate::dijkstra::Dir;
use crate::timestamp::TimestampedVec;

/// Reusable bidirectional search state.
#[derive(Clone, Debug)]
pub struct BiDijkstra {
    dist_f: TimestampedVec<Weight>,
    dist_b: TimestampedVec<Weight>,
    parent_f: TimestampedVec<u32>,
    parent_b: TimestampedVec<u32>,
    heap_f: BinaryHeap<Reverse<(Weight, VertexId)>>,
    heap_b: BinaryHeap<Reverse<(Weight, VertexId)>>,
}

const NO_PARENT: u32 = u32::MAX;

impl BiDijkstra {
    /// Creates state for graphs with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        BiDijkstra {
            dist_f: TimestampedVec::new(num_vertices, INFINITY),
            dist_b: TimestampedVec::new(num_vertices, INFINITY),
            parent_f: TimestampedVec::new(num_vertices, NO_PARENT),
            parent_b: TimestampedVec::new(num_vertices, NO_PARENT),
            heap_f: BinaryHeap::new(),
            heap_b: BinaryHeap::new(),
        }
    }

    /// Shortest-path distance from `s` to `t`, or [`INFINITY`].
    pub fn distance(&mut self, g: &Graph, s: VertexId, t: VertexId) -> Weight {
        self.query(g, s, t).0
    }

    /// Shortest path from `s` to `t` as `(cost, vertices)`;
    /// `(INFINITY, empty)` when unreachable.
    pub fn shortest_path(
        &mut self,
        g: &Graph,
        s: VertexId,
        t: VertexId,
    ) -> (Weight, Vec<VertexId>) {
        let (best, meet) = self.query(g, s, t);
        if !is_finite(best) {
            return (INFINITY, Vec::new());
        }
        let meet = meet.expect("finite distance implies a meeting vertex");
        // Forward half: meet ← … ← s, then reversed.
        let mut fwd = vec![meet];
        let mut cur = meet;
        while self.parent_f.get(cur.index()) != NO_PARENT {
            cur = VertexId(self.parent_f.get(cur.index()));
            fwd.push(cur);
        }
        fwd.reverse();
        // Backward half: meet → … → t (parents in the backward search point
        // toward t).
        let mut cur = meet;
        while self.parent_b.get(cur.index()) != NO_PARENT {
            cur = VertexId(self.parent_b.get(cur.index()));
            fwd.push(cur);
        }
        (best, fwd)
    }

    fn query(&mut self, g: &Graph, s: VertexId, t: VertexId) -> (Weight, Option<VertexId>) {
        let n = g.num_vertices();
        self.dist_f.resize(n);
        self.dist_b.resize(n);
        self.parent_f.resize(n);
        self.parent_b.resize(n);
        self.dist_f.reset();
        self.dist_b.reset();
        self.parent_f.reset();
        self.parent_b.reset();
        self.heap_f.clear();
        self.heap_b.clear();

        self.dist_f.set(s.index(), 0);
        self.dist_b.set(t.index(), 0);
        self.heap_f.push(Reverse((0, s)));
        self.heap_b.push(Reverse((0, t)));

        let mut best = if s == t { 0 } else { INFINITY };
        let mut meet = (s == t).then_some(s);

        loop {
            let top_f = self.heap_f.peek().map_or(INFINITY, |Reverse((d, _))| *d);
            let top_b = self.heap_b.peek().map_or(INFINITY, |Reverse((d, _))| *d);
            // Standard stopping criterion: once the two frontiers together
            // reach the best meeting cost, no shorter s-t path remains. When
            // one heap drains with `best` still infinite the sum saturates
            // past INFINITY and we also stop (t unreachable — see tests).
            if inf_add(top_f, top_b) >= best.min(INFINITY) {
                break;
            }
            // Expand the side with the smaller frontier.
            if top_f <= top_b {
                if let Some(Reverse((d, v))) = self.heap_f.pop() {
                    if d > self.dist_f.get(v.index()) {
                        continue;
                    }
                    for (u, w) in Dir::Forward.edges(g, v) {
                        let nd = inf_add(d, w);
                        if nd < self.dist_f.get(u.index()) {
                            self.dist_f.set(u.index(), nd);
                            self.parent_f.set(u.index(), v.0);
                            self.heap_f.push(Reverse((nd, u)));
                        }
                        let through = inf_add(nd, self.dist_b.get(u.index()));
                        if through < best {
                            best = through;
                            meet = Some(u);
                        }
                    }
                    let through = inf_add(d, self.dist_b.get(v.index()));
                    if through < best {
                        best = through;
                        meet = Some(v);
                    }
                }
            } else if let Some(Reverse((d, v))) = self.heap_b.pop() {
                if d > self.dist_b.get(v.index()) {
                    continue;
                }
                for (u, w) in Dir::Backward.edges(g, v) {
                    let nd = inf_add(d, w);
                    if nd < self.dist_b.get(u.index()) {
                        self.dist_b.set(u.index(), nd);
                        self.parent_b.set(u.index(), v.0);
                        self.heap_b.push(Reverse((nd, u)));
                    }
                    let through = inf_add(nd, self.dist_f.get(u.index()));
                    if through < best {
                        best = through;
                        meet = Some(u);
                    }
                }
                let through = inf_add(d, self.dist_f.get(v.index()));
                if through < best {
                    best = through;
                    meet = Some(v);
                }
            }
        }
        (if is_finite(best) { best } else { INFINITY }, meet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::Dijkstra;
    use kosr_graph::GraphBuilder;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn grid3() -> Graph {
        // 3x3 grid, undirected unit weights, vertex r*3+c.
        let mut b = GraphBuilder::new(9);
        for r in 0..3u32 {
            for c in 0..3u32 {
                let id = r * 3 + c;
                if c + 1 < 3 {
                    b.add_undirected_edge(v(id), v(id + 1), 1);
                }
                if r + 1 < 3 {
                    b.add_undirected_edge(v(id), v(id + 3), 1);
                }
            }
        }
        b.build()
    }

    #[test]
    fn matches_unidirectional_on_grid() {
        let g = grid3();
        let mut bi = BiDijkstra::new(9);
        let mut di = Dijkstra::new(9);
        for s in 0..9u32 {
            for t in 0..9u32 {
                let want = di.one_to_one(&g, Dir::Forward, v(s), v(t));
                let got = bi.distance(&g, v(s), v(t));
                assert_eq!(got, want, "s={s} t={t}");
            }
        }
    }

    #[test]
    fn unreachable_returns_infinity() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(v(0), v(1), 1);
        let g = b.build();
        let mut bi = BiDijkstra::new(3);
        assert_eq!(bi.distance(&g, v(0), v(2)), INFINITY);
        assert_eq!(bi.distance(&g, v(1), v(0)), INFINITY);
        let (c, p) = bi.shortest_path(&g, v(0), v(2));
        assert_eq!(c, INFINITY);
        assert!(p.is_empty());
    }

    #[test]
    fn path_reconstruction_is_a_real_path() {
        let g = grid3();
        let mut bi = BiDijkstra::new(9);
        let (cost, path) = bi.shortest_path(&g, v(0), v(8));
        assert_eq!(cost, 4);
        assert_eq!(path.first(), Some(&v(0)));
        assert_eq!(path.last(), Some(&v(8)));
        let mut total = 0;
        for pair in path.windows(2) {
            total += g.edge_weight(pair[0], pair[1]).expect("edge must exist");
        }
        assert_eq!(total, cost);
    }

    #[test]
    fn source_equals_target() {
        let g = grid3();
        let mut bi = BiDijkstra::new(9);
        assert_eq!(bi.distance(&g, v(4), v(4)), 0);
        let (c, p) = bi.shortest_path(&g, v(4), v(4));
        assert_eq!(c, 0);
        assert_eq!(p, vec![v(4)]);
    }

    #[test]
    fn directed_asymmetry() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(v(0), v(1), 1);
        b.add_edge(v(1), v(2), 1);
        b.add_edge(v(2), v(3), 1);
        b.add_edge(v(3), v(0), 10);
        let g = b.build();
        let mut bi = BiDijkstra::new(4);
        assert_eq!(bi.distance(&g, v(0), v(3)), 3);
        assert_eq!(bi.distance(&g, v(3), v(0)), 10);
    }
}
