//! Concrete paths (Definition 2): vertex sequences connected by edges, with
//! validation and concatenation helpers used when materialising a witness
//! back into an actual route.

use kosr_graph::{Graph, VertexId, Weight};

/// A concrete route `⟨v0, v1, …, vq⟩` whose consecutive vertices are joined
/// by graph edges, together with its total cost (Definition 2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Path {
    /// The vertex sequence; at least one vertex.
    pub vertices: Vec<VertexId>,
    /// Sum of the traversed edge weights.
    pub cost: Weight,
}

/// Ways a vertex sequence can fail [`Path::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PathError {
    /// The vertex list is empty.
    Empty,
    /// Two consecutive vertices are not joined by an edge.
    MissingEdge(VertexId, VertexId),
    /// The stored cost differs from the sum of edge weights.
    CostMismatch {
        /// Cost recorded on the path.
        stored: Weight,
        /// Cost recomputed from the graph.
        actual: Weight,
    },
}

impl std::fmt::Display for PathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathError::Empty => write!(f, "empty path"),
            PathError::MissingEdge(u, v) => write!(f, "no edge {u:?} -> {v:?}"),
            PathError::CostMismatch { stored, actual } => {
                write!(f, "stored cost {stored} != recomputed {actual}")
            }
        }
    }
}

impl std::error::Error for PathError {}

impl Path {
    /// A single-vertex path of cost 0.
    pub fn trivial(v: VertexId) -> Path {
        Path {
            vertices: vec![v],
            cost: 0,
        }
    }

    /// Builds a path from a vertex sequence, computing its cost from the
    /// graph. Fails if any consecutive pair lacks an edge.
    pub fn from_vertices(g: &Graph, vertices: Vec<VertexId>) -> Result<Path, PathError> {
        if vertices.is_empty() {
            return Err(PathError::Empty);
        }
        let mut cost = 0;
        for pair in vertices.windows(2) {
            match g.edge_weight(pair[0], pair[1]) {
                Some(w) => cost += w,
                None => return Err(PathError::MissingEdge(pair[0], pair[1])),
            }
        }
        Ok(Path { vertices, cost })
    }

    /// First vertex.
    pub fn source(&self) -> VertexId {
        *self.vertices.first().expect("paths are non-empty")
    }

    /// Last vertex.
    pub fn target(&self) -> VertexId {
        *self.vertices.last().expect("paths are non-empty")
    }

    /// Number of vertices `|P|`.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// `true` iff the path has no vertices (never true for validated paths).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Checks edge existence and cost consistency against `g`.
    pub fn validate(&self, g: &Graph) -> Result<(), PathError> {
        if self.vertices.is_empty() {
            return Err(PathError::Empty);
        }
        let mut actual = 0;
        for pair in self.vertices.windows(2) {
            match g.edge_weight(pair[0], pair[1]) {
                Some(w) => actual += w,
                None => return Err(PathError::MissingEdge(pair[0], pair[1])),
            }
        }
        if actual != self.cost {
            return Err(PathError::CostMismatch {
                stored: self.cost,
                actual,
            });
        }
        Ok(())
    }

    /// Appends `other` to `self`; `other` must start where `self` ends.
    /// The duplicated junction vertex is kept once.
    pub fn concat(mut self, other: &Path) -> Path {
        assert_eq!(
            self.target(),
            other.source(),
            "paths must share their junction vertex"
        );
        self.vertices.extend_from_slice(&other.vertices[1..]);
        self.cost += other.cost;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_graph::GraphBuilder;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn g() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(v(0), v(1), 2);
        b.add_edge(v(1), v(2), 3);
        b.add_edge(v(2), v(3), 4);
        b.build()
    }

    #[test]
    fn from_vertices_computes_cost() {
        let g = g();
        let p = Path::from_vertices(&g, vec![v(0), v(1), v(2)]).unwrap();
        assert_eq!(p.cost, 5);
        assert_eq!(p.source(), v(0));
        assert_eq!(p.target(), v(2));
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        p.validate(&g).unwrap();
    }

    #[test]
    fn missing_edge_detected() {
        let g = g();
        let err = Path::from_vertices(&g, vec![v(0), v(2)]).unwrap_err();
        assert_eq!(err, PathError::MissingEdge(v(0), v(2)));
    }

    #[test]
    fn empty_rejected() {
        let g = g();
        assert_eq!(
            Path::from_vertices(&g, vec![]).unwrap_err(),
            PathError::Empty
        );
    }

    #[test]
    fn cost_mismatch_detected() {
        let g = g();
        let mut p = Path::from_vertices(&g, vec![v(0), v(1)]).unwrap();
        p.cost = 99;
        assert!(matches!(
            p.validate(&g),
            Err(PathError::CostMismatch {
                stored: 99,
                actual: 2
            })
        ));
    }

    #[test]
    fn concat_joins_at_junction() {
        let g = g();
        let a = Path::from_vertices(&g, vec![v(0), v(1)]).unwrap();
        let b = Path::from_vertices(&g, vec![v(1), v(2), v(3)]).unwrap();
        let joined = a.concat(&b);
        assert_eq!(joined.vertices, vec![v(0), v(1), v(2), v(3)]);
        assert_eq!(joined.cost, 9);
        joined.validate(&g).unwrap();
    }

    #[test]
    #[should_panic(expected = "junction")]
    fn concat_requires_junction() {
        let g = g();
        let a = Path::from_vertices(&g, vec![v(0), v(1)]).unwrap();
        let b = Path::from_vertices(&g, vec![v(2), v(3)]).unwrap();
        let _ = a.concat(&b);
    }

    #[test]
    fn trivial_path() {
        let g = g();
        let p = Path::trivial(v(2));
        assert_eq!(p.len(), 1);
        assert_eq!(p.cost, 0);
        p.validate(&g).unwrap();
    }
}
