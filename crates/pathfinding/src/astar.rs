//! Point-to-point A* with a pluggable admissible heuristic.
//!
//! StarKOSR (§IV-B) lifts exactly this idea to *sequenced* routes: order the
//! frontier by `g-cost + h(v)` where `h` never overestimates the remaining
//! cost. The generic single-pair version lives here both as a reusable
//! substrate and as executable documentation of the admissibility argument
//! (tests cross-check against plain Dijkstra).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use kosr_graph::{inf_add, is_finite, Graph, VertexId, Weight, INFINITY};

use crate::dijkstra::Dir;
use crate::timestamp::TimestampedVec;

/// Reusable A* search state.
#[derive(Clone, Debug)]
pub struct AStar {
    dist: TimestampedVec<Weight>,
    parent: TimestampedVec<u32>,
    closed: TimestampedVec<bool>,
    heap: BinaryHeap<Reverse<(Weight, Weight, VertexId)>>,
    /// Vertices settled by the last run (the quantity a heuristic shrinks).
    pub settled_count: usize,
}

const NO_PARENT: u32 = u32::MAX;

impl AStar {
    /// Creates search state for graphs with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        AStar {
            dist: TimestampedVec::new(num_vertices, INFINITY),
            parent: TimestampedVec::new(num_vertices, NO_PARENT),
            closed: TimestampedVec::new(num_vertices, false),
            heap: BinaryHeap::new(),
            settled_count: 0,
        }
    }

    /// Shortest-path distance from `s` to `t` using heuristic `h`.
    ///
    /// `h(v)` must be **admissible** (a lower bound on `dis(v, t)`); the
    /// zero heuristic degrades gracefully to Dijkstra. Consistency is not
    /// required: closed vertices are reopened if improved.
    pub fn distance<H>(&mut self, g: &Graph, s: VertexId, t: VertexId, mut h: H) -> Weight
    where
        H: FnMut(VertexId) -> Weight,
    {
        let n = g.num_vertices();
        self.dist.resize(n);
        self.parent.resize(n);
        self.closed.resize(n);
        self.dist.reset();
        self.parent.reset();
        self.closed.reset();
        self.heap.clear();
        self.settled_count = 0;

        self.dist.set(s.index(), 0);
        self.heap.push(Reverse((h(s), 0, s)));

        while let Some(Reverse((_, d, v))) = self.heap.pop() {
            if d > self.dist.get(v.index()) {
                continue; // stale
            }
            if self.closed.get(v.index()) {
                continue;
            }
            self.closed.set(v.index(), true);
            self.settled_count += 1;
            if v == t {
                return d;
            }
            for (u, w) in Dir::Forward.edges(g, v) {
                let nd = inf_add(d, w);
                if nd < self.dist.get(u.index()) {
                    self.dist.set(u.index(), nd);
                    self.parent.set(u.index(), v.0);
                    // Reopen if previously closed with a worse value.
                    if self.closed.get(u.index()) {
                        self.closed.set(u.index(), false);
                    }
                    let est = inf_add(nd, h(u));
                    if is_finite(est) {
                        self.heap.push(Reverse((est, nd, u)));
                    }
                }
            }
        }
        INFINITY
    }

    /// The path found by the last [`AStar::distance`] call, if `t` was
    /// reached.
    pub fn path_to(&self, t: VertexId) -> Option<Vec<VertexId>> {
        if !is_finite(self.dist.get(t.index())) {
            return None;
        }
        let mut chain = vec![t];
        let mut cur = t;
        while self.parent.get(cur.index()) != NO_PARENT {
            cur = VertexId(self.parent.get(cur.index()));
            chain.push(cur);
        }
        chain.reverse();
        Some(chain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::Dijkstra;
    use kosr_graph::GraphBuilder;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn ladder(n: u32) -> Graph {
        // Two parallel rails with rungs; irregular weights.
        let mut b = GraphBuilder::new((2 * n) as usize);
        for i in 0..n - 1 {
            b.add_edge(v(2 * i), v(2 * i + 2), 3);
            b.add_edge(v(2 * i + 1), v(2 * i + 3), 2);
        }
        for i in 0..n {
            b.add_edge(v(2 * i), v(2 * i + 1), 1);
            b.add_edge(v(2 * i + 1), v(2 * i), 1);
        }
        b.build()
    }

    #[test]
    fn zero_heuristic_matches_dijkstra() {
        let g = ladder(10);
        let mut a = AStar::new(g.num_vertices());
        let mut d = Dijkstra::new(g.num_vertices());
        for t in 0..20u32 {
            let want = d.one_to_one(&g, Dir::Forward, v(0), v(t));
            let got = a.distance(&g, v(0), v(t), |_| 0);
            assert_eq!(got, want, "t={t}");
        }
    }

    #[test]
    fn exact_heuristic_expands_only_the_path() {
        let g = ladder(10);
        let t = v(19);
        // Perfect heuristic: true remaining distance via a backward search.
        let mut back = Dijkstra::new(g.num_vertices());
        back.one_to_all(&g, Dir::Backward, t);
        let h: Vec<Weight> = (0..g.num_vertices())
            .map(|i| back.distance(v(i as u32)))
            .collect();

        let mut a = AStar::new(g.num_vertices());
        let exact = a.distance(&g, v(0), t, |u| h[u.index()]);
        let settled_exact = a.settled_count;
        let plain = a.distance(&g, v(0), t, |_| 0);
        let settled_plain = a.settled_count;
        assert_eq!(exact, plain);
        assert!(
            settled_exact <= settled_plain,
            "a perfect heuristic must not settle more vertices \
             ({settled_exact} vs {settled_plain})"
        );
        // The perfect heuristic settles only path vertices.
        let path = a.path_to(t).unwrap();
        assert!(settled_exact <= path.len() + 1);
    }

    #[test]
    fn inadmissible_infinite_heuristic_prunes_unreachable() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(v(0), v(1), 1);
        let g = b.build();
        let mut a = AStar::new(3);
        // dis(v, 2) is INFINITY for all v; the search space collapses.
        assert_eq!(a.distance(&g, v(0), v(2), |_| INFINITY), INFINITY);
        assert!(a.settled_count <= 1, "only the source may be expanded");
    }

    #[test]
    fn path_reconstruction() {
        let g = ladder(5);
        let mut a = AStar::new(g.num_vertices());
        let cost = a.distance(&g, v(0), v(9), |_| 0);
        let path = a.path_to(v(9)).unwrap();
        assert_eq!(path.first(), Some(&v(0)));
        assert_eq!(path.last(), Some(&v(9)));
        let mut sum = 0;
        for w in path.windows(2) {
            sum += g.edge_weight(w[0], w[1]).unwrap();
        }
        assert_eq!(sum, cost);
        assert_eq!(a.path_to(v(9)).unwrap().len(), path.len());
    }

    #[test]
    fn unreachable_target() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(v(1), v(0), 1);
        let g = b.build();
        let mut a = AStar::new(2);
        assert_eq!(a.distance(&g, v(0), v(1), |_| 0), INFINITY);
        assert_eq!(a.path_to(v(1)), None);
    }
}
