//! Dijkstra's algorithm in the flavours the KOSR stack needs: one-to-one,
//! one-to-all, one-to-many, and multi-source with origin tracking (the
//! engine of the GSP baseline's dynamic-programming transition).
//!
//! The search state ([`Dijkstra`]) is reusable across runs on the same graph
//! — distance/parent arrays are version-stamped, so consecutive searches pay
//! no O(|V|) clearing cost.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use kosr_graph::{inf_add, is_finite, Graph, VertexId, Weight, INFINITY};

use crate::timestamp::TimestampedVec;

/// Search direction: expand along outgoing or incoming edges.
///
/// A backward search from `t` computes `dis(v, t)` for every settled `v`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// Expand `v` through `out_edges(v)`; distances are `dis(source, v)`.
    Forward,
    /// Expand `v` through `in_edges(v)`; distances are `dis(v, source)`.
    Backward,
}

impl Dir {
    /// Iterates the neighbors of `v` in this direction.
    #[inline]
    pub fn edges<'g>(self, g: &'g Graph, v: VertexId) -> kosr_graph::EdgeIter<'g> {
        match self {
            Dir::Forward => g.out_edges(v),
            Dir::Backward => g.in_edges(v),
        }
    }

    /// The opposite direction.
    #[inline]
    pub fn flip(self) -> Dir {
        match self {
            Dir::Forward => Dir::Backward,
            Dir::Backward => Dir::Forward,
        }
    }
}

/// Min-heap entry ordered by distance (ties broken by vertex id for
/// determinism across platforms).
pub(crate) type HeapEntry = Reverse<(Weight, VertexId)>;

/// Reusable Dijkstra search state over graphs with up to `n` vertices.
#[derive(Clone, Debug)]
pub struct Dijkstra {
    dist: TimestampedVec<Weight>,
    parent: TimestampedVec<VertexId>,
    origin: TimestampedVec<VertexId>,
    settled: TimestampedVec<bool>,
    heap: BinaryHeap<HeapEntry>,
    /// Number of vertices settled by the last run (profiling aid).
    pub settled_count: usize,
}

/// Marker for "no parent" in the search tree.
const NO_VERTEX: VertexId = VertexId(u32::MAX);

impl Dijkstra {
    /// Creates search state for graphs with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Dijkstra {
            dist: TimestampedVec::new(num_vertices, INFINITY),
            parent: TimestampedVec::new(num_vertices, NO_VERTEX),
            origin: TimestampedVec::new(num_vertices, NO_VERTEX),
            settled: TimestampedVec::new(num_vertices, false),
            heap: BinaryHeap::new(),
            settled_count: 0,
        }
    }

    fn prepare(&mut self, g: &Graph) {
        self.dist.resize(g.num_vertices());
        self.parent.resize(g.num_vertices());
        self.origin.resize(g.num_vertices());
        self.settled.resize(g.num_vertices());
        self.dist.reset();
        self.parent.reset();
        self.origin.reset();
        self.settled.reset();
        self.heap.clear();
        self.settled_count = 0;
    }

    fn seed(&mut self, v: VertexId, d: Weight) {
        if d < self.dist.get(v.index()) {
            self.dist.set(v.index(), d);
            self.origin.set(v.index(), v);
            self.heap.push(Reverse((d, v)));
        }
    }

    /// Runs until the queue is empty or `stop(v, d)` returns `true` for a
    /// newly settled vertex (which is still recorded as settled).
    fn run(&mut self, g: &Graph, dir: Dir, mut stop: impl FnMut(VertexId, Weight) -> bool) {
        while let Some(Reverse((d, v))) = self.heap.pop() {
            if d > self.dist.get(v.index()) {
                continue; // stale entry
            }
            self.settled.set(v.index(), true);
            self.settled_count += 1;
            if stop(v, d) {
                return;
            }
            let ov = self.origin.get(v.index());
            for (u, w) in dir.edges(g, v) {
                let nd = inf_add(d, w);
                if nd < self.dist.get(u.index()) {
                    self.dist.set(u.index(), nd);
                    self.parent.set(u.index(), v);
                    self.origin.set(u.index(), ov);
                    self.heap.push(Reverse((nd, u)));
                }
            }
        }
    }

    /// Shortest distance from `s` to `t` (`Forward`) or from `t` to `s`
    /// (`Backward`), with early termination at the target.
    pub fn one_to_one(&mut self, g: &Graph, dir: Dir, s: VertexId, t: VertexId) -> Weight {
        self.prepare(g);
        self.seed(s, 0);
        self.run(g, dir, |v, _| v == t);
        self.dist.get(t.index())
    }

    /// Full single-source shortest-path tree from `s`.
    pub fn one_to_all(&mut self, g: &Graph, dir: Dir, s: VertexId) {
        self.prepare(g);
        self.seed(s, 0);
        self.run(g, dir, |_, _| false);
    }

    /// Single-source search that stops once every vertex of `targets` is
    /// settled. Returns the number of targets actually reached.
    pub fn one_to_many(&mut self, g: &Graph, dir: Dir, s: VertexId, targets: &[VertexId]) -> usize {
        self.prepare(g);
        self.seed(s, 0);
        let mut pending: std::collections::HashSet<VertexId> = targets.iter().copied().collect();
        let total = pending.len();
        if pending.is_empty() {
            return 0;
        }
        let mut reached = 0usize;
        self.run(g, dir, |v, _| {
            if pending.remove(&v) {
                reached += 1;
            }
            reached == total
        });
        reached
    }

    /// Multi-source search: every `(vertex, initial_cost)` pair seeds the
    /// queue; [`Dijkstra::origin_of`] afterwards reports which seed settled
    /// each vertex. This is exactly the GSP transition
    /// `X[i][j] = min_l X[i-1][l] + dis(v_{i-1,l}, v_{i,j})`.
    pub fn multi_source(&mut self, g: &Graph, dir: Dir, seeds: &[(VertexId, Weight)]) {
        self.prepare(g);
        for &(v, d) in seeds {
            if is_finite(d) {
                self.seed(v, d);
            }
        }
        self.run(g, dir, |_, _| false);
    }

    /// Distance of `v` computed by the last run ([`INFINITY`] if unreached).
    #[inline]
    pub fn distance(&self, v: VertexId) -> Weight {
        self.dist.get(v.index())
    }

    /// `true` iff `v` was settled (finalised) by the last run.
    #[inline]
    pub fn is_settled(&self, v: VertexId) -> bool {
        self.settled.get(v.index())
    }

    /// Tree parent of `v` in the last run (`None` for seeds/unreached).
    #[inline]
    pub fn parent_of(&self, v: VertexId) -> Option<VertexId> {
        let p = self.parent.get(v.index());
        (p != NO_VERTEX).then_some(p)
    }

    /// The seed vertex whose search tree contains `v` (multi-source runs).
    #[inline]
    pub fn origin_of(&self, v: VertexId) -> Option<VertexId> {
        let o = self.origin.get(v.index());
        (o != NO_VERTEX).then_some(o)
    }

    /// Reconstructs the vertex sequence from the seed to `v` (for
    /// `Dir::Forward`; for `Dir::Backward` the returned sequence is from `v`
    /// to the seed). Returns `None` if `v` was not reached.
    pub fn path_of(&self, dir: Dir, v: VertexId) -> Option<Vec<VertexId>> {
        if !is_finite(self.dist.get(v.index())) {
            return None;
        }
        let mut chain = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent_of(cur) {
            chain.push(p);
            cur = p;
        }
        if dir == Dir::Forward {
            chain.reverse();
        }
        Some(chain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_graph::GraphBuilder;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// 0→1(2), 1→2(2), 0→2(10), 2→3(1), 1→3(9)
    fn line() -> Graph {
        let mut b = GraphBuilder::new(5);
        b.add_edge(v(0), v(1), 2);
        b.add_edge(v(1), v(2), 2);
        b.add_edge(v(0), v(2), 10);
        b.add_edge(v(2), v(3), 1);
        b.add_edge(v(1), v(3), 9);
        b.build()
    }

    #[test]
    fn one_to_one_forward() {
        let g = line();
        let mut d = Dijkstra::new(g.num_vertices());
        assert_eq!(d.one_to_one(&g, Dir::Forward, v(0), v(3)), 5);
        assert_eq!(d.one_to_one(&g, Dir::Forward, v(0), v(2)), 4);
        assert_eq!(d.one_to_one(&g, Dir::Forward, v(3), v(0)), INFINITY);
    }

    #[test]
    fn one_to_one_backward_is_reverse_distance() {
        let g = line();
        let mut d = Dijkstra::new(g.num_vertices());
        // Backward search from 3: dis(v, 3).
        assert_eq!(d.one_to_one(&g, Dir::Backward, v(3), v(0)), 5);
        assert_eq!(d.one_to_one(&g, Dir::Backward, v(3), v(2)), 1);
    }

    #[test]
    fn one_to_all_distances_and_parents() {
        let g = line();
        let mut d = Dijkstra::new(g.num_vertices());
        d.one_to_all(&g, Dir::Forward, v(0));
        assert_eq!(d.distance(v(0)), 0);
        assert_eq!(d.distance(v(1)), 2);
        assert_eq!(d.distance(v(2)), 4);
        assert_eq!(d.distance(v(3)), 5);
        assert_eq!(d.distance(v(4)), INFINITY);
        assert!(!d.is_settled(v(4)));
        assert_eq!(
            d.path_of(Dir::Forward, v(3)),
            Some(vec![v(0), v(1), v(2), v(3)])
        );
        assert_eq!(d.path_of(Dir::Forward, v(4)), None);
        assert_eq!(d.parent_of(v(0)), None);
        assert_eq!(d.settled_count, 4);
    }

    #[test]
    fn backward_path_orientation() {
        let g = line();
        let mut d = Dijkstra::new(g.num_vertices());
        d.one_to_all(&g, Dir::Backward, v(3));
        // Path of vertex 0 in a backward search is the route 0 → … → 3.
        assert_eq!(
            d.path_of(Dir::Backward, v(0)),
            Some(vec![v(0), v(1), v(2), v(3)])
        );
    }

    #[test]
    fn one_to_many_early_stop() {
        let g = line();
        let mut d = Dijkstra::new(g.num_vertices());
        let reached = d.one_to_many(&g, Dir::Forward, v(0), &[v(1), v(2)]);
        assert_eq!(reached, 2);
        assert_eq!(d.distance(v(1)), 2);
        assert_eq!(d.distance(v(2)), 4);
        // v3 may or may not be settled, but its tentative distance can't be wrong:
        assert!(d.distance(v(3)) >= 5 || !d.is_settled(v(3)));
        // Unreachable target
        let reached = d.one_to_many(&g, Dir::Forward, v(0), &[v(4)]);
        assert_eq!(reached, 0);
        // Empty target list
        assert_eq!(d.one_to_many(&g, Dir::Forward, v(0), &[]), 0);
    }

    #[test]
    fn multi_source_origins() {
        let g = line();
        let mut d = Dijkstra::new(g.num_vertices());
        // Seed 1 with 0 and 0 with 100: everything downstream of 1 should
        // originate from 1.
        d.multi_source(&g, Dir::Forward, &[(v(0), 100), (v(1), 0)]);
        assert_eq!(d.distance(v(3)), 3);
        assert_eq!(d.origin_of(v(3)), Some(v(1)));
        assert_eq!(d.origin_of(v(0)), Some(v(0)));
        assert_eq!(d.distance(v(0)), 100);
    }

    #[test]
    fn multi_source_ignores_infinite_seeds() {
        let g = line();
        let mut d = Dijkstra::new(g.num_vertices());
        d.multi_source(&g, Dir::Forward, &[(v(0), INFINITY), (v(1), 1)]);
        assert_eq!(d.distance(v(0)), INFINITY);
        assert_eq!(d.distance(v(2)), 3);
    }

    #[test]
    fn reuse_between_runs_is_clean() {
        let g = line();
        let mut d = Dijkstra::new(g.num_vertices());
        d.one_to_all(&g, Dir::Forward, v(0));
        assert_eq!(d.distance(v(3)), 5);
        d.one_to_all(&g, Dir::Forward, v(2));
        assert_eq!(d.distance(v(3)), 1);
        assert_eq!(d.distance(v(1)), INFINITY, "state from run 1 must not leak");
    }

    #[test]
    fn zero_weight_edges() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(v(0), v(1), 0);
        b.add_edge(v(1), v(2), 0);
        let g = b.build();
        let mut d = Dijkstra::new(3);
        assert_eq!(d.one_to_one(&g, Dir::Forward, v(0), v(2)), 0);
    }

    #[test]
    fn dir_flip() {
        assert_eq!(Dir::Forward.flip(), Dir::Backward);
        assert_eq!(Dir::Backward.flip(), Dir::Forward);
    }
}
