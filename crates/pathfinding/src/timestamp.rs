//! Version-stamped arrays: O(1) logical clearing of per-vertex scratch state.
//!
//! Query algorithms run thousands of searches over the same graph. Clearing a
//! `Vec<Weight>` of |V| entries per search would dominate run time, and a
//! `HashMap` per search would allocate. A timestamped array keeps a version
//! counter per slot; bumping the global version invalidates every slot in
//! O(1) (the rustc "generation index" pattern from the design-pattern guide).

/// A fixed-size array whose contents can be reset in O(1).
#[derive(Clone, Debug)]
pub struct TimestampedVec<T> {
    data: Vec<T>,
    stamp: Vec<u32>,
    version: u32,
    default: T,
}

impl<T: Copy> TimestampedVec<T> {
    /// Creates an array of `n` slots, all logically holding `default`.
    pub fn new(n: usize, default: T) -> Self {
        TimestampedVec {
            data: vec![default; n],
            stamp: vec![0; n],
            version: 1,
            default,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the array has zero slots.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Logically resets every slot to the default value, in O(1)
    /// (amortised: on version wrap-around the stamps are zeroed eagerly).
    pub fn reset(&mut self) {
        if self.version == u32::MAX {
            self.stamp.fill(0);
            self.version = 0;
        }
        self.version += 1;
    }

    /// Reads slot `i` (default if untouched since the last reset).
    #[inline(always)]
    pub fn get(&self, i: usize) -> T {
        if self.stamp[i] == self.version {
            self.data[i]
        } else {
            self.default
        }
    }

    /// Writes slot `i`.
    #[inline(always)]
    pub fn set(&mut self, i: usize, value: T) {
        self.stamp[i] = self.version;
        self.data[i] = value;
    }

    /// `true` iff slot `i` was written since the last reset.
    #[inline(always)]
    pub fn is_set(&self, i: usize) -> bool {
        self.stamp[i] == self.version
    }

    /// Grows the array to cover `n` slots (no-op if already larger).
    pub fn resize(&mut self, n: usize) {
        if n > self.data.len() {
            self.data.resize(n, self.default);
            self.stamp.resize(n, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_until_set() {
        let mut a = TimestampedVec::new(4, u64::MAX);
        assert_eq!(a.get(2), u64::MAX);
        assert!(!a.is_set(2));
        a.set(2, 7);
        assert_eq!(a.get(2), 7);
        assert!(a.is_set(2));
        assert_eq!(a.len(), 4);
        assert!(!a.is_empty());
    }

    #[test]
    fn reset_clears_logically() {
        let mut a = TimestampedVec::new(3, 0u32);
        a.set(0, 1);
        a.set(1, 2);
        a.reset();
        assert_eq!(a.get(0), 0);
        assert_eq!(a.get(1), 0);
        assert!(!a.is_set(0));
        a.set(0, 9);
        assert_eq!(a.get(0), 9);
    }

    #[test]
    fn many_resets_do_not_confuse_slots() {
        let mut a = TimestampedVec::new(2, -1i64);
        for round in 0..100 {
            a.reset();
            assert_eq!(a.get(0), -1, "round {round}");
            a.set(0, round);
            assert_eq!(a.get(0), round);
            assert_eq!(a.get(1), -1);
        }
    }

    #[test]
    fn resize_preserves_contents() {
        let mut a = TimestampedVec::new(2, 0u8);
        a.set(1, 5);
        a.resize(5);
        assert_eq!(a.get(1), 5);
        assert_eq!(a.get(4), 0);
        a.resize(3); // shrink request ignored
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn version_wraparound_is_handled() {
        let mut a = TimestampedVec::new(1, 0u32);
        // Force the version to the wrap boundary and cross it.
        a.version = u32::MAX - 1;
        a.set(0, 3);
        a.reset(); // version == u32::MAX
        assert_eq!(a.get(0), 0);
        a.set(0, 4);
        a.reset(); // wraps: stamps zeroed
        assert_eq!(a.get(0), 0);
        a.set(0, 5);
        assert_eq!(a.get(0), 5);
    }
}
