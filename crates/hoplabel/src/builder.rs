//! Pruned landmark labeling (Akiba, Iwata, Yoshida — SIGMOD 2013 [2]),
//! generalised from BFS to Dijkstra for weighted directed graphs.
//!
//! For each hub `h` in importance order, a **forward** pruned Dijkstra adds
//! `(h, dis(h,u))` to `Lin(u)` of every settled `u` — unless the labels
//! committed so far already answer `dis(h,u)` at least as well, in which
//! case `u` is *pruned* (its label is skipped and its out-edges are not
//! relaxed). A symmetric **backward** search populates `Lout`. The classic
//! induction shows the resulting labels satisfy the cover property for
//! every pair, while staying far smaller than all-pairs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use kosr_graph::{inf_add, Graph, VertexId, Weight, INFINITY};
use kosr_pathfinding::{Dir, TimestampedVec};

use crate::label::HopLabels;
use crate::order::HubOrder;

/// Preprocessing statistics (feeds Table IX).
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildStats {
    /// Wall-clock preprocessing time.
    pub build_time: std::time::Duration,
    /// Vertices settled across all pruned searches (effort measure).
    pub settled_total: usize,
    /// Labels added (== total entries in the final index).
    pub labels_added: usize,
    /// Searches pruned at the settle step.
    pub pruned_total: usize,
}

/// Builds a 2-hop label index for `g` using the given hub order.
pub fn build(g: &Graph, order: &HubOrder) -> HopLabels {
    build_with_stats(g, order).0
}

/// Builds the index and reports construction statistics.
pub fn build_with_stats(g: &Graph, order: &HubOrder) -> (HopLabels, BuildStats) {
    let start = std::time::Instant::now();
    let n = g.num_vertices();
    let hubs = order.materialize(g);
    assert_eq!(hubs.len(), n, "hub order must cover every vertex");

    let mut labels = HopLabels::empty(n);
    let mut stats = BuildStats::default();

    // O(1) pruning queries: the hub's own opposite-side label set is loaded
    // into a dense timestamped array before each search.
    let mut lookup: TimestampedVec<Weight> = TimestampedVec::new(n, INFINITY);
    let mut dist: TimestampedVec<Weight> = TimestampedVec::new(n, INFINITY);
    let mut heap: BinaryHeap<Reverse<(Weight, VertexId)>> = BinaryHeap::new();

    for &h in &hubs {
        // ---------- forward search: populates Lin ----------
        // Pruning test for settled u: min over x ∈ Lout(h) ∩ Lin(u) of
        // d(h,x)+d(x,u) ≤ d. Load Lout(h) once.
        lookup.reset();
        for (x, d) in labels.lout(h).iter() {
            lookup.set(x.index(), d);
        }
        // h itself is implicitly in both sides with distance 0 only after
        // this search runs; the lookup misses it, which is what makes the
        // first settle (h at distance 0) unpruned.
        dist.reset();
        heap.clear();
        dist.set(h.index(), 0);
        heap.push(Reverse((0, h)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist.get(u.index()) {
                continue;
            }
            stats.settled_total += 1;
            // Pruning query via already-committed labels.
            let mut covered = INFINITY;
            for (x, dx) in labels.lin(u).iter() {
                let via = inf_add(lookup.get(x.index()), dx);
                if via < covered {
                    covered = via;
                }
            }
            if covered <= d {
                stats.pruned_total += 1;
                continue;
            }
            labels.lin_mut(u).push_unsorted(h, d);
            stats.labels_added += 1;
            for (w, wt) in Dir::Forward.edges(g, u) {
                let nd = inf_add(d, wt);
                if nd < dist.get(w.index()) {
                    dist.set(w.index(), nd);
                    heap.push(Reverse((nd, w)));
                }
            }
        }

        // ---------- backward search: populates Lout ----------
        lookup.reset();
        for (x, d) in labels.lin(h).iter() {
            lookup.set(x.index(), d);
        }
        dist.reset();
        heap.clear();
        dist.set(h.index(), 0);
        heap.push(Reverse((0, h)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist.get(u.index()) {
                continue;
            }
            stats.settled_total += 1;
            let mut covered = INFINITY;
            for (x, dx) in labels.lout(u).iter() {
                let via = inf_add(dx, lookup.get(x.index()));
                if via < covered {
                    covered = via;
                }
            }
            if covered <= d {
                stats.pruned_total += 1;
                continue;
            }
            labels.lout_mut(u).push_unsorted(h, d);
            stats.labels_added += 1;
            for (w, wt) in Dir::Backward.edges(g, u) {
                let nd = inf_add(d, wt);
                if nd < dist.get(w.index()) {
                    dist.set(w.index(), nd);
                    heap.push(Reverse((nd, w)));
                }
            }
        }
    }

    // Entries were appended in hub-rank order; public queries merge-join on
    // hub id, so sort each set once.
    for v in 0..n {
        labels.lin_mut(VertexId(v as u32)).sort_by_hub();
        labels.lout_mut(VertexId(v as u32)).sort_by_hub();
    }

    stats.build_time = start.elapsed();
    (labels, stats)
}

/// Exhaustively checks the cover property of `labels` against Dijkstra
/// ground truth — O(|V|²) queries, for tests and small graphs only.
pub fn verify_exact(g: &Graph, labels: &HopLabels) -> Result<(), String> {
    let mut d = kosr_pathfinding::Dijkstra::new(g.num_vertices());
    for s in g.vertices() {
        d.one_to_all(g, Dir::Forward, s);
        for t in g.vertices() {
            let want = d.distance(t);
            let got = labels.distance(s, t);
            if want != got {
                return Err(format!(
                    "dis({s:?},{t:?}): labels say {got}, dijkstra says {want}"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn random_digraph(n: u32, m: usize, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n as usize);
        for _ in 0..m {
            let u = rng.gen_range(0..n);
            let w = rng.gen_range(0..n);
            if u != w {
                b.add_edge(v(u), v(w), rng.gen_range(1..50));
            }
        }
        b.build()
    }

    #[test]
    fn exact_on_random_digraphs_degree_order() {
        for seed in 0..6 {
            let g = random_digraph(40, 140, seed);
            let labels = build(&g, &HubOrder::Degree);
            verify_exact(&g, &labels).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn exact_on_sparse_disconnected_graph() {
        let g = random_digraph(40, 30, 3);
        let labels = build(&g, &HubOrder::Degree);
        verify_exact(&g, &labels).unwrap();
    }

    #[test]
    fn exact_on_undirected_grid() {
        let mut b = GraphBuilder::new(16);
        for r in 0..4u32 {
            for c in 0..4u32 {
                let id = r * 4 + c;
                if c + 1 < 4 {
                    b.add_undirected_edge(v(id), v(id + 1), (id % 5 + 1) as Weight);
                }
                if r + 1 < 4 {
                    b.add_undirected_edge(v(id), v(id + 4), (id % 3 + 1) as Weight);
                }
            }
        }
        let g = b.build();
        let labels = build(&g, &HubOrder::Degree);
        verify_exact(&g, &labels).unwrap();
    }

    #[test]
    fn self_distance_is_zero() {
        let g = random_digraph(20, 60, 8);
        let labels = build(&g, &HubOrder::Degree);
        for s in g.vertices() {
            assert_eq!(labels.distance(s, s), 0);
        }
    }

    #[test]
    fn stats_are_consistent() {
        let g = random_digraph(30, 100, 5);
        let (labels, stats) = build_with_stats(&g, &HubOrder::Degree);
        assert_eq!(stats.labels_added, labels.num_entries());
        assert!(stats.settled_total >= stats.labels_added);
        assert!(stats.build_time.as_nanos() > 0);
    }

    #[test]
    fn pruning_makes_labels_smaller_than_all_pairs() {
        let g = random_digraph(40, 200, 17);
        let labels = build(&g, &HubOrder::Degree);
        // All-pairs would be up to 2*n^2 entries; pruning must beat half that.
        assert!(labels.num_entries() < 40 * 40);
    }

    #[test]
    fn custom_order_still_exact() {
        let g = random_digraph(25, 90, 4);
        // Worst-case order (identity) is slower/bigger but must stay exact.
        let order = HubOrder::Custom((0..25u32).map(v).collect());
        let labels = build(&g, &order);
        verify_exact(&g, &labels).unwrap();
    }
}
