//! 2-hop label storage and distance queries (§IV-A of the paper).
//!
//! Every vertex `v` carries two label sets: `Lin(v)` — entries `(u, dis(u,v))`
//! for selected vertices `u` that reach `v` — and `Lout(v)` — entries
//! `(u', dis(v,u'))` for selected vertices reachable from `v`. The **cover
//! property** guarantees that for any pair `(s, t)` some vertex on a shortest
//! `s→t` path appears in both `Lout(s)` and `Lin(t)`, so
//! `dis(s,t) = min { ds,u + du,t }` over matching entries.

use kosr_graph::{inf_add, is_finite, FxHashMap, VertexId, Weight, INFINITY};
use kosr_pathfinding::TimestampedVec;

/// The label set of one vertex: parallel arrays sorted by hub vertex id.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LabelSet {
    pub(crate) hubs: Vec<VertexId>,
    pub(crate) dists: Vec<Weight>,
}

impl LabelSet {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.hubs.len()
    }

    /// `true` iff the set has no entries.
    pub fn is_empty(&self) -> bool {
        self.hubs.is_empty()
    }

    /// Iterates `(hub, distance)` pairs in ascending hub-id order.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.hubs.iter().copied().zip(self.dists.iter().copied())
    }

    /// The distance recorded for `hub`, if present.
    pub fn get(&self, hub: VertexId) -> Option<Weight> {
        self.hubs.binary_search(&hub).ok().map(|i| self.dists[i])
    }

    pub(crate) fn push_unsorted(&mut self, hub: VertexId, d: Weight) {
        self.hubs.push(hub);
        self.dists.push(d);
    }

    pub(crate) fn sort_by_hub(&mut self) {
        let mut idx: Vec<usize> = (0..self.hubs.len()).collect();
        idx.sort_unstable_by_key(|&i| self.hubs[i]);
        self.hubs = idx.iter().map(|&i| self.hubs[i]).collect();
        self.dists = idx.iter().map(|&i| self.dists[i]).collect();
    }

    /// Inserts (or improves) an entry, keeping hub order. Returns `true` if
    /// the set changed.
    pub fn insert(&mut self, hub: VertexId, d: Weight) -> bool {
        match self.hubs.binary_search(&hub) {
            Ok(i) => {
                if d < self.dists[i] {
                    self.dists[i] = d;
                    true
                } else {
                    false
                }
            }
            Err(i) => {
                self.hubs.insert(i, hub);
                self.dists.insert(i, d);
                true
            }
        }
    }

    /// Removes the entry for `hub`. Returns `true` if it existed.
    pub fn remove(&mut self, hub: VertexId) -> bool {
        match self.hubs.binary_search(&hub) {
            Ok(i) => {
                self.hubs.remove(i);
                self.dists.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Heap bytes used by this set (Table IX's index-size accounting).
    pub fn size_bytes(&self) -> usize {
        self.hubs.len() * (std::mem::size_of::<VertexId>() + std::mem::size_of::<Weight>())
    }
}

/// A complete 2-hop label index (`Lin`/`Lout` for every vertex).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HopLabels {
    pub(crate) lin: Vec<LabelSet>,
    pub(crate) lout: Vec<LabelSet>,
}

impl HopLabels {
    /// An empty index over `n` vertices (populated by the builder or by
    /// deserialization).
    pub fn empty(n: usize) -> Self {
        HopLabels {
            lin: vec![LabelSet::default(); n],
            lout: vec![LabelSet::default(); n],
        }
    }

    /// Assembles an index from prebuilt per-vertex set families — the
    /// zero-copy snapshot install path, which slices whole label arenas
    /// into sets ([`crate::flat`]) instead of inserting entry by entry.
    ///
    /// # Panics
    /// Panics if the families differ in length.
    pub fn from_parts(lin: Vec<LabelSet>, lout: Vec<LabelSet>) -> Self {
        assert_eq!(
            lin.len(),
            lout.len(),
            "Lin/Lout must cover the same vertices"
        );
        HopLabels { lin, lout }
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.lin.len()
    }

    /// The whole `Lin` family, indexed by vertex — what the slab codec
    /// ([`crate::flat`]) serializes in one pass.
    #[inline]
    pub fn lin_sets(&self) -> &[LabelSet] {
        &self.lin
    }

    /// The whole `Lout` family, indexed by vertex.
    #[inline]
    pub fn lout_sets(&self) -> &[LabelSet] {
        &self.lout
    }

    /// `Lin(v)`.
    #[inline]
    pub fn lin(&self, v: VertexId) -> &LabelSet {
        &self.lin[v.index()]
    }

    /// `Lout(v)`.
    #[inline]
    pub fn lout(&self, v: VertexId) -> &LabelSet {
        &self.lout[v.index()]
    }

    /// Mutable `Lin(v)` (dynamic updates).
    pub fn lin_mut(&mut self, v: VertexId) -> &mut LabelSet {
        &mut self.lin[v.index()]
    }

    /// Mutable `Lout(v)` (dynamic updates).
    pub fn lout_mut(&mut self, v: VertexId) -> &mut LabelSet {
        &mut self.lout[v.index()]
    }

    /// `dis(s, t)` by merge-joining `Lout(s)` and `Lin(t)`
    /// (`O(|Lout(s)| + |Lin(t)|)`); [`INFINITY`] when no hub matches.
    pub fn distance(&self, s: VertexId, t: VertexId) -> Weight {
        match self.distance_with_hub(s, t) {
            Some((d, _)) => d,
            None => INFINITY,
        }
    }

    /// Like [`HopLabels::distance`] but also reports the best hub.
    pub fn distance_with_hub(&self, s: VertexId, t: VertexId) -> Option<(Weight, VertexId)> {
        let a = &self.lout[s.index()];
        let b = &self.lin[t.index()];
        let (mut i, mut j) = (0usize, 0usize);
        let mut best: Option<(Weight, VertexId)> = None;
        while i < a.hubs.len() && j < b.hubs.len() {
            match a.hubs[i].cmp(&b.hubs[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let d = inf_add(a.dists[i], b.dists[j]);
                    if best.is_none_or(|(bd, _)| d < bd) {
                        best = Some((d, a.hubs[i]));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        best.filter(|&(d, _)| is_finite(d))
    }

    /// Average `|Lin(v)|` over all vertices (Table IX).
    pub fn avg_lin_size(&self) -> f64 {
        let total: usize = self.lin.iter().map(LabelSet::len).sum();
        total as f64 / self.lin.len().max(1) as f64
    }

    /// Average `|Lout(v)|` over all vertices (Table IX).
    pub fn avg_lout_size(&self) -> f64 {
        let total: usize = self.lout.iter().map(LabelSet::len).sum();
        total as f64 / self.lout.len().max(1) as f64
    }

    /// Total index size in bytes, `Σ_v (|Lin(v)| + |Lout(v)|)` entries
    /// (Table IX).
    pub fn size_bytes(&self) -> usize {
        self.lin
            .iter()
            .chain(self.lout.iter())
            .map(LabelSet::size_bytes)
            .sum()
    }

    /// Total number of label entries.
    pub fn num_entries(&self) -> usize {
        self.lin
            .iter()
            .chain(self.lout.iter())
            .map(LabelSet::len)
            .sum()
    }
}

/// Fixed-target distance oracle: loads `Lin(t)` into an O(1)-lookup array so
/// that `dis(v, t)` costs a single scan of `Lout(v)`.
///
/// StarKOSR calls `dis(v, t)` for every explored route tail; per-query this
/// turns the merge-join into a half-scan. (The paper's "estimation time" row
/// of Table X measures exactly these calls.)
#[derive(Debug)]
pub struct TargetDistancer {
    target: VertexId,
    lookup: FxHashMap<VertexId, Weight>,
    cache: TimestampedVec<Weight>,
    cached: TimestampedVec<bool>,
}

impl TargetDistancer {
    /// Prepares the oracle for target `t`.
    pub fn new(labels: &HopLabels, t: VertexId) -> Self {
        let lin = labels.lin(t);
        let mut lookup = FxHashMap::default();
        lookup.reserve(lin.len());
        for (h, d) in lin.iter() {
            lookup.insert(h, d);
        }
        let n = labels.num_vertices();
        TargetDistancer {
            target: t,
            lookup,
            cache: TimestampedVec::new(n, INFINITY),
            cached: TimestampedVec::new(n, false),
        }
    }

    /// The fixed target.
    pub fn target(&self) -> VertexId {
        self.target
    }

    /// `dis(v, target)`; memoised per source vertex.
    pub fn distance_from(&mut self, labels: &HopLabels, v: VertexId) -> Weight {
        if self.cached.get(v.index()) {
            return self.cache.get(v.index());
        }
        let mut best = INFINITY;
        for (h, d) in labels.lout(v).iter() {
            if let Some(&dt) = self.lookup.get(&h) {
                let total = inf_add(d, dt);
                if total < best {
                    best = total;
                }
            }
        }
        self.cache.set(v.index(), best);
        self.cached.set(v.index(), true);
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn label_set_insert_remove_get() {
        let mut s = LabelSet::default();
        assert!(s.is_empty());
        assert!(s.insert(v(5), 10));
        assert!(s.insert(v(2), 3));
        assert!(s.insert(v(9), 1));
        assert_eq!(s.len(), 3);
        assert_eq!(s.hubs, vec![v(2), v(5), v(9)]);
        assert_eq!(s.get(v(5)), Some(10));
        assert_eq!(s.get(v(4)), None);
        // Improving insert
        assert!(s.insert(v(5), 7));
        assert_eq!(s.get(v(5)), Some(7));
        // Non-improving insert
        assert!(!s.insert(v(5), 8));
        assert_eq!(s.get(v(5)), Some(7));
        assert!(s.remove(v(2)));
        assert!(!s.remove(v(2)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn sort_by_hub_orders_parallel_arrays() {
        let mut s = LabelSet::default();
        s.push_unsorted(v(7), 70);
        s.push_unsorted(v(1), 10);
        s.push_unsorted(v(4), 40);
        s.sort_by_hub();
        assert_eq!(s.hubs, vec![v(1), v(4), v(7)]);
        assert_eq!(s.dists, vec![10, 40, 70]);
    }

    #[test]
    fn distance_merge_join() {
        let mut labels = HopLabels::empty(3);
        // Lout(0): hubs 1 (d 4), 2 (d 10); Lin(2): hubs 1 (d 1), 2 (d 0).
        labels.lout_mut(v(0)).insert(v(1), 4);
        labels.lout_mut(v(0)).insert(v(2), 10);
        labels.lin_mut(v(2)).insert(v(1), 1);
        labels.lin_mut(v(2)).insert(v(2), 0);
        assert_eq!(labels.distance(v(0), v(2)), 5);
        assert_eq!(labels.distance_with_hub(v(0), v(2)), Some((5, v(1))));
        // No common hub → infinity.
        assert_eq!(labels.distance(v(2), v(0)), INFINITY);
        assert_eq!(labels.distance_with_hub(v(2), v(0)), None);
    }

    #[test]
    fn stats_accounting() {
        let mut labels = HopLabels::empty(2);
        labels.lin_mut(v(0)).insert(v(0), 0);
        labels.lin_mut(v(1)).insert(v(0), 2);
        labels.lin_mut(v(1)).insert(v(1), 0);
        labels.lout_mut(v(0)).insert(v(0), 0);
        assert_eq!(labels.num_entries(), 4);
        assert!((labels.avg_lin_size() - 1.5).abs() < 1e-9);
        assert!((labels.avg_lout_size() - 0.5).abs() < 1e-9);
        assert_eq!(labels.size_bytes(), 4 * 12);
    }

    #[test]
    fn target_distancer_matches_merge_join() {
        let mut labels = HopLabels::empty(4);
        labels.lout_mut(v(0)).insert(v(2), 3);
        labels.lout_mut(v(1)).insert(v(2), 8);
        labels.lout_mut(v(1)).insert(v(3), 1);
        labels.lin_mut(v(3)).insert(v(2), 4);
        labels.lin_mut(v(3)).insert(v(3), 0);
        let mut td = TargetDistancer::new(&labels, v(3));
        assert_eq!(td.target(), v(3));
        for s in 0..4u32 {
            assert_eq!(
                td.distance_from(&labels, v(s)),
                labels.distance(v(s), v(3)),
                "s={s}"
            );
            // memoised second call agrees
            assert_eq!(td.distance_from(&labels, v(s)), labels.distance(v(s), v(3)));
        }
    }
}
