//! Flat **CSR-slab codec** for label sets — the `kosr-index` v2 snapshot's
//! building block.
//!
//! Where [`crate::codec`] writes each set length-prefixed (forcing the
//! decoder to walk entry by entry), this module lays a whole family of
//! sets out as three contiguous arenas addressed by one offset array:
//!
//! ```text
//! offsets : (n+1) × u64    prefix sums; offsets[0] = 0, offsets[n] = tot
//! hubs    : tot × u32      row i = hubs[offsets[i]..offsets[i+1]]
//! dists   : tot × u64      parallel to hubs
//! ```
//!
//! Decoding is a bounds-checked reinterpretation: validate the offsets and
//! row invariants in one no-allocation pass, then slice each row straight
//! into a [`LabelSet`] — no per-entry inserts, no sorting (rows are
//! written hub-sorted and the validator refuses anything else).

use bytes::BufMut;
use kosr_graph::{VertexId, Weight};

use crate::label::LabelSet;

/// Why a label slab could not be decoded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlatError {
    /// The region ended before its declared contents.
    Truncated,
    /// The contents break a slab invariant (non-monotone offsets,
    /// unsorted rows, out-of-range hub ids).
    Corrupt(&'static str),
}

impl std::fmt::Display for FlatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlatError::Truncated => write!(f, "label slab truncated"),
            FlatError::Corrupt(what) => write!(f, "corrupt label slab: {what}"),
        }
    }
}

impl std::error::Error for FlatError {}

/// Total entries across `sets` (the `tot` a slab header must declare).
pub fn entry_count(sets: &[LabelSet]) -> u64 {
    sets.iter().map(|s| s.len() as u64).sum()
}

/// Byte length of one slab group over `n` sets with `tot` total entries;
/// `None` when the arithmetic overflows `usize` (a lying header on a
/// 32-bit host) — callers refuse before allocating.
pub fn slab_len(n: usize, tot: u64) -> Option<usize> {
    let offsets = n.checked_add(1)?.checked_mul(8)?;
    let tot = usize::try_from(tot).ok()?;
    let entries = tot.checked_mul(12)?;
    offsets.checked_add(entries)
}

/// Appends the slab encoding of `sets` to `out`.
pub fn encode_sets(sets: &[LabelSet], out: &mut Vec<u8>) {
    let mut off = 0u64;
    out.put_u64_le(0);
    for s in sets {
        off += s.len() as u64;
        out.put_u64_le(off);
    }
    for s in sets {
        for (h, _) in s.iter() {
            out.put_u32_le(h.0);
        }
    }
    for s in sets {
        for (_, d) in s.iter() {
            out.put_u64_le(d);
        }
    }
}

#[inline]
fn read_u64(region: &[u8], idx: usize) -> u64 {
    let b: [u8; 8] = region[idx * 8..idx * 8 + 8].try_into().unwrap();
    u64::from_le_bytes(b)
}

#[inline]
fn read_u32(region: &[u8], idx: usize) -> u32 {
    let b: [u8; 4] = region[idx * 4..idx * 4 + 4].try_into().unwrap();
    u32::from_le_bytes(b)
}

/// Validates one slab group without allocating: `region` must be exactly
/// [`slab_len`]`(n, tot)` bytes whose offsets are monotone, start at 0,
/// end at `tot`, and whose rows hold strictly increasing hub ids below
/// `hub_bound`. Total on adversarial bytes.
pub fn validate_sets(n: usize, tot: u64, hub_bound: u32, region: &[u8]) -> Result<(), FlatError> {
    let expect = slab_len(n, tot).ok_or(FlatError::Truncated)?;
    if region.len() < expect {
        return Err(FlatError::Truncated);
    }
    if region.len() > expect {
        return Err(FlatError::Corrupt("label slab has trailing bytes"));
    }
    let offsets = &region[..(n + 1) * 8];
    let hubs = &region[(n + 1) * 8..(n + 1) * 8 + tot as usize * 4];
    if read_u64(offsets, 0) != 0 {
        return Err(FlatError::Corrupt("label offsets do not start at 0"));
    }
    if read_u64(offsets, n) != tot {
        return Err(FlatError::Corrupt("label offsets do not end at the total"));
    }
    let mut prev_off = 0u64;
    for i in 0..n {
        let next = read_u64(offsets, i + 1);
        if next < prev_off {
            return Err(FlatError::Corrupt("label offsets decrease"));
        }
        if next > tot {
            return Err(FlatError::Corrupt("label offset exceeds the total"));
        }
        let mut prev_hub: Option<u32> = None;
        for e in prev_off as usize..next as usize {
            let h = read_u32(hubs, e);
            if h >= hub_bound {
                return Err(FlatError::Corrupt("label hub out of range"));
            }
            if prev_hub.is_some_and(|p| p >= h) {
                return Err(FlatError::Corrupt("label row not strictly hub-sorted"));
            }
            prev_hub = Some(h);
        }
        prev_off = next;
    }
    Ok(())
}

/// Slices a validated slab group back into owned [`LabelSet`]s. Callers
/// run [`validate_sets`] first; this pass only copies (bounds-checked
/// slicing keeps even a skipped validation panic-free via the length
/// check here).
pub fn decode_sets(n: usize, tot: u64, region: &[u8]) -> Result<Vec<LabelSet>, FlatError> {
    let expect = slab_len(n, tot).ok_or(FlatError::Truncated)?;
    if region.len() != expect {
        return Err(FlatError::Truncated);
    }
    let tot = tot as usize;
    let offsets = &region[..(n + 1) * 8];
    let hubs = &region[(n + 1) * 8..(n + 1) * 8 + tot * 4];
    let dists = &region[(n + 1) * 8 + tot * 4..];
    let mut sets = Vec::with_capacity(n);
    let mut lo = 0usize;
    for i in 0..n {
        let hi = read_u64(offsets, i + 1);
        let hi = usize::try_from(hi)
            .ok()
            .filter(|&hi| hi >= lo && hi <= tot)
            .ok_or(FlatError::Corrupt("label offsets decrease"))?;
        let row_hubs: Vec<VertexId> = hubs[lo * 4..hi * 4]
            .chunks_exact(4)
            .map(|b| VertexId(u32::from_le_bytes(b.try_into().unwrap())))
            .collect();
        let row_dists: Vec<Weight> = dists[lo * 8..hi * 8]
            .chunks_exact(8)
            .map(|b| Weight::from_le_bytes(b.try_into().unwrap()))
            .collect();
        sets.push(LabelSet {
            hubs: row_hubs,
            dists: row_dists,
        });
        lo = hi;
    }
    Ok(sets)
}

/// Decodes one slab group in a **single pass**, checking as it copies:
/// offsets must be monotone and span `[0, tot]`, every row strictly
/// hub-sorted below `hub_bound`. Equivalent to [`validate_sets`] followed
/// by [`decode_sets`] at one walk of the region instead of two — the
/// snapshot install path's variant. Total on adversarial bytes.
pub fn decode_sets_checked(
    n: usize,
    tot: u64,
    hub_bound: u32,
    region: &[u8],
) -> Result<Vec<LabelSet>, FlatError> {
    let expect = slab_len(n, tot).ok_or(FlatError::Truncated)?;
    if region.len() < expect {
        return Err(FlatError::Truncated);
    }
    if region.len() > expect {
        return Err(FlatError::Corrupt("label slab has trailing bytes"));
    }
    let tot = tot as usize;
    let offsets = &region[..(n + 1) * 8];
    let hubs = &region[(n + 1) * 8..(n + 1) * 8 + tot * 4];
    let dists = &region[(n + 1) * 8 + tot * 4..];
    if read_u64(offsets, 0) != 0 {
        return Err(FlatError::Corrupt("label offsets do not start at 0"));
    }
    if read_u64(offsets, n) != tot as u64 {
        return Err(FlatError::Corrupt("label offsets do not end at the total"));
    }
    let mut sets = Vec::with_capacity(n);
    let mut lo = 0usize;
    for i in 0..n {
        let hi = read_u64(offsets, i + 1);
        let hi = usize::try_from(hi)
            .ok()
            .filter(|&hi| hi >= lo && hi <= tot)
            .ok_or(FlatError::Corrupt("label offsets decrease"))?;
        let row_hubs: Vec<VertexId> = hubs[lo * 4..hi * 4]
            .chunks_exact(4)
            .map(|b| VertexId(u32::from_le_bytes(b.try_into().unwrap())))
            .collect();
        // Strict ascent plus a bound on the last element covers every
        // element's bound in one cache-warm sweep of the freshly copied row.
        if row_hubs.windows(2).any(|w| w[0] >= w[1]) {
            return Err(FlatError::Corrupt("label row not strictly hub-sorted"));
        }
        if row_hubs.last().is_some_and(|h| h.0 >= hub_bound) {
            return Err(FlatError::Corrupt("label hub out of range"));
        }
        let row_dists: Vec<Weight> = dists[lo * 8..hi * 8]
            .chunks_exact(8)
            .map(|b| Weight::from_le_bytes(b.try_into().unwrap()))
            .collect();
        sets.push(LabelSet {
            hubs: row_hubs,
            dists: row_dists,
        });
        lo = hi;
    }
    Ok(sets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::HopLabels;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn sample() -> Vec<LabelSet> {
        let mut l = HopLabels::empty(4);
        l.lin_mut(v(0)).insert(v(0), 0);
        l.lin_mut(v(1)).insert(v(0), 5);
        l.lin_mut(v(1)).insert(v(3), 2);
        l.lin_mut(v(3)).insert(v(2), 7);
        l.lin.clone()
    }

    #[test]
    fn roundtrip() {
        let sets = sample();
        let tot = entry_count(&sets);
        let mut buf = Vec::new();
        encode_sets(&sets, &mut buf);
        assert_eq!(buf.len(), slab_len(sets.len(), tot).unwrap());
        validate_sets(sets.len(), tot, 4, &buf).unwrap();
        let back = decode_sets(sets.len(), tot, &buf).unwrap();
        assert_eq!(back, sets);
    }

    #[test]
    fn truncation_and_trailing_rejected() {
        let sets = sample();
        let tot = entry_count(&sets);
        let mut buf = Vec::new();
        encode_sets(&sets, &mut buf);
        for cut in 0..buf.len() {
            assert_eq!(
                validate_sets(sets.len(), tot, 4, &buf[..cut]),
                Err(FlatError::Truncated),
                "cut={cut}"
            );
        }
        buf.push(0);
        assert!(matches!(
            validate_sets(sets.len(), tot, 4, &buf),
            Err(FlatError::Corrupt(_))
        ));
    }

    #[test]
    fn bad_offsets_and_hubs_rejected() {
        let sets = sample();
        let tot = entry_count(&sets);
        let mut buf = Vec::new();
        encode_sets(&sets, &mut buf);
        // Offsets must start at zero.
        let mut bad = buf.clone();
        bad[..8].copy_from_slice(&1u64.to_le_bytes());
        assert!(matches!(
            validate_sets(sets.len(), tot, 4, &bad),
            Err(FlatError::Corrupt(_))
        ));
        // Decreasing offsets.
        let mut bad = buf.clone();
        bad[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            validate_sets(sets.len(), tot, 4, &bad),
            Err(FlatError::Corrupt(_))
        ));
        // Out-of-range hub.
        let hub_base = (sets.len() + 1) * 8;
        let mut bad = buf.clone();
        bad[hub_base..hub_base + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            validate_sets(sets.len(), tot, 4, &bad),
            Err(FlatError::Corrupt("label hub out of range"))
        );
        // Unsorted row: vertex 1's two hubs swapped.
        let mut bad = buf;
        let (a, b) = (hub_base + 4, hub_base + 8);
        let tmp: [u8; 4] = bad[a..a + 4].try_into().unwrap();
        bad.copy_within(b..b + 4, a);
        bad[b..b + 4].copy_from_slice(&tmp);
        assert_eq!(
            validate_sets(sets.len(), tot, 4, &bad),
            Err(FlatError::Corrupt("label row not strictly hub-sorted"))
        );
    }

    #[test]
    fn checked_decode_matches_validate_then_decode() {
        let sets = sample();
        let tot = entry_count(&sets);
        let mut buf = Vec::new();
        encode_sets(&sets, &mut buf);
        // Agreement on the happy path…
        assert_eq!(decode_sets_checked(sets.len(), tot, 4, &buf).unwrap(), sets);
        // …on truncation at every cut…
        for cut in 0..buf.len() {
            assert_eq!(
                decode_sets_checked(sets.len(), tot, 4, &buf[..cut]),
                Err(FlatError::Truncated),
                "cut={cut}"
            );
        }
        // …and on every single-byte corruption: wherever the two-pass
        // pipeline refuses, the fused pass refuses too (and vice versa).
        for pos in 0..buf.len() {
            let mut bad = buf.clone();
            bad[pos] ^= 0xFF;
            let two_pass = validate_sets(sets.len(), tot, 4, &bad)
                .and_then(|()| decode_sets(sets.len(), tot, &bad));
            let fused = decode_sets_checked(sets.len(), tot, 4, &bad);
            assert_eq!(fused.is_ok(), two_pass.is_ok(), "pos={pos}");
            if let (Ok(a), Ok(b)) = (&fused, &two_pass) {
                assert_eq!(a, b, "pos={pos}");
            }
        }
    }

    #[test]
    fn lying_totals_refused_before_allocating() {
        // A slab claiming u64::MAX entries must fail the length check, not
        // drive an allocation.
        assert_eq!(slab_len(4, u64::MAX), None);
        assert_eq!(
            validate_sets(4, u64::MAX, 4, &[0u8; 64]),
            Err(FlatError::Truncated)
        );
        assert_eq!(
            decode_sets(4, u64::MAX, &[0u8; 64]),
            Err(FlatError::Truncated)
        );
        assert_eq!(
            decode_sets_checked(4, u64::MAX, 4, &[0u8; 64]),
            Err(FlatError::Truncated)
        );
    }

    #[test]
    fn empty_family_roundtrips() {
        let sets: Vec<LabelSet> = Vec::new();
        let mut buf = Vec::new();
        encode_sets(&sets, &mut buf);
        assert_eq!(buf.len(), 8);
        validate_sets(0, 0, 0, &buf).unwrap();
        assert_eq!(decode_sets(0, 0, &buf).unwrap(), sets);
    }

    #[test]
    fn errors_render() {
        assert!(FlatError::Truncated.to_string().contains("truncated"));
        assert!(FlatError::Corrupt("x").to_string().contains('x'));
    }
}
