//! Batched label-distance kernels: set-level operations over whole
//! [`LabelSet`] families, the building blocks of the category-pair
//! lower-bound tables in `kosr-index`.
//!
//! A category `C` can be summarised by two **virtual label sets**:
//!
//! * `min_union` over `{ Lin(m) : m ∈ C }` — for each hub `h`, the minimum
//!   `dis(h, m)` over all members — behaves like the `Lin` of a virtual
//!   vertex standing for "any member of C";
//! * `min_union` over `{ Lout(m) : m ∈ C }` — the matching virtual `Lout`.
//!
//! Because the 2-hop labels are exact and every member's shortest paths are
//! covered by its own hubs, a [`min_join`] of two virtual sets is exactly
//! `min_{a ∈ A, b ∈ B} dis(a, b)` — not merely a lower bound. Downstream
//! consumers that mix a virtual set with a concrete vertex's set get the
//! exact source-to-category (or category-to-target) distance the same way.

use kosr_graph::{inf_add, is_finite, VertexId, Weight, INFINITY};

use crate::label::LabelSet;

/// Folds `sets` into one hub-sorted set keeping, per hub, the **minimum**
/// distance observed across all inputs — the "virtual label set" of the
/// union of the underlying vertices. Runs in `O(total · log total)`.
pub fn min_union<'a>(sets: impl IntoIterator<Item = &'a LabelSet>) -> LabelSet {
    let mut entries: Vec<(VertexId, Weight)> = Vec::new();
    for s in sets {
        entries.extend(s.iter());
    }
    entries.sort_unstable();
    let mut out = LabelSet::default();
    for (h, d) in entries {
        match out.hubs.last() {
            Some(&last) if last == h => {} // sorted: first entry per hub is minimal
            _ => {
                out.hubs.push(h);
                out.dists.push(d);
            }
        }
    }
    out
}

/// The minimum `out_dist + in_dist` over hubs common to both sets — the
/// same merge-join as [`crate::HopLabels::distance`], but over arbitrary
/// (possibly virtual) label sets. [`INFINITY`] when no hub matches.
pub fn min_join(out: &LabelSet, inn: &LabelSet) -> Weight {
    let (mut i, mut j) = (0usize, 0usize);
    let mut best = INFINITY;
    while i < out.hubs.len() && j < inn.hubs.len() {
        match out.hubs[i].cmp(&inn.hubs[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let d = inf_add(out.dists[i], inn.dists[j]);
                if d < best {
                    best = d;
                }
                i += 1;
                j += 1;
            }
        }
    }
    if is_finite(best) {
        best
    } else {
        INFINITY
    }
}

/// Merges `extra` into `acc` keeping the per-hub minimum — the incremental
/// (relax-only) form of [`min_union`] used when one member joins an
/// already-summarised category. Every entry of `acc` can only decrease or
/// gain neighbours, never increase. Returns `true` if `acc` changed.
pub fn min_merge_into(acc: &mut LabelSet, extra: &LabelSet) -> bool {
    let mut changed = false;
    for (h, d) in extra.iter() {
        changed |= acc.insert(h, d);
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::HopLabels;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn world() -> HopLabels {
        let mut l = HopLabels::empty(5);
        l.lin_mut(v(1)).insert(v(0), 4);
        l.lin_mut(v(1)).insert(v(2), 9);
        l.lin_mut(v(3)).insert(v(0), 2);
        l.lin_mut(v(3)).insert(v(3), 0);
        l.lout_mut(v(4)).insert(v(0), 1);
        l.lout_mut(v(4)).insert(v(3), 7);
        l
    }

    #[test]
    fn min_union_keeps_per_hub_minimum() {
        let l = world();
        let u = min_union([l.lin(v(1)), l.lin(v(3))]);
        assert_eq!(u.get(v(0)), Some(2), "hub 0: min(4, 2)");
        assert_eq!(u.get(v(2)), Some(9));
        assert_eq!(u.get(v(3)), Some(0));
        assert_eq!(u.len(), 3);
        // Hub order is maintained for downstream merge-joins.
        assert!(u.hubs.windows(2).all(|w| w[0] < w[1]));
        // Empty family → empty virtual set.
        assert!(min_union(std::iter::empty()).is_empty());
    }

    #[test]
    fn min_join_is_min_over_member_pairs() {
        let l = world();
        let virt_in = min_union([l.lin(v(1)), l.lin(v(3))]);
        // dis(4, 1) = 1 + 4 = 5 (hub 0); dis(4, 3) = min(1 + 2, 7 + 0) = 3.
        assert_eq!(min_join(l.lout(v(4)), &virt_in), 3);
        assert_eq!(
            min_join(l.lout(v(4)), &virt_in),
            (1..=3)
                .step_by(2)
                .map(|t| l.distance(v(4), v(t)))
                .min()
                .unwrap()
        );
        // No common hub → INFINITY.
        assert_eq!(min_join(l.lout(v(0)), &virt_in), INFINITY);
    }

    #[test]
    fn min_merge_into_relaxes_and_reports_change() {
        let l = world();
        let mut acc = min_union([l.lin(v(1))]);
        assert!(min_merge_into(&mut acc, l.lin(v(3))));
        assert_eq!(acc, min_union([l.lin(v(1)), l.lin(v(3))]));
        // Re-merging the same set is a no-op.
        assert!(!min_merge_into(&mut acc, l.lin(v(3))));
    }
}
