//! Hub orderings for pruned landmark labeling.
//!
//! Label sizes are extremely sensitive to the order in which hubs are
//! processed. Two practical heuristics are provided:
//!
//! * **Degree** — process high-degree vertices first. Excellent on social
//!   networks (the paper's G+), the original heuristic of [2].
//! * **CH rank** — process vertices in descending contraction-hierarchy
//!   rank. Road networks have low degree everywhere, so degree carries no
//!   signal; CH importance (which approximates reach/highway dimension) is
//!   the established substitute.

use kosr_graph::{Graph, VertexId};

/// Strategy for choosing the hub processing order.
#[derive(Clone, Debug)]
pub enum HubOrder {
    /// Descending total degree, ties by vertex id (deterministic).
    Degree,
    /// An explicit order; must be a permutation of all vertices.
    Custom(Vec<VertexId>),
}

impl HubOrder {
    /// Resolves the strategy into a concrete vertex permutation for `g`.
    pub fn materialize(&self, g: &Graph) -> Vec<VertexId> {
        match self {
            HubOrder::Degree => {
                let mut vs: Vec<VertexId> = g.vertices().collect();
                vs.sort_unstable_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v.0));
                vs
            }
            HubOrder::Custom(order) => order.clone(),
        }
    }

    /// Builds a [`HubOrder::Custom`] from a contraction hierarchy's
    /// descending-rank order (the recommended ordering for road networks).
    pub fn from_ch(ch: &kosr_ch::ContractionHierarchy) -> HubOrder {
        HubOrder::Custom(ch.vertices_by_descending_rank().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_graph::GraphBuilder;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn degree_order_puts_hubs_first() {
        let mut b = GraphBuilder::new(4);
        // v1 has degree 3 (star centre).
        b.add_undirected_edge(v(1), v(0), 1);
        b.add_undirected_edge(v(1), v(2), 1);
        b.add_undirected_edge(v(1), v(3), 1);
        let g = b.build();
        let order = HubOrder::Degree.materialize(&g);
        assert_eq!(order[0], v(1));
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn degree_ties_break_by_id() {
        let mut b = GraphBuilder::new(3);
        b.add_undirected_edge(v(0), v(1), 1);
        b.add_undirected_edge(v(1), v(2), 1);
        let g = b.build();
        let order = HubOrder::Degree.materialize(&g);
        assert_eq!(order, vec![v(1), v(0), v(2)]);
    }

    #[test]
    fn custom_order_passes_through() {
        let g = GraphBuilder::new(3).build();
        let order = HubOrder::Custom(vec![v(2), v(0), v(1)]).materialize(&g);
        assert_eq!(order, vec![v(2), v(0), v(1)]);
    }

    #[test]
    fn ch_order_is_a_permutation() {
        let mut b = GraphBuilder::new(6);
        for i in 0..5u32 {
            b.add_undirected_edge(v(i), v(i + 1), 1 + i as u64);
        }
        let g = b.build();
        let ch = kosr_ch::build(&g);
        let order = HubOrder::from_ch(&ch).materialize(&g);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6u32).map(v).collect::<Vec<_>>());
        // First element has the top rank.
        assert_eq!(ch.rank(order[0]), 5);
    }
}
