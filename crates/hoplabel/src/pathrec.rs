//! Shortest-path reconstruction through the label index.
//!
//! The paper notes (§IV-A) that "given the witness … the actual route can be
//! restored by concatenating all sub-routes between consecutive vertices in
//! the witness". The sub-routes are recovered here by **next-hop walking**:
//! from `cur`, any out-neighbor `n` with
//! `w(cur,n) + dis(n,t) == dis(cur,t)` continues a shortest path. This needs
//! no extra per-label parent storage (the paper's alternative [2]); each
//! step costs one label scan.
//!
//! Graphs with zero-weight cycles could make the greedy walk revisit
//! vertices; a visited set plus an iteration cap detects that, falling back
//! to a bidirectional Dijkstra, so the function is total.

use kosr_graph::{is_finite, Graph, VertexId};
use kosr_pathfinding::{BiDijkstra, Path};

use crate::label::HopLabels;

/// Reconstructs a shortest `s → t` path using label distance queries.
/// Returns `None` iff `t` is unreachable from `s`.
pub fn shortest_path(g: &Graph, labels: &HopLabels, s: VertexId, t: VertexId) -> Option<Path> {
    let total = labels.distance(s, t);
    if !is_finite(total) {
        return None;
    }
    let mut vertices = vec![s];
    let mut cur = s;
    let mut remaining = total;
    let mut visited = kosr_graph::FxHashSet::default();
    visited.insert(s);
    let cap = g.num_vertices() + 1;
    while cur != t && vertices.len() <= cap {
        let mut advanced = false;
        for (n, w) in g.out_edges(cur) {
            if w > remaining || visited.contains(&n) {
                continue;
            }
            if w + labels.distance(n, t) == remaining {
                vertices.push(n);
                visited.insert(n);
                remaining -= w;
                cur = n;
                advanced = true;
                break;
            }
        }
        if !advanced {
            // Zero-weight-cycle corner case: fall back to an exact search.
            let (cost, path) = BiDijkstra::new(g.num_vertices()).shortest_path(g, s, t);
            debug_assert_eq!(cost, total);
            return Some(Path {
                vertices: path,
                cost,
            });
        }
    }
    Some(Path {
        vertices,
        cost: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build;
    use crate::order::HubOrder;
    use kosr_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn reconstructed_paths_validate() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut b = GraphBuilder::new(30);
        for _ in 0..120 {
            let u = rng.gen_range(0..30u32);
            let w = rng.gen_range(0..30u32);
            if u != w {
                b.add_edge(v(u), v(w), rng.gen_range(1..40));
            }
        }
        let g = b.build();
        let labels = build(&g, &HubOrder::Degree);
        for s in 0..30u32 {
            for t in 0..30u32 {
                let want = labels.distance(v(s), v(t));
                match shortest_path(&g, &labels, v(s), v(t)) {
                    Some(p) => {
                        assert_eq!(p.cost, want);
                        assert_eq!(p.source(), v(s));
                        assert_eq!(p.target(), v(t));
                        p.validate(&g).unwrap();
                    }
                    None => assert!(!is_finite(want), "s={s} t={t}"),
                }
            }
        }
    }

    #[test]
    fn trivial_self_path() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(v(0), v(1), 3);
        let g = b.build();
        let labels = build(&g, &HubOrder::Degree);
        let p = shortest_path(&g, &labels, v(0), v(0)).unwrap();
        assert_eq!(p.vertices, vec![v(0)]);
        assert_eq!(p.cost, 0);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(v(0), v(1), 3);
        let g = b.build();
        let labels = build(&g, &HubOrder::Degree);
        assert!(shortest_path(&g, &labels, v(0), v(2)).is_none());
        assert!(shortest_path(&g, &labels, v(1), v(0)).is_none());
    }

    #[test]
    fn zero_weight_edges_are_handled() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(v(0), v(1), 0);
        b.add_edge(v(1), v(0), 0); // zero cycle
        b.add_edge(v(1), v(2), 2);
        b.add_edge(v(2), v(3), 0);
        let g = b.build();
        let labels = build(&g, &HubOrder::Degree);
        let p = shortest_path(&g, &labels, v(0), v(3)).unwrap();
        assert_eq!(p.cost, 2);
        p.validate(&g).unwrap();
    }
}
