//! Binary serialization of hop-label indexes.
//!
//! The format is deliberately simple and versioned: it backs both offline
//! persistence (`Table IX` preprocessing is paid once) and the per-category
//! disk-resident layout used by the SK-DB method (§IV-C, "disk-based query
//! answering").
//!
//! Layout (little endian):
//! ```text
//! magic  : 8 bytes  = b"KOSRHL1\0"
//! n      : u32      vertex count
//! 2n sets: u32 len, then len × (u32 hub, u64 dist)   -- Lin(0), Lout(0), Lin(1), …
//! ```

use bytes::{Buf, BufMut};
use kosr_graph::{VertexId, Weight};

use crate::label::{HopLabels, LabelSet};

const MAGIC: &[u8; 8] = b"KOSRHL1\0";

/// Errors produced while decoding a label index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The magic header is absent or wrong.
    BadMagic,
    /// The buffer ended before the declared contents.
    Truncated,
    /// Trailing bytes after the declared contents.
    TrailingBytes(usize),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "bad magic header"),
            CodecError::Truncated => write!(f, "buffer truncated"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends one label set to `buf`.
pub fn encode_label_set(set: &LabelSet, buf: &mut Vec<u8>) {
    buf.put_u32_le(set.len() as u32);
    for (h, d) in set.iter() {
        buf.put_u32_le(h.0);
        buf.put_u64_le(d);
    }
}

/// Reads one label set from `buf` (advancing it).
pub fn decode_label_set(buf: &mut &[u8]) -> Result<LabelSet, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError::Truncated);
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len * 12 {
        return Err(CodecError::Truncated);
    }
    let mut set = LabelSet::default();
    for _ in 0..len {
        let hub = VertexId(buf.get_u32_le());
        let dist: Weight = buf.get_u64_le();
        set.push_unsorted(hub, dist);
    }
    // Sets are written sorted; keep the invariant even for hand-crafted input.
    set.sort_by_hub();
    Ok(set)
}

/// Serializes a complete index.
pub fn encode(labels: &HopLabels) -> Vec<u8> {
    let mut buf = Vec::with_capacity(12 + labels.size_bytes() + 8 * labels.num_vertices());
    buf.put_slice(MAGIC);
    buf.put_u32_le(labels.num_vertices() as u32);
    for v in 0..labels.num_vertices() {
        let v = VertexId(v as u32);
        encode_label_set(labels.lin(v), &mut buf);
        encode_label_set(labels.lout(v), &mut buf);
    }
    buf
}

/// Deserializes a complete index.
pub fn decode(mut buf: &[u8]) -> Result<HopLabels, CodecError> {
    if buf.remaining() < 8 || &buf[..8] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    buf.advance(8);
    if buf.remaining() < 4 {
        return Err(CodecError::Truncated);
    }
    let n = buf.get_u32_le() as usize;
    // 2n length-prefixed sets follow, ≥ 8n bytes: refuse a lying vertex
    // count before allocating n label slots (blobs arrive over the wire
    // via snapshots, so this is adversarial surface, not just file I/O).
    if n.saturating_mul(8) > buf.remaining() {
        return Err(CodecError::Truncated);
    }
    let mut labels = HopLabels::empty(n);
    for v in 0..n {
        let v = VertexId(v as u32);
        *labels.lin_mut(v) = decode_label_set(&mut buf)?;
        *labels.lout_mut(v) = decode_label_set(&mut buf)?;
    }
    if buf.has_remaining() {
        return Err(CodecError::TrailingBytes(buf.remaining()));
    }
    Ok(labels)
}

/// Writes the index to a file.
pub fn write_to_file(labels: &HopLabels, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, encode(labels))
}

/// Reads an index from a file.
pub fn read_from_file(path: &std::path::Path) -> std::io::Result<HopLabels> {
    let data = std::fs::read(path)?;
    decode(&data).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn sample() -> HopLabels {
        let mut l = HopLabels::empty(3);
        l.lin_mut(v(0)).insert(v(0), 0);
        l.lin_mut(v(1)).insert(v(0), 5);
        l.lin_mut(v(1)).insert(v(1), 0);
        l.lout_mut(v(0)).insert(v(0), 0);
        l.lout_mut(v(0)).insert(v(1), 5);
        l.lout_mut(v(2)).insert(v(2), 0);
        l
    }

    #[test]
    fn roundtrip() {
        let l = sample();
        let buf = encode(&l);
        let l2 = decode(&buf).unwrap();
        assert_eq!(l, l2);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = encode(&sample());
        buf[0] = b'X';
        assert_eq!(decode(&buf), Err(CodecError::BadMagic));
    }

    #[test]
    fn truncation_rejected() {
        let buf = encode(&sample());
        for cut in [4usize, 9, 13, buf.len() - 1] {
            assert_eq!(
                decode(&buf[..cut]),
                Err(if cut < 8 {
                    CodecError::BadMagic
                } else {
                    CodecError::Truncated
                }),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = encode(&sample());
        buf.push(0);
        assert_eq!(decode(&buf), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn file_roundtrip() {
        let l = sample();
        let dir = std::env::temp_dir().join("kosr_codec_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("labels.bin");
        write_to_file(&l, &path).unwrap();
        let l2 = read_from_file(&path).unwrap();
        assert_eq!(l, l2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_index_roundtrip() {
        let l = HopLabels::empty(0);
        assert_eq!(decode(&encode(&l)).unwrap(), l);
    }
}
