//! # kosr-hoplabel
//!
//! 2-hop labeling (hub labeling) for weighted directed graphs — the distance
//! oracle at the heart of the paper's `FindNN`/`FindNEN` operations and of
//! StarKOSR's admissible cost estimation (§IV).
//!
//! * [`build`] — pruned landmark labeling \[2\] generalised to weighted
//!   digraphs (pruned Dijkstra instead of pruned BFS).
//! * [`HubOrder`] — degree ordering (social graphs) or contraction-hierarchy
//!   rank ordering (road networks).
//! * [`HopLabels`] / [`LabelSet`] — merge-join `dis(s,t)` queries, label
//!   statistics for Table IX, and the entry-level updates that back the
//!   dynamic category maintenance of §IV-C.
//! * [`TargetDistancer`] — fixed-target oracle used by StarKOSR's heuristic.
//! * [`codec`] — versioned binary persistence (also the building block of
//!   the SK-DB disk layout).
//! * [`flat`] — CSR-slab codec for label-set families: offset-addressed
//!   arenas whose decode is a bounds-checked reinterpretation (the v2
//!   snapshot's label sections).
//! * [`shortest_path`] — actual-route reconstruction from label queries.
//! * [`IncrementalUpdater`] — §IV-C graph-structure updates: incremental
//!   label maintenance under edge insertions / weight decreases.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
mod builder;
pub mod codec;
pub mod flat;
mod label;
mod order;
mod pathrec;
mod updates;

pub use builder::{build, build_with_stats, verify_exact, BuildStats};
pub use label::{HopLabels, LabelSet, TargetDistancer};
pub use order::HubOrder;
pub use pathrec::shortest_path;
pub use updates::IncrementalUpdater;

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_graph::{GraphBuilder, VertexId};

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// CH-rank ordering on a road-like grid stays exact and is not larger
    /// than the degree ordering by an absurd factor.
    #[test]
    fn ch_order_exact_and_compact_on_grid() {
        let mut b = GraphBuilder::new(36);
        for r in 0..6u32 {
            for c in 0..6u32 {
                let id = r * 6 + c;
                if c + 1 < 6 {
                    b.add_undirected_edge(v(id), v(id + 1), ((id * 7) % 11 + 1) as u64);
                }
                if r + 1 < 6 {
                    b.add_undirected_edge(v(id), v(id + 6), ((id * 5) % 13 + 1) as u64);
                }
            }
        }
        let g = b.build();
        let ch = kosr_ch::build(&g);
        let labels_ch = build(&g, &HubOrder::from_ch(&ch));
        verify_exact(&g, &labels_ch).unwrap();
        let labels_deg = build(&g, &HubOrder::Degree);
        verify_exact(&g, &labels_deg).unwrap();
        // CH ordering should not be dramatically worse than degree ordering
        // on a grid (typically it is substantially better).
        assert!(labels_ch.num_entries() <= labels_deg.num_entries() * 3);
    }

    /// End-to-end: build, serialize, reload, and the reloaded index answers
    /// the same distances.
    #[test]
    fn serialization_preserves_distances() {
        let mut b = GraphBuilder::new(10);
        for i in 0..9u32 {
            b.add_edge(v(i), v(i + 1), (i + 1) as u64);
        }
        b.add_edge(v(9), v(0), 1);
        let g = b.build();
        let labels = build(&g, &HubOrder::Degree);
        let reloaded = codec::decode(&codec::encode(&labels)).unwrap();
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(labels.distance(s, t), reloaded.distance(s, t));
            }
        }
    }
}
