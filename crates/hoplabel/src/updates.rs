//! Incremental label maintenance under **edge insertions / weight
//! decreases** — the paper's "graph structure updates" (§IV-C), which
//! defers to the dynamic-labeling literature ([3] Akiba et al., WWW 2014).
//!
//! Inserting an edge `(a, b, w)` can only *shrink* distances, so the labels
//! only need additions. Every newly improved pair `(s, t)` has a shortest
//! path through the new edge: `s ⇝ a → b ⇝ t`. It therefore suffices to
//!
//! * resume a **forward** pruned Dijkstra for every hub `h ∈ Lin(a)`,
//!   seeded at `b` with distance `d(h,a) + w` (extends `Lin` coverage), and
//! * resume a **backward** pruned Dijkstra for every hub `h ∈ Lout(b)`,
//!   seeded at `a` with distance `w + d(b,h)` (extends `Lout` coverage).
//!
//! Pruning against the *current* labels keeps the index minimal-ish and, as
//! in the static construction, never discards a needed entry: an entry is
//! skipped only when existing labels already answer the hub-to-vertex
//! distance at least as well.
//!
//! Edge **deletions / weight increases** can invalidate entries and are not
//! supported incrementally (the decremental problem is substantially harder
//! — see [3]); rebuild instead. This mirrors the paper, which also only
//! details insert-style maintenance.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use kosr_graph::{inf_add, Graph, VertexId, Weight, INFINITY};
use kosr_pathfinding::{Dir, TimestampedVec};

use crate::label::HopLabels;

/// Scratch state reusable across many edge insertions.
pub struct IncrementalUpdater {
    dist: TimestampedVec<Weight>,
    heap: BinaryHeap<Reverse<(Weight, VertexId)>>,
}

impl IncrementalUpdater {
    /// Creates scratch for graphs with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        IncrementalUpdater {
            dist: TimestampedVec::new(num_vertices, INFINITY),
            heap: BinaryHeap::new(),
        }
    }

    /// Updates `labels` after inserting edge `(a, b, w)` into the graph.
    ///
    /// `g` must be the **post-insertion** graph (the new edge present).
    /// Returns the number of label entries added. Weight *decreases* of an
    /// existing edge are handled identically (pass the new weight).
    pub fn insert_edge(
        &mut self,
        g: &Graph,
        labels: &mut HopLabels,
        a: VertexId,
        b: VertexId,
        w: Weight,
    ) -> usize {
        debug_assert!(g.edge_weight(a, b).is_some_and(|ew| ew <= w));
        let mut added = 0;

        // Forward resumes: hubs that reach `a` may now reach more via b.
        let hubs_in: Vec<(VertexId, Weight)> = labels.lin(a).iter().collect();
        for (h, d_ha) in hubs_in {
            added += self.resume(g, labels, Dir::Forward, h, b, inf_add(d_ha, w));
        }
        // Backward resumes: hubs reachable from `b` are now reachable from
        // more vertices via a.
        let hubs_out: Vec<(VertexId, Weight)> = labels.lout(b).iter().collect();
        for (h, d_bh) in hubs_out {
            added += self.resume(g, labels, Dir::Backward, h, a, inf_add(w, d_bh));
        }
        added
    }

    /// Pruned Dijkstra resumed from `seed` at distance `seed_dist`, adding
    /// `(hub, ·)` entries on the `dir` side.
    fn resume(
        &mut self,
        g: &Graph,
        labels: &mut HopLabels,
        dir: Dir,
        hub: VertexId,
        seed: VertexId,
        seed_dist: Weight,
    ) -> usize {
        self.dist.resize(g.num_vertices());
        self.dist.reset();
        self.heap.clear();
        self.dist.set(seed.index(), seed_dist);
        self.heap.push(Reverse((seed_dist, seed)));
        let mut added = 0;
        while let Some(Reverse((d, u))) = self.heap.pop() {
            if d > self.dist.get(u.index()) {
                continue;
            }
            // Prune: current labels already answer hub↔u at least as well.
            let covered = match dir {
                Dir::Forward => labels.distance(hub, u),
                Dir::Backward => labels.distance(u, hub),
            };
            if covered <= d {
                continue;
            }
            match dir {
                Dir::Forward => {
                    labels.lin_mut(u).insert(hub, d);
                }
                Dir::Backward => {
                    labels.lout_mut(u).insert(hub, d);
                }
            }
            added += 1;
            for (x, wt) in dir.edges(g, u) {
                let nd = inf_add(d, wt);
                if nd < self.dist.get(x.index()) {
                    self.dist.set(x.index(), nd);
                    self.heap.push(Reverse((nd, x)));
                }
            }
        }
        added
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build, verify_exact};
    use crate::order::HubOrder;
    use kosr_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn random_world(seed: u64, n: u32, m: usize) -> Vec<(u32, u32, u64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..m)
            .filter_map(|_| {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                (a != b).then(|| (a, b, rng.gen_range(1..40)))
            })
            .collect()
    }

    fn graph_of(n: u32, edges: &[(u32, u32, u64)]) -> Graph {
        let mut b = GraphBuilder::new(n as usize);
        for &(x, y, w) in edges {
            b.add_edge(v(x), v(y), w);
        }
        b.build()
    }

    /// Insert edges one at a time; after each, the incrementally maintained
    /// index must answer every pair exactly.
    #[test]
    fn incremental_inserts_stay_exact() {
        for seed in 0..5 {
            let n = 25u32;
            let mut edges = random_world(seed, n, 60);
            let extra = random_world(seed ^ 0xFF, n, 6);
            let g0 = graph_of(n, &edges);
            let mut labels = build(&g0, &HubOrder::Degree);
            let mut upd = IncrementalUpdater::new(n as usize);
            for &(a, b, w) in &extra {
                // Skip if a cheaper-or-equal parallel edge already exists
                // (builder would collapse it; no distance change).
                let current = graph_of(n, &edges).edge_weight(v(a), v(b));
                if current.is_some_and(|cw| cw <= w) {
                    continue;
                }
                edges.push((a, b, w));
                let g = graph_of(n, &edges);
                upd.insert_edge(&g, &mut labels, v(a), v(b), w);
                verify_exact(&g, &labels)
                    .unwrap_or_else(|e| panic!("seed {seed} after +({a},{b},{w}): {e}"));
            }
        }
    }

    /// An insertion that creates brand-new reachability (connects two
    /// components) is covered too.
    #[test]
    fn connects_components() {
        let mut b = GraphBuilder::new(6);
        b.add_edge(v(0), v(1), 2);
        b.add_edge(v(1), v(2), 2);
        b.add_edge(v(3), v(4), 2);
        b.add_edge(v(4), v(5), 2);
        let g0 = b.build();
        let mut labels = build(&g0, &HubOrder::Degree);
        assert!(!kosr_graph::is_finite(labels.distance(v(0), v(5))));

        let mut b = GraphBuilder::new(6);
        b.add_edge(v(0), v(1), 2);
        b.add_edge(v(1), v(2), 2);
        b.add_edge(v(3), v(4), 2);
        b.add_edge(v(4), v(5), 2);
        b.add_edge(v(2), v(3), 7); // the bridge
        let g1 = b.build();
        let mut upd = IncrementalUpdater::new(6);
        let added = upd.insert_edge(&g1, &mut labels, v(2), v(3), 7);
        assert!(added > 0);
        verify_exact(&g1, &labels).unwrap();
        assert_eq!(labels.distance(v(0), v(5)), 2 + 2 + 7 + 2 + 2);
    }

    /// A no-op insertion (edge longer than existing paths) adds nothing.
    #[test]
    fn useless_edge_adds_no_labels() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(v(0), v(1), 1);
        b.add_edge(v(1), v(2), 1);
        let g0 = b.build();
        let mut labels = build(&g0, &HubOrder::Degree);
        let before = labels.num_entries();

        let mut b = GraphBuilder::new(3);
        b.add_edge(v(0), v(1), 1);
        b.add_edge(v(1), v(2), 1);
        b.add_edge(v(0), v(2), 50); // dominated by 0→1→2
        let g1 = b.build();
        let mut upd = IncrementalUpdater::new(3);
        let added = upd.insert_edge(&g1, &mut labels, v(0), v(2), 50);
        assert_eq!(added, 0);
        assert_eq!(labels.num_entries(), before);
        verify_exact(&g1, &labels).unwrap();
    }

    /// Weight decreases use the same path.
    #[test]
    fn weight_decrease_is_an_insert() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(v(0), v(1), 10);
        b.add_edge(v(1), v(2), 1);
        let g0 = b.build();
        let mut labels = build(&g0, &HubOrder::Degree);
        assert_eq!(labels.distance(v(0), v(2)), 11);

        // The 0→1 street gets faster.
        let mut b = GraphBuilder::new(3);
        b.add_edge(v(0), v(1), 4);
        b.add_edge(v(1), v(2), 1);
        let g1 = b.build();
        let mut upd = IncrementalUpdater::new(3);
        upd.insert_edge(&g1, &mut labels, v(0), v(1), 4);
        verify_exact(&g1, &labels).unwrap();
        assert_eq!(labels.distance(v(0), v(2)), 5);
    }
}
