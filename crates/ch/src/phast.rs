//! PHAST-style one-to-all / multi-source-to-all sweeps over a contraction
//! hierarchy (Delling et al.): an upward Dijkstra from the seed set followed
//! by a single linear scan of the downward edges in descending rank order.
//!
//! This is the engine behind the GSP baseline's category transition: seed
//! every vertex of category `C_{i-1}` with its dynamic-programming cost
//! `X[i-1][·]`, sweep once, and read off `X[i][·]` at the vertices of `C_i`.
//! Origin tracking records *which* seed realised each minimum, which is all
//! GSP needs to reconstruct the optimal witness.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use kosr_graph::{inf_add, is_finite, VertexId, Weight, INFINITY};
use kosr_pathfinding::TimestampedVec;

use crate::hierarchy::ContractionHierarchy;

const NO_ORIGIN: u32 = u32::MAX;

/// Reusable PHAST sweep state.
#[derive(Clone, Debug)]
pub struct Phast {
    dist: TimestampedVec<Weight>,
    origin: TimestampedVec<u32>,
    heap: BinaryHeap<Reverse<(Weight, VertexId)>>,
}

impl Phast {
    /// Creates sweep state for hierarchies with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Phast {
            dist: TimestampedVec::new(num_vertices, INFINITY),
            origin: TimestampedVec::new(num_vertices, NO_ORIGIN),
            heap: BinaryHeap::new(),
        }
    }

    /// Computes `min_seed (cost(seed) + dis(seed, v))` for **every** vertex
    /// `v`, together with the argmin seed.
    pub fn multi_source_to_all(&mut self, ch: &ContractionHierarchy, seeds: &[(VertexId, Weight)]) {
        let n = ch.num_vertices();
        self.dist.resize(n);
        self.origin.resize(n);
        self.dist.reset();
        self.origin.reset();
        self.heap.clear();

        for &(v, d) in seeds {
            if is_finite(d) && d < self.dist.get(v.index()) {
                self.dist.set(v.index(), d);
                self.origin.set(v.index(), v.0);
                self.heap.push(Reverse((d, v)));
            }
        }

        // Phase 1: upward multi-source Dijkstra.
        while let Some(Reverse((d, v))) = self.heap.pop() {
            if d > self.dist.get(v.index()) {
                continue;
            }
            let ov = self.origin.get(v.index());
            for e in ch.up_edges(v) {
                let nd = inf_add(d, e.weight);
                if nd < self.dist.get(e.other.index()) {
                    self.dist.set(e.other.index(), nd);
                    self.origin.set(e.other.index(), ov);
                    self.heap.push(Reverse((nd, e.other)));
                }
            }
        }

        // Phase 2: downward sweep in descending rank order. When `u` is
        // processed its distance is final, so one pass suffices.
        for &u in ch.vertices_by_descending_rank() {
            let du = self.dist.get(u.index());
            if !is_finite(du) {
                continue;
            }
            let ou = self.origin.get(u.index());
            for e in ch.down_edges(u) {
                let nd = inf_add(du, e.weight);
                if nd < self.dist.get(e.other.index()) {
                    self.dist.set(e.other.index(), nd);
                    self.origin.set(e.other.index(), ou);
                }
            }
        }
    }

    /// One-to-all from a single source.
    pub fn one_to_all(&mut self, ch: &ContractionHierarchy, s: VertexId) {
        self.multi_source_to_all(ch, &[(s, 0)]);
    }

    /// Distance of `v` after the last sweep.
    #[inline]
    pub fn distance(&self, v: VertexId) -> Weight {
        self.dist.get(v.index())
    }

    /// The seed that realised `v`'s minimum, if `v` is reachable.
    #[inline]
    pub fn origin_of(&self, v: VertexId) -> Option<VertexId> {
        let o = self.origin.get(v.index());
        (o != NO_ORIGIN).then_some(VertexId(o))
    }
}
