//! The finished contraction hierarchy: ranks plus three CSR-packed edge
//! families (forward-upward, backward-upward, forward-downward), each edge
//! remembering the contracted *middle* vertex so shortcuts can be unpacked
//! back into original-graph paths.

use kosr_graph::{VertexId, Weight};

/// Sentinel middle for original (non-shortcut) edges.
pub const NO_MIDDLE: u32 = u32::MAX;

/// One hierarchy edge (target/source depending on family, weight, middle).
#[derive(Clone, Copy, Debug)]
pub struct ChEdge {
    /// The far endpoint of the edge.
    pub other: VertexId,
    /// Edge weight (original weight or sum of the two bridged edges).
    pub weight: Weight,
    /// Contracted vertex this shortcut bridges, or [`NO_MIDDLE`].
    pub middle: u32,
}

/// CSR packing of one edge family.
#[derive(Clone, Debug, Default)]
pub(crate) struct ChCsr {
    offsets: Vec<u32>,
    edges: Vec<ChEdge>,
}

impl ChCsr {
    fn from_rows(rows: Vec<Vec<ChEdge>>) -> ChCsr {
        let n = rows.len();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let total: usize = rows.iter().map(Vec::len).sum();
        let mut edges = Vec::with_capacity(total);
        for row in rows {
            edges.extend(row);
            offsets.push(edges.len() as u32);
        }
        ChCsr { offsets, edges }
    }

    #[inline]
    pub(crate) fn row(&self, v: usize) -> &[ChEdge] {
        &self.edges[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    fn len(&self) -> usize {
        self.edges.len()
    }
}

/// A contraction hierarchy over a graph with `rank.len()` vertices.
///
/// Produced by [`crate::build`]; queried through [`crate::ChQuery`] (point
/// to point) and [`crate::Phast`] (one/multi-source to all).
#[derive(Clone, Debug)]
pub struct ContractionHierarchy {
    /// Contraction rank per vertex; higher = contracted later = more
    /// important.
    rank: Vec<u32>,
    /// Vertices sorted by descending rank (the PHAST sweep order).
    by_desc_rank: Vec<VertexId>,
    /// Upward edges leaving each vertex (forward search).
    up_fwd: ChCsr,
    /// Upward edges *entering* each vertex, keyed by the lower endpoint
    /// (backward search walks these against edge direction).
    up_bwd: ChCsr,
    /// Downward edges leaving each vertex (PHAST sweep).
    down_fwd: ChCsr,
}

impl ContractionHierarchy {
    pub(crate) fn assemble(
        rank: Vec<u32>,
        up_fwd: Vec<Vec<ChEdge>>,
        up_bwd: Vec<Vec<ChEdge>>,
        down_fwd: Vec<Vec<ChEdge>>,
    ) -> Self {
        let mut by_desc_rank: Vec<VertexId> = (0..rank.len() as u32).map(VertexId).collect();
        by_desc_rank.sort_unstable_by_key(|v| std::cmp::Reverse(rank[v.index()]));
        ContractionHierarchy {
            rank,
            by_desc_rank,
            up_fwd: ChCsr::from_rows(up_fwd),
            up_bwd: ChCsr::from_rows(up_bwd),
            down_fwd: ChCsr::from_rows(down_fwd),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.rank.len()
    }

    /// The contraction rank of `v` (0 = contracted first).
    #[inline]
    pub fn rank(&self, v: VertexId) -> u32 {
        self.rank[v.index()]
    }

    /// Vertices ordered by descending rank — also a good hub-labeling order.
    pub fn vertices_by_descending_rank(&self) -> &[VertexId] {
        &self.by_desc_rank
    }

    /// Upward out-edges of `v` (forward search relaxes these).
    #[inline]
    pub fn up_edges(&self, v: VertexId) -> &[ChEdge] {
        self.up_fwd.row(v.index())
    }

    /// Upward in-edges of `v` (backward search relaxes these against their
    /// direction; `other` is the higher-ranked source).
    #[inline]
    pub fn up_edges_rev(&self, v: VertexId) -> &[ChEdge] {
        self.up_bwd.row(v.index())
    }

    /// Downward out-edges of `v` (the PHAST sweep relaxes these).
    #[inline]
    pub fn down_edges(&self, v: VertexId) -> &[ChEdge] {
        self.down_fwd.row(v.index())
    }

    /// Total number of stored edges across all families (diagnostics).
    pub fn num_edges(&self) -> usize {
        // up_fwd ∪ down_fwd partitions the augmented forward graph; up_bwd
        // mirrors a subset of it.
        self.up_fwd.len() + self.down_fwd.len()
    }

    /// Number of shortcut edges in the augmented forward graph.
    pub fn num_shortcuts(&self) -> usize {
        self.up_fwd
            .edges
            .iter()
            .chain(self.down_fwd.edges.iter())
            .filter(|e| e.middle != NO_MIDDLE)
            .count()
    }

    /// Recursively expands the hierarchy edge `(a, b)` into the sequence of
    /// original-graph vertices it bridges, excluding `a`, including `b`.
    ///
    /// `weight` must be the stored weight of the edge being unpacked (used
    /// to locate the matching middle).
    pub fn unpack_edge(&self, a: VertexId, b: VertexId, weight: Weight, out: &mut Vec<VertexId>) {
        // Find the edge in either family leaving `a`.
        let edge = self
            .up_fwd
            .row(a.index())
            .iter()
            .chain(self.down_fwd.row(a.index()))
            .find(|e| e.other == b && e.weight == weight)
            .copied();
        match edge {
            Some(e) if e.middle != NO_MIDDLE => {
                let m = VertexId(e.middle);
                // Weights of the two halves are unknown here; resolve them by
                // looking up the cheapest a→m and m→b hierarchy edges.
                let w1 = self.cheapest_edge(a, m).expect("shortcut half a->m");
                let w2 = self.cheapest_edge(m, b).expect("shortcut half m->b");
                debug_assert_eq!(w1 + w2, weight, "shortcut halves must sum");
                self.unpack_edge(a, m, w1, out);
                self.unpack_edge(m, b, w2, out);
            }
            _ => out.push(b),
        }
    }

    fn cheapest_edge(&self, a: VertexId, b: VertexId) -> Option<Weight> {
        self.up_fwd
            .row(a.index())
            .iter()
            .chain(self.down_fwd.row(a.index()))
            .filter(|e| e.other == b)
            .map(|e| e.weight)
            .min()
    }
}
