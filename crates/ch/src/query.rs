//! Point-to-point queries over a contraction hierarchy: bidirectional
//! *upward* Dijkstra with shortcut unpacking for full path retrieval.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use kosr_graph::{inf_add, is_finite, Graph, VertexId, Weight, INFINITY};
use kosr_pathfinding::TimestampedVec;

use crate::hierarchy::ContractionHierarchy;

const NO_PARENT: u32 = u32::MAX;

/// Reusable CH point-to-point query state.
#[derive(Clone, Debug)]
pub struct ChQuery {
    dist_f: TimestampedVec<Weight>,
    dist_b: TimestampedVec<Weight>,
    parent_f: TimestampedVec<u32>,
    parent_b: TimestampedVec<u32>,
    pweight_f: TimestampedVec<Weight>,
    pweight_b: TimestampedVec<Weight>,
    heap_f: BinaryHeap<Reverse<(Weight, VertexId)>>,
    heap_b: BinaryHeap<Reverse<(Weight, VertexId)>>,
    /// Vertices settled by the last query (diagnostics).
    pub settled_count: usize,
}

impl ChQuery {
    /// Creates query state for hierarchies with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        ChQuery {
            dist_f: TimestampedVec::new(num_vertices, INFINITY),
            dist_b: TimestampedVec::new(num_vertices, INFINITY),
            parent_f: TimestampedVec::new(num_vertices, NO_PARENT),
            parent_b: TimestampedVec::new(num_vertices, NO_PARENT),
            pweight_f: TimestampedVec::new(num_vertices, 0),
            pweight_b: TimestampedVec::new(num_vertices, 0),
            heap_f: BinaryHeap::new(),
            heap_b: BinaryHeap::new(),
            settled_count: 0,
        }
    }

    /// Shortest-path distance from `s` to `t` ([`INFINITY`] if unreachable).
    pub fn distance(&mut self, ch: &ContractionHierarchy, s: VertexId, t: VertexId) -> Weight {
        self.run(ch, s, t).0
    }

    /// Shortest path from `s` to `t` in **original-graph vertices**
    /// (shortcuts unpacked), as `(cost, vertices)`; empty when unreachable.
    pub fn shortest_path(
        &mut self,
        ch: &ContractionHierarchy,
        s: VertexId,
        t: VertexId,
    ) -> (Weight, Vec<VertexId>) {
        let (best, meet) = self.run(ch, s, t);
        if !is_finite(best) {
            return (INFINITY, Vec::new());
        }
        let meet = meet.expect("finite distance implies a meeting vertex");

        // Forward half: collect the up-graph hops s → … → meet, then unpack.
        let mut fwd_hops = Vec::new();
        let mut cur = meet;
        while self.parent_f.get(cur.index()) != NO_PARENT {
            let p = VertexId(self.parent_f.get(cur.index()));
            fwd_hops.push((p, cur, self.pweight_f.get(cur.index())));
            cur = p;
        }
        fwd_hops.reverse();
        let mut path = vec![s];
        for (a, b, w) in fwd_hops {
            ch.unpack_edge(a, b, w, &mut path);
        }
        // Backward half: meet → … → t (parents point toward t).
        let mut cur = meet;
        while self.parent_b.get(cur.index()) != NO_PARENT {
            let p = VertexId(self.parent_b.get(cur.index()));
            let w = self.pweight_b.get(cur.index());
            ch.unpack_edge(cur, p, w, &mut path);
            cur = p;
        }
        (best, path)
    }

    fn run(
        &mut self,
        ch: &ContractionHierarchy,
        s: VertexId,
        t: VertexId,
    ) -> (Weight, Option<VertexId>) {
        let n = ch.num_vertices();
        self.dist_f.resize(n);
        self.dist_b.resize(n);
        self.parent_f.resize(n);
        self.parent_b.resize(n);
        self.pweight_f.resize(n);
        self.pweight_b.resize(n);
        self.dist_f.reset();
        self.dist_b.reset();
        self.parent_f.reset();
        self.parent_b.reset();
        self.pweight_f.reset();
        self.pweight_b.reset();
        self.heap_f.clear();
        self.heap_b.clear();
        self.settled_count = 0;

        self.dist_f.set(s.index(), 0);
        self.dist_b.set(t.index(), 0);
        self.heap_f.push(Reverse((0, s)));
        self.heap_b.push(Reverse((0, t)));

        let mut best = INFINITY;
        let mut meet = None;
        if s == t {
            return (0, Some(s));
        }

        // CH stopping rule: a direction may stop once its queue minimum is
        // at least the best meeting cost (paths are up-then-down, so the
        // plain bidirectional sum rule does not apply).
        loop {
            let tf = self.heap_f.peek().map_or(INFINITY, |Reverse((d, _))| *d);
            let tb = self.heap_b.peek().map_or(INFINITY, |Reverse((d, _))| *d);
            if tf >= best && tb >= best {
                break;
            }
            if tf <= tb {
                // Forward step.
                if let Some(Reverse((d, v))) = self.heap_f.pop() {
                    if d > self.dist_f.get(v.index()) {
                        continue;
                    }
                    self.settled_count += 1;
                    let through = inf_add(d, self.dist_b.get(v.index()));
                    if through < best {
                        best = through;
                        meet = Some(v);
                    }
                    // Stall-on-demand: if a higher-ranked in-neighbor u
                    // already offers a shorter way into v, every shortest
                    // path through v goes down through u first — expanding
                    // v upward cannot help.
                    if ch
                        .up_edges_rev(v)
                        .iter()
                        .any(|e| inf_add(self.dist_f.get(e.other.index()), e.weight) < d)
                    {
                        continue;
                    }
                    for e in ch.up_edges(v) {
                        let nd = inf_add(d, e.weight);
                        if nd < self.dist_f.get(e.other.index()) {
                            self.dist_f.set(e.other.index(), nd);
                            self.parent_f.set(e.other.index(), v.0);
                            self.pweight_f.set(e.other.index(), e.weight);
                            self.heap_f.push(Reverse((nd, e.other)));
                        }
                    }
                }
            } else if let Some(Reverse((d, v))) = self.heap_b.pop() {
                if d > self.dist_b.get(v.index()) {
                    continue;
                }
                self.settled_count += 1;
                let through = inf_add(d, self.dist_f.get(v.index()));
                if through < best {
                    best = through;
                    meet = Some(v);
                }
                // Stall-on-demand, mirrored: a higher-ranked out-neighbor
                // that reaches t cheaper makes v's backward expansion moot.
                if ch
                    .up_edges(v)
                    .iter()
                    .any(|e| inf_add(self.dist_b.get(e.other.index()), e.weight) < d)
                {
                    continue;
                }
                for e in ch.up_edges_rev(v) {
                    let nd = inf_add(d, e.weight);
                    if nd < self.dist_b.get(e.other.index()) {
                        self.dist_b.set(e.other.index(), nd);
                        self.parent_b.set(e.other.index(), v.0);
                        self.pweight_b.set(e.other.index(), e.weight);
                        self.heap_b.push(Reverse((nd, e.other)));
                    }
                }
            }
        }
        (best, meet)
    }

    /// Convenience: validates an unpacked path against the original graph.
    pub fn validated_path(
        &mut self,
        ch: &ContractionHierarchy,
        g: &Graph,
        s: VertexId,
        t: VertexId,
    ) -> Option<kosr_pathfinding::Path> {
        let (cost, vertices) = self.shortest_path(ch, s, t);
        if !is_finite(cost) {
            return None;
        }
        let p = kosr_pathfinding::Path { vertices, cost };
        p.validate(g).ok()?;
        Some(p)
    }
}
