//! Contraction-hierarchy preprocessing: node ordering and shortcut
//! insertion.
//!
//! The paper's GSP baseline [29] relies on contraction hierarchies
//! (Geisberger et al., WEA 2008) for its category-to-category transitions;
//! this module is a from-scratch implementation. Vertices are contracted in
//! importance order (edge difference + deleted neighbors, maintained lazily)
//! and a *witness search* decides for every in/out neighbor pair whether a
//! shortcut is needed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use kosr_graph::{inf_add, Graph, VertexId, Weight};

use crate::hierarchy::{ChEdge, ContractionHierarchy, NO_MIDDLE};

/// Tunables for CH preprocessing. The defaults are sensible for road-like
/// and social graphs at the scales used in this workspace.
#[derive(Clone, Debug)]
pub struct ChParams {
    /// Settled-vertex budget of each witness search. Exhausting the budget
    /// conservatively inserts the shortcut (correct, possibly redundant).
    pub witness_settle_limit: usize,
    /// Weight of the edge-difference term in the priority function.
    pub edge_difference_factor: i64,
    /// Weight of the deleted-neighbors term in the priority function.
    pub deleted_neighbors_factor: i64,
}

impl Default for ChParams {
    fn default() -> Self {
        ChParams {
            witness_settle_limit: 500,
            edge_difference_factor: 4,
            deleted_neighbors_factor: 1,
        }
    }
}

/// Dynamic adjacency used only during preprocessing.
#[derive(Clone, Debug)]
struct DynEdge {
    other: VertexId,
    weight: Weight,
    /// Contracted middle vertex if this is a shortcut.
    middle: u32,
}

struct Builder<'g> {
    g: &'g Graph,
    params: ChParams,
    fwd: Vec<Vec<DynEdge>>,
    bwd: Vec<Vec<DynEdge>>,
    contracted: Vec<bool>,
    deleted_neighbors: Vec<i64>,
    /// Scratch for witness searches.
    wit_dist: kosr_pathfinding::TimestampedVec<Weight>,
    wit_heap: BinaryHeap<Reverse<(Weight, VertexId)>>,
}

impl<'g> Builder<'g> {
    fn new(g: &'g Graph, params: ChParams) -> Self {
        let n = g.num_vertices();
        let mut fwd = vec![Vec::new(); n];
        let mut bwd = vec![Vec::new(); n];
        for u in g.vertices() {
            for (v, w) in g.out_edges(u) {
                fwd[u.index()].push(DynEdge {
                    other: v,
                    weight: w,
                    middle: NO_MIDDLE,
                });
                bwd[v.index()].push(DynEdge {
                    other: u,
                    weight: w,
                    middle: NO_MIDDLE,
                });
            }
        }
        Builder {
            g,
            params,
            fwd,
            bwd,
            contracted: vec![false; n],
            deleted_neighbors: vec![0; n],
            wit_dist: kosr_pathfinding::TimestampedVec::new(n, kosr_graph::INFINITY),
            wit_heap: BinaryHeap::new(),
        }
    }

    /// Shortest distance from `u` among non-contracted vertices, avoiding
    /// `banned`, stopping early beyond `limit` or after the settle budget.
    /// Returns tentative distances via `wit_dist` (valid until next call).
    fn witness_search(&mut self, u: VertexId, banned: VertexId, limit: Weight) {
        self.wit_dist.reset();
        self.wit_heap.clear();
        self.wit_dist.set(u.index(), 0);
        self.wit_heap.push(Reverse((0, u)));
        let mut settled = 0usize;
        while let Some(Reverse((d, v))) = self.wit_heap.pop() {
            if d > self.wit_dist.get(v.index()) {
                continue;
            }
            if d > limit || settled >= self.params.witness_settle_limit {
                return;
            }
            settled += 1;
            for e in &self.fwd[v.index()] {
                let x = e.other;
                if x == banned || self.contracted[x.index()] {
                    continue;
                }
                let nd = inf_add(d, e.weight);
                if nd < self.wit_dist.get(x.index()) {
                    self.wit_dist.set(x.index(), nd);
                    self.wit_heap.push(Reverse((nd, x)));
                }
            }
        }
    }

    /// Shortcuts that contracting `v` would require, as
    /// `(from, to, weight)` triples.
    fn required_shortcuts(&mut self, v: VertexId) -> Vec<(VertexId, VertexId, Weight)> {
        let ins: Vec<(VertexId, Weight)> = self.bwd[v.index()]
            .iter()
            .filter(|e| !self.contracted[e.other.index()])
            .map(|e| (e.other, e.weight))
            .collect();
        let outs: Vec<(VertexId, Weight)> = self.fwd[v.index()]
            .iter()
            .filter(|e| !self.contracted[e.other.index()])
            .map(|e| (e.other, e.weight))
            .collect();
        let mut result = Vec::new();
        if ins.is_empty() || outs.is_empty() {
            return result;
        }
        let max_out = outs.iter().map(|&(_, w)| w).max().unwrap_or(0);
        for &(u, w1) in &ins {
            let limit = inf_add(w1, max_out);
            self.witness_search(u, v, limit);
            for &(x, w2) in &outs {
                if x == u {
                    continue;
                }
                let via = inf_add(w1, w2);
                if self.wit_dist.get(x.index()) > via {
                    result.push((u, x, via));
                }
            }
        }
        result
    }

    /// Priority of contracting `v` (lower contracts earlier).
    fn priority(&mut self, v: VertexId) -> i64 {
        let shortcuts = self.required_shortcuts(v).len() as i64;
        let in_deg = self.bwd[v.index()]
            .iter()
            .filter(|e| !self.contracted[e.other.index()])
            .count() as i64;
        let out_deg = self.fwd[v.index()]
            .iter()
            .filter(|e| !self.contracted[e.other.index()])
            .count() as i64;
        let edge_diff = shortcuts - in_deg - out_deg;
        self.params.edge_difference_factor * edge_diff
            + self.params.deleted_neighbors_factor * self.deleted_neighbors[v.index()]
    }

    fn contract(&mut self, v: VertexId) {
        let shortcuts = self.required_shortcuts(v);
        for (u, x, w) in shortcuts {
            // Keep only the cheapest parallel edge.
            if let Some(e) = self.fwd[u.index()].iter_mut().find(|e| e.other == x) {
                if w < e.weight {
                    e.weight = w;
                    e.middle = v.0;
                    let b = self.bwd[x.index()]
                        .iter_mut()
                        .find(|e| e.other == u)
                        .expect("fwd/bwd out of sync");
                    b.weight = w;
                    b.middle = v.0;
                }
                continue;
            }
            self.fwd[u.index()].push(DynEdge {
                other: x,
                weight: w,
                middle: v.0,
            });
            self.bwd[x.index()].push(DynEdge {
                other: u,
                weight: w,
                middle: v.0,
            });
        }
        self.contracted[v.index()] = true;
        for e in &self.fwd[v.index()] {
            if !self.contracted[e.other.index()] {
                self.deleted_neighbors[e.other.index()] += 1;
            }
        }
        for e in &self.bwd[v.index()] {
            if !self.contracted[e.other.index()] {
                self.deleted_neighbors[e.other.index()] += 1;
            }
        }
    }

    fn run(mut self) -> ContractionHierarchy {
        let n = self.g.num_vertices();
        // Initial priorities.
        let mut queue: BinaryHeap<Reverse<(i64, VertexId)>> = BinaryHeap::new();
        for v in self.g.vertices() {
            let p = self.priority(v);
            queue.push(Reverse((p, v)));
        }
        let mut rank = vec![0u32; n];
        let mut next_rank = 0u32;
        while let Some(Reverse((p, v))) = queue.pop() {
            if self.contracted[v.index()] {
                continue;
            }
            // Lazy update: recompute; if no longer minimal, requeue.
            let fresh = self.priority(v);
            if fresh > p {
                if let Some(Reverse((top, _))) = queue.peek() {
                    if fresh > *top {
                        queue.push(Reverse((fresh, v)));
                        continue;
                    }
                }
            }
            self.contract(v);
            rank[v.index()] = next_rank;
            next_rank += 1;
        }

        // Assemble the search graphs. An edge (a, b) of the augmented graph
        // is *upward* if rank(b) > rank(a) and *downward* otherwise.
        let mut up_fwd: Vec<Vec<ChEdge>> = vec![Vec::new(); n];
        let mut up_bwd: Vec<Vec<ChEdge>> = vec![Vec::new(); n];
        let mut down_fwd: Vec<Vec<ChEdge>> = vec![Vec::new(); n];
        for a in 0..n {
            for e in &self.fwd[a] {
                let b = e.other;
                let edge = ChEdge {
                    other: b,
                    weight: e.weight,
                    middle: e.middle,
                };
                if rank[b.index()] > rank[a] {
                    up_fwd[a].push(edge);
                } else {
                    down_fwd[a].push(edge);
                }
            }
            for e in &self.bwd[a] {
                // Edge (e.other -> a); from a's backward perspective it is
                // "upward" when the *source* outranks a.
                let b = e.other;
                if rank[b.index()] > rank[a] {
                    up_bwd[a].push(ChEdge {
                        other: b,
                        weight: e.weight,
                        middle: e.middle,
                    });
                }
            }
        }
        ContractionHierarchy::assemble(rank, up_fwd, up_bwd, down_fwd)
    }
}

/// Builds a contraction hierarchy for `g` with default parameters.
pub fn build(g: &Graph) -> ContractionHierarchy {
    build_with(g, ChParams::default())
}

/// Builds a contraction hierarchy with explicit parameters.
pub fn build_with(g: &Graph, params: ChParams) -> ContractionHierarchy {
    Builder::new(g, params).run()
}
