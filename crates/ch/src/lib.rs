//! # kosr-ch
//!
//! Contraction hierarchies (Geisberger et al., WEA 2008) built from scratch
//! as the substrate of the paper's GSP baseline \[29\], plus PHAST-style
//! one-to-all sweeps for GSP's dynamic-programming transitions.
//!
//! * [`build`] / [`build_with`] — preprocessing: importance ordering (edge
//!   difference + deleted neighbors, lazy updates) and witness-search-driven
//!   shortcut insertion.
//! * [`ContractionHierarchy`] — ranks + upward/downward CSR edge families
//!   with shortcut middles for path unpacking.
//! * [`ChQuery`] — bidirectional upward point-to-point queries.
//! * [`Phast`] — multi-source-to-all sweeps with origin tracking.
//!
//! The hierarchy's descending-rank order doubles as a high-quality hub
//! ordering for the 2-hop labeling in `kosr-hoplabel`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod hierarchy;
mod phast;
mod query;

pub use builder::{build, build_with, ChParams};
pub use hierarchy::{ChEdge, ContractionHierarchy, NO_MIDDLE};
pub use phast::Phast;
pub use query::ChQuery;

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_graph::{Graph, GraphBuilder, VertexId, INFINITY};
    use kosr_pathfinding::{Dijkstra, Dir};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn grid(rows: u32, cols: u32, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new((rows * cols) as usize);
        for r in 0..rows {
            for c in 0..cols {
                let id = r * cols + c;
                if c + 1 < cols {
                    b.add_undirected_edge(v(id), v(id + 1), rng.gen_range(1..20));
                }
                if r + 1 < rows {
                    b.add_undirected_edge(v(id), v(id + cols), rng.gen_range(1..20));
                }
            }
        }
        b.build()
    }

    fn random_digraph(n: u32, m: usize, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n as usize);
        for _ in 0..m {
            let u = rng.gen_range(0..n);
            let w = rng.gen_range(0..n);
            if u != w {
                b.add_edge(v(u), v(w), rng.gen_range(1..100));
            }
        }
        b.build()
    }

    #[test]
    fn ranks_are_a_permutation() {
        let g = grid(5, 5, 1);
        let ch = build(&g);
        let mut seen = [false; 25];
        for u in g.vertices() {
            let r = ch.rank(u) as usize;
            assert!(!seen[r], "duplicate rank {r}");
            seen[r] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(ch.vertices_by_descending_rank().len(), 25);
        // First in the order is the highest-ranked vertex.
        let first = ch.vertices_by_descending_rank()[0];
        assert_eq!(ch.rank(first), 24);
    }

    #[test]
    fn distances_match_dijkstra_on_grid() {
        let g = grid(6, 6, 7);
        let ch = build(&g);
        let mut q = ChQuery::new(g.num_vertices());
        let mut d = Dijkstra::new(g.num_vertices());
        for s in (0..36).step_by(5) {
            d.one_to_all(&g, Dir::Forward, v(s));
            for t in 0..36 {
                assert_eq!(q.distance(&ch, v(s), v(t)), d.distance(v(t)), "s={s} t={t}");
            }
        }
    }

    #[test]
    fn distances_match_dijkstra_on_random_digraphs() {
        for seed in 0..5 {
            let g = random_digraph(60, 220, seed);
            let ch = build(&g);
            let mut q = ChQuery::new(g.num_vertices());
            let mut d = Dijkstra::new(g.num_vertices());
            for s in (0..60).step_by(7) {
                d.one_to_all(&g, Dir::Forward, v(s));
                for t in 0..60 {
                    assert_eq!(
                        q.distance(&ch, v(s), v(t)),
                        d.distance(v(t)),
                        "seed={seed} s={s} t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn unreachable_pairs() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(v(0), v(1), 3);
        b.add_edge(v(2), v(3), 4);
        let g = b.build();
        let ch = build(&g);
        let mut q = ChQuery::new(4);
        assert_eq!(q.distance(&ch, v(0), v(3)), INFINITY);
        assert_eq!(q.distance(&ch, v(1), v(0)), INFINITY);
        assert_eq!(q.distance(&ch, v(0), v(1)), 3);
        let (c, p) = q.shortest_path(&ch, v(0), v(3));
        assert_eq!(c, INFINITY);
        assert!(p.is_empty());
    }

    #[test]
    fn unpacked_paths_are_valid_original_paths() {
        let g = grid(6, 6, 11);
        let ch = build(&g);
        let mut q = ChQuery::new(g.num_vertices());
        let mut d = Dijkstra::new(g.num_vertices());
        for s in [0u32, 7, 13, 35] {
            d.one_to_all(&g, Dir::Forward, v(s));
            for t in [0u32, 5, 17, 30, 35] {
                let (cost, path) = q.shortest_path(&ch, v(s), v(t));
                assert_eq!(cost, d.distance(v(t)));
                if s == t {
                    assert_eq!(path, vec![v(s)]);
                    continue;
                }
                assert_eq!(path.first(), Some(&v(s)));
                assert_eq!(path.last(), Some(&v(t)));
                let mut sum = 0;
                for w in path.windows(2) {
                    sum += g
                        .edge_weight(w[0], w[1])
                        .unwrap_or_else(|| panic!("missing edge {:?}->{:?}", w[0], w[1]));
                }
                assert_eq!(sum, cost);
            }
        }
    }

    #[test]
    fn validated_path_helper() {
        let g = grid(4, 4, 3);
        let ch = build(&g);
        let mut q = ChQuery::new(g.num_vertices());
        let p = q.validated_path(&ch, &g, v(0), v(15)).unwrap();
        assert_eq!(p.source(), v(0));
        assert_eq!(p.target(), v(15));
    }

    #[test]
    fn phast_matches_one_to_all() {
        let g = grid(6, 6, 21);
        let ch = build(&g);
        let mut ph = Phast::new(g.num_vertices());
        let mut d = Dijkstra::new(g.num_vertices());
        for s in [0u32, 9, 35] {
            ph.one_to_all(&ch, v(s));
            d.one_to_all(&g, Dir::Forward, v(s));
            for t in 0..36 {
                assert_eq!(ph.distance(v(t)), d.distance(v(t)), "s={s} t={t}");
            }
        }
    }

    #[test]
    fn phast_multi_source_matches_dijkstra_and_tracks_origins() {
        let g = random_digraph(50, 180, 99);
        let ch = build(&g);
        let seeds = [(v(3), 10u64), (v(17), 0), (v(40), 5)];
        let mut ph = Phast::new(g.num_vertices());
        ph.multi_source_to_all(&ch, &seeds);
        let mut d = Dijkstra::new(g.num_vertices());
        d.multi_source(&g, Dir::Forward, &seeds);
        for t in 0..50 {
            assert_eq!(ph.distance(v(t)), d.distance(v(t)), "t={t}");
            if kosr_graph::is_finite(ph.distance(v(t))) {
                // The origin must be a seed achieving the minimum.
                let o = ph.origin_of(v(t)).unwrap();
                assert!(seeds.iter().any(|&(s, _)| s == o));
            } else {
                assert_eq!(ph.origin_of(v(t)), None);
            }
        }
    }

    #[test]
    fn phast_with_infinite_seeds_ignores_them() {
        let g = grid(3, 3, 2);
        let ch = build(&g);
        let mut ph = Phast::new(g.num_vertices());
        ph.multi_source_to_all(&ch, &[(v(0), INFINITY), (v(4), 2)]);
        assert_eq!(ph.origin_of(v(8)), Some(v(4)));
        assert!(ph.distance(v(0)) >= 2, "v0 reached only through v4's seed");
    }

    #[test]
    fn shortcut_count_reported() {
        let g = grid(8, 8, 5);
        let ch = build(&g);
        // A grid always needs some shortcuts; the count is merely sane.
        assert!(ch.num_shortcuts() < 8 * ch.num_edges());
        assert!(ch.num_edges() >= g.num_edges());
    }

    #[test]
    fn deterministic_build() {
        let g = grid(5, 5, 13);
        let a = build(&g);
        let b = build(&g);
        for u in g.vertices() {
            assert_eq!(a.rank(u), b.rank(u));
        }
    }

    #[test]
    fn custom_params() {
        let g = grid(5, 5, 13);
        let ch = build_with(
            &g,
            ChParams {
                witness_settle_limit: 5, // tiny budget => more shortcuts, still correct
                ..ChParams::default()
            },
        );
        let mut q = ChQuery::new(g.num_vertices());
        let mut d = Dijkstra::new(g.num_vertices());
        d.one_to_all(&g, Dir::Forward, v(0));
        for t in 0..25 {
            assert_eq!(q.distance(&ch, v(0), v(t)), d.distance(v(t)));
        }
    }
}
