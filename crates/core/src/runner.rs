//! High-level runner: bundles a graph with its indexes and dispatches the
//! seven KOSR methods of the paper's evaluation (§V-A "Methods") by name.

use std::io;
use std::path::Path;

use kosr_graph::{CategoryId, Graph};
use kosr_hoplabel::{BuildStats, HopLabels, HubOrder, LabelSet};
use kosr_index::disk::DiskIndex;
use kosr_index::{
    CategoryIndexSet, DijkstraNn, DijkstraTarget, InvertedStats, LabelNn, LabelTarget,
};

use crate::star::star_kosr;
use crate::types::{KosrOutcome, Query};

/// The KOSR methods evaluated in the paper (Figure 3's legend).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// Baseline KPNE with the inverted-label `FindNN`.
    Kpne,
    /// Baseline KPNE with Dijkstra NN searches.
    KpneDij,
    /// PruningKOSR (PK) with `FindNN`.
    Pk,
    /// PruningKOSR with Dijkstra NN searches.
    PkDij,
    /// StarKOSR (SK) with `FindNN` + label estimation.
    Sk,
    /// StarKOSR with Dijkstra NN searches + Dijkstra estimation.
    SkDij,
}

impl Method {
    /// All in-memory methods, in the paper's legend order.
    pub const ALL: [Method; 6] = [
        Method::KpneDij,
        Method::PkDij,
        Method::SkDij,
        Method::Kpne,
        Method::Pk,
        Method::Sk,
    ];

    /// The paper's display name.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Kpne => "KPNE",
            Method::KpneDij => "KPNE-Dij",
            Method::Pk => "PK",
            Method::PkDij => "PK-Dij",
            Method::Sk => "SK",
            Method::SkDij => "SK-Dij",
        }
    }

    /// `true` for the methods that need the label/inverted indexes.
    pub fn needs_index(&self) -> bool {
        matches!(self, Method::Kpne | Method::Pk | Method::Sk)
    }
}

/// A graph bundled with its 2-hop labels and inverted label indexes —
/// everything the in-memory methods need.
pub struct IndexedGraph {
    /// The underlying graph.
    pub graph: Graph,
    /// The 2-hop label index.
    pub labels: HopLabels,
    /// Per-category inverted label indexes.
    pub inverted: CategoryIndexSet,
    /// Label preprocessing statistics (Table IX, top half).
    pub label_stats: BuildStats,
    /// Inverted-index preprocessing statistics (Table IX, bottom half).
    pub inverted_stats: InvertedStats,
}

impl IndexedGraph {
    /// Builds both indexes with the given hub order.
    pub fn build(graph: Graph, order: &HubOrder) -> IndexedGraph {
        let (labels, label_stats) = kosr_hoplabel::build_with_stats(&graph, order);
        let (inverted, inverted_stats) =
            CategoryIndexSet::build_with_stats(&labels, graph.categories());
        IndexedGraph {
            graph,
            labels,
            inverted,
            label_stats,
            inverted_stats,
        }
    }

    /// Builds with the recommended ordering: contraction-hierarchy rank.
    pub fn build_default(graph: Graph) -> IndexedGraph {
        let ch = kosr_ch::build(&graph);
        Self::build(graph, &HubOrder::from_ch(&ch))
    }

    /// Vertex count of the underlying graph.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Selectivity `|V_Ci| / |V|` of category `c`, read from the inverted
    /// label index (the query-time source of truth for planners).
    pub fn category_selectivity(&self, c: CategoryId) -> f64 {
        self.inverted.selectivity(c, self.graph.num_vertices())
    }

    /// Answers `query` with `method`. Providers are constructed fresh per
    /// call, matching the paper's independent-query measurement protocol.
    pub fn run(&self, query: &Query, method: Method) -> KosrOutcome {
        self.run_bounded(query, method, u64::MAX)
    }

    /// [`Self::run`] with an examined-routes budget: the search aborts (with
    /// `stats.truncated = true`) once `limit` routes have been extracted.
    /// This is the admission-control knob serving layers use to keep one
    /// pathological query from monopolising a worker.
    pub fn run_bounded(&self, query: &Query, method: Method, limit: u64) -> KosrOutcome {
        use crate::kpne::kpne_bounded;
        use crate::pruning::pruning_kosr_bounded;
        use crate::star::star_kosr_bounded;
        match method {
            Method::Kpne => kpne_bounded(
                query,
                LabelNn::new(&self.labels, &self.inverted),
                LabelTarget::new(&self.labels, query.target),
                limit,
            ),
            Method::Pk => pruning_kosr_bounded(
                query,
                LabelNn::new(&self.labels, &self.inverted),
                LabelTarget::new(&self.labels, query.target),
                limit,
            ),
            Method::Sk => star_kosr_bounded(
                query,
                LabelNn::new(&self.labels, &self.inverted),
                LabelTarget::new(&self.labels, query.target),
                limit,
            ),
            Method::KpneDij => kpne_bounded(
                query,
                DijkstraNn::new(&self.graph),
                DijkstraTarget::new(&self.graph, query.target),
                limit,
            ),
            Method::PkDij => pruning_kosr_bounded(
                query,
                DijkstraNn::new(&self.graph),
                DijkstraTarget::new(&self.graph, query.target),
                limit,
            ),
            Method::SkDij => star_kosr_bounded(
                query,
                DijkstraNn::new(&self.graph),
                DijkstraTarget::new(&self.graph, query.target),
                limit,
            ),
        }
    }

    /// Writes the SK-DB on-disk index for this graph.
    pub fn write_disk_index(&self, path: &Path) -> io::Result<()> {
        kosr_index::disk::create(path, &self.labels, self.graph.categories())
    }
}

/// Answers `query` with **SK-DB**: StarKOSR over label indexes resident on
/// disk (§IV-C). Per the paper, each query pays `|C| + 4` seeks to load the
/// category segments it needs plus `Lout(s)`/`Lin(t)`, and that load +
/// initialization time is part of the measured query time.
pub fn run_sk_db(disk: &DiskIndex, query: &Query) -> io::Result<KosrOutcome> {
    let t0 = std::time::Instant::now();
    let n = disk.num_vertices();

    // Assemble a query-local mini index holding exactly the loaded parts.
    let mut labels = HopLabels::empty(n);
    *labels.lout_mut(query.source) = disk.load_lout(query.source)?;
    *labels.lin_mut(query.target) = disk.load_lin(query.target)?;
    // The paper also locates the source's and destination's own categories
    // (2 more seeks); loading Lin(s)/Lout(t) keeps self-distances exact.
    *labels.lin_mut(query.source) = disk.load_lin(query.source)?;
    *labels.lout_mut(query.target) = disk.load_lout(query.target)?;

    let mut distinct: Vec<CategoryId> = query.categories.clone();
    distinct.sort_unstable();
    distinct.dedup();
    let max_cat = distinct.iter().map(|c| c.index() + 1).max().unwrap_or(0);
    let mut indexes: Vec<kosr_index::InvertedLabelIndex> = Vec::new();
    indexes.resize_with(max_cat, Default::default);
    for &c in &distinct {
        let segment = disk.load_category(c)?;
        for (v, lout) in segment.louts {
            let slot: &mut LabelSet = labels.lout_mut(v);
            if slot.is_empty() {
                *slot = lout;
            }
        }
        indexes[c.index()] = segment.inverted;
    }
    let inverted = CategoryIndexSet::from_indexes(indexes);

    let mut out = star_kosr(
        query,
        LabelNn::new(&labels, &inverted),
        LabelTarget::new(&labels, query.target),
    );
    // Fold the load time into the reported total (the paper's SK-DB cost).
    out.stats.time.total = t0.elapsed();
    out.stats.time.finalize();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::figure1;
    use kosr_graph::Weight;

    #[test]
    fn all_methods_agree_on_figure1() {
        let fx = figure1();
        let ig = IndexedGraph::build_default(fx.graph.clone());
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        let expect: Vec<Weight> = vec![20, 21, 22];
        for m in Method::ALL {
            let out = ig.run(&q, m);
            assert_eq!(out.costs(), expect, "method {}", m.name());
        }
    }

    #[test]
    fn sk_db_agrees_and_counts_seeks() {
        let fx = figure1();
        let ig = IndexedGraph::build_default(fx.graph.clone());
        let dir = std::env::temp_dir().join(format!("kosr_skdb_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig1.idx");
        ig.write_disk_index(&path).unwrap();

        let disk = DiskIndex::open(&path).unwrap();
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        let out = run_sk_db(&disk, &q).unwrap();
        assert_eq!(out.costs(), vec![20, 21, 22]);
        // |C| + 4 seeks, exactly as §IV-C promises.
        assert_eq!(disk.seek_count(), (q.categories.len() + 4) as u64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn method_metadata() {
        assert_eq!(Method::Sk.name(), "SK");
        assert!(Method::Sk.needs_index());
        assert!(!Method::SkDij.needs_index());
        assert_eq!(Method::ALL.len(), 6);
    }
}
