//! High-level runner: bundles a graph with its indexes and dispatches the
//! seven KOSR methods of the paper's evaluation (§V-A "Methods") by name.

use std::io;
use std::path::Path;

use kosr_graph::{CategoryId, Graph, VertexId, Weight};
use kosr_hoplabel::{BuildStats, HopLabels, HubOrder, IncrementalUpdater, LabelSet};
use kosr_index::disk::DiskIndex;
use kosr_index::{
    CategoryBounds, CategoryIndexSet, DijkstraNn, DijkstraTarget, InvertedStats, LabelNn,
    LabelTarget, SeqBounds,
};

use crate::star::star_kosr;
use crate::types::{KosrOutcome, Query};

/// The KOSR methods evaluated in the paper (Figure 3's legend).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// Baseline KPNE with the inverted-label `FindNN`.
    Kpne,
    /// Baseline KPNE with Dijkstra NN searches.
    KpneDij,
    /// PruningKOSR (PK) with `FindNN`.
    Pk,
    /// PruningKOSR with Dijkstra NN searches.
    PkDij,
    /// StarKOSR (SK) with `FindNN` + label estimation.
    Sk,
    /// StarKOSR with Dijkstra NN searches + Dijkstra estimation.
    SkDij,
}

impl Method {
    /// All in-memory methods, in the paper's legend order.
    pub const ALL: [Method; 6] = [
        Method::KpneDij,
        Method::PkDij,
        Method::SkDij,
        Method::Kpne,
        Method::Pk,
        Method::Sk,
    ];

    /// The paper's display name.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Kpne => "KPNE",
            Method::KpneDij => "KPNE-Dij",
            Method::Pk => "PK",
            Method::PkDij => "PK-Dij",
            Method::Sk => "SK",
            Method::SkDij => "SK-Dij",
        }
    }

    /// `true` for the methods that need the label/inverted indexes.
    pub fn needs_index(&self) -> bool {
        matches!(self, Method::Kpne | Method::Pk | Method::Sk)
    }
}

/// A graph bundled with its 2-hop labels and inverted label indexes —
/// everything the in-memory methods need.
///
/// `Clone` supports the serving layer's copy-on-write updates (and shard
/// replica builds): the clone is deep, so a held snapshot never changes
/// underfoot.
#[derive(Clone)]
pub struct IndexedGraph {
    /// The underlying graph.
    pub graph: Graph,
    /// The 2-hop label index.
    pub labels: HopLabels,
    /// Per-category inverted label indexes.
    pub inverted: CategoryIndexSet,
    /// Offline inter-category lower-bound tables (exact min member-pair
    /// distances), maintained through every live update.
    pub bounds: CategoryBounds,
    /// Label preprocessing statistics (Table IX, top half).
    pub label_stats: BuildStats,
    /// Inverted-index preprocessing statistics (Table IX, bottom half).
    pub inverted_stats: InvertedStats,
}

impl IndexedGraph {
    /// Builds both indexes with the given hub order.
    pub fn build(graph: Graph, order: &HubOrder) -> IndexedGraph {
        let (labels, label_stats) = kosr_hoplabel::build_with_stats(&graph, order);
        let (inverted, inverted_stats) =
            CategoryIndexSet::build_with_stats(&labels, graph.categories());
        let bounds = CategoryBounds::build(&labels, graph.categories());
        IndexedGraph {
            graph,
            labels,
            inverted,
            bounds,
            label_stats,
            inverted_stats,
        }
    }

    /// Builds with the recommended ordering: contraction-hierarchy rank.
    pub fn build_default(graph: Graph) -> IndexedGraph {
        let ch = kosr_ch::build(&graph);
        Self::build(graph, &HubOrder::from_ch(&ch))
    }

    /// Vertex count of the underlying graph.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Selectivity `|V_Ci| / |V|` of category `c`, read from the inverted
    /// label index (the query-time source of truth for planners).
    pub fn category_selectivity(&self, c: CategoryId) -> f64 {
        self.inverted.selectivity(c, self.graph.num_vertices())
    }

    /// Answers `query` with `method`. Providers are constructed fresh per
    /// call, matching the paper's independent-query measurement protocol.
    pub fn run(&self, query: &Query, method: Method) -> KosrOutcome {
        self.run_bounded(query, method, u64::MAX)
    }

    /// [`Self::run`] with an examined-routes budget: the search aborts (with
    /// `stats.truncated = true`) once `limit` routes have been extracted.
    /// This is the admission-control knob serving layers use to keep one
    /// pathological query from monopolising a worker.
    pub fn run_bounded(&self, query: &Query, method: Method, limit: u64) -> KosrOutcome {
        self.run_bounded_opt(query, method, limit, None)
    }

    /// Assembles the remaining-sequence lower bounds for `query` from the
    /// offline category-pair table: `rem[l]` bounds the cost still to pay
    /// by any partial route that has covered `l` categories. Pass the
    /// result to [`Self::run_bounded_opt`] / [`Self::run_canonical_opt`];
    /// the bounds are `k`-independent, so one assembly serves the canonical
    /// wrapper's whole refetch loop (and, upstream, the witness cache).
    pub fn seq_bounds(&self, query: &Query) -> SeqBounds {
        self.bounds
            .seq_bounds(&self.labels, query.source, query.target, &query.categories)
    }

    /// [`Self::run_bounded`] with optional precomputed sequence bounds:
    /// the search orders its queue by `cost + rem[level]` and drops
    /// provably uncompletable candidates (`stats.bound_pruned`). Results
    /// are bit-identical under canonical semantics — the bounds are
    /// admissible and consistent — only the work to reach them shrinks.
    pub fn run_bounded_opt(
        &self,
        query: &Query,
        method: Method,
        limit: u64,
        bounds: Option<&SeqBounds>,
    ) -> KosrOutcome {
        use crate::kpne::kpne_opt;
        use crate::pruning::pruning_kosr_opt;
        use crate::star::star_kosr_opt;
        match method {
            Method::Kpne => kpne_opt(
                query,
                LabelNn::new(&self.labels, &self.inverted),
                LabelTarget::new(&self.labels, query.target),
                limit,
                bounds,
            ),
            Method::Pk => pruning_kosr_opt(
                query,
                LabelNn::new(&self.labels, &self.inverted),
                LabelTarget::new(&self.labels, query.target),
                limit,
                bounds,
            ),
            Method::Sk => star_kosr_opt(
                query,
                LabelNn::new(&self.labels, &self.inverted),
                LabelTarget::new(&self.labels, query.target),
                limit,
                bounds,
            ),
            Method::KpneDij => kpne_opt(
                query,
                DijkstraNn::new(&self.graph),
                DijkstraTarget::new(&self.graph, query.target),
                limit,
                bounds,
            ),
            Method::PkDij => pruning_kosr_opt(
                query,
                DijkstraNn::new(&self.graph),
                DijkstraTarget::new(&self.graph, query.target),
                limit,
                bounds,
            ),
            Method::SkDij => star_kosr_opt(
                query,
                DijkstraNn::new(&self.graph),
                DijkstraTarget::new(&self.graph, query.target),
                limit,
                bounds,
            ),
        }
    }

    /// [`Self::run_bounded`] with **canonical** top-k semantics: the
    /// returned witnesses follow [`crate::Witness::canonical_cmp`]
    /// (nondecreasing cost, ties broken lexicographically on the vertex
    /// tuple) and the selection at the k-th cost boundary is closed over
    /// the whole tie group — independent of method-internal heap order.
    ///
    /// Canonical results give the serving layer two properties raw runs
    /// lack:
    ///
    /// * **prefix stability** — `run_canonical(k')` is exactly the first
    ///   `k'` entries of `run_canonical(k)` for `k' ≤ k`, so a cached
    ///   `k`-result can serve any smaller request by truncation;
    /// * **merge stability** — the canonical top-k of a disjoint union of
    ///   route subspaces equals the bounded-heap merge of the per-subspace
    ///   canonical top-k streams, which is what makes sharded execution
    ///   bit-identical to unsharded.
    ///
    /// Implementation: fetch `k + 1` routes; if the enumeration stopped
    /// inside the tie group at position `k - 1` (last returned cost still
    /// equals the k-th cost), geometrically refetch until the group is
    /// fully enumerated, then sort canonically and truncate. Costs come
    /// out nondecreasing either way, so the extra work is one spare route
    /// in the common (tie-free) case.
    ///
    /// If the examined-routes budget trips, the (partial, truncated)
    /// outcome is returned as-is for the caller's admission control to
    /// surface.
    pub fn run_canonical(&self, query: &Query, method: Method, limit: u64) -> KosrOutcome {
        self.run_canonical_opt(query, method, limit, None)
    }

    /// [`Self::run_canonical`] with optional precomputed sequence bounds
    /// (see [`Self::run_bounded_opt`]). Because the bounds are admissible
    /// and consistent, the canonical output is bit-identical with or
    /// without them.
    pub fn run_canonical_opt(
        &self,
        query: &Query,
        method: Method,
        limit: u64,
        bounds: Option<&SeqBounds>,
    ) -> KosrOutcome {
        if query.k == 0 {
            // Nothing requested; `run_bounded` would also return nothing,
            // and the tie-group check below indexes witnesses[k - 1].
            return KosrOutcome::default();
        }
        let mut fetch = query.k.saturating_add(1);
        loop {
            let mut probe = query.clone();
            probe.k = fetch;
            let mut out = self.run_bounded_opt(&probe, method, limit, bounds);
            if out.stats.truncated {
                out.witnesses.truncate(query.k);
                return out;
            }
            let n = out.witnesses.len();
            let tie_group_closed =
                n < fetch || out.witnesses[n - 1].cost > out.witnesses[query.k - 1].cost;
            if tie_group_closed {
                out.witnesses.sort_by(|a, b| a.canonical_cmp(b));
                out.witnesses.truncate(query.k);
                return out;
            }
            fetch = fetch.saturating_mul(2);
        }
    }

    /// Adds `v` to category `c` (the paper's dynamic *category insert*,
    /// §IV-C), keeping the category table and the inverted label index in
    /// sync. Returns `true` if the membership was newly created.
    ///
    /// # Panics
    /// Panics if `v` or `c` is out of range — callers (the service's
    /// `apply_update`) validate first.
    pub fn insert_membership(&mut self, v: VertexId, c: CategoryId) -> bool {
        let changed =
            self.inverted
                .insert_membership(&self.labels, self.graph.categories_mut(), v, c);
        if changed {
            // Inserts only lower true inter-category distances: relax the
            // bound table in place (row/column `c` recomputed exactly).
            self.bounds.insert_member(&self.labels, v, c);
        }
        changed
    }

    /// Removes `v` from category `c` (the paper's dynamic *category
    /// remove*, §IV-C). Returns `true` if the membership existed.
    ///
    /// # Panics
    /// Panics if `v` or `c` is out of range.
    pub fn remove_membership(&mut self, v: VertexId, c: CategoryId) -> bool {
        let changed =
            self.inverted
                .remove_membership(&self.labels, self.graph.categories_mut(), v, c);
        if changed {
            // Removal can *raise* true minima, which a stored minimum
            // cannot track entry-wise — rebuild the affected row/column
            // from the surviving members to stay exact (and admissible).
            self.bounds
                .remove_member(&self.labels, self.graph.categories(), c);
        }
        changed
    }

    /// Inserts edge `(a, b, w)` — or decreases an existing edge's weight
    /// to `w` — and incrementally repairs every index (the paper's *graph
    /// structure update*, §IV-C):
    ///
    /// 1. the CSR is rebuilt through [`Graph::to_builder`] (CSR storage is
    ///    immutable),
    /// 2. the 2-hop labels are repaired in place by
    ///    [`IncrementalUpdater::insert_edge`] (resumed pruned Dijkstras —
    ///    no full rebuild),
    /// 3. the inverted label indexes are rebuilt from the repaired labels
    ///    **only if** any label entry actually changed.
    ///
    /// Returns the number of label entries added. Weight *increases* are
    /// rejected — decremental label maintenance is an open problem (§IV-C
    /// defers to \[3\]); rebuild the index instead.
    pub fn insert_edge(
        &mut self,
        a: VertexId,
        b: VertexId,
        w: Weight,
    ) -> Result<usize, GraphUpdateError> {
        let n = self.graph.num_vertices();
        if a.index() >= n {
            return Err(GraphUpdateError::VertexOutOfRange(a));
        }
        if b.index() >= n {
            return Err(GraphUpdateError::VertexOutOfRange(b));
        }
        if a == b {
            return Err(GraphUpdateError::SelfLoop);
        }
        if let Some(current) = self.graph.edge_weight(a, b) {
            if current <= w {
                return Err(GraphUpdateError::WeightNotDecreased { current });
            }
        }
        let mut builder = self.graph.to_builder();
        builder.add_edge(a, b, w);
        self.graph = builder.build();
        let mut updater = IncrementalUpdater::new(n);
        let added = updater.insert_edge(&self.graph, &mut self.labels, a, b, w);
        if added > 0 {
            // Inverted lists mirror members' Lin labels; repair by rebuild
            // (grouping existing label entries — no graph searches). The
            // bound tables are derived from the same labels, so rebuild
            // them from the repaired labels in the same stroke.
            self.inverted = CategoryIndexSet::build(&self.labels, self.graph.categories());
            self.bounds = CategoryBounds::build(&self.labels, self.graph.categories());
        }
        Ok(added)
    }

    /// Writes the SK-DB on-disk index for this graph.
    pub fn write_disk_index(&self, path: &Path) -> io::Result<()> {
        kosr_index::disk::create(path, &self.labels, self.graph.categories())
    }

    /// Serializes the full index into one **v2 flat-arena** snapshot blob
    /// ([`kosr_index::arena`]) — what the shard transport ships to a cold
    /// replica joining a shard. The blob carries the inverted label
    /// indexes too, so installing it is a bounds-checked reinterpretation
    /// with no rebuild of any kind.
    pub fn encode_snapshot(&self) -> Vec<u8> {
        kosr_index::arena::encode_snapshot_v2_with_bounds(
            &self.graph,
            &self.labels,
            &self.inverted,
            &self.bounds,
        )
    }

    /// Serializes the graph + 2-hop labels into the legacy **v1** snapshot
    /// format ([`kosr_index::snapshot`]) — the negotiated fallback for
    /// fleet peers that predate the flat-arena format. Worlds whose counts
    /// exceed v1's `u32` fields are refused with a typed
    /// [`SnapshotError::TooLarge`](kosr_index::snapshot::SnapshotError::TooLarge)
    /// instead of being silently truncated.
    pub fn encode_snapshot_v1(&self) -> Result<Vec<u8>, kosr_index::snapshot::SnapshotError> {
        kosr_index::snapshot::encode_snapshot(&self.graph, &self.labels)
    }

    /// Reconstructs an `IndexedGraph` from a snapshot blob of **either**
    /// format, dispatching on the version byte:
    ///
    /// * **v2** ([`kosr_index::arena`]): every structure — graph CSR,
    ///   labels, category tables, inverted indexes — is sliced straight
    ///   out of the validated arenas; no grouping pass runs at all.
    /// * **v1** ([`kosr_index::snapshot`]): the inverted label indexes are
    ///   rebuilt from the decoded `(labels, categories)` pair — a cheap
    ///   grouping pass that reproduces the source's maintained indexes
    ///   entry for entry.
    ///
    /// Either way query results and selectivity stats are preserved
    /// exactly. The label build statistics cannot be recovered from a
    /// blob; the decoded index reports its label-entry count with zeroed
    /// build effort.
    pub fn decode_snapshot(
        bytes: &[u8],
    ) -> Result<IndexedGraph, kosr_index::snapshot::SnapshotError> {
        let (graph, labels, inverted, bounds, inverted_stats) =
            if kosr_index::arena::blob_version(bytes)
                == Some(kosr_index::arena::FLAT_SNAPSHOT_VERSION)
            {
                let start = std::time::Instant::now();
                let (graph, labels, inverted, bounds) =
                    kosr_index::arena::decode_snapshot_v2_full(bytes)?;
                // The accepted header already carries the fleet-wide list
                // and entry totals; reading them back beats re-walking the
                // per-category hash maps the decode just built.
                let (total_lists, total_entries) =
                    kosr_index::arena::blob_inverted_counts(bytes).unwrap_or((0, 0));
                let nc = inverted.num_categories().max(1);
                let stats = kosr_index::InvertedStats {
                    build_time: start.elapsed(),
                    avg_entries_per_category: total_entries as f64 / nc as f64,
                    avg_list_len: if total_lists == 0 {
                        0.0
                    } else {
                        total_entries as f64 / total_lists as f64
                    },
                    size_bytes: total_entries as usize
                        * (std::mem::size_of::<kosr_graph::VertexId>()
                            + std::mem::size_of::<kosr_graph::Weight>()),
                };
                (graph, labels, inverted, bounds, stats)
            } else {
                let (graph, labels) = kosr_index::snapshot::decode_snapshot(bytes)?;
                let (inverted, stats) =
                    CategoryIndexSet::build_with_stats(&labels, graph.categories());
                (graph, labels, inverted, None, stats)
            };
        // Blobs that predate the bounds section (or v1 blobs) rebuild the
        // tables from the decoded labels on install.
        let bounds = bounds.unwrap_or_else(|| CategoryBounds::build(&labels, graph.categories()));
        let label_stats = BuildStats {
            labels_added: labels.num_entries(),
            ..Default::default()
        };
        Ok(IndexedGraph {
            graph,
            labels,
            inverted,
            bounds,
            label_stats,
            inverted_stats,
        })
    }
}

/// Why [`IndexedGraph::insert_edge`] refused a structural update.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphUpdateError {
    /// An endpoint exceeds the graph's vertex count.
    VertexOutOfRange(VertexId),
    /// Self-loops never lie on a shortest path and are not stored.
    SelfLoop,
    /// The edge already exists with weight ≤ the requested one; weight
    /// increases need a rebuild (decremental maintenance unsupported).
    WeightNotDecreased {
        /// The current (smaller or equal) weight of the edge.
        current: Weight,
    },
}

impl std::fmt::Display for GraphUpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphUpdateError::VertexOutOfRange(v) => write!(f, "vertex {v:?} out of range"),
            GraphUpdateError::SelfLoop => write!(f, "self-loops are not stored"),
            GraphUpdateError::WeightNotDecreased { current } => write!(
                f,
                "edge already present with weight {current}; increases need a rebuild"
            ),
        }
    }
}

impl std::error::Error for GraphUpdateError {}

/// Answers `query` with **SK-DB**: StarKOSR over label indexes resident on
/// disk (§IV-C). Per the paper, each query pays `|C| + 4` seeks to load the
/// category segments it needs plus `Lout(s)`/`Lin(t)`, and that load +
/// initialization time is part of the measured query time.
pub fn run_sk_db(disk: &DiskIndex, query: &Query) -> io::Result<KosrOutcome> {
    let t0 = std::time::Instant::now();
    let n = disk.num_vertices();

    // Assemble a query-local mini index holding exactly the loaded parts.
    let mut labels = HopLabels::empty(n);
    *labels.lout_mut(query.source) = disk.load_lout(query.source)?;
    *labels.lin_mut(query.target) = disk.load_lin(query.target)?;
    // The paper also locates the source's and destination's own categories
    // (2 more seeks); loading Lin(s)/Lout(t) keeps self-distances exact.
    *labels.lin_mut(query.source) = disk.load_lin(query.source)?;
    *labels.lout_mut(query.target) = disk.load_lout(query.target)?;

    let mut distinct: Vec<CategoryId> = query.categories.clone();
    distinct.sort_unstable();
    distinct.dedup();
    let max_cat = distinct.iter().map(|c| c.index() + 1).max().unwrap_or(0);
    let mut indexes: Vec<kosr_index::InvertedLabelIndex> = Vec::new();
    indexes.resize_with(max_cat, Default::default);
    for &c in &distinct {
        let segment = disk.load_category(c)?;
        for (v, lout) in segment.louts {
            let slot: &mut LabelSet = labels.lout_mut(v);
            if slot.is_empty() {
                *slot = lout;
            }
        }
        indexes[c.index()] = segment.inverted;
    }
    let inverted = CategoryIndexSet::from_indexes(indexes);

    let mut out = star_kosr(
        query,
        LabelNn::new(&labels, &inverted),
        LabelTarget::new(&labels, query.target),
    );
    // Fold the load time into the reported total (the paper's SK-DB cost).
    out.stats.time.total = t0.elapsed();
    out.stats.time.finalize();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::figure1;
    use kosr_graph::Weight;

    #[test]
    fn all_methods_agree_on_figure1() {
        let fx = figure1();
        let ig = IndexedGraph::build_default(fx.graph.clone());
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        let expect: Vec<Weight> = vec![20, 21, 22];
        for m in Method::ALL {
            let out = ig.run(&q, m);
            assert_eq!(out.costs(), expect, "method {}", m.name());
        }
    }

    #[test]
    fn sk_db_agrees_and_counts_seeks() {
        let fx = figure1();
        let ig = IndexedGraph::build_default(fx.graph.clone());
        let dir = std::env::temp_dir().join(format!("kosr_skdb_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig1.idx");
        ig.write_disk_index(&path).unwrap();

        let disk = DiskIndex::open(&path).unwrap();
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        let out = run_sk_db(&disk, &q).unwrap();
        assert_eq!(out.costs(), vec![20, 21, 22]);
        // |C| + 4 seeks, exactly as §IV-C promises.
        assert_eq!(disk.seek_count(), (q.categories.len() + 4) as u64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn method_metadata() {
        assert_eq!(Method::Sk.name(), "SK");
        assert!(Method::Sk.needs_index());
        assert!(!Method::SkDij.needs_index());
        assert_eq!(Method::ALL.len(), 6);
    }

    /// A world full of cost ties: a 2×`width` bipartite ladder of
    /// unit-weight legs where every `A → B` route costs exactly 3, so the
    /// top-k selection is pure tie-breaking.
    fn tie_world(width: u32) -> (IndexedGraph, Query) {
        let mut b = kosr_graph::GraphBuilder::new(2 + 2 * width as usize);
        let s = kosr_graph::VertexId(0);
        let t = kosr_graph::VertexId(1);
        let ca = b.categories_mut().add_category("A");
        let cb = b.categories_mut().add_category("B");
        for i in 0..width {
            let a = kosr_graph::VertexId(2 + i);
            let bb = kosr_graph::VertexId(2 + width + i);
            b.add_edge(s, a, 1);
            b.categories_mut().insert(a, ca);
            b.categories_mut().insert(bb, cb);
            for j in 0..width {
                b.add_edge(a, kosr_graph::VertexId(2 + width + j), 1);
            }
            b.add_edge(bb, t, 1);
        }
        let g = b.build();
        let ig = IndexedGraph::build_default(g);
        (ig, Query::new(s, t, vec![ca, cb], 0))
    }

    #[test]
    fn canonical_topk_is_method_independent_and_prefix_stable() {
        let (ig, base) = tie_world(4); // 16 routes, all cost 3
        let mut q = base.clone();
        q.k = 6;
        let reference = ig.run_canonical(&q, Method::Sk, u64::MAX);
        assert_eq!(reference.witnesses.len(), 6);
        assert!(reference.costs().iter().all(|&c| c == 3));
        // Canonical order within the tie group is lexicographic.
        for w in reference.witnesses.windows(2) {
            assert!(w[0].canonical_cmp(&w[1]).is_lt());
        }
        // Every method agrees bit-for-bit under canonical semantics.
        for m in Method::ALL {
            let out = ig.run_canonical(&q, m, u64::MAX);
            assert_eq!(
                out.witnesses,
                reference.witnesses,
                "method {} diverged",
                m.name()
            );
        }
        // Prefix stability: top-k' is a prefix of top-k.
        for k in 1..=6 {
            let mut qs = base.clone();
            qs.k = k;
            let small = ig.run_canonical(&qs, Method::Sk, u64::MAX);
            assert_eq!(small.witnesses[..], reference.witnesses[..k]);
        }
    }

    #[test]
    fn bound_pruned_runs_match_unpruned_canonical() {
        let fx = figure1();
        let ig = IndexedGraph::build_default(fx.graph.clone());
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        let sb = ig.seq_bounds(&q);
        assert!(!sb.infeasible());
        for m in Method::ALL {
            let base = ig.run_canonical(&q, m, u64::MAX);
            let opt = ig.run_canonical_opt(&q, m, u64::MAX, Some(&sb));
            assert_eq!(opt.witnesses, base.witnesses, "method {}", m.name());
            assert!(
                opt.stats.examined_routes <= base.stats.examined_routes,
                "bounds must never increase work ({})",
                m.name()
            );
        }
        // Same through the tie world, where ordering mistakes would show.
        let (ig, base_q) = tie_world(4);
        let mut q = base_q;
        q.k = 6;
        let sb = ig.seq_bounds(&q);
        for m in Method::ALL {
            assert_eq!(
                ig.run_canonical_opt(&q, m, u64::MAX, Some(&sb)).witnesses,
                ig.run_canonical(&q, m, u64::MAX).witnesses,
                "method {} diverged under bounds",
                m.name()
            );
        }
        // An infeasible chain is refused at the root without expanding.
        let rev = Query::new(q.target, q.source, q.categories.clone(), 2);
        let sb = ig.seq_bounds(&rev);
        assert!(sb.infeasible());
        let out = ig.run_bounded_opt(&rev, Method::Kpne, u64::MAX, Some(&sb));
        assert!(out.witnesses.is_empty());
        assert_eq!(out.stats.examined_routes, 0);
        assert_eq!(out.stats.bound_pruned, 1);
        assert_eq!(
            ig.run_canonical(&rev, Method::Kpne, u64::MAX).witnesses,
            out.witnesses
        );
    }

    #[test]
    fn canonical_k_zero_returns_empty() {
        let (ig, mut q) = tie_world(2);
        q.k = 0;
        let out = ig.run_canonical(&q, Method::Sk, u64::MAX);
        assert!(out.witnesses.is_empty());
    }

    #[test]
    fn canonical_exhausts_when_fewer_routes_than_k() {
        let (ig, base) = tie_world(2); // 4 routes total
        let mut q = base;
        q.k = 50;
        let out = ig.run_canonical(&q, Method::Pk, u64::MAX);
        assert_eq!(out.witnesses.len(), 4);
        for w in out.witnesses.windows(2) {
            assert!(w[0].canonical_cmp(&w[1]).is_lt());
        }
    }

    #[test]
    fn canonical_propagates_budget_truncation() {
        let (ig, base) = tie_world(4);
        let mut q = base;
        q.k = 6;
        let out = ig.run_canonical(&q, Method::Sk, 1);
        assert!(out.stats.truncated);
        assert!(out.witnesses.len() <= 6);
    }

    #[test]
    fn membership_updates_change_answers_in_place() {
        let fx = figure1();
        let mut ig = IndexedGraph::build_default(fx.graph.clone());
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        assert_eq!(
            ig.run_canonical(&q, Method::Sk, u64::MAX).costs(),
            vec![20, 21, 22]
        );

        // Make the destination itself a restaurant: routes can satisfy RE
        // at t... (t is after CI in the sequence, so answers only change if
        // t helps as an intermediate stop). Use a targeted check instead:
        // remove a restaurant used by the best routes and verify against a
        // from-scratch rebuild of the mutated world.
        let re_members: Vec<VertexId> = fx.graph.categories().vertices_of(fx.re).to_vec();
        let gone = re_members[0];
        assert!(ig.remove_membership(gone, fx.re));
        assert!(
            !ig.remove_membership(gone, fx.re),
            "second remove is a no-op"
        );

        let mut g2 = fx.graph.clone();
        g2.categories_mut().remove(gone, fx.re);
        let fresh = IndexedGraph::build_default(g2);
        for m in [Method::Kpne, Method::Pk, Method::Sk] {
            assert_eq!(
                ig.run_canonical(&q, m, u64::MAX).witnesses,
                fresh.run_canonical(&q, m, u64::MAX).witnesses,
                "incrementally updated index diverged from rebuild ({})",
                m.name()
            );
        }

        // And back: reinsert restores the original answers.
        assert!(ig.insert_membership(gone, fx.re));
        assert!(!ig.insert_membership(gone, fx.re));
        assert_eq!(
            ig.run_canonical(&q, Method::Sk, u64::MAX).costs(),
            vec![20, 21, 22]
        );
    }

    #[test]
    fn snapshot_roundtrip_preserves_answers_and_indexes() {
        let fx = figure1();
        let mut ig = IndexedGraph::build_default(fx.graph.clone());
        // Mutate first so the snapshot captures *maintained* state, not
        // just freshly built state.
        let gone = fx.graph.categories().vertices_of(fx.re)[0];
        assert!(ig.remove_membership(gone, fx.re));

        let blob = ig.encode_snapshot();
        let back = IndexedGraph::decode_snapshot(&blob).unwrap();

        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
        for m in Method::ALL {
            assert_eq!(
                back.run_canonical(&q, m, u64::MAX).witnesses,
                ig.run_canonical(&q, m, u64::MAX).witnesses,
                "snapshot replica diverged ({})",
                m.name()
            );
        }
        // Inverted indexes and the selectivity stats planners key off are
        // reproduced exactly.
        for c in 0..ig.graph.categories().num_categories() {
            let c = CategoryId(c as u32);
            assert_eq!(back.inverted.members_of(c), ig.inverted.members_of(c));
            assert_eq!(
                back.inverted.category(c).num_entries(),
                ig.inverted.category(c).num_entries()
            );
            assert_eq!(back.category_selectivity(c), ig.category_selectivity(c));
        }
        assert_eq!(back.label_stats.labels_added, ig.labels.num_entries());

        // Damaged blobs surface typed errors instead of panicking.
        assert!(IndexedGraph::decode_snapshot(&blob[..blob.len() / 2]).is_err());
        assert!(IndexedGraph::decode_snapshot(&[]).is_err());
    }

    #[test]
    fn edge_insert_repairs_labels_and_inverted_index() {
        let fx = figure1();
        let mut ig = IndexedGraph::build_default(fx.graph.clone());
        let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);

        // A new expressway from s straight to the first mall slashes costs.
        let ma_members: Vec<VertexId> = fx.graph.categories().vertices_of(fx.ma).to_vec();
        let mall = ma_members[0];
        let added = ig.insert_edge(fx.s, mall, 1).expect("valid update");
        assert!(added > 0);

        let mut b2 = fx.graph.to_builder();
        b2.add_edge(fx.s, mall, 1);
        let fresh = IndexedGraph::build_default(b2.build());
        for m in [Method::Kpne, Method::Pk, Method::Sk] {
            assert_eq!(
                ig.run_canonical(&q, m, u64::MAX).witnesses,
                fresh.run_canonical(&q, m, u64::MAX).witnesses,
                "post-edge-insert index diverged from rebuild ({})",
                m.name()
            );
        }

        // Typed rejections.
        assert_eq!(
            ig.insert_edge(fx.s, fx.s, 1),
            Err(GraphUpdateError::SelfLoop)
        );
        assert_eq!(
            ig.insert_edge(fx.s, mall, 5),
            Err(GraphUpdateError::WeightNotDecreased { current: 1 })
        );
        assert!(matches!(
            ig.insert_edge(fx.s, VertexId(99), 1),
            Err(GraphUpdateError::VertexOutOfRange(_))
        ));
        assert!(GraphUpdateError::SelfLoop.to_string().contains("loop"));
    }
}
