//! Query, witness and result types (Definitions 3–5 of the paper).

use kosr_graph::{CategoryId, Graph, VertexId, Weight};

/// A KOSR query `(s, t, C, k)` (Definition 5).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Query {
    /// Source vertex `s`.
    pub source: VertexId,
    /// Destination vertex `t`.
    pub target: VertexId,
    /// The category sequence `C = ⟨C1, …, Cj⟩`, visited in order.
    pub categories: Vec<CategoryId>,
    /// Number of routes requested.
    pub k: usize,
}

impl Query {
    /// Convenience constructor.
    pub fn new(source: VertexId, target: VertexId, categories: Vec<CategoryId>, k: usize) -> Query {
        Query {
            source,
            target,
            categories,
            k,
        }
    }

    /// `|C|`, the category-sequence length.
    pub fn num_categories(&self) -> usize {
        self.categories.len()
    }

    /// Number of levels a complete witness spans: `|C| + 2`
    /// (source + categories + destination).
    pub fn witness_len(&self) -> usize {
        self.categories.len() + 2
    }

    /// Checks the query against a graph before running it: endpoints and
    /// categories must exist, `k` must be positive, and every queried
    /// category must have at least one member (otherwise no feasible route
    /// can exist — reported eagerly rather than after a fruitless search).
    pub fn validate(&self, g: &Graph) -> Result<(), QueryError> {
        if self.source.index() >= g.num_vertices() {
            return Err(QueryError::SourceOutOfRange(self.source));
        }
        if self.target.index() >= g.num_vertices() {
            return Err(QueryError::TargetOutOfRange(self.target));
        }
        if self.k == 0 {
            return Err(QueryError::ZeroK);
        }
        for &c in &self.categories {
            if c.index() >= g.categories().num_categories() {
                return Err(QueryError::UnknownCategory(c));
            }
            if g.categories().category_size(c) == 0 {
                return Err(QueryError::EmptyCategory(c));
            }
        }
        Ok(())
    }
}

/// Why a [`Query`] cannot be answered over a given graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// The source vertex id exceeds the graph's vertex count.
    SourceOutOfRange(VertexId),
    /// The target vertex id exceeds the graph's vertex count.
    TargetOutOfRange(VertexId),
    /// `k == 0` requests nothing.
    ZeroK,
    /// A category id exceeds the graph's category count.
    UnknownCategory(CategoryId),
    /// A queried category has no member vertices.
    EmptyCategory(CategoryId),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::SourceOutOfRange(v) => write!(f, "source {v:?} out of range"),
            QueryError::TargetOutOfRange(v) => write!(f, "target {v:?} out of range"),
            QueryError::ZeroK => write!(f, "k must be positive"),
            QueryError::UnknownCategory(c) => write!(f, "unknown category {c:?}"),
            QueryError::EmptyCategory(c) => write!(f, "category {c:?} has no members"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A witness `⟨s, v1, …, vj, t⟩` (Definition 4) with its cost
/// `Σ dis(v_i, v_{i+1})`.
///
/// Two feasible routes are the same iff their witnesses coincide; the
/// algorithms therefore enumerate witnesses, and
/// [`Witness::materialize`] recovers an actual minimum-cost route.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Witness {
    /// The vertex tuple, `categories.len() + 2` entries.
    pub vertices: Vec<VertexId>,
    /// Sum of shortest-path distances between consecutive entries.
    pub cost: Weight,
}

impl Witness {
    /// The **canonical order** of witnesses: nondecreasing cost (the
    /// paper's route order), with cost ties broken lexicographically on the
    /// vertex tuple. This is a total order independent of which algorithm
    /// (or which shard) produced the witness, so canonicalised top-k
    /// results are stable under `k` (`top-k'` is a prefix of `top-k` for
    /// `k' < k`) and under cross-shard merging.
    pub fn canonical_cmp(&self, other: &Witness) -> std::cmp::Ordering {
        self.cost
            .cmp(&other.cost)
            .then_with(|| self.vertices.cmp(&other.vertices))
    }

    /// Expands the witness into an actual route (Definition 2) by
    /// concatenating shortest paths between consecutive witness vertices,
    /// reconstructed through the label index.
    ///
    /// Returns `None` if some leg is unreachable (cannot happen for
    /// witnesses produced by the query algorithms).
    pub fn materialize(
        &self,
        g: &Graph,
        labels: &kosr_hoplabel::HopLabels,
    ) -> Option<kosr_pathfinding::Path> {
        let mut route = kosr_pathfinding::Path::trivial(*self.vertices.first()?);
        for pair in self.vertices.windows(2) {
            if pair[0] == pair[1] {
                continue; // zero-cost leg: the same vertex serves both slots
            }
            let leg = kosr_hoplabel::shortest_path(g, labels, pair[0], pair[1])?;
            route = route.concat(&leg);
        }
        Some(route)
    }
}

/// Wall-clock decomposition of one query (Table X of the paper).
#[derive(Clone, Copy, Debug, Default)]
pub struct TimeBreakdown {
    /// Total query time.
    pub total: std::time::Duration,
    /// Time inside `FindNN` / the NN provider.
    pub nn: std::time::Duration,
    /// Time maintaining the global priority queue.
    pub queue: std::time::Duration,
    /// Time spent computing `dis(·, t)` estimates (StarKOSR only).
    pub estimation: std::time::Duration,
    /// `total - nn - queue - estimation`.
    pub other: std::time::Duration,
}

impl TimeBreakdown {
    /// Recomputes `other` as the remainder of `total` after the tracked
    /// components (saturating). Called after the components are filled in
    /// (per-query by the algorithms, or by cross-shard aggregation).
    pub fn finalize(&mut self) {
        self.other = self
            .total
            .saturating_sub(self.nn)
            .saturating_sub(self.queue)
            .saturating_sub(self.estimation);
    }
}

/// Instrumentation collected while answering one query — exactly the three
/// evaluation criteria of §V-A plus the Figure 5 per-level breakdown.
#[derive(Clone, Debug, Default)]
pub struct QueryStats {
    /// Routes (witnesses) extracted from the global priority queue.
    pub examined_routes: u64,
    /// Fresh nearest-neighbor computations (NL-cache hits excluded).
    pub nn_queries: u64,
    /// Examined routes per witness level 0..=|C|+1 (Figure 5).
    pub examined_per_level: Vec<u64>,
    /// Peak size of the global priority queue.
    pub heap_peak: usize,
    /// Routes parked as dominated (PruningKOSR / StarKOSR only).
    pub dominated_routes: u64,
    /// Dominated routes later reconsidered.
    pub reconsidered_routes: u64,
    /// Candidate expansions dropped because the remaining-sequence lower
    /// bound proved no feasible completion exists (bounds-enabled runs only).
    pub bound_pruned: u64,
    /// `true` if the search hit its examined-routes budget before finding
    /// all k routes (the reproduction harness's analogue of the paper's
    /// 3,600-second "INF" cutoff).
    pub truncated: bool,
    /// Wall-clock decomposition.
    pub time: TimeBreakdown,
}

/// The answer to a KOSR query: up to `k` witnesses in nondecreasing cost
/// order, plus instrumentation.
#[derive(Clone, Debug, Default)]
pub struct KosrOutcome {
    /// The top-k witnesses (fewer if the graph admits fewer feasible routes).
    pub witnesses: Vec<Witness>,
    /// Per-query instrumentation.
    pub stats: QueryStats,
}

impl KosrOutcome {
    /// The costs of the returned witnesses.
    pub fn costs(&self) -> Vec<Weight> {
        self.witnesses.iter().map(|w| w.cost).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn query_accessors() {
        let q = Query::new(v(0), v(9), vec![CategoryId(1), CategoryId(2)], 5);
        assert_eq!(q.num_categories(), 2);
        assert_eq!(q.witness_len(), 4);
    }

    #[test]
    fn query_validation() {
        let mut b = kosr_graph::GraphBuilder::new(3);
        let ca = b.categories_mut().add_category("A");
        let empty = b.categories_mut().add_category("EMPTY");
        b.add_edge(v(0), v(1), 1);
        b.categories_mut().insert(v(1), ca);
        let g = b.build();

        assert!(Query::new(v(0), v(2), vec![ca], 1).validate(&g).is_ok());
        assert_eq!(
            Query::new(v(9), v(2), vec![ca], 1).validate(&g),
            Err(QueryError::SourceOutOfRange(v(9)))
        );
        assert_eq!(
            Query::new(v(0), v(7), vec![ca], 1).validate(&g),
            Err(QueryError::TargetOutOfRange(v(7)))
        );
        assert_eq!(
            Query::new(v(0), v(2), vec![ca], 0).validate(&g),
            Err(QueryError::ZeroK)
        );
        assert_eq!(
            Query::new(v(0), v(2), vec![CategoryId(9)], 1).validate(&g),
            Err(QueryError::UnknownCategory(CategoryId(9)))
        );
        assert_eq!(
            Query::new(v(0), v(2), vec![empty], 1).validate(&g),
            Err(QueryError::EmptyCategory(empty))
        );
        // Errors render.
        assert!(QueryError::ZeroK.to_string().contains("positive"));
    }

    #[test]
    fn time_breakdown_finalize() {
        use std::time::Duration;
        let mut tb = TimeBreakdown {
            total: Duration::from_millis(10),
            nn: Duration::from_millis(4),
            queue: Duration::from_millis(1),
            estimation: Duration::from_millis(2),
            other: Duration::ZERO,
        };
        tb.finalize();
        assert_eq!(tb.other, Duration::from_millis(3));
        // Saturation: components exceeding total don't underflow.
        let mut tb = TimeBreakdown {
            total: Duration::from_millis(1),
            nn: Duration::from_millis(4),
            ..Default::default()
        };
        tb.finalize();
        assert_eq!(tb.other, Duration::ZERO);
    }

    #[test]
    fn outcome_costs() {
        let out = KosrOutcome {
            witnesses: vec![
                Witness {
                    vertices: vec![v(0), v(1)],
                    cost: 3,
                },
                Witness {
                    vertices: vec![v(0), v(2)],
                    cost: 7,
                },
            ],
            stats: QueryStats::default(),
        };
        assert_eq!(out.costs(), vec![3, 7]);
    }
}
