//! Shared plumbing for the search algorithms: timed wrappers around the
//! neighbor provider, the target oracle and the global priority queue
//! (feeding Table X's run-time decomposition), plus the *dummy destination
//! category* logic — the paper introduces `C_{|C|+1} = {t}` so that reaching
//! the destination is one more category extension.

use std::collections::BinaryHeap;
use std::time::Instant;

use kosr_graph::{is_finite, CategoryId, VertexId, Weight};
use kosr_index::{NearestNeighbors, TargetDistance};

use crate::types::Query;

/// NN provider wrapper accumulating time and exposing the inner counters.
pub(crate) struct TimedNn<N> {
    inner: N,
    pub nanos: u64,
}

impl<N: NearestNeighbors> TimedNn<N> {
    pub fn new(inner: N) -> Self {
        TimedNn { inner, nanos: 0 }
    }

    pub fn queries(&self) -> u64 {
        self.inner.nn_queries()
    }
}

impl<N: NearestNeighbors> NearestNeighbors for TimedNn<N> {
    fn find_nn(&mut self, v: VertexId, c: CategoryId, x: usize) -> Option<(VertexId, Weight)> {
        let t0 = Instant::now();
        let r = self.inner.find_nn(v, c, x);
        self.nanos += t0.elapsed().as_nanos() as u64;
        r
    }

    fn nn_queries(&self) -> u64 {
        self.inner.nn_queries()
    }

    fn reset_counters(&mut self) {
        self.inner.reset_counters();
    }
}

/// Target-oracle wrapper accumulating time.
pub(crate) struct TimedTarget<T> {
    inner: T,
    pub nanos: u64,
}

impl<T: TargetDistance> TimedTarget<T> {
    pub fn new(inner: T) -> Self {
        TimedTarget { inner, nanos: 0 }
    }
}

impl<T: TargetDistance> TargetDistance for TimedTarget<T> {
    fn to_target(&mut self, v: VertexId) -> Weight {
        let t0 = Instant::now();
        let r = self.inner.to_target(v);
        self.nanos += t0.elapsed().as_nanos() as u64;
        r
    }

    fn target(&self) -> VertexId {
        self.inner.target()
    }
}

/// The x-th nearest neighbor of `v` at witness position `pos`
/// (1-based: positions `1..=|C|` are the query categories, position
/// `|C| + 1` is the dummy destination category `{t}`).
pub(crate) fn neighbor<N: NearestNeighbors, T: TargetDistance>(
    nn: &mut N,
    target: &mut T,
    query: &Query,
    v: VertexId,
    pos: usize,
    x: usize,
) -> Option<(VertexId, Weight)> {
    if pos <= query.categories.len() {
        nn.find_nn(v, query.categories[pos - 1], x)
    } else if x == 1 {
        let d = target.to_target(v);
        is_finite(d).then_some((query.target, d))
    } else {
        None // the dummy category has exactly one member
    }
}

/// Min-heap with wall-clock accounting and peak-size tracking.
pub(crate) struct TimedHeap<T: Ord> {
    heap: BinaryHeap<T>,
    pub nanos: u64,
    pub peak: usize,
}

impl<T: Ord> TimedHeap<T> {
    pub fn new() -> Self {
        TimedHeap {
            heap: BinaryHeap::new(),
            nanos: 0,
            peak: 0,
        }
    }

    pub fn push(&mut self, item: T) {
        let t0 = Instant::now();
        self.heap.push(item);
        self.nanos += t0.elapsed().as_nanos() as u64;
        self.peak = self.peak.max(self.heap.len());
    }

    pub fn pop(&mut self) -> Option<T> {
        let t0 = Instant::now();
        let r = self.heap.pop();
        self.nanos += t0.elapsed().as_nanos() as u64;
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;

    #[test]
    fn timed_heap_orders_and_tracks_peak() {
        let mut h: TimedHeap<Reverse<u32>> = TimedHeap::new();
        h.push(Reverse(5));
        h.push(Reverse(1));
        h.push(Reverse(3));
        assert_eq!(h.peak, 3);
        assert_eq!(h.pop(), Some(Reverse(1)));
        assert_eq!(h.pop(), Some(Reverse(3)));
        h.push(Reverse(9));
        assert_eq!(h.peak, 3, "peak is a high-water mark");
        assert_eq!(h.pop(), Some(Reverse(5)));
        assert_eq!(h.pop(), Some(Reverse(9)));
        assert_eq!(h.pop(), None);
    }
}
