//! **PruningKOSR** (Algorithm 2): KPNE plus the route **dominance**
//! relationship (Definition 6, Lemma 1).
//!
//! Two partial witnesses with the same tail vertex and the same length are
//! comparable: the cheaper one *dominates*, because any completion of the
//! dominated one is also a completion of the dominating one at no less
//! cost. The first route examined at a `(tail, length)` slot claims the
//! per-vertex table `HT≺` and is the only one extended; later arrivals are
//! **parked** in the min-queue `HT≻` (their sibling candidates are still
//! generated, lines 20–22). When a complete route is emitted, each slot
//! along it releases its cheapest parked route back into the global queue
//! with `x = '-'` (no sibling generation — theirs already happened) and
//! frees `HT≺` (lines 8–12).
//!
//! This cuts the examined-route count from the baseline's
//! `Σ_i Π_j |Cj|` product space down to `Σ_i |Ci|·|Ci+1| + (k-1)·Σ |Ci|`
//! (Lemma 3) — the polynomial "ring" search space of Figure 2(b).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use kosr_graph::{inf_add, is_finite, FxHashMap, VertexId, Weight};
use kosr_index::{NearestNeighbors, SeqBounds, TargetDistance};

use crate::arena::{NodeId, RouteArena};
use crate::engine::{neighbor, TimedHeap, TimedNn, TimedTarget};
use crate::types::{KosrOutcome, Query, QueryStats, Witness};

/// `x = 0` encodes the paper's `'-'` (no sibling generation on this entry).
const NO_X: u32 = 0;

/// Queue entry: `(key, node, level, x, cost, last_leg)`, min-ordered by
/// `(key, node)`. Without sequence bounds `key == cost`; with bounds it is
/// `cost + rem[level]`. Within a dominance slot all entries share a level,
/// so the bound shifts every key by the same constant and "first arrival is
/// cheapest" keeps holding under the tightened order.
type Entry = Reverse<(Weight, NodeId, u16, u32, Weight, Weight)>;

/// Entry key: real cost, tightened by the remaining-sequence lower bound
/// when one is supplied.
fn key_of(bounds: Option<&SeqBounds>, cost: Weight, level: u16) -> Weight {
    match bounds {
        Some(b) => inf_add(cost, b.remaining(level)),
        None => cost,
    }
}

/// A dominance slot: `(tail vertex, witness length)` — the paper's per-vertex
/// hash-table key `|p|`.
type Slot = (VertexId, u16);

/// Answers `query` with PruningKOSR over the given providers.
pub fn pruning_kosr<N, T>(query: &Query, nn: N, target: T) -> KosrOutcome
where
    N: NearestNeighbors,
    T: TargetDistance,
{
    pruning_kosr_bounded(query, nn, target, u64::MAX)
}

/// [`pruning_kosr`] with an examined-routes budget (see `kpne_bounded`).
pub fn pruning_kosr_bounded<N, T>(query: &Query, nn: N, target: T, limit: u64) -> KosrOutcome
where
    N: NearestNeighbors,
    T: TargetDistance,
{
    pruning_kosr_opt(query, nn, target, limit, None)
}

/// [`pruning_kosr_bounded`] with optional remaining-sequence lower bounds
/// (see `kpne_opt`): bound-ordered queue, push-time pruning of provably
/// uncompletable candidates, `bounds: None` reproduces the unpruned search
/// exactly.
pub fn pruning_kosr_opt<N, T>(
    query: &Query,
    nn: N,
    target: T,
    limit: u64,
    bounds: Option<&SeqBounds>,
) -> KosrOutcome
where
    N: NearestNeighbors,
    T: TargetDistance,
{
    debug_assert_eq!(target.target(), query.target);
    let t0 = Instant::now();
    let mut nn = TimedNn::new(nn);
    let mut target = TimedTarget::new(target);
    let nn_base = nn.queries();

    let mut arena = RouteArena::new();
    let mut heap: TimedHeap<Entry> = TimedHeap::new();
    let mut stats = QueryStats {
        examined_per_level: vec![0; query.witness_len()],
        ..QueryStats::default()
    };
    let final_level = (query.categories.len() + 1) as u16;

    // HT≺: the dominating (extended) route of each slot.
    let mut ht_dom: FxHashMap<Slot, NodeId> = FxHashMap::default();
    // HT≻: parked dominated routes per slot, cheapest first.
    let mut ht_sub: FxHashMap<Slot, BinaryHeap<Reverse<(Weight, NodeId)>>> = FxHashMap::default();

    if bounds.is_some_and(|b| b.infeasible()) {
        stats.bound_pruned = 1;
        stats.time.total = t0.elapsed();
        stats.time.finalize();
        return KosrOutcome {
            witnesses: Vec::new(),
            stats,
        };
    }

    let root = arena.root(query.source);
    heap.push(Reverse((key_of(bounds, 0, 0), root, 0, 1, 0, 0)));

    let mut witnesses: Vec<Witness> = Vec::with_capacity(query.k);
    while let Some(Reverse((_key, node, level, x, cost, last_leg))) = heap.pop() {
        stats.examined_routes += 1;
        stats.examined_per_level[level as usize] += 1;
        if stats.examined_routes > limit {
            stats.truncated = true;
            break;
        }

        if level == final_level {
            // Lines 6-12: emit and reconsider parked routes along the route.
            witnesses.push(Witness {
                vertices: arena.materialize(node),
                cost,
            });
            if witnesses.len() == query.k {
                break;
            }
            for len in 2..=(query.categories.len() + 1) as u16 {
                let anc = arena.ancestor_with_len(node, len as usize);
                let slot = (arena.vertex(anc), len);
                if ht_dom.get(&slot) == Some(&anc) {
                    if let Some(parked) = ht_sub.get_mut(&slot) {
                        if let Some(Reverse((pcost, pnode))) = parked.pop() {
                            let key = key_of(bounds, pcost, len - 1);
                            heap.push(Reverse((key, pnode, len - 1, NO_X, pcost, 0)));
                            stats.reconsidered_routes += 1;
                        }
                    }
                    ht_dom.remove(&slot);
                }
            }
            continue;
        }

        let tail = arena.vertex(node);
        let slot = (tail, level + 1); // witness length = level + 1

        // Lines 13-19: extend if first at the slot, park otherwise.
        match ht_dom.entry(slot) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(node);
                if let Some((u, d)) =
                    neighbor(&mut nn, &mut target, query, tail, level as usize + 1, 1)
                {
                    let key = key_of(bounds, cost + d, level + 1);
                    if bounds.is_some() && !is_finite(key) {
                        stats.bound_pruned += 1;
                    } else {
                        let child = arena.extend(node, u);
                        heap.push(Reverse((key, child, level + 1, 1, cost + d, d)));
                    }
                }
            }
            std::collections::hash_map::Entry::Occupied(_) => {
                ht_sub.entry(slot).or_default().push(Reverse((cost, node)));
                stats.dominated_routes += 1;
            }
        }

        // Lines 20-22: sibling candidate (skipped for reconsidered routes).
        if level > 0 && x != NO_X {
            let parent = arena.parent(node).expect("level > 0 implies a parent");
            let pv = arena.vertex(parent);
            if let Some((u, d)) = neighbor(
                &mut nn,
                &mut target,
                query,
                pv,
                level as usize,
                x as usize + 1,
            ) {
                let parent_cost = cost - last_leg;
                let key = key_of(bounds, parent_cost + d, level);
                if bounds.is_some() && !is_finite(key) {
                    stats.bound_pruned += 1;
                } else {
                    let child = arena.extend(parent, u);
                    heap.push(Reverse((key, child, level, x + 1, parent_cost + d, d)));
                }
            }
        }
    }

    stats.nn_queries = nn.queries() - nn_base;
    stats.heap_peak = heap.peak;
    stats.time.nn =
        std::time::Duration::from_nanos(nn.nanos) + std::time::Duration::from_nanos(target.nanos);
    stats.time.queue = std::time::Duration::from_nanos(heap.nanos);
    stats.time.total = t0.elapsed();
    stats.time.finalize();
    KosrOutcome { witnesses, stats }
}
