//! **Arbitrary-order** optimal sequenced routes — the paper's announced
//! future work (the `k ≥ 1 / arbitrary order / general graphs` cell of its
//! Table I is empty; the conclusion names closing it as the next step).
//!
//! Find the cheapest route from `s` to `t` that visits one vertex of
//! *every* category of `C`, in **any** order. The problem generalises the
//! generalized traveling salesman path problem, so the exact algorithm here
//! is exponential in `|C|` only — a Held-Karp dynamic program over category
//! subsets whose transitions reuse the same multi-source machinery as GSP:
//!
//! ```text
//! X[{}]      = { s: 0 }
//! X[S ∪ {c}][u ∈ V_c] = min over v ( X[S][v] + dis(v, u) )
//! answer     = min over v ( X[C][v] + dis(v, t) )
//! ```
//!
//! `|C| · 2^|C|` multi-source sweeps in total — practical for the paper's
//! query sizes (`|C| ≤ 10`).

use kosr_graph::{is_finite, CategoryId, FxHashMap, Graph, VertexId, Weight, INFINITY};
use kosr_pathfinding::{Dijkstra, Dir};

use crate::types::Witness;

/// Statistics of one arbitrary-order run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ArbitraryOrderStats {
    /// Multi-source sweeps performed.
    pub sweeps: usize,
    /// Wall-clock time.
    pub total: std::time::Duration,
}

/// The optimal *arbitrary-order* sequenced route from `source` to `target`
/// through all of `categories` (any visiting order), or `None` if
/// infeasible. The returned witness lists the stops in the order the
/// optimal route visits them.
///
/// # Panics
/// Panics if `categories.len() >= 20` (the subset DP would not fit).
pub fn arbitrary_order_osr(
    g: &Graph,
    source: VertexId,
    target: VertexId,
    categories: &[CategoryId],
) -> (Option<Witness>, ArbitraryOrderStats) {
    let m = categories.len();
    assert!(m < 20, "arbitrary-order DP supports |C| < 20");
    let t0 = std::time::Instant::now();
    let mut stats = ArbitraryOrderStats::default();
    let full: u32 = (1u32 << m) - 1;

    // X[S] : member vertex -> (cost, predecessor member, predecessor subset)
    // Keyed per subset; layer 0 holds only the source.
    let mut layers: Vec<FxHashMap<VertexId, (Weight, VertexId)>> =
        vec![FxHashMap::default(); 1 << m];
    layers[0].insert(source, (0, source));

    let mut dij = Dijkstra::new(g.num_vertices());
    // Process subsets in increasing popcount so predecessors are final.
    let mut order: Vec<u32> = (0..=full).collect();
    order.sort_unstable_by_key(|s| s.count_ones());

    for &subset in &order {
        if layers[subset as usize].is_empty() {
            continue;
        }
        let mut seeds: Vec<(VertexId, Weight)> = layers[subset as usize]
            .iter()
            .map(|(&v, &(d, _))| (v, d))
            .collect();
        seeds.sort_unstable();
        // Extend to every category not yet visited. One sweep serves all of
        // them (the sweep computes distances to every vertex).
        let missing: Vec<usize> = (0..m).filter(|i| subset & (1 << i) == 0).collect();
        if missing.is_empty() {
            continue;
        }
        dij.multi_source(g, Dir::Forward, &seeds);
        stats.sweeps += 1;
        for &ci in &missing {
            let next = subset | (1 << ci);
            for &u in g.categories().vertices_of(categories[ci]) {
                let d = dij.distance(u);
                if !is_finite(d) {
                    continue;
                }
                let origin = dij.origin_of(u).expect("finite distance has origin");
                let entry = layers[next as usize].entry(u).or_insert((INFINITY, u));
                if d < entry.0 {
                    *entry = (d, origin);
                }
            }
        }
    }

    // Close at the destination.
    if layers[full as usize].is_empty() {
        stats.total = t0.elapsed();
        return (None, stats);
    }
    let mut seeds: Vec<(VertexId, Weight)> = layers[full as usize]
        .iter()
        .map(|(&v, &(d, _))| (v, d))
        .collect();
    seeds.sort_unstable();
    dij.multi_source(g, Dir::Forward, &seeds);
    stats.sweeps += 1;
    let best = dij.distance(target);
    if !is_finite(best) {
        stats.total = t0.elapsed();
        return (None, stats);
    }

    // Reconstruct stops backwards: from the final origin, walk predecessor
    // members through the subsets. We must rediscover which subset each
    // predecessor belonged to; greedily peel categories whose recorded
    // entry matches.
    let mut stops_rev = vec![target];
    let mut cur = dij.origin_of(target).expect("finite");
    let mut subset = full;
    while subset != 0 {
        stops_rev.push(cur);
        let (_, pred) = layers[subset as usize][&cur];
        // Remove the category `cur` satisfied in this step: any set bit
        // whose category contains `cur` and whose removal leaves a layer
        // containing `pred` with consistent cost.
        let mut peeled = None;
        #[allow(clippy::needless_range_loop)] // `ci` drives bit tests and the slice
        for ci in 0..m {
            if subset & (1 << ci) != 0 && g.categories().has_category(cur, categories[ci]) {
                let prev = subset & !(1 << ci);
                if let Some(&(pd, _)) = layers[prev as usize].get(&pred) {
                    let (cd, _) = layers[subset as usize][&cur];
                    if pd <= cd {
                        peeled = Some((ci, prev));
                        break;
                    }
                }
            }
        }
        let (_, prev) = peeled.expect("reconstruction must peel one category");
        subset = prev;
        cur = pred;
    }
    stops_rev.push(source);
    stops_rev.reverse();
    stats.total = t0.elapsed();
    (
        Some(Witness {
            vertices: stops_rev,
            cost: best,
        }),
        stats,
    )
}

/// **Top-k arbitrary-order** sequenced routes: the `k ≥ 1 / arbitrary
/// order / general graphs` cell of the paper's Table I.
///
/// Runs StarKOSR once per permutation of `categories` and merges the
/// per-order top-k lists, deduplicating witnesses that arise under several
/// orders (possible when a stop carries more than one queried category).
/// Exact, and practical for the small `|C|` of interactive queries
/// (`|C|! · ` one StarKOSR run each); larger sequences call for the
/// approximation literature the paper cites (\[7\], \[30\]).
///
/// # Panics
/// Panics if `categories.len() > 7` (5,040 permutations is the sane limit).
pub fn arbitrary_order_topk<'a, N, T, F>(
    source: VertexId,
    target: VertexId,
    categories: &[CategoryId],
    k: usize,
    mut make_engine: F,
) -> Vec<crate::types::Witness>
where
    N: kosr_index::NearestNeighbors + 'a,
    T: kosr_index::TargetDistance + 'a,
    F: FnMut() -> (N, T),
{
    assert!(
        categories.len() <= 7,
        "permutation search limited to |C| <= 7"
    );
    fn permutations(cats: &[CategoryId]) -> Vec<Vec<CategoryId>> {
        if cats.len() <= 1 {
            return vec![cats.to_vec()];
        }
        let mut out = Vec::new();
        for i in 0..cats.len() {
            let mut rest = cats.to_vec();
            let head = rest.remove(i);
            for mut tail in permutations(&rest) {
                tail.insert(0, head);
                out.push(tail);
            }
        }
        out
    }

    let mut merged: Vec<crate::types::Witness> = Vec::new();
    let mut seen: std::collections::HashSet<Vec<VertexId>> = Default::default();
    for perm in permutations(categories) {
        let (nn, oracle) = make_engine();
        let q = crate::types::Query::new(source, target, perm, k);
        for w in crate::star::star_kosr(&q, nn, oracle).witnesses {
            if seen.insert(w.vertices.clone()) {
                merged.push(w);
            }
        }
    }
    merged.sort_by(|x, y| (x.cost, &x.vertices).cmp(&(y.cost, &y.vertices)));
    merged.truncate(k);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gsp::{gsp, GspEngine};
    use kosr_graph::GraphBuilder;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// Exhaustive oracle: min over all category permutations of the
    /// fixed-order optimum (GSP).
    fn permutation_oracle(
        g: &Graph,
        s: VertexId,
        t: VertexId,
        cats: &[CategoryId],
    ) -> Option<Weight> {
        fn permutations(cats: &[CategoryId]) -> Vec<Vec<CategoryId>> {
            if cats.len() <= 1 {
                return vec![cats.to_vec()];
            }
            let mut out = Vec::new();
            for i in 0..cats.len() {
                let mut rest = cats.to_vec();
                let head = rest.remove(i);
                for mut tail in permutations(&rest) {
                    tail.insert(0, head);
                    out.push(tail);
                }
            }
            out
        }
        permutations(cats)
            .into_iter()
            .filter_map(|p| gsp(g, s, t, &p, &GspEngine::Dijkstra).0.map(|w| w.cost))
            .min()
    }

    fn world(seed: u64) -> Graph {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 30u32;
        let mut b = GraphBuilder::new(n as usize);
        for _ in 0..140 {
            let a = rng.gen_range(0..n);
            let c = rng.gen_range(0..n);
            if a != c {
                b.add_edge(v(a), v(c), rng.gen_range(1..30));
            }
        }
        for c in 0..3 {
            b.categories_mut().add_category(format!("C{c}"));
        }
        for i in 0..n {
            if rng.gen_bool(0.25) {
                b.categories_mut()
                    .insert(v(i), CategoryId(rng.gen_range(0..3)));
            }
        }
        b.build()
    }

    #[test]
    fn matches_permutation_oracle() {
        for seed in 0..6 {
            let g = world(seed);
            let cats = [CategoryId(0), CategoryId(1), CategoryId(2)];
            for (s, t) in [(0u32, 29u32), (5, 20), (13, 7)] {
                let (w, stats) = arbitrary_order_osr(&g, v(s), v(t), &cats);
                let want = permutation_oracle(&g, v(s), v(t), &cats);
                assert_eq!(w.as_ref().map(|w| w.cost), want, "seed {seed} s {s} t {t}");
                if let Some(w) = w {
                    // Witness visits every category exactly once, somewhere.
                    assert_eq!(w.vertices.len(), cats.len() + 2);
                    let mut seen = [false; 3];
                    for &stop in &w.vertices[1..w.vertices.len() - 1] {
                        for (i, &c) in cats.iter().enumerate() {
                            if g.categories().has_category(stop, c) {
                                seen[i] = true;
                            }
                        }
                    }
                    assert!(seen.iter().all(|&x| x), "all categories visited");
                    // Legs are consistent shortest-path distances.
                    let mut dij = Dijkstra::new(g.num_vertices());
                    let sum: Weight = w
                        .vertices
                        .windows(2)
                        .map(|p| dij.one_to_one(&g, Dir::Forward, p[0], p[1]))
                        .sum();
                    assert_eq!(sum, w.cost);
                }
                assert!(stats.sweeps <= 3 * 8 + 1);
            }
        }
    }

    #[test]
    fn arbitrary_order_never_worse_than_fixed_order() {
        for seed in 6..10 {
            let g = world(seed);
            let cats = [CategoryId(0), CategoryId(1), CategoryId(2)];
            let (free, _) = arbitrary_order_osr(&g, v(1), v(25), &cats);
            let (fixed, _) = gsp(&g, v(1), v(25), &cats, &GspEngine::Dijkstra);
            match (free, fixed) {
                (Some(a), Some(b)) => assert!(a.cost <= b.cost),
                (None, Some(_)) => panic!("fixed order feasible but free order not"),
                _ => {}
            }
        }
    }

    #[test]
    fn empty_category_list_is_shortest_path() {
        let g = world(3);
        let (w, stats) = arbitrary_order_osr(&g, v(0), v(10), &[]);
        let mut dij = Dijkstra::new(g.num_vertices());
        let d = dij.one_to_one(&g, Dir::Forward, v(0), v(10));
        assert_eq!(w.map(|w| w.cost), kosr_graph::is_finite(d).then_some(d));
        assert_eq!(stats.sweeps, 1);
    }

    #[test]
    fn infeasible_when_category_unreachable() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(v(0), v(1), 1);
        let c0 = b.categories_mut().add_category("A");
        b.categories_mut().insert(v(2), c0); // v2 is unreachable
        let g = b.build();
        let (w, _) = arbitrary_order_osr(&g, v(0), v(1), &[c0]);
        assert!(w.is_none());
    }
}
