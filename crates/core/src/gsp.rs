//! **GSP** (Rice & Tsotras [29]): the state-of-the-art *optimal sequenced
//! route* (k = 1) algorithm, reproduced as the paper's OSR comparator
//! (Figure 7).
//!
//! GSP is a dynamic program over the category layers:
//!
//! ```text
//! X[0][s] = 0
//! X[i][v] = min over u ∈ C_{i-1} of ( X[i-1][u] + dis(u, v) ),  v ∈ C_i
//! ```
//!
//! Each transition is one **multi-source** shortest-path pass seeded with
//! the previous layer's costs. Two engines are provided: plain multi-source
//! Dijkstra, and the contraction-hierarchy PHAST sweep the original paper
//! engineers (`O(|C|)` graph searches total). Because the recurrence only
//! carries the *minimum* per vertex, GSP cannot enumerate second-best
//! routes — the structural reason the KOSR paper gives for why it does not
//! extend to k > 1 (§III-B).

use std::time::Instant;

use kosr_ch::{ContractionHierarchy, Phast};
use kosr_graph::{is_finite, CategoryId, FxHashMap, Graph, VertexId, Weight};
use kosr_pathfinding::{Dijkstra, Dir};

use crate::types::Witness;

/// The shortest-path machinery GSP runs its transitions on.
pub enum GspEngine<'a> {
    /// Plain multi-source Dijkstra on the original graph.
    Dijkstra,
    /// Multi-source upward search + PHAST downward sweep over a prebuilt
    /// contraction hierarchy (the engine of \[29\]).
    Ch(&'a ContractionHierarchy),
}

/// Instrumentation for one GSP run.
#[derive(Clone, Copy, Debug, Default)]
pub struct GspStats {
    /// Graph searches performed (`|C| + 1`).
    pub searches: usize,
    /// Wall-clock time.
    pub total: std::time::Duration,
}

/// Runs GSP: the optimal sequenced route from `source` to `target` through
/// `categories` in order, or `None` if no feasible route exists.
pub fn gsp(
    g: &Graph,
    source: VertexId,
    target: VertexId,
    categories: &[CategoryId],
    engine: &GspEngine<'_>,
) -> (Option<Witness>, GspStats) {
    let t0 = Instant::now();
    let mut stats = GspStats::default();

    // One dispatcher so the DP below is engine-agnostic.
    enum Runner<'r> {
        Dij(Dijkstra, &'r Graph),
        Ch(Phast, &'r ContractionHierarchy),
    }
    impl Runner<'_> {
        fn sweep(&mut self, seeds: &[(VertexId, Weight)]) {
            match self {
                Runner::Dij(d, g) => d.multi_source(g, Dir::Forward, seeds),
                Runner::Ch(p, ch) => p.multi_source_to_all(ch, seeds),
            }
        }
        fn read(&self, v: VertexId) -> (Weight, Option<VertexId>) {
            match self {
                Runner::Dij(d, _) => (d.distance(v), d.origin_of(v)),
                Runner::Ch(p, _) => (p.distance(v), p.origin_of(v)),
            }
        }
    }
    let mut runner = match engine {
        GspEngine::Dijkstra => Runner::Dij(Dijkstra::new(g.num_vertices()), g),
        GspEngine::Ch(ch) => {
            assert_eq!(ch.num_vertices(), g.num_vertices(), "hierarchy mismatch");
            Runner::Ch(Phast::new(g.num_vertices()), ch)
        }
    };

    // DP layers: cost and predecessor (previous-layer vertex) per member.
    let mut layers: Vec<FxHashMap<VertexId, (Weight, VertexId)>> = Vec::new();
    let mut frontier: Vec<(VertexId, Weight)> = vec![(source, 0)];

    for &c in categories {
        runner.sweep(&frontier);
        stats.searches += 1;
        let mut layer = FxHashMap::default();
        for &m in g.categories().vertices_of(c) {
            let (d, origin) = runner.read(m);
            if is_finite(d) {
                layer.insert(m, (d, origin.expect("finite distance has an origin")));
            }
        }
        if layer.is_empty() {
            stats.total = t0.elapsed();
            return (None, stats); // no member of c is reachable
        }
        frontier = layer.iter().map(|(&m, &(d, _))| (m, d)).collect();
        // Deterministic seed order (hash maps iterate arbitrarily).
        frontier.sort_unstable();
        layers.push(layer);
    }

    // Final transition into the destination.
    runner.sweep(&frontier);
    stats.searches += 1;
    let (total_cost, origin) = runner.read(target);
    if !is_finite(total_cost) {
        stats.total = t0.elapsed();
        return (None, stats);
    }

    // Witness reconstruction: walk the per-layer predecessors backwards.
    let mut rev = vec![target];
    let mut cur = origin.expect("finite distance has an origin");
    for layer in layers.iter().rev() {
        rev.push(cur);
        cur = layer[&cur].1;
    }
    rev.push(source);
    rev.reverse();
    stats.total = t0.elapsed();
    (
        Some(Witness {
            vertices: rev,
            cost: total_cost,
        }),
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_graph::GraphBuilder;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// 0 →(1) 1[A] →(1) 2[B] →(1) 3 ; 0 →(5) 4[A] →(1) 3 (B unreachable via 4)
    fn tiny() -> Graph {
        let mut b = GraphBuilder::new(5);
        b.add_edge(v(0), v(1), 1);
        b.add_edge(v(1), v(2), 1);
        b.add_edge(v(2), v(3), 1);
        b.add_edge(v(0), v(4), 5);
        b.add_edge(v(4), v(3), 1);
        let a = b.categories_mut().add_category("A");
        let bb = b.categories_mut().add_category("B");
        b.categories_mut().insert(v(1), a);
        b.categories_mut().insert(v(4), a);
        b.categories_mut().insert(v(2), bb);
        b.build()
    }

    #[test]
    fn finds_optimal_witness() {
        let g = tiny();
        let (w, stats) = gsp(
            &g,
            v(0),
            v(3),
            &[CategoryId(0), CategoryId(1)],
            &GspEngine::Dijkstra,
        );
        let w = w.unwrap();
        assert_eq!(w.cost, 3);
        assert_eq!(w.vertices, vec![v(0), v(1), v(2), v(3)]);
        assert_eq!(stats.searches, 3);
    }

    #[test]
    fn ch_engine_agrees() {
        let g = tiny();
        let ch = kosr_ch::build(&g);
        let (a, _) = gsp(
            &g,
            v(0),
            v(3),
            &[CategoryId(0), CategoryId(1)],
            &GspEngine::Dijkstra,
        );
        let (b, _) = gsp(
            &g,
            v(0),
            v(3),
            &[CategoryId(0), CategoryId(1)],
            &GspEngine::Ch(&ch),
        );
        assert_eq!(a.unwrap().cost, b.unwrap().cost);
    }

    #[test]
    fn infeasible_returns_none() {
        let g = tiny();
        // Reverse direction: nothing reaches 0.
        let (w, _) = gsp(&g, v(3), v(0), &[CategoryId(0)], &GspEngine::Dijkstra);
        assert!(w.is_none());
    }

    #[test]
    fn empty_category_sequence_is_shortest_path() {
        let g = tiny();
        let (w, stats) = gsp(&g, v(0), v(3), &[], &GspEngine::Dijkstra);
        let w = w.unwrap();
        assert_eq!(w.cost, 3);
        assert_eq!(w.vertices, vec![v(0), v(3)]);
        assert_eq!(stats.searches, 1);
    }
}
