//! Exhaustive top-k oracle for testing: enumerates **every** witness
//! `⟨s, v1, …, vj, t⟩` in the category product space, scores it by summing
//! exact shortest-path distances, and returns the k cheapest.
//!
//! Exponential in `|C|` — strictly a ground-truth generator for small
//! graphs. All query algorithms are property-tested against it.

use kosr_graph::{inf_add, is_finite, FxHashMap, Graph, VertexId, Weight};
use kosr_pathfinding::{Dijkstra, Dir};

use crate::types::{Query, Witness};

/// Enumerates the top-k witnesses exhaustively, or returns `None` when the
/// product space exceeds `combo_limit` (guarding against runaway tests).
pub fn brute_force_topk(g: &Graph, query: &Query, combo_limit: usize) -> Option<Vec<Witness>> {
    // Guard the combinatorial size first.
    let mut combos: usize = 1;
    for &c in &query.categories {
        combos = combos.checked_mul(g.categories().category_size(c).max(1))?;
        if combos > combo_limit {
            return None;
        }
    }

    // Distance tables from every vertex that can start a leg.
    let mut sources: Vec<VertexId> = vec![query.source];
    for &c in &query.categories {
        sources.extend_from_slice(g.categories().vertices_of(c));
    }
    sources.sort_unstable();
    sources.dedup();
    let mut dist: FxHashMap<VertexId, Vec<Weight>> = FxHashMap::default();
    let mut dij = Dijkstra::new(g.num_vertices());
    for &s in &sources {
        dij.one_to_all(g, Dir::Forward, s);
        dist.insert(s, g.vertices().map(|v| dij.distance(v)).collect());
    }
    let leg = |from: VertexId, to: VertexId| dist[&from][to.index()];

    // DFS over the category layers.
    let mut results: Vec<Witness> = Vec::new();
    let mut prefix: Vec<VertexId> = vec![query.source];
    fn rec(
        g: &Graph,
        query: &Query,
        leg: &dyn Fn(VertexId, VertexId) -> Weight,
        prefix: &mut Vec<VertexId>,
        cost: Weight,
        depth: usize,
        results: &mut Vec<Witness>,
    ) {
        if !is_finite(cost) {
            return; // infeasible prefix; extensions stay infeasible
        }
        if depth == query.categories.len() {
            let total = inf_add(cost, leg(*prefix.last().unwrap(), query.target));
            if is_finite(total) {
                let mut vertices = prefix.clone();
                vertices.push(query.target);
                results.push(Witness {
                    vertices,
                    cost: total,
                });
            }
            return;
        }
        for &m in g.categories().vertices_of(query.categories[depth]) {
            let c2 = inf_add(cost, leg(*prefix.last().unwrap(), m));
            prefix.push(m);
            rec(g, query, leg, prefix, c2, depth + 1, results);
            prefix.pop();
        }
    }
    rec(g, query, &leg, &mut prefix, 0, 0, &mut results);

    results.sort_by(|a, b| (a.cost, &a.vertices).cmp(&(b.cost, &b.vertices)));
    results.truncate(query.k);
    Some(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_graph::{CategoryId, GraphBuilder};

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn setup() -> Graph {
        // 0 → {1,2}[A] → {3}[B] → 4, assorted weights.
        let mut b = GraphBuilder::new(5);
        b.add_edge(v(0), v(1), 1);
        b.add_edge(v(0), v(2), 2);
        b.add_edge(v(1), v(3), 5);
        b.add_edge(v(2), v(3), 1);
        b.add_edge(v(3), v(4), 1);
        let a = b.categories_mut().add_category("A");
        let bb = b.categories_mut().add_category("B");
        b.categories_mut().insert(v(1), a);
        b.categories_mut().insert(v(2), a);
        b.categories_mut().insert(v(3), bb);
        b.build()
    }

    #[test]
    fn enumerates_and_ranks() {
        let g = setup();
        let q = Query::new(v(0), v(4), vec![CategoryId(0), CategoryId(1)], 10);
        let out = brute_force_topk(&g, &q, 1000).unwrap();
        // Two witnesses: via 2 (2+1+1=4) and via 1 (1+5+1=7).
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].cost, 4);
        assert_eq!(out[0].vertices, vec![v(0), v(2), v(3), v(4)]);
        assert_eq!(out[1].cost, 7);
    }

    #[test]
    fn k_truncates() {
        let g = setup();
        let q = Query::new(v(0), v(4), vec![CategoryId(0), CategoryId(1)], 1);
        let out = brute_force_topk(&g, &q, 1000).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].cost, 4);
    }

    #[test]
    fn combo_limit_bails() {
        let g = setup();
        let q = Query::new(v(0), v(4), vec![CategoryId(0); 30], 1);
        assert!(brute_force_topk(&g, &q, 1000).is_none());
    }

    #[test]
    fn infeasible_is_empty() {
        let g = setup();
        // Nothing reaches vertex 0.
        let q = Query::new(v(4), v(0), vec![CategoryId(0)], 3);
        let out = brute_force_topk(&g, &q, 1000).unwrap();
        assert!(out.is_empty());
    }
}
