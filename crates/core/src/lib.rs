//! # kosr-core
//!
//! The algorithms of *Finding Top-k Optimal Sequenced Routes* (Liu, Jin,
//! Yang, Zhou — ICDE 2018): given a source, a destination and an ordered
//! category sequence on a general directed weighted graph, enumerate the k
//! cheapest routes that visit one vertex per category in order.
//!
//! | item | paper | role |
//! |---|---|---|
//! | [`kpne`] | §III-B, Alg. 1 | baseline: PNE extended to top-k |
//! | [`pne`] | \[32\] | original OSR algorithm (k = 1) |
//! | [`pruning_kosr`] | §IV-A, Alg. 2 | dominance-based pruning |
//! | [`star_kosr`] | §IV-B | A*-style estimated-cost exploration |
//! | [`gsp`] | \[29\] | dynamic-programming OSR comparator |
//! | [`brute_force_topk`] | — | exhaustive testing oracle |
//! | [`IndexedGraph`] / [`Method`] | §V-A | one-call runner for all methods |
//! | [`run_sk_db`] | §IV-C | StarKOSR over the disk-resident index |
//! | [`no_source_kosr`], [`no_destination_kosr`], [`FilteredNn`] | §IV-C | query variants |
//! | [`arbitrary_order_osr`] | Table I gap / future work | any-order sequenced routes |
//! | [`figure1`] | Fig. 1 | the paper's running example as a fixture |
//!
//! ```
//! use kosr_core::{figure1, IndexedGraph, Method, Query};
//!
//! let fx = figure1::figure1();
//! let ig = IndexedGraph::build_default(fx.graph.clone());
//! let q = Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 3);
//! let out = ig.run(&q, Method::Sk);
//! assert_eq!(out.costs(), vec![20, 21, 22]); // Example 1 of the paper
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arbitrary;
mod arena;
mod brute;
mod engine;
pub mod figure1;
mod gsp;
mod kpne;
mod pruning;
mod runner;
mod star;
mod types;
mod variants;

pub use arbitrary::{arbitrary_order_osr, arbitrary_order_topk, ArbitraryOrderStats};
pub use arena::{NodeId, RouteArena};
pub use brute::brute_force_topk;
pub use gsp::{gsp, GspEngine, GspStats};
pub use kpne::{kpne, kpne_bounded, kpne_opt, pne};
pub use pruning::{pruning_kosr, pruning_kosr_bounded, pruning_kosr_opt};
pub use runner::{run_sk_db, GraphUpdateError, IndexedGraph, Method};
pub use star::{star_kosr, star_kosr_bounded, star_kosr_opt};
pub use types::{KosrOutcome, Query, QueryError, QueryStats, TimeBreakdown, Witness};
pub use variants::{no_destination_kosr, no_source_kosr, FilteredNn};
