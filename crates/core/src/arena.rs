//! Arena storage for partially explored witnesses.
//!
//! The search algorithms extend and fork routes millions of times; cloning a
//! `Vec<VertexId>` per queue entry would dominate the run time. Instead every
//! partial witness is a node in a parent-linked arena: extension is O(1),
//! queue entries carry a 4-byte node id, and — crucially for Algorithm 2's
//! bookkeeping — **prefix identity is node-id equality**: the depth-`i`
//! ancestor of a complete route *is* the dominating-route node recorded in
//! `HT≺` iff the complete route descends from it.

use kosr_graph::VertexId;

/// Index of a route node in a [`RouteArena`].
pub type NodeId = u32;

const NO_PARENT: NodeId = NodeId::MAX;

/// Append-only arena of witness-prefix nodes.
#[derive(Clone, Debug, Default)]
pub struct RouteArena {
    vertices: Vec<VertexId>,
    parents: Vec<NodeId>,
    /// Witness length (vertex count) of each node; the root has length 1.
    lens: Vec<u16>,
}

impl RouteArena {
    /// An empty arena.
    pub fn new() -> RouteArena {
        RouteArena::default()
    }

    /// Number of nodes allocated.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// `true` iff no nodes were allocated.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Creates a root node `⟨v⟩`.
    pub fn root(&mut self, v: VertexId) -> NodeId {
        self.push(v, NO_PARENT, 1)
    }

    /// Creates the child `⟨…parent…, v⟩`.
    pub fn extend(&mut self, parent: NodeId, v: VertexId) -> NodeId {
        let len = self.lens[parent as usize] + 1;
        self.push(v, parent, len)
    }

    fn push(&mut self, v: VertexId, parent: NodeId, len: u16) -> NodeId {
        let id = self.vertices.len() as NodeId;
        self.vertices.push(v);
        self.parents.push(parent);
        self.lens.push(len);
        id
    }

    /// The last vertex of the witness prefix `node`.
    #[inline]
    pub fn vertex(&self, node: NodeId) -> VertexId {
        self.vertices[node as usize]
    }

    /// The parent node, if `node` is not a root.
    #[inline]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        let p = self.parents[node as usize];
        (p != NO_PARENT).then_some(p)
    }

    /// Number of vertices in the witness prefix.
    #[inline]
    pub fn witness_len(&self, node: NodeId) -> usize {
        self.lens[node as usize] as usize
    }

    /// The ancestor of `node` whose witness length is `len`
    /// (`len == witness_len(node)` returns `node` itself).
    ///
    /// # Panics
    /// Panics if `len` is 0 or exceeds the node's length.
    pub fn ancestor_with_len(&self, node: NodeId, len: usize) -> NodeId {
        let mut cur = node;
        let mut cur_len = self.witness_len(node);
        assert!(len >= 1 && len <= cur_len, "no ancestor of length {len}");
        while cur_len > len {
            cur = self.parents[cur as usize];
            cur_len -= 1;
        }
        cur
    }

    /// Reconstructs the full vertex sequence of the witness prefix.
    pub fn materialize(&self, node: NodeId) -> Vec<VertexId> {
        let mut out = vec![VertexId(0); self.witness_len(node)];
        let mut cur = node;
        for slot in out.iter_mut().rev() {
            *slot = self.vertices[cur as usize];
            cur = self.parents[cur as usize];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn extend_and_materialize() {
        let mut a = RouteArena::new();
        let r = a.root(v(10));
        let n1 = a.extend(r, v(20));
        let n2 = a.extend(n1, v(30));
        assert_eq!(a.materialize(n2), vec![v(10), v(20), v(30)]);
        assert_eq!(a.materialize(r), vec![v(10)]);
        assert_eq!(a.witness_len(n2), 3);
        assert_eq!(a.vertex(n2), v(30));
        assert_eq!(a.parent(n2), Some(n1));
        assert_eq!(a.parent(r), None);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }

    #[test]
    fn forking_shares_prefixes() {
        let mut a = RouteArena::new();
        let r = a.root(v(0));
        let x = a.extend(r, v(1));
        let y = a.extend(r, v(2)); // sibling of x
        assert_eq!(a.materialize(x), vec![v(0), v(1)]);
        assert_eq!(a.materialize(y), vec![v(0), v(2)]);
        assert_eq!(a.parent(x), a.parent(y));
    }

    #[test]
    fn ancestor_lookup() {
        let mut a = RouteArena::new();
        let r = a.root(v(0));
        let n1 = a.extend(r, v(1));
        let n2 = a.extend(n1, v(2));
        let n3 = a.extend(n2, v(3));
        assert_eq!(a.ancestor_with_len(n3, 4), n3);
        assert_eq!(a.ancestor_with_len(n3, 3), n2);
        assert_eq!(a.ancestor_with_len(n3, 2), n1);
        assert_eq!(a.ancestor_with_len(n3, 1), r);
    }

    #[test]
    fn prefix_identity_is_node_identity() {
        let mut a = RouteArena::new();
        let r = a.root(v(0));
        let p = a.extend(r, v(5));
        let c1 = a.extend(p, v(6));
        // A different route that happens to pass the same vertex 5:
        let q = a.extend(r, v(5));
        let c2 = a.extend(q, v(6));
        // Same vertex sequences, different identities:
        assert_eq!(a.materialize(c1), a.materialize(c2));
        assert_ne!(a.ancestor_with_len(c1, 2), a.ancestor_with_len(c2, 2));
        assert_eq!(a.ancestor_with_len(c1, 2), p);
    }

    #[test]
    #[should_panic(expected = "no ancestor")]
    fn ancestor_out_of_range_panics() {
        let mut a = RouteArena::new();
        let r = a.root(v(0));
        a.ancestor_with_len(r, 2);
    }
}
