//! **StarKOSR** (§IV-B): PruningKOSR driven in an A* manner.
//!
//! Every partial witness `p = ⟨s, …, vi⟩` is queued by its *estimated total
//! cost* `w(p) + dis(vi, t)`. Because `dis(vi, t)` is the true shortest-path
//! distance, the estimate never overestimates the cost of any feasible
//! completion (it is **admissible**), so complete routes still pop in true
//! cost order (Lemma 4) — while partial routes that wander away from the
//! destination sink down the queue (the shrinking rings of Figure 2(c)).
//!
//! Extensions come from `FindNEN` (Algorithm 4): the x-th nearest
//! **estimated** neighbor, i.e. ordered by `dis(vi, u) + dis(u, t)` rather
//! than `dis(vi, u)`. Dominance bookkeeping is unchanged — for a fixed tail
//! the estimate differs from the real cost by a constant, so "first arrival
//! is cheapest" still holds under the estimated order.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use kosr_graph::{is_finite, FxHashMap, VertexId, Weight};
use kosr_index::{EstimatedNeighbor, NearestNeighbors, NenFinder, SeqBounds, TargetDistance};

use crate::arena::{NodeId, RouteArena};
use crate::engine::{TimedHeap, TimedNn, TimedTarget};
use crate::types::{KosrOutcome, Query, QueryStats, Witness};

/// `x = 0` encodes the paper's `'-'`.
const NO_X: u32 = 0;

/// Queue entry: `(estimate, node, level, x, cost, last_leg)`, min-ordered by
/// `(estimate, node)`.
type Entry = Reverse<(Weight, NodeId, u16, u32, Weight, Weight)>;

type Slot = (VertexId, u16);

/// Parked dominated routes: `(estimate, node, cost)`, cheapest first.
type ParkedQueue = BinaryHeap<Reverse<(Weight, NodeId, Weight)>>;

/// The x-th estimated neighbor at witness position `pos`, with the dummy
/// destination category `{t}` at position `|C| + 1`.
fn est_neighbor<N: NearestNeighbors, T: TargetDistance>(
    nen: &mut NenFinder,
    nn: &mut N,
    target: &mut T,
    query: &Query,
    v: VertexId,
    pos: usize,
    x: usize,
) -> Option<EstimatedNeighbor> {
    if pos <= query.categories.len() {
        nen.find_nen(nn, target, v, query.categories[pos - 1], x)
    } else if x == 1 {
        let d = target.to_target(v);
        is_finite(d).then_some(EstimatedNeighbor {
            vertex: query.target,
            dist: d,
            estimate: d,
        })
    } else {
        None
    }
}

/// Answers `query` with StarKOSR over the given providers.
pub fn star_kosr<N, T>(query: &Query, nn: N, target: T) -> KosrOutcome
where
    N: NearestNeighbors,
    T: TargetDistance,
{
    star_kosr_bounded(query, nn, target, u64::MAX)
}

/// [`star_kosr`] with an examined-routes budget (see `kpne_bounded`).
pub fn star_kosr_bounded<N, T>(query: &Query, nn: N, target: T, limit: u64) -> KosrOutcome
where
    N: NearestNeighbors,
    T: TargetDistance,
{
    star_kosr_opt(query, nn, target, limit, None)
}

/// [`star_kosr_bounded`] with optional remaining-sequence lower bounds (see
/// `kpne_opt`). For StarKOSR the bounds act **only** as the whole-query
/// feasibility gate (`rem[0] = ∞` → return empty without expanding):
/// unlike KPNE/PruningKOSR, the queue key here cannot be tightened with
/// `cost + rem[level]`, because FindNEN's lazy sibling chain is ordered by
/// the *estimate* `dis(v, u) + dis(u, t)` — popping the x-th entry is what
/// generates the (x+1)-th. A key mixing in `cost + rem` is not monotone
/// along that chain (the `dis(v, u)` component can shrink as the estimate
/// grows), so a sibling cheaper than the k-th answer could hide behind a
/// never-popped predecessor and be lost. `bounds: None` and a feasible
/// `bounds` both reproduce the plain StarKOSR search exactly.
pub fn star_kosr_opt<N, T>(
    query: &Query,
    nn: N,
    target: T,
    limit: u64,
    bounds: Option<&SeqBounds>,
) -> KosrOutcome
where
    N: NearestNeighbors,
    T: TargetDistance,
{
    debug_assert_eq!(target.target(), query.target);
    let t0 = Instant::now();
    let mut nn = TimedNn::new(nn);
    let mut target = TimedTarget::new(target);
    let mut nen = NenFinder::new();
    let nn_base = nn.queries();

    let mut arena = RouteArena::new();
    let mut heap: TimedHeap<Entry> = TimedHeap::new();
    let mut stats = QueryStats {
        examined_per_level: vec![0; query.witness_len()],
        ..QueryStats::default()
    };
    let final_level = (query.categories.len() + 1) as u16;

    let mut ht_dom: FxHashMap<Slot, NodeId> = FxHashMap::default();
    // Parked routes ordered by estimate (equivalently by cost — same tail).
    let mut ht_sub: FxHashMap<Slot, ParkedQueue> = FxHashMap::default();

    let root = arena.root(query.source);
    // The root's estimate is dis(s, t); if t is unreachable — or the
    // category-chain bound already proves no feasible completion — the
    // query has no feasible route at all.
    let root_est = target.to_target(query.source);
    if bounds.is_some_and(|b| b.infeasible()) {
        stats.bound_pruned = 1;
        stats.time.total = t0.elapsed();
        stats.time.finalize();
        return KosrOutcome {
            witnesses: Vec::new(),
            stats,
        };
    }
    if !is_finite(root_est) {
        stats.time.total = t0.elapsed();
        stats.time.finalize();
        return KosrOutcome {
            witnesses: Vec::new(),
            stats,
        };
    }
    heap.push(Reverse((root_est, root, 0, 1, 0, 0)));

    let mut witnesses: Vec<Witness> = Vec::with_capacity(query.k);
    while let Some(Reverse((_est, node, level, x, cost, last_leg))) = heap.pop() {
        stats.examined_routes += 1;
        stats.examined_per_level[level as usize] += 1;
        if stats.examined_routes > limit {
            stats.truncated = true;
            break;
        }

        if level == final_level {
            witnesses.push(Witness {
                vertices: arena.materialize(node),
                cost,
            });
            if witnesses.len() == query.k {
                break;
            }
            for len in 2..=(query.categories.len() + 1) as u16 {
                let anc = arena.ancestor_with_len(node, len as usize);
                let slot = (arena.vertex(anc), len);
                if ht_dom.get(&slot) == Some(&anc) {
                    if let Some(parked) = ht_sub.get_mut(&slot) {
                        if let Some(Reverse((pest, pnode, pcost))) = parked.pop() {
                            heap.push(Reverse((pest, pnode, len - 1, NO_X, pcost, 0)));
                            stats.reconsidered_routes += 1;
                        }
                    }
                    ht_dom.remove(&slot);
                }
            }
            continue;
        }

        let tail = arena.vertex(node);
        let slot = (tail, level + 1);

        match ht_dom.entry(slot) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(node);
                if let Some(en) = est_neighbor(
                    &mut nen,
                    &mut nn,
                    &mut target,
                    query,
                    tail,
                    level as usize + 1,
                    1,
                ) {
                    let child = arena.extend(node, en.vertex);
                    heap.push(Reverse((
                        cost + en.estimate,
                        child,
                        level + 1,
                        1,
                        cost + en.dist,
                        en.dist,
                    )));
                }
            }
            std::collections::hash_map::Entry::Occupied(_) => {
                ht_sub
                    .entry(slot)
                    .or_default()
                    .push(Reverse((_est, node, cost)));
                stats.dominated_routes += 1;
            }
        }

        if level > 0 && x != NO_X {
            let parent = arena.parent(node).expect("level > 0 implies a parent");
            let pv = arena.vertex(parent);
            if let Some(en) = est_neighbor(
                &mut nen,
                &mut nn,
                &mut target,
                query,
                pv,
                level as usize,
                x as usize + 1,
            ) {
                let parent_cost = cost - last_leg;
                let child = arena.extend(parent, en.vertex);
                heap.push(Reverse((
                    parent_cost + en.estimate,
                    child,
                    level,
                    x + 1,
                    parent_cost + en.dist,
                    en.dist,
                )));
            }
        }
    }

    stats.nn_queries = nn.queries() - nn_base;
    stats.heap_peak = heap.peak;
    stats.time.nn = std::time::Duration::from_nanos(nn.nanos);
    stats.time.estimation = std::time::Duration::from_nanos(target.nanos);
    stats.time.queue = std::time::Duration::from_nanos(heap.nanos);
    stats.time.total = t0.elapsed();
    stats.time.finalize();
    KosrOutcome { witnesses, stats }
}
