//! **KPNE** — the baseline: PNE (progressive neighbor exploration, Algorithm
//! 1 of the paper, originally [32]) extended to top-k by collecting complete
//! routes instead of returning the first one (§III-B).
//!
//! The priority queue holds partially explored witnesses ordered by real
//! cost. Examining `⟨v0, …, vq⟩` (created as the `x`-th-NN extension of its
//! parent) spawns at most two candidates:
//!
//! * **extend** — append `vq`'s *nearest* neighbor in the next category, and
//! * **sibling** — re-extend the parent through its `(x+1)`-th nearest
//!   neighbor in the current category.
//!
//! This lazy enumeration reaches every witness exactly once, so popping in
//! cost order emits the top-k optimal sequenced routes — at the price of
//! examining *every* witness cheaper than the k-th optimum, which is the
//! exponential blow-up PruningKOSR and StarKOSR attack.

use std::cmp::Reverse;
use std::time::Instant;

use kosr_graph::{inf_add, is_finite, Weight};
use kosr_index::{NearestNeighbors, SeqBounds, TargetDistance};

use crate::arena::{NodeId, RouteArena};
use crate::engine::{neighbor, TimedHeap, TimedNn, TimedTarget};
use crate::types::{KosrOutcome, Query, QueryStats, Witness};

/// Queue entry: `(key, node, level, x, cost, last_leg)`, min-ordered by
/// `(key, node)` for determinism. Without sequence bounds `key == cost`;
/// with bounds it is `cost + rem[level]` — an admissible, *consistent*
/// estimate, so complete routes still pop in true cost order. `level` is
/// the number of categories visited (0 = source only); `x` records which
/// NN index produced the tail.
type Entry = Reverse<(Weight, NodeId, u16, u32, Weight, Weight)>;

/// Entry key: real cost, tightened by the remaining-sequence lower bound
/// when one is supplied.
fn key_of(bounds: Option<&SeqBounds>, cost: Weight, level: u16) -> Weight {
    match bounds {
        Some(b) => inf_add(cost, b.remaining(level)),
        None => cost,
    }
}

/// Answers `query` with the KPNE baseline over the given providers.
pub fn kpne<N, T>(query: &Query, nn: N, target: T) -> KosrOutcome
where
    N: NearestNeighbors,
    T: TargetDistance,
{
    kpne_bounded(query, nn, target, u64::MAX)
}

/// [`kpne`] with an examined-routes budget: the search aborts (with
/// `stats.truncated = true`) once `limit` routes were extracted — the
/// harness's analogue of the paper's 3,600-second INF cutoff.
pub fn kpne_bounded<N, T>(query: &Query, nn: N, target: T, limit: u64) -> KosrOutcome
where
    N: NearestNeighbors,
    T: TargetDistance,
{
    kpne_opt(query, nn, target, limit, None)
}

/// [`kpne_bounded`] with optional remaining-sequence lower bounds: entries
/// are ordered by `cost + rem[level]` instead of bare cost (fewer pops reach
/// the k-th emission) and candidates whose bound proves them uncompletable
/// are dropped at push time (counted in `stats.bound_pruned`). `bounds:
/// None` reproduces the unpruned search exactly.
pub fn kpne_opt<N, T>(
    query: &Query,
    nn: N,
    target: T,
    limit: u64,
    bounds: Option<&SeqBounds>,
) -> KosrOutcome
where
    N: NearestNeighbors,
    T: TargetDistance,
{
    debug_assert_eq!(target.target(), query.target);
    let t0 = Instant::now();
    let mut nn = TimedNn::new(nn);
    let mut target = TimedTarget::new(target);
    let nn_base = nn.queries();

    let mut arena = RouteArena::new();
    let mut heap: TimedHeap<Entry> = TimedHeap::new();
    let mut stats = QueryStats {
        examined_per_level: vec![0; query.witness_len()],
        ..QueryStats::default()
    };
    let final_level = (query.categories.len() + 1) as u16;

    if bounds.is_some_and(|b| b.infeasible()) {
        // The whole-query lower bound is infinite: no feasible route exists,
        // skip the search entirely.
        stats.bound_pruned = 1;
        stats.time.total = t0.elapsed();
        stats.time.finalize();
        return KosrOutcome {
            witnesses: Vec::new(),
            stats,
        };
    }

    let root = arena.root(query.source);
    heap.push(Reverse((key_of(bounds, 0, 0), root, 0, 1, 0, 0)));

    let mut witnesses: Vec<Witness> = Vec::with_capacity(query.k);
    while let Some(Reverse((_key, node, level, x, cost, last_leg))) = heap.pop() {
        stats.examined_routes += 1;
        stats.examined_per_level[level as usize] += 1;
        if stats.examined_routes > limit {
            stats.truncated = true;
            break;
        }

        if level == final_level {
            witnesses.push(Witness {
                vertices: arena.materialize(node),
                cost,
            });
            if witnesses.len() == query.k {
                break;
            }
            continue; // the dummy category has no further siblings
        }

        // Extend through the nearest neighbor of the next category.
        let tail = arena.vertex(node);
        if let Some((u, d)) = neighbor(&mut nn, &mut target, query, tail, level as usize + 1, 1) {
            let key = key_of(bounds, cost + d, level + 1);
            if bounds.is_some() && !is_finite(key) {
                stats.bound_pruned += 1;
            } else {
                let child = arena.extend(node, u);
                heap.push(Reverse((key, child, level + 1, 1, cost + d, d)));
            }
        }

        // Sibling: parent's (x+1)-th nearest neighbor in this category.
        if level > 0 {
            let parent = arena.parent(node).expect("level > 0 implies a parent");
            let pv = arena.vertex(parent);
            if let Some((u, d)) = neighbor(
                &mut nn,
                &mut target,
                query,
                pv,
                level as usize,
                x as usize + 1,
            ) {
                let parent_cost = cost - last_leg;
                let key = key_of(bounds, parent_cost + d, level);
                if bounds.is_some() && !is_finite(key) {
                    stats.bound_pruned += 1;
                } else {
                    let child = arena.extend(parent, u);
                    heap.push(Reverse((key, child, level, x + 1, parent_cost + d, d)));
                }
            }
        }
    }

    stats.nn_queries = nn.queries() - nn_base;
    stats.heap_peak = heap.peak;
    stats.time.nn =
        std::time::Duration::from_nanos(nn.nanos) + std::time::Duration::from_nanos(target.nanos);
    stats.time.queue = std::time::Duration::from_nanos(heap.nanos);
    stats.time.total = t0.elapsed();
    stats.time.finalize();
    KosrOutcome { witnesses, stats }
}

/// **PNE**: the original optimal-sequenced-route algorithm — KPNE with
/// `k = 1` (§III-B). Returns the optimal witness, if a feasible route
/// exists.
pub fn pne<N, T>(query: &Query, nn: N, target: T) -> (Option<Witness>, QueryStats)
where
    N: NearestNeighbors,
    T: TargetDistance,
{
    let q1 = Query {
        k: 1,
        ..query.clone()
    };
    let mut out = kpne(&q1, nn, target);
    (out.witnesses.pop(), out.stats)
}
