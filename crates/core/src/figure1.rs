//! The paper's running example (Figure 1): an eight-vertex road network
//! with shopping malls (`MA`), restaurants (`RE`) and cinemas (`CI`).
//!
//! The edge list below was reconstructed from the paper's own numbers and
//! reproduces **every** worked value in the text: the Example 1 top-3 costs
//! (20/21/22), the label distances of Table IV (e.g. `dis(a,c) = 20`,
//! Example 3), the inverted-index lookups of Table V / Examples 4–5
//! (`NN(s, MA) = a@8, c@10`), the PruningKOSR trace of Table III and the
//! StarKOSR trace of Table VI. The golden tests in this module execute
//! those traces.

use kosr_graph::{CategoryId, Graph, GraphBuilder, VertexId};

/// The Figure 1 fixture: graph plus named vertices and categories.
#[derive(Clone, Debug)]
pub struct Figure1 {
    /// The road network of Figure 1.
    pub graph: Graph,
    /// Source vertex `s`.
    pub s: VertexId,
    /// Shopping mall `a`.
    pub a: VertexId,
    /// Restaurant `b`.
    pub b: VertexId,
    /// Shopping mall `c`.
    pub c: VertexId,
    /// Cinema `d`.
    pub d: VertexId,
    /// Restaurant `e`.
    pub e: VertexId,
    /// Cinema `f`.
    pub f: VertexId,
    /// Destination vertex `t`.
    pub t: VertexId,
    /// Category `MA` (shopping malls: `a`, `c`).
    pub ma: CategoryId,
    /// Category `RE` (restaurants: `b`, `e`).
    pub re: CategoryId,
    /// Category `CI` (cinemas: `d`, `f`).
    pub ci: CategoryId,
}

/// Builds the Figure 1 graph.
pub fn figure1() -> Figure1 {
    let s = VertexId(0);
    let a = VertexId(1);
    let b = VertexId(2);
    let c = VertexId(3);
    let d = VertexId(4);
    let e = VertexId(5);
    let f = VertexId(6);
    let t = VertexId(7);

    let mut builder = GraphBuilder::new(8);
    let ma = builder.categories_mut().add_category("MA");
    let re = builder.categories_mut().add_category("RE");
    let ci = builder.categories_mut().add_category("CI");
    builder.categories_mut().insert(a, ma);
    builder.categories_mut().insert(c, ma);
    builder.categories_mut().insert(b, re);
    builder.categories_mut().insert(e, re);
    builder.categories_mut().insert(d, ci);
    builder.categories_mut().insert(f, ci);

    // The 14 edges of Figure 1 (weights 8,5,6,3,5,3,5,10,4,3,10,10,3,15),
    // reverse-engineered from the shortest distances of Tables III-VI.
    builder.add_edge(s, a, 8);
    builder.add_edge(s, c, 10);
    builder.add_edge(a, b, 5);
    builder.add_edge(a, e, 6);
    builder.add_edge(b, d, 3);
    builder.add_edge(b, s, 5);
    builder.add_edge(c, b, 5);
    builder.add_edge(c, d, 3);
    builder.add_edge(d, t, 4);
    builder.add_edge(e, d, 3);
    builder.add_edge(e, f, 10);
    builder.add_edge(f, t, 3);
    builder.add_edge(t, c, 15);
    builder.add_edge(t, e, 10);

    Figure1 {
        graph: builder.build(),
        s,
        a,
        b,
        c,
        d,
        e,
        f,
        t,
        ma,
        re,
        ci,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_topk;
    use crate::gsp::{gsp, GspEngine};
    use crate::kpne::{kpne, pne};
    use crate::pruning::pruning_kosr;
    use crate::star::star_kosr;
    use crate::types::Query;
    use kosr_hoplabel::{HopLabels, HubOrder};
    use kosr_index::{
        CategoryIndexSet, DijkstraNn, DijkstraTarget, LabelNn, LabelTarget, NearestNeighbors,
        NenFinder,
    };

    fn indexed() -> (Figure1, HopLabels, CategoryIndexSet) {
        let fx = figure1();
        let labels = kosr_hoplabel::build(&fx.graph, &HubOrder::Degree);
        let inverted = CategoryIndexSet::build(&labels, fx.graph.categories());
        (fx, labels, inverted)
    }

    /// Every pairwise distance quoted in the paper's tables and examples.
    #[test]
    fn distances_match_the_papers_tables() {
        let (fx, labels, _) = indexed();
        kosr_hoplabel::verify_exact(&fx.graph, &labels).unwrap();
        let d = |x, y| labels.distance(x, y);
        // Example 3: dis(a, c) = 20 (a → b → s → c).
        assert_eq!(d(fx.a, fx.c), 20);
        // Table IV spot checks.
        assert_eq!(d(fx.s, fx.t), 17);
        assert_eq!(d(fx.t, fx.s), 25);
        assert_eq!(d(fx.s, fx.a), 8);
        assert_eq!(d(fx.t, fx.a), 33);
        assert_eq!(d(fx.a, fx.b), 5);
        assert_eq!(d(fx.a, fx.e), 6);
        assert_eq!(d(fx.a, fx.t), 12);
        assert_eq!(d(fx.s, fx.b), 13);
        assert_eq!(d(fx.t, fx.b), 20);
        assert_eq!(d(fx.b, fx.t), 7);
        assert_eq!(d(fx.s, fx.c), 10);
        assert_eq!(d(fx.t, fx.c), 15);
        assert_eq!(d(fx.c, fx.b), 5);
        assert_eq!(d(fx.c, fx.d), 3);
        assert_eq!(d(fx.c, fx.t), 7);
        assert_eq!(d(fx.b, fx.d), 3);
        assert_eq!(d(fx.e, fx.d), 3);
        assert_eq!(d(fx.s, fx.d), 13);
        assert_eq!(d(fx.t, fx.d), 13);
        assert_eq!(d(fx.d, fx.t), 4);
        assert_eq!(d(fx.s, fx.e), 14);
        assert_eq!(d(fx.t, fx.e), 10);
        assert_eq!(d(fx.e, fx.t), 7);
        assert_eq!(d(fx.e, fx.f), 10);
        assert_eq!(d(fx.s, fx.f), 24);
        assert_eq!(d(fx.t, fx.f), 20);
        assert_eq!(d(fx.f, fx.t), 3);
        // Step-7 candidate of Table III: dis(c, e) = 17 (c → d → t → e).
        assert_eq!(d(fx.c, fx.e), 17);
        // Step-8 sibling: dis(b, f) = 27 (b → d → t → e → f).
        assert_eq!(d(fx.b, fx.f), 27);
    }

    /// Examples 4-5: the nearest neighbors of `s` in `MA` are `a` (8) then
    /// `c` (10), found through the inverted label index.
    #[test]
    fn find_nn_examples_4_and_5() {
        let (fx, labels, inverted) = indexed();
        let mut nn = LabelNn::new(&labels, &inverted);
        assert_eq!(nn.find_nn(fx.s, fx.ma, 1), Some((fx.a, 8)));
        assert_eq!(nn.find_nn(fx.s, fx.ma, 2), Some((fx.c, 10)));
        assert_eq!(nn.find_nn(fx.s, fx.ma, 3), None);
        // RE from a: b (5) then e (6). CI from b: d (3) then f (27).
        assert_eq!(nn.find_nn(fx.a, fx.re, 1), Some((fx.b, 5)));
        assert_eq!(nn.find_nn(fx.a, fx.re, 2), Some((fx.e, 6)));
        assert_eq!(nn.find_nn(fx.b, fx.ci, 1), Some((fx.d, 3)));
        assert_eq!(nn.find_nn(fx.b, fx.ci, 2), Some((fx.f, 27)));
    }

    /// Example 6 / Table VI steps 1-3: the nearest *estimated* neighbor of
    /// `s` in `MA` is `c` (10 + 7 = 17), then `a` (8 + 12 = 20).
    #[test]
    fn find_nen_example_6() {
        let (fx, labels, inverted) = indexed();
        let mut nn = LabelNn::new(&labels, &inverted);
        let mut oracle = LabelTarget::new(&labels, fx.t);
        let mut nen = NenFinder::new();
        let first = nen.find_nen(&mut nn, &mut oracle, fx.s, fx.ma, 1).unwrap();
        assert_eq!((first.vertex, first.dist, first.estimate), (fx.c, 10, 17));
        let second = nen.find_nen(&mut nn, &mut oracle, fx.s, fx.ma, 2).unwrap();
        assert_eq!((second.vertex, second.dist, second.estimate), (fx.a, 8, 20));
        assert!(nen.find_nen(&mut nn, &mut oracle, fx.s, fx.ma, 3).is_none());
    }

    fn query(fx: &Figure1, k: usize) -> Query {
        Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], k)
    }

    /// Example 1: the top-3 routes are ⟨s,a,b,d,t⟩(20), ⟨s,a,e,d,t⟩(21),
    /// ⟨s,c,b,d,t⟩(22) — via every algorithm and provider combination.
    #[test]
    fn example_1_top_3_routes() {
        let (fx, labels, inverted) = indexed();
        let q = query(&fx, 3);
        let expect_costs = vec![20, 21, 22];
        let expect_first = vec![fx.s, fx.a, fx.b, fx.d, fx.t];

        let out = kpne(
            &q,
            LabelNn::new(&labels, &inverted),
            LabelTarget::new(&labels, fx.t),
        );
        assert_eq!(out.costs(), expect_costs);
        assert_eq!(out.witnesses[0].vertices, expect_first);
        assert_eq!(
            out.witnesses[1].vertices,
            vec![fx.s, fx.a, fx.e, fx.d, fx.t]
        );
        assert_eq!(
            out.witnesses[2].vertices,
            vec![fx.s, fx.c, fx.b, fx.d, fx.t]
        );

        let out = pruning_kosr(
            &q,
            LabelNn::new(&labels, &inverted),
            LabelTarget::new(&labels, fx.t),
        );
        assert_eq!(out.costs(), expect_costs);
        let out = star_kosr(
            &q,
            LabelNn::new(&labels, &inverted),
            LabelTarget::new(&labels, fx.t),
        );
        assert_eq!(out.costs(), expect_costs);

        // Dijkstra-backed providers (the *-Dij baselines) agree.
        let out = kpne(
            &q,
            DijkstraNn::new(&fx.graph),
            DijkstraTarget::new(&fx.graph, fx.t),
        );
        assert_eq!(out.costs(), expect_costs);
        let out = pruning_kosr(
            &q,
            DijkstraNn::new(&fx.graph),
            DijkstraTarget::new(&fx.graph, fx.t),
        );
        assert_eq!(out.costs(), expect_costs);
        let out = star_kosr(
            &q,
            DijkstraNn::new(&fx.graph),
            DijkstraTarget::new(&fx.graph, fx.t),
        );
        assert_eq!(out.costs(), expect_costs);

        // Brute force agrees on both costs and witnesses.
        let brute = brute_force_topk(&fx.graph, &q, 10_000).unwrap();
        assert_eq!(
            brute.iter().map(|w| w.cost).collect::<Vec<_>>(),
            expect_costs
        );
        assert_eq!(brute[0].vertices, expect_first);
    }

    /// Table III: PruningKOSR answers k = 2 in exactly 13 queue
    /// extractions, returning costs 20 and 21.
    #[test]
    fn table_3_pruning_trace() {
        let (fx, labels, inverted) = indexed();
        let q = query(&fx, 2);
        let out = pruning_kosr(
            &q,
            LabelNn::new(&labels, &inverted),
            LabelTarget::new(&labels, fx.t),
        );
        assert_eq!(out.costs(), vec![20, 21]);
        assert_eq!(out.stats.examined_routes, 13, "Table III runs in 13 steps");
        // Step 6 parks ⟨s,c,b⟩; step 9 reconsiders it together with
        // ⟨s,a,e,d⟩; step 12 parks ⟨s,c,b,d⟩ again.
        assert_eq!(out.stats.dominated_routes, 3);
        assert_eq!(out.stats.reconsidered_routes, 2);
    }

    /// Table VI: StarKOSR answers the same query in exactly 9 extractions.
    #[test]
    fn table_6_star_trace() {
        let (fx, labels, inverted) = indexed();
        let q = query(&fx, 2);
        let out = star_kosr(
            &q,
            LabelNn::new(&labels, &inverted),
            LabelTarget::new(&labels, fx.t),
        );
        assert_eq!(out.costs(), vec![20, 21]);
        assert_eq!(out.stats.examined_routes, 9, "Table VI runs in 9 steps");
        assert_eq!(out.stats.dominated_routes, 0, "no dominance events occur");
    }

    /// StarKOSR examines the fewest routes — the paper's Figure 3(b)
    /// ordering in miniature. (KPNE's exponential blow-up over PK needs
    /// larger category counts than Figure 1 offers; at k = 1, where PK pays
    /// no reconsideration pops, the ordering is already strict.)
    #[test]
    fn search_space_ordering() {
        let (fx, labels, inverted) = indexed();
        let q = query(&fx, 2);
        let kp = kpne(
            &q,
            LabelNn::new(&labels, &inverted),
            LabelTarget::new(&labels, fx.t),
        );
        let pk = pruning_kosr(
            &q,
            LabelNn::new(&labels, &inverted),
            LabelTarget::new(&labels, fx.t),
        );
        let sk = star_kosr(
            &q,
            LabelNn::new(&labels, &inverted),
            LabelTarget::new(&labels, fx.t),
        );
        assert!(kp.stats.examined_routes > sk.stats.examined_routes);
        assert!(pk.stats.examined_routes > sk.stats.examined_routes);

        let q1 = query(&fx, 1);
        let kp1 = kpne(
            &q1,
            LabelNn::new(&labels, &inverted),
            LabelTarget::new(&labels, fx.t),
        );
        let pk1 = pruning_kosr(
            &q1,
            LabelNn::new(&labels, &inverted),
            LabelTarget::new(&labels, fx.t),
        );
        assert_eq!(kp1.stats.examined_routes, 10);
        assert_eq!(
            pk1.stats.examined_routes, 9,
            "Table III finds route #1 at step 9"
        );
    }

    /// PNE (k = 1) and GSP both find the optimal sequenced route of cost 20.
    #[test]
    fn osr_algorithms_agree() {
        let (fx, labels, inverted) = indexed();
        let q = query(&fx, 1);
        let (w, _) = pne(
            &q,
            LabelNn::new(&labels, &inverted),
            LabelTarget::new(&labels, fx.t),
        );
        assert_eq!(w.unwrap().cost, 20);
        let (w, stats) = gsp(&fx.graph, fx.s, fx.t, &q.categories, &GspEngine::Dijkstra);
        let w = w.unwrap();
        assert_eq!(w.cost, 20);
        assert_eq!(w.vertices, vec![fx.s, fx.a, fx.b, fx.d, fx.t]);
        assert_eq!(stats.searches, 4);
        let ch = kosr_ch::build(&fx.graph);
        let (w, _) = gsp(&fx.graph, fx.s, fx.t, &q.categories, &GspEngine::Ch(&ch));
        assert_eq!(w.unwrap().cost, 20);
    }

    /// Witness materialization: the winning witness expands to the actual
    /// road route s → a → b → d → t (all legs are single edges here).
    #[test]
    fn materialize_top_route() {
        let (fx, labels, inverted) = indexed();
        let q = query(&fx, 1);
        let out = star_kosr(
            &q,
            LabelNn::new(&labels, &inverted),
            LabelTarget::new(&labels, fx.t),
        );
        let route = out.witnesses[0].materialize(&fx.graph, &labels).unwrap();
        assert_eq!(route.cost, 20);
        assert_eq!(route.vertices, vec![fx.s, fx.a, fx.b, fx.d, fx.t]);
        route.validate(&fx.graph).unwrap();
    }

    /// Asking for more routes than exist returns the full feasible set:
    /// 2 × 2 × 2 = 8 witnesses.
    #[test]
    fn k_exceeds_feasible_set() {
        let (fx, labels, inverted) = indexed();
        let q = query(&fx, 100);
        let out = kpne(
            &q,
            LabelNn::new(&labels, &inverted),
            LabelTarget::new(&labels, fx.t),
        );
        assert_eq!(out.witnesses.len(), 8);
        let brute = brute_force_topk(&fx.graph, &q, 10_000).unwrap();
        assert_eq!(
            out.costs(),
            brute.iter().map(|w| w.cost).collect::<Vec<_>>()
        );
        // PruningKOSR and StarKOSR agree on the full enumeration too.
        let pk = pruning_kosr(
            &q,
            LabelNn::new(&labels, &inverted),
            LabelTarget::new(&labels, fx.t),
        );
        assert_eq!(pk.costs(), out.costs());
        let sk = star_kosr(
            &q,
            LabelNn::new(&labels, &inverted),
            LabelTarget::new(&labels, fx.t),
        );
        assert_eq!(sk.costs(), out.costs());
    }
}
