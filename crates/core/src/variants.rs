//! The query variants of §IV-C ("Variants of KOSR"):
//!
//! * **No source** — start anywhere in the first category: seed the queue
//!   with every `v ∈ V_{C1}` instead of `s`.
//! * **No destination** — stop after the last category: the dummy
//!   destination category disappears. The A* estimate has no target, so (as
//!   the paper notes) StarKOSR does not apply — this is a PruningKOSR
//!   variant.
//! * **Per-category preferences** — e.g. "the restaurant must be Italian":
//!   a predicate filter on category members, applied inside the NN stream
//!   exactly where the paper suggests (line 15 of Algorithm 3), via the
//!   [`FilteredNn`] wrapper which composes with *every* algorithm.
//! * Unweighted / undirected graphs need no code: build the graph with unit
//!   weights / symmetric edges (§IV-C's first two bullets); tests in
//!   `tests/` exercise both.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use kosr_graph::{CategoryId, FxHashMap, VertexId, Weight};
use kosr_index::{NearestNeighbors, TargetDistance};

use crate::arena::{NodeId, RouteArena};
use crate::engine::{neighbor, TimedHeap, TimedNn};
use crate::types::{KosrOutcome, Query, QueryStats, Witness};

const NO_X: u32 = 0;
type Entry = Reverse<(Weight, NodeId, u16, u32, Weight)>;
type Slot = (VertexId, u16);

/// NN-stream wrapper that drops members failing a per-category predicate —
/// the paper's personal-preference hook (§IV-C). The x-th *accepted*
/// neighbor is served, with its own memoised list so the filter is applied
/// once per underlying member.
pub struct FilteredNn<N, F> {
    inner: N,
    predicate: F,
    accepted: FxHashMap<(VertexId, CategoryId), Vec<(VertexId, Weight)>>,
    /// Next underlying x to pull, per stream.
    cursor: FxHashMap<(VertexId, CategoryId), usize>,
}

impl<N, F> FilteredNn<N, F>
where
    N: NearestNeighbors,
    F: FnMut(CategoryId, VertexId) -> bool,
{
    /// Wraps `inner`, keeping only members where `predicate(c, v)` holds.
    pub fn new(inner: N, predicate: F) -> Self {
        FilteredNn {
            inner,
            predicate,
            accepted: FxHashMap::default(),
            cursor: FxHashMap::default(),
        }
    }
}

impl<N, F> NearestNeighbors for FilteredNn<N, F>
where
    N: NearestNeighbors,
    F: FnMut(CategoryId, VertexId) -> bool,
{
    fn find_nn(&mut self, v: VertexId, c: CategoryId, x: usize) -> Option<(VertexId, Weight)> {
        let key = (v, c);
        loop {
            if let Some(list) = self.accepted.get(&key) {
                if list.len() >= x {
                    return Some(list[x - 1]);
                }
            }
            let cur = self.cursor.entry(key).or_insert(0);
            *cur += 1;
            let pulled = self.inner.find_nn(v, c, *cur)?;
            if (self.predicate)(c, pulled.0) {
                self.accepted.entry(key).or_default().push(pulled);
            }
        }
    }

    fn nn_queries(&self) -> u64 {
        self.inner.nn_queries()
    }

    fn reset_counters(&mut self) {
        self.inner.reset_counters();
    }
}

/// **No-source KOSR**: the k cheapest routes that start at *any* vertex of
/// the first category, pass the remaining categories in order and end at
/// `target`. Witnesses are `⟨v1, …, vj, t⟩`.
///
/// Implementation: Algorithm 2 with the queue seeded by every `V_{C1}`
/// member at zero cost (the paper's "add all vertices in the first category
/// instead of the source to the priority queue").
pub fn no_source_kosr<N, T>(
    first_category_members: &[VertexId],
    categories_rest: &[CategoryId],
    target: VertexId,
    k: usize,
    nn: N,
    mut target_oracle: T,
) -> KosrOutcome
where
    N: NearestNeighbors,
    T: TargetDistance,
{
    // Reuse the standard machinery by seeding multiple roots at level 0 and
    // treating the member vertex itself as the "source".
    let t0 = Instant::now();
    let mut nn = TimedNn::new(nn);
    let nn_base = nn.queries();
    let query = Query::new(
        VertexId(u32::MAX), // placeholder; roots carry the real starts
        target,
        categories_rest.to_vec(),
        k,
    );
    let mut arena = RouteArena::new();
    let mut heap: TimedHeap<Entry> = TimedHeap::new();
    let mut stats = QueryStats {
        examined_per_level: vec![0; categories_rest.len() + 2],
        ..QueryStats::default()
    };
    let final_level = (categories_rest.len() + 1) as u16;
    let mut ht_dom: FxHashMap<Slot, NodeId> = FxHashMap::default();
    let mut ht_sub: FxHashMap<Slot, BinaryHeap<Reverse<(Weight, NodeId)>>> = FxHashMap::default();

    for &m in first_category_members {
        let root = arena.root(m);
        heap.push(Reverse((0, root, 0, 1, 0)));
    }

    let mut witnesses = Vec::with_capacity(k);
    while let Some(Reverse((cost, node, level, x, last_leg))) = heap.pop() {
        stats.examined_routes += 1;
        stats.examined_per_level[level as usize] += 1;
        if level == final_level {
            witnesses.push(Witness {
                vertices: arena.materialize(node),
                cost,
            });
            if witnesses.len() == k {
                break;
            }
            for len in 2..=(categories_rest.len() + 1) as u16 {
                let anc = arena.ancestor_with_len(node, len as usize);
                let slot = (arena.vertex(anc), len);
                if ht_dom.get(&slot) == Some(&anc) {
                    if let Some(parked) = ht_sub.get_mut(&slot) {
                        if let Some(Reverse((pc, pn))) = parked.pop() {
                            heap.push(Reverse((pc, pn, len - 1, NO_X, 0)));
                            stats.reconsidered_routes += 1;
                        }
                    }
                    ht_dom.remove(&slot);
                }
            }
            continue;
        }
        let tail = arena.vertex(node);
        let slot = (tail, level + 1);
        match ht_dom.entry(slot) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(node);
                if let Some((u, d)) = neighbor(
                    &mut nn,
                    &mut target_oracle,
                    &query,
                    tail,
                    level as usize + 1,
                    1,
                ) {
                    let child = arena.extend(node, u);
                    heap.push(Reverse((cost + d, child, level + 1, 1, d)));
                }
            }
            std::collections::hash_map::Entry::Occupied(_) => {
                ht_sub.entry(slot).or_default().push(Reverse((cost, node)));
                stats.dominated_routes += 1;
            }
        }
        if level > 0 && x != NO_X {
            let parent = arena.parent(node).expect("level > 0 implies a parent");
            let pv = arena.vertex(parent);
            if let Some((u, d)) = neighbor(
                &mut nn,
                &mut target_oracle,
                &query,
                pv,
                level as usize,
                x as usize + 1,
            ) {
                let child = arena.extend(parent, u);
                heap.push(Reverse((cost - last_leg + d, child, level, x + 1, d)));
            }
        }
    }
    stats.nn_queries = nn.queries() - nn_base;
    stats.heap_peak = heap.peak;
    stats.time.total = t0.elapsed();
    stats.time.finalize();
    KosrOutcome { witnesses, stats }
}

/// **No-destination KOSR**: the k cheapest routes from `source` through the
/// categories in order, ending at whatever vertex serves the last category.
/// Witnesses are `⟨s, v1, …, vj⟩`. PruningKOSR-based (the estimation of
/// StarKOSR needs a destination, as the paper notes).
pub fn no_destination_kosr<N>(
    source: VertexId,
    categories: &[CategoryId],
    k: usize,
    nn: N,
) -> KosrOutcome
where
    N: NearestNeighbors,
{
    assert!(
        !categories.is_empty(),
        "a no-destination query needs at least one category"
    );
    let t0 = Instant::now();
    let mut nn = TimedNn::new(nn);
    let nn_base = nn.queries();
    let mut arena = RouteArena::new();
    let mut heap: TimedHeap<Entry> = TimedHeap::new();
    let mut stats = QueryStats {
        examined_per_level: vec![0; categories.len() + 1],
        ..QueryStats::default()
    };
    // Complete once the last category is reached (no dummy level).
    let final_level = categories.len() as u16;
    let mut ht_dom: FxHashMap<Slot, NodeId> = FxHashMap::default();
    let mut ht_sub: FxHashMap<Slot, BinaryHeap<Reverse<(Weight, NodeId)>>> = FxHashMap::default();

    let root = arena.root(source);
    heap.push(Reverse((0, root, 0, 1, 0)));

    let mut witnesses = Vec::with_capacity(k);
    while let Some(Reverse((cost, node, level, x, last_leg))) = heap.pop() {
        stats.examined_routes += 1;
        stats.examined_per_level[level as usize] += 1;
        if level == final_level {
            witnesses.push(Witness {
                vertices: arena.materialize(node),
                cost,
            });
            if witnesses.len() == k {
                break;
            }
            for len in 2..=categories.len() as u16 {
                let anc = arena.ancestor_with_len(node, len as usize);
                let slot = (arena.vertex(anc), len);
                if ht_dom.get(&slot) == Some(&anc) {
                    if let Some(parked) = ht_sub.get_mut(&slot) {
                        if let Some(Reverse((pc, pn))) = parked.pop() {
                            heap.push(Reverse((pc, pn, len - 1, NO_X, 0)));
                            stats.reconsidered_routes += 1;
                        }
                    }
                    ht_dom.remove(&slot);
                }
            }
            // Complete routes still have siblings here: the last category
            // has multiple members, unlike the dummy {t}.
            if x != NO_X {
                let parent = arena.parent(node).expect("complete route has a parent");
                let pv = arena.vertex(parent);
                if let Some((u, d)) = nn.find_nn(pv, categories[level as usize - 1], x as usize + 1)
                {
                    let child = arena.extend(parent, u);
                    heap.push(Reverse((cost - last_leg + d, child, level, x + 1, d)));
                }
            }
            continue;
        }
        let tail = arena.vertex(node);
        let slot = (tail, level + 1);
        match ht_dom.entry(slot) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(node);
                if let Some((u, d)) = nn.find_nn(tail, categories[level as usize], 1) {
                    let child = arena.extend(node, u);
                    heap.push(Reverse((cost + d, child, level + 1, 1, d)));
                }
            }
            std::collections::hash_map::Entry::Occupied(_) => {
                ht_sub.entry(slot).or_default().push(Reverse((cost, node)));
                stats.dominated_routes += 1;
            }
        }
        if level > 0 && x != NO_X {
            let parent = arena.parent(node).expect("level > 0 implies a parent");
            let pv = arena.vertex(parent);
            if let Some((u, d)) = nn.find_nn(pv, categories[level as usize - 1], x as usize + 1) {
                let child = arena.extend(parent, u);
                heap.push(Reverse((cost - last_leg + d, child, level, x + 1, d)));
            }
        }
    }
    stats.nn_queries = nn.queries() - nn_base;
    stats.heap_peak = heap.peak;
    stats.time.total = t0.elapsed();
    stats.time.finalize();
    KosrOutcome { witnesses, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::figure1;
    use crate::pruning::pruning_kosr;
    use kosr_hoplabel::HubOrder;
    use kosr_index::{CategoryIndexSet, LabelNn, LabelTarget};

    #[test]
    fn filtered_nn_respects_predicate() {
        let fx = figure1();
        let labels = kosr_hoplabel::build(&fx.graph, &HubOrder::Degree);
        let inverted = CategoryIndexSet::build(&labels, fx.graph.categories());
        // Only restaurant e is "Italian".
        let e = fx.e;
        let mut nn = FilteredNn::new(LabelNn::new(&labels, &inverted), move |_, v| v == e);
        assert_eq!(nn.find_nn(fx.a, fx.re, 1), Some((fx.e, 6)));
        assert_eq!(nn.find_nn(fx.a, fx.re, 2), None);
        // Unfiltered category unaffected.
        let mut nn2 = FilteredNn::new(LabelNn::new(&labels, &inverted), |_, _| true);
        assert_eq!(nn2.find_nn(fx.a, fx.re, 1), Some((fx.b, 5)));
    }

    #[test]
    fn preference_query_on_figure1() {
        // "The restaurant must be e": top route becomes ⟨s,a,e,d,t⟩ (21).
        let fx = figure1();
        let labels = kosr_hoplabel::build(&fx.graph, &HubOrder::Degree);
        let inverted = CategoryIndexSet::build(&labels, fx.graph.categories());
        let q = crate::types::Query::new(fx.s, fx.t, vec![fx.ma, fx.re, fx.ci], 2);
        let (re, e) = (fx.re, fx.e);
        let nn = FilteredNn::new(LabelNn::new(&labels, &inverted), move |c, v| {
            c != re || v == e
        });
        // Second best with the restaurant pinned to e: ⟨s,a,e,f,t⟩ =
        // 8 + 6 + 10 + 3 = 27.
        let out = pruning_kosr(&q, nn, LabelTarget::new(&labels, fx.t));
        assert_eq!(out.costs(), vec![21, 27]);
        assert_eq!(
            out.witnesses[0].vertices,
            vec![fx.s, fx.a, fx.e, fx.d, fx.t]
        );
    }

    #[test]
    fn no_source_starts_anywhere_in_first_category() {
        let fx = figure1();
        let labels = kosr_hoplabel::build(&fx.graph, &HubOrder::Degree);
        let inverted = CategoryIndexSet::build(&labels, fx.graph.categories());
        // Route ⟨ma?, re?, ci?, t⟩ with free mall choice: best is
        // ⟨c, b, d, t⟩ = 5 + 3 + 4 = 12? vs ⟨a, b, d, t⟩ = 5+3+4 = 12 (tie!)
        let members = fx.graph.categories().vertices_of(fx.ma).to_vec();
        let out = no_source_kosr(
            &members,
            &[fx.re, fx.ci],
            fx.t,
            3,
            LabelNn::new(&labels, &inverted),
            LabelTarget::new(&labels, fx.t),
        );
        assert_eq!(out.witnesses.len(), 3);
        assert_eq!(out.witnesses[0].cost, 12);
        assert_eq!(out.witnesses[1].cost, 12);
        // Third best: ⟨a, e, d, t⟩ = 6 + 3 + 4 = 13.
        assert_eq!(out.witnesses[2].cost, 13);
        // Witnesses have no source prefix: 4 vertices.
        assert_eq!(out.witnesses[0].vertices.len(), 4);
    }

    #[test]
    fn no_destination_stops_at_last_category() {
        let fx = figure1();
        let labels = kosr_hoplabel::build(&fx.graph, &HubOrder::Degree);
        let inverted = CategoryIndexSet::build(&labels, fx.graph.categories());
        let out = no_destination_kosr(
            fx.s,
            &[fx.ma, fx.re, fx.ci],
            3,
            LabelNn::new(&labels, &inverted),
        );
        // Best: ⟨s,a,b,d⟩ = 8+5+3 = 16; then ⟨s,a,e,d⟩ = 8+6+3 = 17;
        // then ⟨s,c,b,d⟩ = 10+5+3 = 18.
        assert_eq!(out.costs(), vec![16, 17, 18]);
        assert_eq!(out.witnesses[0].vertices, vec![fx.s, fx.a, fx.b, fx.d]);
    }
}
