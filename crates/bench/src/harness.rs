//! Measurement harness shared by the `repro` binary and the Criterion
//! benches: prepares indexed scenarios, runs 50-instance query batches per
//! the paper's protocol (§V-A), and aggregates the three evaluation
//! criteria — query run-time, # examined routes, # NN queries — plus the
//! Figure 5 per-level counts and the Table X time decomposition.

use std::time::{Duration, Instant};

use kosr_core::{
    gsp, kpne_bounded, pruning_kosr_bounded, run_sk_db, star_kosr_bounded, GspEngine, IndexedGraph,
    KosrOutcome, Method, Query,
};
use kosr_graph::Graph;
use kosr_hoplabel::HubOrder;
use kosr_index::disk::DiskIndex;
use kosr_index::{
    CategoryBounds, CategoryIndexSet, DijkstraNn, DijkstraTarget, LabelNn, LabelTarget,
};
use kosr_workloads::{QuerySpec, Scenario, ScenarioName};

/// A scenario with all indexes built, ready for measurement.
pub struct Prepared {
    /// The scenario parameters that produced this graph.
    pub scenario: Scenario,
    /// Graph + label + inverted indexes.
    pub ig: IndexedGraph,
    /// The contraction hierarchy (hub ordering + the GSP engine).
    pub ch: kosr_ch::ContractionHierarchy,
    /// CH preprocessing time.
    pub ch_build: Duration,
}

impl Prepared {
    /// Builds everything for `scenario`.
    pub fn build(scenario: Scenario) -> Prepared {
        let graph = scenario.build();
        let t0 = Instant::now();
        let ch = kosr_ch::build(&graph);
        let ch_build = t0.elapsed();
        let ig = IndexedGraph::build(graph, &HubOrder::from_ch(&ch));
        Prepared {
            scenario,
            ig,
            ch,
            ch_build,
        }
    }

    /// Display name (paper spelling).
    pub fn name(&self) -> &'static str {
        self.scenario.name.as_str()
    }

    /// Rebuilds only the category-dependent parts (category table +
    /// inverted index) on top of the existing graph and labels — the cheap
    /// path for the |Ci| and zipf sweeps, whose label index is unchanged.
    pub fn with_categories(&self, assign: impl FnOnce(&mut Graph)) -> Prepared {
        let mut graph = self.ig.graph.clone();
        assign(&mut graph);
        let (inverted, inverted_stats) =
            CategoryIndexSet::build_with_stats(&self.ig.labels, graph.categories());
        let bounds = CategoryBounds::build(&self.ig.labels, graph.categories());
        Prepared {
            scenario: self.scenario.clone(),
            ig: IndexedGraph {
                graph,
                labels: self.ig.labels.clone(),
                inverted,
                label_stats: self.ig.label_stats,
                inverted_stats,
                bounds,
            },
            ch: self.ch.clone(),
            ch_build: self.ch_build,
        }
    }
}

/// Converts a workload query spec into a core query.
pub fn to_query(spec: &QuerySpec) -> Query {
    Query::new(spec.source, spec.target, spec.categories.clone(), spec.k)
}

/// Aggregated measurement of one (method, parameter point) cell.
#[derive(Clone, Debug)]
pub struct PointResult {
    /// Method display name.
    pub method: String,
    /// Instances completed within budget and limit.
    pub completed: usize,
    /// Instances attempted.
    pub attempted: usize,
    /// `true` when the cell should be reported as the paper's "INF"
    /// (budget exhausted or searches truncated).
    pub inf: bool,
    /// Mean query time over completed instances, milliseconds.
    pub mean_ms: f64,
    /// Mean examined routes.
    pub mean_examined: f64,
    /// Mean NN queries.
    pub mean_nn: f64,
    /// Mean examined routes per witness level (Figure 5).
    pub mean_per_level: Vec<f64>,
    /// Mean (nn, queue, estimation, other) milliseconds (Table X).
    pub breakdown_ms: [f64; 4],
}

impl PointResult {
    fn from_outcomes(
        method: String,
        outcomes: &[KosrOutcome],
        attempted: usize,
        inf: bool,
    ) -> Self {
        let n = outcomes.len().max(1) as f64;
        let mean = |f: &dyn Fn(&KosrOutcome) -> f64| outcomes.iter().map(f).sum::<f64>() / n;
        let levels = outcomes
            .iter()
            .map(|o| o.stats.examined_per_level.len())
            .max()
            .unwrap_or(0);
        let mut mean_per_level = vec![0.0; levels];
        for o in outcomes {
            for (i, &c) in o.stats.examined_per_level.iter().enumerate() {
                mean_per_level[i] += c as f64 / n;
            }
        }
        PointResult {
            method,
            completed: outcomes.len(),
            attempted,
            inf,
            mean_ms: mean(&|o| o.stats.time.total.as_secs_f64() * 1e3),
            mean_examined: mean(&|o| o.stats.examined_routes as f64),
            mean_nn: mean(&|o| o.stats.nn_queries as f64),
            mean_per_level,
            breakdown_ms: [
                mean(&|o| o.stats.time.nn.as_secs_f64() * 1e3),
                mean(&|o| o.stats.time.queue.as_secs_f64() * 1e3),
                mean(&|o| o.stats.time.estimation.as_secs_f64() * 1e3),
                mean(&|o| o.stats.time.other.as_secs_f64() * 1e3),
            ],
        }
    }

    /// The time cell as the paper prints it.
    pub fn time_cell(&self) -> String {
        if self.inf {
            "INF".to_string()
        } else {
            format_ms(self.mean_ms)
        }
    }

    /// A count cell (examined routes / NN queries).
    pub fn count_cell(&self, count: f64) -> String {
        if self.inf {
            "INF".to_string()
        } else {
            format_count(count)
        }
    }
}

/// Execution limits standing in for the paper's 3,600-second cutoff.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Per-(method, point) wall-clock budget across all instances.
    pub budget: Duration,
    /// Per-query examined-routes cap.
    pub examined_limit: u64,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            budget: Duration::from_secs(8),
            examined_limit: 2_000_000,
        }
    }
}

/// Runs one method over a batch of query instances.
pub fn measure(
    prep: &Prepared,
    queries: &[QuerySpec],
    method: Method,
    limits: Limits,
) -> PointResult {
    let ig = &prep.ig;
    let start = Instant::now();
    let mut outcomes = Vec::with_capacity(queries.len());
    let mut attempted = 0;
    let mut truncated = false;
    for spec in queries {
        if start.elapsed() > limits.budget {
            break;
        }
        attempted += 1;
        let q = to_query(spec);
        let out = match method {
            Method::Kpne => kpne_bounded(
                &q,
                LabelNn::new(&ig.labels, &ig.inverted),
                LabelTarget::new(&ig.labels, q.target),
                limits.examined_limit,
            ),
            Method::Pk => pruning_kosr_bounded(
                &q,
                LabelNn::new(&ig.labels, &ig.inverted),
                LabelTarget::new(&ig.labels, q.target),
                limits.examined_limit,
            ),
            Method::Sk => star_kosr_bounded(
                &q,
                LabelNn::new(&ig.labels, &ig.inverted),
                LabelTarget::new(&ig.labels, q.target),
                limits.examined_limit,
            ),
            Method::KpneDij => kpne_bounded(
                &q,
                DijkstraNn::new(&ig.graph),
                DijkstraTarget::new(&ig.graph, q.target),
                limits.examined_limit,
            ),
            Method::PkDij => pruning_kosr_bounded(
                &q,
                DijkstraNn::new(&ig.graph),
                DijkstraTarget::new(&ig.graph, q.target),
                limits.examined_limit,
            ),
            Method::SkDij => star_kosr_bounded(
                &q,
                DijkstraNn::new(&ig.graph),
                DijkstraTarget::new(&ig.graph, q.target),
                limits.examined_limit,
            ),
        };
        if out.stats.truncated {
            truncated = true;
            break;
        }
        outcomes.push(out);
    }
    let inf = truncated || outcomes.len() < queries.len().min(3);
    PointResult::from_outcomes(method.name().to_string(), &outcomes, attempted, inf)
}

/// Runs SK-DB (disk-resident StarKOSR) over a batch.
pub fn measure_sk_db(disk: &DiskIndex, queries: &[QuerySpec], limits: Limits) -> PointResult {
    let start = Instant::now();
    let mut outcomes = Vec::with_capacity(queries.len());
    let mut attempted = 0;
    for spec in queries {
        if start.elapsed() > limits.budget {
            break;
        }
        attempted += 1;
        match run_sk_db(disk, &to_query(spec)) {
            Ok(out) => outcomes.push(out),
            Err(_) => break,
        }
    }
    let inf = outcomes.len() < queries.len().min(3);
    PointResult::from_outcomes("SK-DB".to_string(), &outcomes, attempted, inf)
}

/// Runs GSP (k = 1) over a batch; `use_ch` picks the engine.
pub fn measure_gsp(
    prep: &Prepared,
    queries: &[QuerySpec],
    use_ch: bool,
    limits: Limits,
) -> PointResult {
    let start = Instant::now();
    let mut times = Vec::with_capacity(queries.len());
    let mut attempted = 0;
    for spec in queries {
        if start.elapsed() > limits.budget {
            break;
        }
        attempted += 1;
        let engine = if use_ch {
            GspEngine::Ch(&prep.ch)
        } else {
            GspEngine::Dijkstra
        };
        let (_, stats) = gsp(
            &prep.ig.graph,
            spec.source,
            spec.target,
            &spec.categories,
            &engine,
        );
        times.push(stats.total.as_secs_f64() * 1e3);
    }
    let n = times.len().max(1) as f64;
    PointResult {
        method: if use_ch {
            "GSP".into()
        } else {
            "GSP-Dij".into()
        },
        completed: times.len(),
        attempted,
        inf: times.len() < queries.len().min(3),
        mean_ms: times.iter().sum::<f64>() / n,
        mean_examined: 0.0,
        mean_nn: 0.0,
        mean_per_level: Vec::new(),
        breakdown_ms: [0.0; 4],
    }
}

/// Formats milliseconds compactly (`0.42`, `13.5`, `1.2e3`).
pub fn format_ms(ms: f64) -> String {
    if ms >= 10_000.0 {
        format!("{:.2}e3", ms / 1e3)
    } else if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 1.0 {
        format!("{ms:.1}")
    } else {
        format!("{ms:.3}")
    }
}

/// Formats large counts compactly (`312`, `4.1k`, `2.3M`).
pub fn format_count(c: f64) -> String {
    if c >= 1e6 {
        format!("{:.2}M", c / 1e6)
    } else if c >= 1e4 {
        format!("{:.1}k", c / 1e3)
    } else {
        format!("{c:.0}")
    }
}

/// A minimal aligned-column text table for the repro output.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        let measure_row = |widths: &mut Vec<usize>, row: &[String]| {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        };
        measure_row(&mut widths, &self.header);
        for r in &self.rows {
            measure_row(&mut widths, r);
        }
        let fmt_row = |row: &[String]| {
            let mut line = String::new();
            for (i, &width) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                let pad = width.saturating_sub(cell.chars().count());
                line.push_str(cell);
                line.push_str(&" ".repeat(pad + 2));
            }
            line.trim_end().to_string()
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

/// Convenience used across experiments: prepares one scenario at `scale`.
pub fn prepare_scenario(name: ScenarioName, scale: f64) -> Prepared {
    Prepared::build(Scenario::new(name).with_scale(scale))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosr_workloads::gen_queries;

    #[test]
    fn measure_smoke_on_tiny_scenario() {
        let prep = prepare_scenario(ScenarioName::Col, 0.03);
        let queries = gen_queries(&prep.ig.graph, 4, 3, 5, 7);
        let limits = Limits::default();
        let sk = measure(&prep, &queries, Method::Sk, limits);
        assert_eq!(sk.completed, 4);
        assert!(!sk.inf);
        assert!(sk.mean_examined > 0.0);
        let pk = measure(&prep, &queries, Method::Pk, limits);
        assert!(pk.mean_examined >= sk.mean_examined);
        // GSP runs too.
        let g = measure_gsp(&prep, &queries, false, limits);
        assert_eq!(g.completed, 4);
        let gch = measure_gsp(&prep, &queries, true, limits);
        assert_eq!(gch.completed, 4);
    }

    #[test]
    fn tiny_budget_reports_inf() {
        let prep = prepare_scenario(ScenarioName::Col, 0.03);
        let queries = gen_queries(&prep.ig.graph, 10, 3, 5, 7);
        let limits = Limits {
            budget: Duration::from_nanos(1),
            examined_limit: u64::MAX,
        };
        let r = measure(&prep, &queries, Method::Sk, limits);
        assert!(r.inf);
        assert_eq!(r.time_cell(), "INF");
    }

    #[test]
    fn with_categories_rebuilds_inverted_only() {
        let prep = prepare_scenario(ScenarioName::Fla, 0.03);
        let resized = prep.with_categories(|g| {
            kosr_workloads::assign_uniform(g, 20, 5, 123);
        });
        assert_eq!(
            resized
                .ig
                .graph
                .categories()
                .category_size(kosr_graph::CategoryId(0)),
            5
        );
        // Labels are shared, only categories/inverted changed.
        assert_eq!(
            resized.ig.labels.num_entries(),
            prep.ig.labels.num_entries()
        );
    }

    #[test]
    fn text_table_renders_aligned() {
        let mut t = TextTable::new(vec!["a", "bbbb"]);
        t.row(vec!["1", "2"]);
        t.row(vec!["333", "4"]);
        let s = t.render();
        assert!(s.contains("a    bbbb"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn formatters() {
        assert_eq!(format_ms(0.1234), "0.123");
        assert_eq!(format_ms(5.25), "5.2");
        assert_eq!(format_ms(150.0), "150");
        assert_eq!(format_ms(12_000.0), "12.00e3");
        assert_eq!(format_count(312.0), "312");
        assert_eq!(format_count(41_000.0), "41.0k");
        assert_eq!(format_count(2_300_000.0), "2.30M");
    }
}
