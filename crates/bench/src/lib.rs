//! # kosr-bench
//!
//! Reproduction harness for the paper's evaluation (§V): the [`harness`]
//! module prepares indexed scenarios and measures query batches; the
//! `repro` binary regenerates every table and figure; the Criterion benches
//! under `benches/` time the hot paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod parallel;

pub use harness::{
    format_count, format_ms, measure, measure_gsp, measure_sk_db, prepare_scenario, to_query,
    Limits, PointResult, Prepared, TextTable,
};
pub use parallel::{mean_counters_parallel, run_batch_parallel};
