//! `repro` — regenerates every table and figure of the paper's evaluation
//! (§V-B) on the synthetic scenario suite.
//!
//! ```text
//! repro <experiment> [--scale X] [--instances N] [--budget-ms B] [--limit L]
//!
//! experiments:
//!   table7   dataset sizes                     table9   index preprocessing
//!   fig3     overall: time / examined / NN     fig3d    effect of k (FLA)
//!   fig3e    effect of k (CAL)                 fig3f    effect of |C| (FLA)
//!   fig3g    effect of |C| (CAL)               fig3h    effect of |Ci| (FLA)
//!   fig4     small k (CAL & FLA)               fig5     SK search space/level
//!   fig6     zipfian factor (FLA)              fig7     OSR (k=1) incl. GSP
//!   table10  PK vs SK time breakdown (FLA)     ablate   design ablations
//!   all      everything above
//! ```
//!
//! Absolute numbers differ from the paper (different hardware, scaled
//! graphs); the *shapes* — who wins, by how much, where INF appears — are
//! the reproduction targets recorded in EXPERIMENTS.md.

use std::collections::HashMap;
use std::time::Duration;

use kosr_bench::harness::{
    format_count, format_ms, measure, measure_gsp, measure_sk_db, to_query, Limits, PointResult,
    Prepared, TextTable,
};
use kosr_core::{pruning_kosr, star_kosr, Method};
use kosr_index::disk::DiskIndex;
use kosr_index::{LabelNn, LabelTarget};
use kosr_workloads::{assign_uniform, assign_zipf, gen_queries, QuerySpec, Scenario, ScenarioName};

struct Ctx {
    scale: f64,
    instances: usize,
    limits: Limits,
    prepared: HashMap<ScenarioName, Prepared>,
    disk_dir: std::path::PathBuf,
}

impl Ctx {
    fn new(scale: f64, instances: usize, limits: Limits) -> Ctx {
        let disk_dir = std::env::temp_dir().join(format!("kosr_repro_{}", std::process::id()));
        std::fs::create_dir_all(&disk_dir).expect("temp dir");
        Ctx {
            scale,
            instances,
            limits,
            prepared: HashMap::new(),
            disk_dir,
        }
    }

    fn prep(&mut self, name: ScenarioName) -> &Prepared {
        let scale = self.scale;
        self.prepared.entry(name).or_insert_with(|| {
            eprintln!("[prep] building {} (scale {scale}) ...", name.as_str());
            let p = Prepared::build(Scenario::new(name).with_scale(scale));
            eprintln!(
                "[prep] {}: |V|={} |E|={} labels={} entries",
                name.as_str(),
                p.ig.graph.num_vertices(),
                p.ig.graph.num_edges(),
                p.ig.labels.num_entries()
            );
            p
        })
    }

    fn queries(&mut self, name: ScenarioName, c_len: usize, k: usize, seed: u64) -> Vec<QuerySpec> {
        let instances = self.instances;
        let prep = self.prep(name);
        gen_queries(&prep.ig.graph, instances, c_len, k, seed)
    }

    fn disk_index_for(&mut self, name: ScenarioName) -> DiskIndex {
        let path = self.disk_dir.join(format!("{}.idx", name.as_str()));
        if !path.exists() {
            let prep = self.prep(name);
            prep.ig.write_disk_index(&path).expect("write disk index");
        }
        DiskIndex::open(&path).expect("open disk index")
    }
}

/// Default |C| = 6, k = 30 (Table VIII bold values).
const DEF_C: usize = 6;
const DEF_K: usize = 30;

fn methods_row(
    ctx: &mut Ctx,
    name: ScenarioName,
    queries: &[QuerySpec],
    with_db: bool,
) -> Vec<PointResult> {
    let limits = ctx.limits;
    let mut out = Vec::new();
    for m in Method::ALL {
        let prep = ctx.prep(name);
        out.push(measure(prep, queries, m, limits));
    }
    if with_db {
        let disk = ctx.disk_index_for(name);
        out.push(measure_sk_db(&disk, queries, limits));
    }
    out
}

fn table7(ctx: &mut Ctx) {
    println!("\n== Table VII: graphs (scaled synthetic analogues) ==");
    let mut t = TextTable::new(vec!["Dataset", "|V|", "|E|", "#categories", "#memberships"]);
    for name in ScenarioName::ALL {
        let p = ctx.prep(name);
        t.row(vec![
            name.as_str().to_string(),
            p.ig.graph.num_vertices().to_string(),
            p.ig.graph.num_edges().to_string(),
            p.ig.graph.categories().num_categories().to_string(),
            p.ig.graph.categories().num_memberships().to_string(),
        ]);
    }
    print!("{}", t.render());
}

fn table9(ctx: &mut Ctx) {
    println!("\n== Table IX: preprocessing (label + inverted label indexes) ==");
    let mut t = TextTable::new(vec![
        "Graph",
        "CH [ms]",
        "PLL [ms]",
        "Avg |Lin|",
        "Avg |Lout|",
        "Label MB",
        "IL [ms]",
        "Avg |IL(Ci)|",
        "Avg |IL(v)|",
        "IL MB",
    ]);
    for name in ScenarioName::ALL {
        let p = ctx.prep(name);
        let ls = &p.ig.label_stats;
        let is = &p.ig.inverted_stats;
        t.row(vec![
            name.as_str().to_string(),
            format_ms(p.ch_build.as_secs_f64() * 1e3),
            format_ms(ls.build_time.as_secs_f64() * 1e3),
            format!("{:.2}", p.ig.labels.avg_lin_size()),
            format!("{:.2}", p.ig.labels.avg_lout_size()),
            format!("{:.2}", p.ig.labels.size_bytes() as f64 / 1e6),
            format_ms(is.build_time.as_secs_f64() * 1e3),
            format!("{:.1}", is.avg_entries_per_category),
            format!("{:.2}", is.avg_list_len),
            format!("{:.2}", is.size_bytes as f64 / 1e6),
        ]);
    }
    print!("{}", t.render());
}

fn fig3(ctx: &mut Ctx) {
    println!("\n== Figure 3(a-c): all methods x all graphs (|C|={DEF_C}, k={DEF_K}) ==");
    let mut rows: Vec<(ScenarioName, Vec<PointResult>)> = Vec::new();
    for name in ScenarioName::ALL {
        let queries = ctx.queries(name, DEF_C, DEF_K, 0xF163A);
        rows.push((name, methods_row(ctx, name, &queries, true)));
    }
    let headers: Vec<String> = std::iter::once("Graph".to_string())
        .chain(rows[0].1.iter().map(|r| r.method.clone()))
        .collect();

    println!("\n-- Figure 3(a): mean query time [ms] --");
    let mut t = TextTable::new(headers.clone());
    for (name, results) in &rows {
        let mut cells = vec![name.as_str().to_string()];
        cells.extend(results.iter().map(|r| r.time_cell()));
        t.row(cells);
    }
    print!("{}", t.render());

    println!("\n-- Figure 3(b): mean # examined routes --");
    let mut t = TextTable::new(headers.clone());
    for (name, results) in &rows {
        let mut cells = vec![name.as_str().to_string()];
        cells.extend(results.iter().map(|r| r.count_cell(r.mean_examined)));
        t.row(cells);
    }
    print!("{}", t.render());

    println!("\n-- Figure 3(c): mean # NN queries --");
    let mut t = TextTable::new(headers);
    for (name, results) in &rows {
        let mut cells = vec![name.as_str().to_string()];
        cells.extend(results.iter().map(|r| r.count_cell(r.mean_nn)));
        t.row(cells);
    }
    print!("{}", t.render());
}

fn sweep_k(ctx: &mut Ctx, name: ScenarioName, ks: &[usize], label: &str) {
    println!(
        "\n== {label}: effect of k on {} (|C|={DEF_C}) ==",
        name.as_str()
    );
    let mut t = TextTable::new(vec![
        "k", "KPNE-Dij", "PK-Dij", "SK-Dij", "KPNE", "PK", "SK", "SK-DB",
    ]);
    for &k in ks {
        let queries = ctx.queries(name, DEF_C, k, 0xF163D + k as u64);
        let results = methods_row(ctx, name, &queries, true);
        let mut cells = vec![k.to_string()];
        cells.extend(results.iter().map(|r| r.time_cell()));
        t.row(cells);
    }
    print!("{}", t.render());
}

fn sweep_c(ctx: &mut Ctx, name: ScenarioName, label: &str) {
    println!(
        "\n== {label}: effect of |C| on {} (k={DEF_K}) ==",
        name.as_str()
    );
    let mut t = TextTable::new(vec![
        "|C|", "KPNE-Dij", "PK-Dij", "SK-Dij", "KPNE", "PK", "SK", "SK-DB",
    ]);
    for c_len in [2usize, 4, 6, 8, 10] {
        let max_c = ctx.prep(name).ig.graph.categories().num_categories();
        let c_len = c_len.min(max_c);
        let queries = ctx.queries(name, c_len, DEF_K, 0xF163F + c_len as u64);
        let results = methods_row(ctx, name, &queries, true);
        let mut cells = vec![c_len.to_string()];
        cells.extend(results.iter().map(|r| r.time_cell()));
        t.row(cells);
    }
    print!("{}", t.render());
}

fn fig3h(ctx: &mut Ctx) {
    println!("\n== Figure 3(h): effect of |Ci| on FLA (|C|={DEF_C}, k={DEF_K}) ==");
    let sizes: Vec<usize> = [100usize, 200, 300, 400]
        .iter()
        .map(|&s| ((s as f64) * ctx.scale).round().max(4.0) as usize)
        .collect();
    let limits = ctx.limits;
    let instances = ctx.instances;
    let base = ctx.prep(ScenarioName::Fla);
    let mut t = TextTable::new(vec![
        "|Ci|", "KPNE-Dij", "PK-Dij", "SK-Dij", "KPNE", "PK", "SK",
    ]);
    let variants: Vec<(usize, Prepared)> = sizes
        .iter()
        .map(|&s| {
            (
                s,
                base.with_categories(|g| {
                    assign_uniform(g, 20, s.min(g.num_vertices()), 0xC1 + s as u64)
                }),
            )
        })
        .collect();
    for (s, prep) in &variants {
        let queries = gen_queries(&prep.ig.graph, instances, DEF_C, DEF_K, 0xF1631 + *s as u64);
        let mut cells = vec![s.to_string()];
        for m in Method::ALL {
            cells.push(measure(prep, &queries, m, limits).time_cell());
        }
        t.row(cells);
    }
    print!("{}", t.render());
}

fn fig4(ctx: &mut Ctx) {
    for name in [ScenarioName::Cal, ScenarioName::Fla] {
        println!(
            "\n== Figure 4: small k on {} (|C|={DEF_C}) ==",
            name.as_str()
        );
        let mut t = TextTable::new(vec![
            "k", "KPNE-Dij", "PK-Dij", "SK-Dij", "KPNE", "PK", "SK", "SK-DB",
        ]);
        for k in [1usize, 2, 3, 4, 5, 10] {
            let queries = ctx.queries(name, DEF_C, k, 0xF1640 + k as u64);
            let results = methods_row(ctx, name, &queries, true);
            let mut cells = vec![k.to_string()];
            cells.extend(results.iter().map(|r| r.time_cell()));
            t.row(cells);
        }
        print!("{}", t.render());
    }
}

fn fig5(ctx: &mut Ctx) {
    println!("\n== Figure 5: SK examined routes per category level (|C|={DEF_C}, k={DEF_K}) ==");
    let mut t = TextTable::new(vec![
        "Graph", "L0", "L1", "L2", "L3", "L4", "L5", "L6", "L7(t)",
    ]);
    for name in ScenarioName::ALL {
        let queries = ctx.queries(name, DEF_C, DEF_K, 0xF1650);
        let limits = ctx.limits;
        let prep = ctx.prep(name);
        let r = measure(prep, &queries, Method::Sk, limits);
        let mut cells = vec![name.as_str().to_string()];
        cells.extend(r.mean_per_level.iter().map(|&c| format_count(c)));
        t.row(cells);
    }
    print!("{}", t.render());
    println!("(rises while estimates are loose, then shrinks toward the destination — Fig. 2(c))");
}

fn fig6(ctx: &mut Ctx) {
    println!("\n== Figure 6: zipfian category factor f on FLA (|C|={DEF_C}, k={DEF_K}) ==");
    let total = 20
        * Scenario::new(ScenarioName::Fla)
            .with_scale(ctx.scale)
            .default_category_size();
    let limits = ctx.limits;
    let instances = ctx.instances;
    let base = ctx.prep(ScenarioName::Fla);
    let mut t = TextTable::new(vec!["f", "KPNE", "PK", "SK"]);
    for f10 in [12u32, 14, 16, 18] {
        let f = f10 as f64 / 10.0;
        let prep = base.with_categories(|g| assign_zipf(g, 20, total, f, 0x21F + f10 as u64));
        let queries = gen_queries(
            &prep.ig.graph,
            instances,
            DEF_C,
            DEF_K,
            0xF1660 + f10 as u64,
        );
        let mut cells = vec![format!("{f:.1}")];
        for m in [Method::Kpne, Method::Pk, Method::Sk] {
            cells.push(measure(&prep, &queries, m, limits).time_cell());
        }
        t.row(cells);
    }
    print!("{}", t.render());
}

fn fig7(ctx: &mut Ctx) {
    println!("\n== Figure 7: OSR queries (k = 1, |C|={DEF_C}) incl. GSP ==");
    let mut t = TextTable::new(vec![
        "Graph", "KPNE-Dij", "PK-Dij", "SK-Dij", "KPNE", "PK", "SK", "SK-DB", "GSP", "GSP-Dij",
    ]);
    for name in ScenarioName::ALL {
        let queries = ctx.queries(name, DEF_C, 1, 0xF1670);
        let mut results = methods_row(ctx, name, &queries, true);
        let limits = ctx.limits;
        let prep = ctx.prep(name);
        results.push(measure_gsp(prep, &queries, true, limits));
        results.push(measure_gsp(prep, &queries, false, limits));
        let mut cells = vec![name.as_str().to_string()];
        cells.extend(results.iter().map(|r| r.time_cell()));
        t.row(cells);
    }
    print!("{}", t.render());
}

fn table10(ctx: &mut Ctx) {
    println!("\n== Table X: query-time distribution on FLA [ms] (|C|={DEF_C}, k={DEF_K}) ==");
    let queries = ctx.queries(ScenarioName::Fla, DEF_C, DEF_K, 0xF1610);
    let limits = ctx.limits;
    let prep = ctx.prep(ScenarioName::Fla);
    let pk = measure(prep, &queries, Method::Pk, limits);
    let sk = measure(prep, &queries, Method::Sk, limits);
    let mut t = TextTable::new(vec!["Component", "PK", "SK"]);
    t.row(vec![
        "Overall query time".to_string(),
        format_ms(pk.mean_ms),
        format_ms(sk.mean_ms),
    ]);
    t.row(vec![
        "NN query time".to_string(),
        format_ms(pk.breakdown_ms[0]),
        format_ms(sk.breakdown_ms[0]),
    ]);
    t.row(vec![
        "Priority queue maintenance".to_string(),
        format_ms(pk.breakdown_ms[1]),
        format_ms(sk.breakdown_ms[1]),
    ]);
    t.row(vec![
        "Estimation time".to_string(),
        format_ms(pk.breakdown_ms[2]),
        format_ms(sk.breakdown_ms[2]),
    ]);
    t.row(vec![
        "Others".to_string(),
        format_ms(pk.breakdown_ms[3]),
        format_ms(sk.breakdown_ms[3]),
    ]);
    print!("{}", t.render());
}

fn ablate(ctx: &mut Ctx) {
    println!("\n== Ablations (beyond the paper) ==");

    println!("\n-- dominance pruning: examined routes, KPNE (no dominance) vs PK --");
    let mut t = TextTable::new(vec!["Graph", "KPNE", "PK", "ratio"]);
    for name in ScenarioName::ALL {
        let queries = ctx.queries(name, DEF_C, DEF_K, 0xAB1);
        let limits = ctx.limits;
        let prep = ctx.prep(name);
        let kp = measure(prep, &queries, Method::Kpne, limits);
        let pk = measure(prep, &queries, Method::Pk, limits);
        let ratio = if kp.inf {
            format!(
                ">{}",
                format_count(limits.examined_limit as f64 / pk.mean_examined.max(1.0))
            )
        } else {
            format!("{:.1}x", kp.mean_examined / pk.mean_examined.max(1.0))
        };
        t.row(vec![
            name.as_str().to_string(),
            kp.count_cell(kp.mean_examined),
            pk.count_cell(pk.mean_examined),
            ratio,
        ]);
    }
    print!("{}", t.render());

    println!("\n-- A* estimation: examined routes, PK (no heuristic) vs SK --");
    let mut t = TextTable::new(vec!["Graph", "PK", "SK", "ratio"]);
    for name in ScenarioName::ALL {
        let queries = ctx.queries(name, DEF_C, DEF_K, 0xAB2);
        let limits = ctx.limits;
        let prep = ctx.prep(name);
        let pk = measure(prep, &queries, Method::Pk, limits);
        let sk = measure(prep, &queries, Method::Sk, limits);
        t.row(vec![
            name.as_str().to_string(),
            pk.count_cell(pk.mean_examined),
            sk.count_cell(sk.mean_examined),
            format!("{:.1}x", pk.mean_examined / sk.mean_examined.max(1.0)),
        ]);
    }
    print!("{}", t.render());

    println!("\n-- hub ordering: PLL label entries, degree order vs CH-rank order --");
    let mut t = TextTable::new(vec!["Graph", "degree", "CH-rank", "ratio"]);
    for name in ScenarioName::ALL {
        let prep = ctx.prep(name);
        let deg = kosr_hoplabel::build(&prep.ig.graph, &kosr_hoplabel::HubOrder::Degree);
        let ch_entries = prep.ig.labels.num_entries();
        t.row(vec![
            name.as_str().to_string(),
            deg.num_entries().to_string(),
            ch_entries.to_string(),
            format!(
                "{:.2}x",
                deg.num_entries() as f64 / ch_entries.max(1) as f64
            ),
        ]);
    }
    print!("{}", t.render());

    println!("\n-- correctness spot-check: PK and SK agree on CAL --");
    let queries = ctx.queries(ScenarioName::Cal, 4, 10, 0xAB3);
    let prep = ctx.prep(ScenarioName::Cal);
    let mut agree = 0;
    for spec in queries.iter().take(10) {
        let q = to_query(spec);
        let a = pruning_kosr(
            &q,
            LabelNn::new(&prep.ig.labels, &prep.ig.inverted),
            LabelTarget::new(&prep.ig.labels, q.target),
        );
        let b = star_kosr(
            &q,
            LabelNn::new(&prep.ig.labels, &prep.ig.inverted),
            LabelTarget::new(&prep.ig.labels, q.target),
        );
        assert_eq!(a.costs(), b.costs(), "PK and SK disagree on {q:?}");
        agree += 1;
    }
    println!("{agree}/10 queries: identical top-k cost vectors");
}

fn usage() -> ! {
    eprintln!(
        "usage: repro <table7|table9|fig3|fig3d|fig3e|fig3f|fig3g|fig3h|fig4|fig5|fig6|fig7|table10|ablate|all> \
         [--scale X] [--instances N] [--budget-ms B] [--limit L]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let experiment = args[0].clone();
    let mut scale = 1.0f64;
    let mut instances = 50usize;
    let mut limits = Limits::default();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale = args[i + 1].parse().expect("--scale f64");
                i += 2;
            }
            "--instances" => {
                instances = args[i + 1].parse().expect("--instances usize");
                i += 2;
            }
            "--budget-ms" => {
                limits.budget =
                    Duration::from_millis(args[i + 1].parse().expect("--budget-ms u64"));
                i += 2;
            }
            "--limit" => {
                limits.examined_limit = args[i + 1].parse().expect("--limit u64");
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }

    let mut ctx = Ctx::new(scale, instances, limits);
    let t0 = std::time::Instant::now();
    match experiment.as_str() {
        "table7" => table7(&mut ctx),
        "table9" => table9(&mut ctx),
        "fig3" | "fig3a" | "fig3b" | "fig3c" => fig3(&mut ctx),
        "fig3d" => sweep_k(
            &mut ctx,
            ScenarioName::Fla,
            &[10, 20, 30, 40, 50],
            "Figure 3(d)",
        ),
        "fig3e" => sweep_k(
            &mut ctx,
            ScenarioName::Cal,
            &[10, 20, 30, 40, 50],
            "Figure 3(e)",
        ),
        "fig3f" => sweep_c(&mut ctx, ScenarioName::Fla, "Figure 3(f)"),
        "fig3g" => sweep_c(&mut ctx, ScenarioName::Cal, "Figure 3(g)"),
        "fig3h" => fig3h(&mut ctx),
        "fig4" => fig4(&mut ctx),
        "fig5" => fig5(&mut ctx),
        "fig6" => fig6(&mut ctx),
        "fig7" => fig7(&mut ctx),
        "table10" => table10(&mut ctx),
        "ablate" => ablate(&mut ctx),
        "all" => {
            table7(&mut ctx);
            table9(&mut ctx);
            fig3(&mut ctx);
            sweep_k(
                &mut ctx,
                ScenarioName::Fla,
                &[10, 20, 30, 40, 50],
                "Figure 3(d)",
            );
            sweep_k(
                &mut ctx,
                ScenarioName::Cal,
                &[10, 20, 30, 40, 50],
                "Figure 3(e)",
            );
            sweep_c(&mut ctx, ScenarioName::Fla, "Figure 3(f)");
            sweep_c(&mut ctx, ScenarioName::Cal, "Figure 3(g)");
            fig3h(&mut ctx);
            fig4(&mut ctx);
            fig5(&mut ctx);
            fig6(&mut ctx);
            fig7(&mut ctx);
            table10(&mut ctx);
            ablate(&mut ctx);
        }
        _ => usage(),
    }
    eprintln!("\n[done in {:.1}s]", t0.elapsed().as_secs_f64());
    std::fs::remove_dir_all(&ctx.disk_dir).ok();
}
