//! Parallel batch execution of query instances across threads.
//!
//! The paper averages over 50 independent query instances per measurement
//! point. For *counter* experiments (examined routes, NN queries — Figures
//! 3(b), 3(c), 5) the instances are embarrassingly parallel: the indexes
//! are immutable and all per-query state is thread-local, so fanning the
//! batch across cores (crossbeam scoped threads, parking_lot-guarded
//! collection) cuts wall time by ~#cores. **Wall-clock timing figures use
//! the sequential [`crate::harness::measure`] instead** — concurrent
//! contention would distort them.

use parking_lot::Mutex;

use kosr_core::{KosrOutcome, Method};
use kosr_workloads::QuerySpec;

use crate::harness::{to_query, Prepared};

/// Runs `method` over every instance concurrently and returns the outcomes
/// in instance order. `threads = 0` means one thread per available core.
pub fn run_batch_parallel(
    prep: &Prepared,
    queries: &[QuerySpec],
    method: Method,
    threads: usize,
) -> Vec<KosrOutcome> {
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        threads
    }
    .min(queries.len().max(1));

    let results: Mutex<Vec<Option<KosrOutcome>>> = Mutex::new(vec![None; queries.len()]);
    let next: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= queries.len() {
                    break;
                }
                let out = prep.ig.run(&to_query(&queries[i]), method);
                results.lock()[i] = Some(out);
            });
        }
    })
    .expect("batch worker panicked");

    results
        .into_inner()
        .into_iter()
        .map(|o| o.expect("every slot filled"))
        .collect()
}

/// Mean examined-routes / NN-query counters over a parallel batch — the
/// fast path for the counter-only experiments.
pub fn mean_counters_parallel(
    prep: &Prepared,
    queries: &[QuerySpec],
    method: Method,
    threads: usize,
) -> (f64, f64) {
    let outcomes = run_batch_parallel(prep, queries, method, threads);
    let n = outcomes.len().max(1) as f64;
    let examined: u64 = outcomes.iter().map(|o| o.stats.examined_routes).sum();
    let nn: u64 = outcomes.iter().map(|o| o.stats.nn_queries).sum();
    (examined as f64 / n, nn as f64 / n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::prepare_scenario;
    use kosr_workloads::{gen_queries, ScenarioName};

    #[test]
    fn parallel_equals_sequential() {
        let prep = prepare_scenario(ScenarioName::Col, 0.04);
        let queries = gen_queries(&prep.ig.graph, 12, 3, 5, 3);
        let par = run_batch_parallel(&prep, &queries, Method::Sk, 4);
        assert_eq!(par.len(), queries.len());
        for (spec, out) in queries.iter().zip(&par) {
            let seq = prep.ig.run(&to_query(spec), Method::Sk);
            assert_eq!(seq.costs(), out.costs());
            assert_eq!(seq.stats.examined_routes, out.stats.examined_routes);
            assert_eq!(seq.stats.nn_queries, out.stats.nn_queries);
        }
    }

    #[test]
    fn zero_threads_means_all_cores() {
        let prep = prepare_scenario(ScenarioName::Col, 0.04);
        let queries = gen_queries(&prep.ig.graph, 4, 2, 3, 9);
        let out = run_batch_parallel(&prep, &queries, Method::Pk, 0);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn mean_counters_match_manual_average() {
        let prep = prepare_scenario(ScenarioName::Col, 0.04);
        let queries = gen_queries(&prep.ig.graph, 6, 3, 4, 11);
        let (ex, nn) = mean_counters_parallel(&prep, &queries, Method::Sk, 3);
        let outcomes = run_batch_parallel(&prep, &queries, Method::Sk, 1);
        let ex2: f64 = outcomes
            .iter()
            .map(|o| o.stats.examined_routes as f64)
            .sum::<f64>()
            / outcomes.len() as f64;
        let nn2: f64 = outcomes
            .iter()
            .map(|o| o.stats.nn_queries as f64)
            .sum::<f64>()
            / outcomes.len() as f64;
        assert_eq!(ex, ex2);
        assert_eq!(nn, nn2);
    }
}
