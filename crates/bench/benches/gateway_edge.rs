//! What the HTTP edge costs: codec microbenches (HTTP head parse, JSON
//! body decode, route-response encode) and the served path measured
//! end-to-end over a live gateway on loopback sockets, against the same
//! router driven directly — so the per-request HTTP/JSON overhead is a
//! number, not a guess.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use kosr_core::{IndexedGraph, Query};
use kosr_gateway::http::{read_request, HttpLimits};
use kosr_gateway::{client, json, Gateway, GatewayConfig};
use kosr_graph::{PartitionConfig, Partitioner};
use kosr_service::ServiceConfig;
use kosr_shard::{ShardRouter, ShardSet};
use kosr_workloads::{
    assign_uniform, gen_mixed_traffic, road_grid_directed, route_body, QuerySpec, TrafficMix,
};

fn world() -> (Arc<ShardRouter>, Vec<QuerySpec>) {
    let mut g = road_grid_directed(16, 16, 13);
    assign_uniform(&mut g, 6, 20, 5);
    let ig = IndexedGraph::build_default(g.clone());
    let partition = Partitioner::new(PartitionConfig {
        num_shards: 2,
        ..Default::default()
    })
    .partition(&ig.graph);
    let router = ShardRouter::new(
        ShardSet::build(&ig, partition),
        ServiceConfig {
            workers: 2,
            queue_capacity: 1024,
            cache_capacity: 0, // cold path: measure execution + edge
            ..Default::default()
        },
    );
    let specs = gen_mixed_traffic(&g, 200, &TrafficMix::default(), 29);
    (Arc::new(router), specs)
}

fn gateway_edge(c: &mut Criterion) {
    let (router, specs) = world();
    let mut group = c.benchmark_group("gateway_edge");
    group.sample_size(10);

    // Codec microbenches: the hand-rolled parsers on a representative
    // request, no sockets.
    let body = route_body(&specs[0], Some(2000));
    let raw = format!(
        "POST /v1/route HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .into_bytes();
    group.bench_function("http_parse", |b| {
        let limits = HttpLimits::default();
        b.iter(|| {
            let req = read_request(&mut &raw[..], &limits).expect("valid");
            criterion::black_box(req);
        })
    });
    group.bench_function("json_decode", |b| {
        b.iter(|| criterion::black_box(json::parse(body.as_bytes()).expect("valid")))
    });

    // The router driven directly: the floor the edge is measured against.
    let queries: Vec<Query> = specs
        .iter()
        .map(|s| Query::new(s.source, s.target, s.categories.clone(), s.k))
        .collect();
    group.bench_function("router_direct", |b| {
        b.iter(|| {
            for r in router.run_batch(&queries) {
                criterion::black_box(r.expect("completes"));
            }
        })
    });

    // The full edge: HTTP parse + JSON decode + routing + JSON encode +
    // HTTP write, one keep-alive-free call per query over loopback.
    group.bench_function("http_served", |b| {
        let gateway =
            Gateway::spawn(Arc::clone(&router), None, GatewayConfig::default()).expect("bind");
        let bodies: Vec<String> = specs.iter().map(|s| route_body(s, None)).collect();
        b.iter(|| {
            for body in &bodies {
                let resp =
                    client::call(gateway.addr(), "POST", "/v1/route", Some(body)).expect("served");
                assert_eq!(resp.status, 200);
                criterion::black_box(resp);
            }
        })
    });

    group.finish();
}

criterion_group!(benches, gateway_edge);
criterion_main!(benches);
