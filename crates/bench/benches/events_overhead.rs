//! What the fleet event journal costs on the serving path. The query hot
//! path never touches the journal — instrumentation only fires on
//! lifecycle edges — so an instrumented replica set must answer the same
//! batch within a whisker (acceptance: 2%) of a bare one. Measured as a
//! true A/B: two [`ReplicaSet`]s over the **same** service, one with
//! `attach_events`, one without, plus the raw `emit` and `events_since`
//! microbenches that bound the cost of the edges themselves.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use kosr_core::{IndexedGraph, Query};
use kosr_service::{EventJournal, EventKind, KosrService, ServiceConfig, Source, TagValue};
use kosr_transport::{InProcTransport, ReplicaSet, ShardTransport};
use kosr_workloads::{assign_uniform, gen_mixed_traffic, road_grid_directed, TrafficMix};

fn world() -> (Arc<KosrService>, Vec<Query>) {
    let mut g = road_grid_directed(12, 12, 11);
    assign_uniform(&mut g, 5, 16, 3);
    let ig = IndexedGraph::build_default(g.clone());
    let service = Arc::new(KosrService::new(
        Arc::new(ig),
        ServiceConfig {
            workers: 2,
            queue_capacity: 1024,
            cache_capacity: 0, // cold path: measure execution, not memoization
            ..Default::default()
        },
    ));
    let queries = gen_mixed_traffic(&g, 40, &TrafficMix::default(), 7)
        .iter()
        .map(|s| Query::new(s.source, s.target, s.categories.clone(), s.k))
        .collect();
    (service, queries)
}

fn replica_set(service: &Arc<KosrService>) -> Arc<ReplicaSet> {
    let transport: Arc<dyn ShardTransport> = Arc::new(InProcTransport::new(Arc::clone(service)));
    Arc::new(ReplicaSet::new(vec![transport]))
}

fn run_batch(set: &Arc<ReplicaSet>, queries: &[Query]) {
    for q in queries {
        let resp = set.query(q.clone()).wait().expect("answers");
        criterion::black_box(resp);
    }
}

fn events_overhead(c: &mut Criterion) {
    let (service, queries) = world();
    let mut group = c.benchmark_group("events_overhead");
    group.sample_size(10);

    // The bare baseline: no journal attached anywhere.
    let bare = replica_set(&service);
    group.bench_function("queries_bare", |b| b.iter(|| run_batch(&bare, &queries)));

    // The instrumented set: journal attached, cursors armed — the exact
    // configuration the router assembles. Same service, same batch.
    let instrumented = replica_set(&service);
    instrumented.attach_events(Arc::new(EventJournal::new(512)), 0);
    group.bench_function("queries_instrumented", |b| {
        b.iter(|| run_batch(&instrumented, &queries))
    });

    // The lifecycle edges themselves: one emit (seq issue + ring push +
    // counter), and the /v1/events read path over a full journal.
    let journal = EventJournal::new(512);
    group.bench_function("journal_emit", |b| {
        b.iter(|| {
            criterion::black_box(journal.emit(
                Source::Supervisor,
                EventKind::LogCompacted,
                None,
                vec![("dropped".to_string(), TagValue::U64(8))],
            ))
        })
    });
    group.bench_function("events_since", |b| {
        b.iter(|| criterion::black_box(journal.events_since(0, None, None)))
    });

    group.finish();
}

criterion_group!(benches, events_overhead);
criterion_main!(benches);
