//! Replica cold-start cost: how long it takes to turn a snapshot blob back
//! into a serving `IndexedGraph`, v1 versus the v2 flat-arena layout, at
//! two world sizes.
//!
//! * `encode_v1` / `encode_v2` — serializing the index into each format.
//! * `decode_install_v1` — the legacy path: parse the length-prefixed v1
//!   blob (per-row reads, grouping passes) and **rebuild the inverted
//!   indexes from the labels** — the dominant cold-start term.
//! * `decode_install_v2` — the arena path: one whole-length check, then
//!   bounds-checked reinterpretation of the CSR slabs; the inverted
//!   indexes travel inside the blob, so nothing is rebuilt.
//!
//! Worlds: `1x` is the repo's standard 16×16 grid bench world; `10x` is a
//! 50×51 grid (~10× the vertices) to show the gap widening with size.

use criterion::{criterion_group, criterion_main, Criterion};

use kosr_core::IndexedGraph;
use kosr_workloads::{assign_uniform, road_grid_directed};

fn world(w: u32, h: u32, seed: u64) -> IndexedGraph {
    let mut g = road_grid_directed(w, h, seed);
    assign_uniform(&mut g, 6, 20, 5);
    IndexedGraph::build_default(g)
}

fn snapshot_cold_start(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_cold_start");
    // Cold-start decode runs are short; a larger sample pool keeps the
    // median stable against scheduler noise (CI caps via KOSR_BENCH_SAMPLES).
    group.sample_size(30);

    for (label, w, h) in [("1x", 16u32, 16u32), ("10x", 50, 51)] {
        let ig = world(w, h, 13);
        let v1 = ig.encode_snapshot_v1().expect("world fits v1");
        let v2 = ig.encode_snapshot();

        group.bench_function(format!("encode_v1/{label}"), |b| {
            b.iter(|| criterion::black_box(ig.encode_snapshot_v1().unwrap()));
        });
        group.bench_function(format!("encode_v2/{label}"), |b| {
            b.iter(|| criterion::black_box(ig.encode_snapshot()));
        });
        // `iter_with_large_drop`: installing a snapshot produces the new
        // index — tearing one down afterwards is the *previous* epoch's
        // cost, so the drop stays outside the measured window (for both
        // formats alike).
        group.bench_function(format!("decode_install_v1/{label}"), |b| {
            b.iter_with_large_drop(|| {
                IndexedGraph::decode_snapshot(criterion::black_box(&v1)).unwrap()
            });
        });
        group.bench_function(format!("decode_install_v2/{label}"), |b| {
            b.iter_with_large_drop(|| {
                IndexedGraph::decode_snapshot(criterion::black_box(&v2)).unwrap()
            });
        });
    }

    group.finish();
}

criterion_group!(benches, snapshot_cold_start);
criterion_main!(benches);
