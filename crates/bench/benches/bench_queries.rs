//! Criterion timing benches for the query-side experiments:
//!
//! * `fig3_overall` — one group per scenario, one bench per method
//!   (Figure 3(a) at micro scale),
//! * `fig3_k` — StarKOSR/PruningKOSR across the k sweep (Figure 3(d)),
//! * `fig3_c` — across the |C| sweep (Figure 3(f)),
//! * `fig3_ci` — across the |Ci| sweep (Figure 3(h)),
//! * `fig6_zipf` — zipfian factor sweep (Figure 6),
//! * `fig7_osr` — k = 1 with GSP comparators (Figure 7).
//!
//! Scenario scale is kept small so `cargo bench` completes in minutes; the
//! `repro` binary is the full-scale reproduction path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use kosr_bench::harness::{to_query, Prepared};
use kosr_core::{gsp, GspEngine, Method};
use kosr_workloads::{assign_zipf, gen_queries, QuerySpec, Scenario, ScenarioName};

const SCALE: f64 = 0.12;

fn prepared(name: ScenarioName) -> Prepared {
    Prepared::build(Scenario::new(name).with_scale(SCALE))
}

fn queries(prep: &Prepared, c_len: usize, k: usize, seed: u64) -> Vec<QuerySpec> {
    gen_queries(&prep.ig.graph, 8, c_len, k, seed)
}

fn run_batch(prep: &Prepared, qs: &[QuerySpec], m: Method) {
    for spec in qs {
        let out = prep.ig.run(&to_query(spec), m);
        criterion::black_box(out.witnesses.len());
    }
}

fn fig3_overall(c: &mut Criterion) {
    for name in [ScenarioName::Cal, ScenarioName::Fla, ScenarioName::Gplus] {
        let prep = prepared(name);
        let qs = queries(&prep, 4, 10, 31);
        let mut group = c.benchmark_group(format!("fig3_overall/{}", name.as_str()));
        group.sample_size(10);
        for m in [Method::Sk, Method::Pk, Method::SkDij, Method::PkDij] {
            group.bench_function(m.name(), |b| b.iter(|| run_batch(&prep, &qs, m)));
        }
        // KPNE only where its product space stays tractable.
        if name == ScenarioName::Cal {
            group.bench_function("KPNE", |b| b.iter(|| run_batch(&prep, &qs, Method::Kpne)));
        }
        group.finish();
    }
}

fn fig3_k(c: &mut Criterion) {
    let prep = prepared(ScenarioName::Fla);
    let mut group = c.benchmark_group("fig3_k/FLA");
    group.sample_size(10);
    for k in [10usize, 30, 50] {
        let qs = queries(&prep, 4, k, 7 + k as u64);
        group.bench_with_input(BenchmarkId::new("SK", k), &k, |b, _| {
            b.iter(|| run_batch(&prep, &qs, Method::Sk))
        });
        group.bench_with_input(BenchmarkId::new("PK", k), &k, |b, _| {
            b.iter(|| run_batch(&prep, &qs, Method::Pk))
        });
    }
    group.finish();
}

fn fig3_c(c: &mut Criterion) {
    let prep = prepared(ScenarioName::Fla);
    let mut group = c.benchmark_group("fig3_c/FLA");
    group.sample_size(10);
    for c_len in [2usize, 6, 10] {
        let qs = queries(&prep, c_len, 10, 11 + c_len as u64);
        group.bench_with_input(BenchmarkId::new("SK", c_len), &c_len, |b, _| {
            b.iter(|| run_batch(&prep, &qs, Method::Sk))
        });
        group.bench_with_input(BenchmarkId::new("PK", c_len), &c_len, |b, _| {
            b.iter(|| run_batch(&prep, &qs, Method::Pk))
        });
    }
    group.finish();
}

fn fig3_ci(c: &mut Criterion) {
    let base = prepared(ScenarioName::Fla);
    let mut group = c.benchmark_group("fig3_ci/FLA");
    group.sample_size(10);
    for size in [10usize, 25, 50] {
        let prep = base
            .with_categories(|g| kosr_workloads::assign_uniform(g, 20, size, 0xC1 + size as u64));
        let qs = gen_queries(&prep.ig.graph, 8, 4, 10, 13 + size as u64);
        group.bench_with_input(BenchmarkId::new("SK", size), &size, |b, _| {
            b.iter(|| run_batch(&prep, &qs, Method::Sk))
        });
        group.bench_with_input(BenchmarkId::new("PK", size), &size, |b, _| {
            b.iter(|| run_batch(&prep, &qs, Method::Pk))
        });
    }
    group.finish();
}

fn fig6_zipf(c: &mut Criterion) {
    let base = prepared(ScenarioName::Fla);
    let total = 20
        * Scenario::new(ScenarioName::Fla)
            .with_scale(SCALE)
            .default_category_size();
    let mut group = c.benchmark_group("fig6_zipf/FLA");
    group.sample_size(10);
    for f10 in [12u32, 18] {
        let f = f10 as f64 / 10.0;
        let prep = base.with_categories(|g| assign_zipf(g, 20, total, f, 0x21F + f10 as u64));
        let qs = gen_queries(&prep.ig.graph, 8, 4, 10, 17 + f10 as u64);
        group.bench_with_input(BenchmarkId::new("SK", format!("f{f:.1}")), &f, |b, _| {
            b.iter(|| run_batch(&prep, &qs, Method::Sk))
        });
        group.bench_with_input(BenchmarkId::new("PK", format!("f{f:.1}")), &f, |b, _| {
            b.iter(|| run_batch(&prep, &qs, Method::Pk))
        });
    }
    group.finish();
}

fn fig7_osr(c: &mut Criterion) {
    let prep = prepared(ScenarioName::Fla);
    let qs = queries(&prep, 4, 1, 71);
    let mut group = c.benchmark_group("fig7_osr/FLA");
    group.sample_size(10);
    group.bench_function("SK", |b| b.iter(|| run_batch(&prep, &qs, Method::Sk)));
    group.bench_function("PK", |b| b.iter(|| run_batch(&prep, &qs, Method::Pk)));
    group.bench_function("GSP-CH", |b| {
        b.iter(|| {
            for spec in &qs {
                let (w, _) = gsp(
                    &prep.ig.graph,
                    spec.source,
                    spec.target,
                    &spec.categories,
                    &GspEngine::Ch(&prep.ch),
                );
                criterion::black_box(w);
            }
        })
    });
    group.bench_function("GSP-Dij", |b| {
        b.iter(|| {
            for spec in &qs {
                let (w, _) = gsp(
                    &prep.ig.graph,
                    spec.source,
                    spec.target,
                    &spec.categories,
                    &GspEngine::Dijkstra,
                );
                criterion::black_box(w);
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    fig3_overall,
    fig3_k,
    fig3_c,
    fig3_ci,
    fig6_zipf,
    fig7_osr
);
criterion_main!(benches);
