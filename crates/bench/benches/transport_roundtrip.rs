//! Transport-layer overhead: what the wire costs relative to calling the
//! service directly, measured on the same 300-query mixed stream.
//!
//! * `direct` — `KosrService::run_batch`, no transport (the floor).
//! * `inproc` — the loopback `InProcTransport`: full frame encode/decode
//!   per request/response, no sockets (pure codec overhead).
//! * `tcp_mux` — all 300 queries **in flight at once on one multiplexed
//!   connection** (frame-id demux; no per-request threads, no pool).
//! * `tcp_serial` — one request/response at a time on the same connection:
//!   the old blocking-RPC latency model, as a floor for the mux win.
//! * `tcp_pooled_8` — the pre-mux concurrency model reconstructed: 8
//!   parallel connections, each a blocking serial stream, so the mux win
//!   over pooled blocking connections is *measured*, not asserted.
//! * `codec` — raw encode→decode round trips of a representative response
//!   frame (the serialization hot path in isolation).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use kosr_core::{IndexedGraph, Query};
use kosr_service::{KosrService, ServiceConfig};
use kosr_transport::protocol::{decode_response, encode_response, RemoteResponse, Response};
use kosr_transport::{InProcTransport, ShardTransport, TcpServer, TcpTransport, TransportTicket};
use kosr_workloads::{assign_uniform, gen_mixed_traffic, road_grid_directed, TrafficMix};

const POOL: usize = 8;

fn world() -> (Arc<IndexedGraph>, Vec<Query>) {
    let mut g = road_grid_directed(16, 16, 13);
    assign_uniform(&mut g, 6, 20, 5);
    let ig = Arc::new(IndexedGraph::build_default(g));
    let stream = gen_mixed_traffic(&ig.graph, 300, &TrafficMix::default(), 29);
    let queries = stream
        .iter()
        .map(|s| Query::new(s.source, s.target, s.categories.clone(), s.k))
        .collect();
    (ig, queries)
}

fn config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        queue_capacity: 1024,
        cache_capacity: 0, // cold path: measure execution + transport
        ..Default::default()
    }
}

fn drain_transport(t: &dyn ShardTransport, queries: &[Query]) {
    let tickets: Vec<TransportTicket> = queries.iter().map(|q| t.submit(q.clone())).collect();
    for ticket in tickets {
        criterion::black_box(ticket.wait().expect("bench query completes"));
    }
}

fn transport_roundtrip(c: &mut Criterion) {
    let (ig, queries) = world();
    let mut group = c.benchmark_group("transport_roundtrip");
    group.sample_size(10);

    group.bench_function("direct", |b| {
        let service = KosrService::new(Arc::clone(&ig), config());
        b.iter(|| {
            for r in service.run_batch(&queries) {
                criterion::black_box(r.expect("completes"));
            }
        });
    });

    group.bench_function("inproc", |b| {
        let service = Arc::new(KosrService::new(Arc::clone(&ig), config()));
        let transport = InProcTransport::new(service);
        b.iter(|| drain_transport(&transport, &queries));
    });

    group.bench_function("tcp_mux", |b| {
        let service = Arc::new(KosrService::new(Arc::clone(&ig), config()));
        let server = TcpServer::spawn(service).expect("bind loopback");
        let transport = TcpTransport::connect(server.addr());
        // drain_transport submits every ticket before waiting on any:
        // with the mux, that is 300 interleaved in-flight requests on one
        // connection.
        b.iter(|| drain_transport(&transport, &queries));
    });

    group.bench_function("tcp_serial", |b| {
        let service = Arc::new(KosrService::new(Arc::clone(&ig), config()));
        let server = TcpServer::spawn(service).expect("bind loopback");
        let transport = TcpTransport::connect(server.addr());
        b.iter(|| {
            for q in &queries {
                criterion::black_box(transport.submit(q.clone()).wait().expect("bench query"));
            }
        });
    });

    group.bench_function("tcp_pooled_8", |b| {
        let service = Arc::new(KosrService::new(Arc::clone(&ig), config()));
        let server = TcpServer::spawn(service).expect("bind loopback");
        // One connection per pool slot, each driven as a blocking serial
        // stream from its own thread — the pre-mux model.
        let pool: Vec<Arc<TcpTransport>> = (0..POOL)
            .map(|_| Arc::new(TcpTransport::connect(server.addr())))
            .collect();
        b.iter(|| {
            std::thread::scope(|s| {
                for (slot, transport) in pool.iter().enumerate() {
                    let chunk: Vec<&Query> = queries.iter().skip(slot).step_by(POOL).collect();
                    let transport = Arc::clone(transport);
                    s.spawn(move || {
                        for q in chunk {
                            criterion::black_box(
                                transport.submit(q.clone()).wait().expect("bench query"),
                            );
                        }
                    });
                }
            });
        });
    });

    group.bench_function("codec", |b| {
        // A representative answer: k=4 witnesses over a 5-stop query.
        let service = KosrService::new(Arc::clone(&ig), config());
        let sample = queries
            .iter()
            .map(|q| service.submit(q.clone()).unwrap().wait().unwrap())
            .next()
            .expect("one answer");
        let resp = Response::Query(Ok(RemoteResponse {
            outcome: sample.outcome,
            cached: false,
            spans: Vec::new(),
        }));
        b.iter(|| {
            for id in 0..300u64 {
                let frame = encode_response(id, criterion::black_box(&resp));
                criterion::black_box(decode_response(&frame).unwrap());
            }
        });
    });

    group.finish();
}

criterion_group!(benches, transport_roundtrip);
criterion_main!(benches);
