//! Standing-query maintenance: epoch-diff delta push vs naive re-query.
//!
//! Both benches publish the same closed update pair (insert a vertex into
//! a category, then remove it — the world is back at baseline after every
//! iteration) against a sharded fleet carrying a batch of standing
//! mixed-traffic queries:
//!
//! * `delta_push` — the queries are subscriptions on a registered
//!   [`SubscriptionHub`]: each publish runs the invalidation filter
//!   (inverted category index + witness/bound stages), recomputes only the
//!   woken sessions, and queues positional deltas; the iteration then
//!   drains every session's queue.
//! * `naive_requery` — no hub: each publish is followed by re-running
//!   every standing query through the router, the only way a hubless edge
//!   can keep its clients' top-k fresh.
//!
//! The gap is the subscription layer's whole value proposition: skips are
//! counter-proven O(signature) set intersections, and only the sessions an
//! update can actually affect pay for a recompute.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use kosr_core::{IndexedGraph, Query};
use kosr_graph::{CategoryId, PartitionConfig, Partitioner, VertexId};
use kosr_service::{ServiceConfig, Update};
use kosr_shard::{ShardRouter, ShardSet};
use kosr_subscribe::{HubConfig, PollResponse, SubscriptionHub};
use kosr_workloads::{assign_uniform, gen_mixed_traffic, road_grid_directed, TrafficMix};

const SUBSCRIPTIONS: usize = 24;

fn world() -> IndexedGraph {
    let mut g = road_grid_directed(16, 16, 13);
    assign_uniform(&mut g, 6, 20, 5);
    IndexedGraph::build_default(g)
}

fn router(ig: &IndexedGraph) -> Arc<ShardRouter> {
    let partition = Partitioner::new(PartitionConfig {
        num_shards: 2,
        ..Default::default()
    })
    .partition(&ig.graph);
    Arc::new(ShardRouter::new(
        ShardSet::build(ig, partition),
        ServiceConfig {
            workers: 1,
            ..Default::default()
        },
    ))
}

fn standing_queries(ig: &IndexedGraph) -> Vec<Query> {
    gen_mixed_traffic(&ig.graph, SUBSCRIPTIONS, &TrafficMix::default(), 29)
        .iter()
        .map(|s| Query::new(s.source, s.target, s.categories.clone(), s.k))
        .collect()
}

/// A closed membership flip: insert a non-member vertex into `C0`, then
/// remove it. Publishing the pair leaves the world at baseline, so every
/// iteration measures the same work.
fn flip_pair(ig: &IndexedGraph) -> (Update, Update) {
    let c = CategoryId(0);
    let v = (0..ig.graph.num_vertices() as u32)
        .map(VertexId)
        .find(|&v| !ig.graph.categories().categories_of(v).contains(&c))
        .expect("a vertex outside C0");
    (
        Update::InsertMembership {
            vertex: v,
            category: c,
        },
        Update::RemoveMembership {
            vertex: v,
            category: c,
        },
    )
}

fn subscribe_delta(c: &mut Criterion) {
    let mut group = c.benchmark_group("subscribe_delta");
    group.sample_size(12);

    let ig = world();
    let queries = standing_queries(&ig);
    let (insert, remove) = flip_pair(&ig);

    {
        let router = router(&ig);
        let hub = Arc::new(SubscriptionHub::new(&router, HubConfig::default()));
        router.register_update_observer(Arc::clone(&hub) as _);
        let sessions: Vec<_> = queries
            .iter()
            .filter_map(|q| hub.subscribe(q.clone()).ok().map(|r| r.id))
            .collect();
        assert_eq!(sessions.len(), SUBSCRIPTIONS);
        let bus = router.update_bus();
        group.bench_function("delta_push", |b| {
            b.iter(|| {
                bus.publish(&insert).unwrap();
                bus.publish(&remove).unwrap();
                let mut drained = 0usize;
                for &id in &sessions {
                    if let PollResponse::Deltas { deltas, .. } = hub.poll(id, Duration::ZERO) {
                        drained += deltas.len();
                    }
                }
                criterion::black_box(drained)
            });
        });
    }

    {
        let router = router(&ig);
        let bus = router.update_bus();
        group.bench_function("naive_requery", |b| {
            b.iter(|| {
                bus.publish(&insert).unwrap();
                bus.publish(&remove).unwrap();
                let mut routes = 0usize;
                for res in router.run_batch(&queries) {
                    routes += res.unwrap().outcome.witnesses.len();
                }
                criterion::black_box(routes)
            });
        });
    }

    group.finish();
}

criterion_group!(benches, subscribe_delta);
criterion_main!(benches);
