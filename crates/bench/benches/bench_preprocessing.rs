//! Criterion benches for the offline phase (Table IX): contraction
//! hierarchy construction, pruned-landmark-labeling construction (degree vs
//! CH-rank ordering — the `ablate-ordering` comparison), inverted-label-
//! index construction, and the index primitives `FindNN` / label distance
//! queries that dominate online time (Table X's "NN query time" row).

use criterion::{criterion_group, criterion_main, Criterion};

use kosr_graph::CategoryId;
use kosr_hoplabel::HubOrder;
use kosr_index::{CategoryIndexSet, LabelNn, NearestNeighbors};
use kosr_workloads::{Scenario, ScenarioName};

const SCALE: f64 = 0.1;

fn table9_preprocessing(c: &mut Criterion) {
    for name in [ScenarioName::Cal, ScenarioName::Gplus] {
        let g = Scenario::new(name).with_scale(SCALE).build();
        let mut group = c.benchmark_group(format!("table9/{}", name.as_str()));
        group.sample_size(10);
        group.bench_function("ch_build", |b| {
            b.iter(|| criterion::black_box(kosr_ch::build(&g)))
        });
        let ch = kosr_ch::build(&g);
        group.bench_function("pll_ch_order", |b| {
            b.iter(|| criterion::black_box(kosr_hoplabel::build(&g, &HubOrder::from_ch(&ch))))
        });
        group.bench_function("pll_degree_order", |b| {
            b.iter(|| criterion::black_box(kosr_hoplabel::build(&g, &HubOrder::Degree)))
        });
        let labels = kosr_hoplabel::build(&g, &HubOrder::from_ch(&ch));
        group.bench_function("inverted_build", |b| {
            b.iter(|| criterion::black_box(CategoryIndexSet::build(&labels, g.categories())))
        });
        group.finish();
    }
}

fn index_primitives(c: &mut Criterion) {
    let g = Scenario::new(ScenarioName::Fla).with_scale(SCALE).build();
    let ch = kosr_ch::build(&g);
    let labels = kosr_hoplabel::build(&g, &HubOrder::from_ch(&ch));
    let inverted = CategoryIndexSet::build(&labels, g.categories());
    let n = g.num_vertices() as u32;

    let mut group = c.benchmark_group("primitives/FLA");
    group.bench_function("label_distance_query", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 7919) % n;
            let j = (i * 31 + 13) % n;
            criterion::black_box(labels.distance(kosr_graph::VertexId(i), kosr_graph::VertexId(j)))
        })
    });
    group.bench_function("find_nn_first", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 101) % n;
            // Fresh provider: measures the cold first-NN cost.
            let mut nn = LabelNn::new(&labels, &inverted);
            criterion::black_box(nn.find_nn(kosr_graph::VertexId(i), CategoryId(0), 1))
        })
    });
    group.bench_function("find_nn_stream_of_10", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 101) % n;
            let mut nn = LabelNn::new(&labels, &inverted);
            for x in 1..=10 {
                criterion::black_box(nn.find_nn(kosr_graph::VertexId(i), CategoryId(0), x));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, table9_preprocessing, index_primitives);
criterion_main!(benches);
