//! Shard-scaling throughput: the same multi-region traffic pushed through
//! `ShardRouter` deployments of 1, 2 and 4 shards (2 workers per shard),
//! so the scaling claim of the sharding layer — more shards ⇒ more
//! parallel capacity ⇒ higher batch throughput — is measured, not assumed.
//!
//! * `batch/{1,2,4}shards` — 400 region-skewed queries, replica caches
//!   disabled (measures execution + fan-out + merge machinery, not
//!   memoisation).
//! * `batch/4shards_cached` — the same stream with replica caches on
//!   (the production configuration).
//!
//! A summary line prints two scaling numbers once per run:
//!
//! * **wall QPS** — batch wall-clock throughput; meaningful only when the
//!   host has cores to back the worker pools (shards on one box share the
//!   CPUs; on a single-core host more shards can only lose);
//! * **capacity QPS** — queries / the measured critical path
//!   `max_shard(busy / workers)`, where each shard's `busy` is timed by
//!   replaying its shadow-rewritten share of the stream **in isolation**
//!   (single-threaded, no contention, so the numbers are honest on any
//!   core count). This is the throughput the same deployment sustains
//!   once each shard has its own box — the number the 1 → 4 shard
//!   scaling claim is about.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use kosr_core::{IndexedGraph, Query};
use kosr_service::ServiceConfig;
use kosr_shard::{PartitionConfig, Partitioner, ShardRouter, ShardSet};
use kosr_workloads::{assign_clustered, gen_region_traffic, road_grid_directed, RegionTraffic};

fn world() -> IndexedGraph {
    let mut g = road_grid_directed(24, 24, 17);
    // Spatially clustered POI categories: the membership distribution
    // region sharding is built for — a query's first-stop fan-out touches
    // the shards its cluster overlaps, not all of them.
    assign_clustered(&mut g, 8, 30, 0.0, 5);
    IndexedGraph::build_default(g)
}

fn router(ig: &IndexedGraph, shards: usize, cache: usize) -> (ShardRouter, Vec<Query>) {
    let partition = Partitioner::new(PartitionConfig {
        num_shards: shards,
        ..Default::default()
    })
    .partition(&ig.graph);
    let queries = gen_region_traffic(&ig.graph, &partition, 400, &RegionTraffic::default(), 23)
        .iter()
        .map(|s| Query::new(s.source, s.target, s.categories.clone(), s.k))
        .collect();
    let set = ShardSet::build(ig, partition);
    let config = ServiceConfig {
        workers: 2,
        queue_capacity: 4096,
        cache_capacity: cache,
        ..Default::default()
    };
    (ShardRouter::new(set, config), queries)
}

fn drain(router: &ShardRouter, queries: &[Query]) {
    for r in router.run_batch(queries) {
        criterion::black_box(r.expect("bench workload completes").outcome.witnesses.len());
    }
}

/// Each shard's compute time for its share of the stream, measured by a
/// **single-threaded isolated replay** of the shadow-rewritten queries —
/// one thread running at a time, so the timings are contention-free and
/// comparable on any host.
fn isolated_shard_busy(router: &ShardRouter, queries: &[Query]) -> Vec<std::time::Duration> {
    let planner = kosr_service::QueryPlanner::default();
    (0..router.num_shards())
        .map(|j| {
            let share: Vec<Query> = queries
                .iter()
                .filter(|q| router.plan_fanout(q).unwrap().contains(&j))
                .map(|q| {
                    let mut q = q.clone();
                    if let Some(c1) = q.categories.first_mut() {
                        *c1 = router.shadow(*c1);
                    }
                    q
                })
                .collect();
            let ig = router.shard_service(j).indexed_graph();
            let t0 = Instant::now();
            criterion::black_box(kosr_service::run_sequential(&ig, &planner, &share));
            t0.elapsed()
        })
        .collect()
}

fn shard_scaling(c: &mut Criterion) {
    let ig = world();
    let mut group = c.benchmark_group("shard_scaling/batch");
    group.sample_size(10);

    for shards in [1usize, 2, 4] {
        let (router, queries) = router(&ig, shards, 0);
        group.bench_function(format!("{shards}shards"), |b| {
            b.iter(|| drain(&router, &queries))
        });
    }

    {
        let (router, queries) = router(&ig, 4, 4096);
        group.bench_function("4shards_cached", |b| {
            drain(&router, &queries); // warm replica caches
            b.iter(|| drain(&router, &queries))
        });
    }
    group.finish();

    // The scaling headline: wall QPS and measured critical-path capacity.
    let workers_per_shard = 2.0;
    let mut wall = Vec::new();
    let mut capacity = Vec::new();
    for shards in [1usize, 4] {
        let (router, queries) = router(&ig, shards, 0);
        drain(&router, &queries); // warm the pools/allocator, caches off
        let t0 = Instant::now();
        drain(&router, &queries);
        wall.push(queries.len() as f64 / t0.elapsed().as_secs_f64());
        let critical_path = isolated_shard_busy(&router, &queries)
            .into_iter()
            .map(|busy| busy.as_secs_f64() / workers_per_shard)
            .fold(0.0f64, f64::max);
        capacity.push(queries.len() as f64 / critical_path);
    }
    let (stats, fanout) = {
        let (router, queries) = router(&ig, 4, 0);
        let total: usize = queries
            .iter()
            .map(|q| router.plan_fanout(q).unwrap().len())
            .sum();
        (
            router.partition_stats().clone(),
            total as f64 / queries.len() as f64,
        )
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "info: shard_scaling capacity: {:.0} QPS @1 shard → {:.0} QPS @4 shards ({:.2}x, measured critical path)",
        capacity[0],
        capacity[1],
        capacity[1] / capacity[0],
    );
    println!(
        "info: shard_scaling wall ({cores} cores): {:.0} QPS @1 shard → {:.0} QPS @4 shards ({:.2}x); mean fan-out {:.2}/4; partition: sizes {:?}, {} cut edges, {} boundary vertices",
        wall[0],
        wall[1],
        wall[1] / wall[0],
        fanout,
        stats.shard_sizes,
        stats.cut_edges,
        stats.boundary_vertices,
    );
}

criterion_group!(benches, shard_scaling);
criterion_main!(benches);
