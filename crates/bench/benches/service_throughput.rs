//! Serving-layer throughput baseline: batch QPS of `kosr-service` on a
//! synthetic mixed workload, so later PRs optimising the executor, cache
//! or planner have a number to beat.
//!
//! * `batch/{1,2,4}workers` — 400 mixed queries through pools of
//!   increasing width, cold cache per iteration (measures raw execution +
//!   queue machinery).
//! * `batch/4workers_warm` — same stream with the cache pre-warmed
//!   (measures the memoised serving path).
//! * `batch/4workers_nocache` — caching disabled (planner + executor only).
//!
//! The measured batch's cache hit rate is printed once per configuration
//! so hit-rate regressions show up alongside timing ones.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use kosr_core::{IndexedGraph, Query};
use kosr_service::{KosrService, ServiceConfig};
use kosr_workloads::{assign_uniform, gen_mixed_traffic, road_grid_directed, TrafficMix};

fn world() -> (Arc<IndexedGraph>, Vec<Query>) {
    let mut g = road_grid_directed(20, 20, 13);
    assign_uniform(&mut g, 8, 25, 5);
    let ig = Arc::new(IndexedGraph::build_default(g));
    let stream = gen_mixed_traffic(&ig.graph, 400, &TrafficMix::default(), 29);
    let queries = stream
        .iter()
        .map(|s| Query::new(s.source, s.target, s.categories.clone(), s.k))
        .collect();
    (ig, queries)
}

fn config(workers: usize, cache: usize) -> ServiceConfig {
    ServiceConfig {
        workers,
        queue_capacity: 1024,
        cache_capacity: cache,
        ..Default::default()
    }
}

fn drain(service: &KosrService, queries: &[Query]) {
    for r in service.run_batch(queries) {
        criterion::black_box(r.expect("bench workload completes").outcome.witnesses.len());
    }
}

fn service_throughput(c: &mut Criterion) {
    let (ig, queries) = world();
    let mut group = c.benchmark_group("service_throughput/batch");
    group.sample_size(10);

    for workers in [1usize, 2, 4] {
        group.bench_function(format!("{workers}workers"), |b| {
            b.iter(|| {
                // Fresh service per iteration: cold cache, cold queue.
                let service = KosrService::new(Arc::clone(&ig), config(workers, 4096));
                drain(&service, &queries);
            })
        });
    }

    group.bench_function("4workers_warm", |b| {
        let service = KosrService::new(Arc::clone(&ig), config(4, 4096));
        drain(&service, &queries); // warm the cache
        b.iter(|| drain(&service, &queries));
    });

    group.bench_function("4workers_nocache", |b| {
        let service = KosrService::new(Arc::clone(&ig), config(4, 0));
        b.iter(|| drain(&service, &queries));
    });

    group.finish();

    // One representative hit-rate line for the measured stream.
    let service = KosrService::new(Arc::clone(&ig), config(4, 4096));
    drain(&service, &queries);
    let stats = service.stats();
    println!(
        "info: service_throughput stream: {} queries, cache hit rate {:.1}% ({} hits / {} completed), {:.0} QPS incl. setup",
        queries.len(),
        100.0 * stats.cache_hit_rate(),
        stats.cache_hits,
        stats.completed,
        stats.qps
    );
}

criterion_group!(benches, service_throughput);
criterion_main!(benches);
